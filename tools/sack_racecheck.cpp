// sack-racecheck: static concurrency-discipline analyzer.
//
//   sack-racecheck [options]
//
//   --root DIR        repository root to scan (default: .)
//   --manifest FILE   concurrency contract
//                     (default: <root>/docs/concurrency_manifest.toml)
//   --json            machine-readable report
//   --quiet           suppress the report, keep only the exit status
//
// The analyzer parses the sources named by the manifest, reconstructs class
// layouts and the cross-TU call graph, and enforces the declared concurrency
// contract: lockset/annotation drift on guarded classes, RCU snapshot
// discipline (single load per decision scope, no raw-pointer lifetime
// escapes, no writes through immutable snapshots), relaxed-atomics
// publication lint, and fault-site registry drift.
//
// Exit status: 0 when the tree has no error-class findings, 1 when it does
// (including manifest diagnostics, which carry file:line provenance), 2 on
// usage / IO problems. Same CI-gate contract as sack-verify/sack-hookcheck.
#include <cstdio>
#include <string>

#include "analysis/racecheck.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--manifest FILE] [--json] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string manifest;
  bool json = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (arg == "--manifest") {
      if (++i >= argc) return usage(argv[0]);
      manifest = argv[i];
    } else {
      std::fprintf(stderr, "sack-racecheck: unknown argument '%s'\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (manifest.empty()) manifest = root + "/docs/concurrency_manifest.toml";

  auto result = sack::analysis::run_racecheck(root, manifest);
  if (!result.ok()) {
    std::fprintf(stderr, "sack-racecheck: %s\n", result.fatal.c_str());
    return 2;
  }
  if (!quiet) {
    std::string report = json ? sack::analysis::render_racecheck_json(result)
                              : sack::analysis::render_racecheck_text(result);
    std::fputs(report.c_str(), stdout);
  }
  return result.errors() > 0 ? 1 : 0;
}
