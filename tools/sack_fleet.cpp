// sack-fleet: drive the fleet control plane from the command line.
//
//   sack-fleet rollout [--vehicles N] [--canary F] [--bad] [--no-oracle]
//       Boot a fleet on the built-in v1 policy and roll out v2 (or the
//       "bad" revision with --bad, demonstrating health-gated rollback).
//       Prints the RolloutReport as JSON; exits 0 iff the fleet ends fully
//       converged on a single version.
//
//   sack-fleet chaos [--trials N] [--vehicles N] [--seed S]
//       Seeded chaos campaign: every trial arms the fleet.* fault sites
//       with a per-trial seed and rolls out v2. Exits 0 iff every trial
//       ends fully rolled out or fully rolled back (no mixed-version fleet,
//       no equivalence mismatch).
//
//   sack-fleet sites
//       List the registered fault sites (the chaos campaign's dials).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fleet/rollout.h"
#include "util/fault.h"

namespace {

using namespace sack;
using namespace sack::fleet;

int usage() {
  std::fprintf(stderr,
               "usage: sack-fleet rollout [--vehicles N] [--canary F] "
               "[--bad] [--no-oracle]\n"
               "       sack-fleet chaos [--trials N] [--vehicles N] "
               "[--seed S]\n"
               "       sack-fleet sites\n");
  return 2;
}

PolicyVersion must_version(std::uint64_t version, std::string text) {
  auto pv = make_policy_version(version, std::move(text));
  if (!pv.ok()) {
    std::fprintf(stderr, "sack-fleet: built-in policy failed to parse\n");
    std::exit(2);
  }
  return std::move(pv).value();
}

int cmd_rollout(std::size_t vehicles, double canary, bool bad, bool oracle) {
  FleetConfig fc;
  fc.vehicles = vehicles;
  Fleet fleet(fc, must_version(1, fleet_policy_v1()));

  RolloutConfig rc;
  rc.canary_fraction = canary;
  rc.run_oracle = oracle;
  RolloutController controller(fleet, rc);
  auto report = controller.roll_out(
      must_version(2, bad ? fleet_policy_bad() : fleet_policy_v2()));
  std::printf("%s\n", report.to_json().c_str());
  return report.fully_converged && report.mixed_version_vehicles == 0 &&
                 report.equivalence_mismatches == 0
             ? 0
             : 1;
}

int cmd_chaos(int trials, std::size_t vehicles, std::uint64_t seed) {
  int bad_trials = 0;
  int rollbacks = 0;
  auto& fi = util::FaultInjector::instance();
  for (int t = 0; t < trials; ++t) {
    fi.reset();
    const std::uint64_t trial_seed = seed + static_cast<std::uint64_t>(t);
    util::FaultSpec drop;
    drop.probability = 0.2;
    drop.seed = trial_seed;
    util::FaultSpec delay;
    delay.probability = 0.2;
    delay.seed = trial_seed ^ 0xdeULL;
    util::FaultSpec crash;
    crash.probability = 0.05;
    crash.seed = trial_seed ^ 0xc4ULL;
    util::FaultSpec act;
    act.probability = 0.1;
    act.seed = trial_seed ^ 0xacULL;
    act.error = Errno::eio;
    fi.arm("fleet.push.drop", drop);
    fi.arm("fleet.push.delay", delay);
    fi.arm("fleet.vehicle.crash", crash);
    fi.arm("fleet.activate.fail", act);

    FleetConfig fc;
    fc.vehicles = vehicles;
    fc.shards = 1;  // deterministic fault draw order
    Fleet fleet(fc, must_version(1, fleet_policy_v1()));
    RolloutConfig rc;
    rc.run_oracle = false;  // the gate ran once; trials exercise the pushes
    RolloutController controller(fleet, rc);
    auto report = controller.roll_out(
        must_version(2, (t % 5 == 4) ? fleet_policy_bad()
                                     : fleet_policy_v2()));
    if (report.outcome == RolloutOutcome::rolled_back) ++rollbacks;
    const bool converged = report.fully_converged &&
                           report.mixed_version_vehicles == 0 &&
                           report.equivalence_mismatches == 0;
    if (!converged) {
      ++bad_trials;
      std::fprintf(stderr, "trial %d (seed %llu) NOT converged: %s\n", t,
                   static_cast<unsigned long long>(trial_seed),
                   report.to_json().c_str());
    }
  }
  fi.reset();
  std::printf(
      "{\"trials\":%d,\"rollbacks\":%d,\"non_converged\":%d}\n", trials,
      rollbacks, bad_trials);
  return bad_trials == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "sites") {
    for (const auto& site : util::FaultInjector::instance().fault_sites())
      std::printf("%-22s %s\n", site.name.c_str(), site.description.c_str());
    return 0;
  }

  std::size_t vehicles = 16;
  double canary = 0.05;
  bool bad = false;
  bool oracle = true;
  int trials = 200;
  std::uint64_t seed = 0x5ac4f1ee7ULL;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) { std::exit(usage()); }
      return argv[++i];
    };
    if (arg == "--vehicles") {
      vehicles = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--canary") {
      canary = std::strtod(next(), nullptr);
    } else if (arg == "--trials") {
      trials = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--bad") {
      bad = true;
    } else if (arg == "--no-oracle") {
      oracle = false;
    } else {
      return usage();
    }
  }

  if (cmd == "rollout") return cmd_rollout(vehicles, canary, bad, oracle);
  if (cmd == "chaos") return cmd_chaos(trials, vehicles, seed);
  return usage();
}
