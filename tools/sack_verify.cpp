// sack-verify: offline policy verification CLI.
//
//   sack-verify [options] <policy.sack>...
//
//   --mode independent|enhanced|any   checker mode (default: any)
//   --queries FILE                    load `never allow`/`can`/`reach`
//                                     assertions from FILE
//   --query 'never allow ...;'        add one inline query (repeatable)
//   --json                            machine-readable report per policy
//   --no-oracle                       skip the differential oracle sweep
//   --no-escalation                   skip the privilege-diff report
//
// Exit status: 0 when every policy verifies without error-severity
// findings, 1 when any policy has errors (parse failures, lint errors,
// violated invariants, oracle mismatches), 2 on usage or I/O problems.
// This is the CI gate contract: `sack-verify policies/*.sack` fails the
// build exactly when a shipped policy stops verifying.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "verify/verifier.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--mode independent|enhanced|any] [--queries FILE]\n"
               "          [--query 'stmt;'] [--json] [--no-oracle]\n"
               "          [--no-escalation] <policy.sack>...\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sack::verify::VerifyOptions options;
  bool json = false;
  std::vector<std::string> policy_paths;
  std::string query_text;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--no-oracle") {
      options.run_oracle = false;
    } else if (arg == "--no-escalation") {
      options.run_escalation_report = false;
    } else if (arg == "--mode") {
      if (++i >= argc) return usage(argv[0]);
      std::string mode = argv[i];
      if (mode == "independent") {
        options.mode = sack::core::CheckMode::independent;
      } else if (mode == "enhanced") {
        options.mode = sack::core::CheckMode::apparmor_enhanced;
      } else if (mode == "any") {
        options.mode = sack::core::CheckMode::any;
      } else {
        std::fprintf(stderr, "sack-verify: unknown mode '%s'\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--queries") {
      if (++i >= argc) return usage(argv[0]);
      std::string text;
      if (!read_file(argv[i], text)) {
        std::fprintf(stderr, "sack-verify: cannot read queries file '%s'\n",
                     argv[i]);
        return 2;
      }
      query_text += text + "\n";
    } else if (arg == "--query") {
      if (++i >= argc) return usage(argv[0]);
      query_text += std::string(argv[i]) + "\n";
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "sack-verify: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      policy_paths.push_back(std::move(arg));
    }
  }
  if (policy_paths.empty()) return usage(argv[0]);

  if (!query_text.empty()) {
    auto parsed = sack::verify::parse_queries(query_text);
    if (!parsed.ok()) {
      for (const auto& e : parsed.errors)
        std::fprintf(stderr, "sack-verify: query %s\n", e.to_string().c_str());
      return 2;
    }
    options.queries = std::move(parsed.queries);
  }

  bool any_errors = false;
  for (const auto& path : policy_paths) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "sack-verify: cannot read policy '%s'\n",
                   path.c_str());
      return 2;
    }
    auto report = sack::verify::verify_policy_text(text, options, path);
    std::fputs((json ? report.to_json() : report.to_text()).c_str(), stdout);
    if (!json) std::fputs("\n", stdout);
    any_errors = any_errors || report.has_errors();
  }
  return any_errors ? 1 : 0;
}
