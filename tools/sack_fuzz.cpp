// sack-fuzz: coverage-guided syscall fuzzer with a runtime mediation oracle.
//
//   sack-fuzz [options]
//
//   --seed N          campaign seed (default 1)
//   --max-execs N     execution budget (default 20000)
//   --plateau N       stop after N execs without new coverage (default 2000)
//   --fast            CI smoke profile: --max-execs 600 --plateau 300
//   --corpus DIR      seed corpus of .prog files to replay first
//   --save-corpus DIR write the distilled corpus after the campaign
//   --manifest FILE   mediation manifest
//                     (default: docs/hook_manifest.toml, then ../docs/...)
//   --no-racer        disable the hostile racer module
//   --no-minimize     keep findings as found (skip shrinking reproducers)
//   --json FILE       write campaign stats as JSON (use '-' for stdout)
//   --list-fault-sites print the registered fault-injection sites and exit
//
// Each execution boots a fresh simulated kernel, replays one generated
// syscall program through it, and checks the MediationWitness event stream
// against docs/hook_manifest.toml: every state mutation guarded by its hook,
// no verdict swallowed or reordered. Coverage is (syscall x situation-state
// x errno) plus (syscall x hook x verdict-class) tuples.
//
// Exit status: 0 for a clean campaign, 1 when findings were recorded, 2 on
// usage errors. A finding prints the violation and a minimized reproducer
// program, ready to be checked into tests/fixtures/fuzz/.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "fuzz/fuzzer.h"
#include "util/fault.h"
#include "util/log.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--max-execs N] [--plateau N] [--fast]\n"
               "       [--corpus DIR] [--save-corpus DIR] [--manifest FILE]\n"
               "       [--no-racer] [--no-minimize] [--json FILE]\n"
               "       [--list-fault-sites]\n",
               argv0);
  return 2;
}

std::string default_manifest() {
  for (const char* candidate :
       {"docs/hook_manifest.toml", "../docs/hook_manifest.toml"}) {
    std::ifstream probe(candidate);
    if (probe) return candidate;
  }
  return "docs/hook_manifest.toml";  // let the loader report the error
}

void write_json(std::FILE* out, const sack::fuzz::Fuzzer& fuzzer) {
  const auto& s = fuzzer.stats();
  std::fprintf(out,
               "{\n"
               "  \"execs\": %zu,\n"
               "  \"coverage_keys\": %zu,\n"
               "  \"corpus_size\": %zu,\n"
               "  \"oracle_violations\": %zu,\n"
               "  \"findings\": %zu,\n"
               "  \"hit_plateau\": %s,\n"
               "  \"plateau_execs\": %zu,\n"
               "  \"elapsed_ms\": %llu,\n"
               "  \"time_to_plateau_ms\": %llu\n"
               "}\n",
               s.execs, s.coverage_keys, s.corpus_size, s.violations,
               fuzzer.findings().size(), s.hit_plateau ? "true" : "false",
               s.plateau_execs,
               static_cast<unsigned long long>(s.elapsed_ms),
               static_cast<unsigned long long>(s.time_to_plateau_ms));
}

}  // namespace

int main(int argc, char** argv) {
  // The campaign exercises denial and unknown-event paths by the thousand;
  // kernel-style logging of each one would drown the report.
  sack::Logger::instance().set_level(sack::LogLevel::off);

  sack::fuzz::FuzzConfig config;
  std::string manifest_path;
  std::string save_corpus;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--list-fault-sites") {
      for (const auto& s : sack::util::FaultInjector::instance().fault_sites())
        std::printf("%-22s %s\n", s.name.c_str(), s.description.c_str());
      return 0;
    } else if (arg == "--fast") {
      config.max_execs = 600;
      config.plateau_execs = 300;
    } else if (arg == "--no-racer") {
      config.racer = false;
    } else if (arg == "--no-minimize") {
      config.minimize_findings = false;
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      config.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--max-execs") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      config.max_execs = std::strtoull(v, nullptr, 0);
    } else if (arg == "--plateau") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      config.plateau_execs = std::strtoull(v, nullptr, 0);
    } else if (arg == "--corpus") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      config.corpus_dir = v;
    } else if (arg == "--save-corpus") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      save_corpus = v;
    } else if (arg == "--manifest") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      manifest_path = v;
    } else if (arg == "--json") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      json_path = v;
    } else {
      std::fprintf(stderr, "sack-fuzz: unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (manifest_path.empty()) manifest_path = default_manifest();
  sack::fuzz::Fuzzer fuzzer(config,
                            sack::fuzz::load_manifest_or_die(manifest_path));
  fuzzer.run();

  const auto& stats = fuzzer.stats();
  std::printf(
      "sack-fuzz: %zu execs, %zu coverage keys, corpus %zu, %zu violations"
      " (%zu findings)%s\n",
      stats.execs, stats.coverage_keys, stats.corpus_size, stats.violations,
      fuzzer.findings().size(),
      stats.hit_plateau ? ", coverage plateau reached" : "");

  for (const auto& finding : fuzzer.findings()) {
    std::printf("\nfinding: %s in %s\n  %s\nreproducer (%zu ops):\n%s",
                finding.violations.front().rule.c_str(),
                finding.violations.front().syscall.c_str(),
                finding.violations.front().detail.c_str(),
                finding.program.ops.size(),
                finding.program.to_text().c_str());
  }

  if (!save_corpus.empty()) {
    const std::size_t n = fuzzer.corpus().save_dir(save_corpus);
    std::printf("sack-fuzz: wrote %zu programs to %s\n", n,
                save_corpus.c_str());
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      write_json(stdout, fuzzer);
    } else {
      std::FILE* out = std::fopen(json_path.c_str(), "w");
      if (!out) {
        std::fprintf(stderr, "sack-fuzz: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      write_json(out, fuzzer);
      std::fclose(out);
    }
  }

  return fuzzer.findings().empty() ? 0 : 1;
}
