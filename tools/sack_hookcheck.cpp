// sack-hookcheck: static hook-mediation analyzer for the simulated kernel.
//
//   sack-hookcheck [options]
//
//   --root DIR        repository root to scan (default: .)
//   --manifest FILE   mediation manifest
//                     (default: <root>/docs/hook_manifest.toml)
//   --json            machine-readable report
//   --quiet           suppress the report, keep only the exit status
//
// The analyzer parses the simulated kernel sources, builds the syscall-entry
// to LSM-hook reachability graph, and checks it against the checked-in
// mediation manifest: required hooks must be reachable on every non-error
// path, each hook must dominate the state mutation it guards, denial paths
// must propagate the stack verdict, and the hook table must stay free of
// drift (dead hooks, unknown dispatches, unlisted syscalls).
//
// Exit status: 0 when the tree has no error-class findings, 1 when it does,
// 2 on usage / IO / manifest problems. This is the CI gate contract: the
// build fails exactly when a kernel change regresses mediation coverage.
#include <cstdio>
#include <string>

#include "analysis/hookcheck.h"
#include "analysis/report.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--manifest FILE] [--json] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string manifest;
  bool json = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (arg == "--manifest") {
      if (++i >= argc) return usage(argv[0]);
      manifest = argv[i];
    } else {
      std::fprintf(stderr, "sack-hookcheck: unknown argument '%s'\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (manifest.empty()) manifest = root + "/docs/hook_manifest.toml";

  auto result = sack::analysis::run_hookcheck(root, manifest);
  if (!result.ok()) {
    std::fprintf(stderr, "sack-hookcheck: %s\n", result.fatal.c_str());
    return 2;
  }
  if (!quiet) {
    std::string report =
        json ? sack::analysis::render_json(result.findings, result.stats)
             : sack::analysis::render_text(result.findings, result.stats);
    std::fputs(report.c_str(), stdout);
  }
  return result.errors() > 0 ? 1 : 0;
}
