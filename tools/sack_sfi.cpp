// sack-sfi: the syscall-flow-integrity profile toolchain.
//
//   sack-sfi lint <file>...                 parse + check; the CI gate
//   sack-sfi compile <file>                 canonical dump + table stats
//   sack-sfi simulate <file> <exe> [--situation S] <sys>...
//                                           walk a sequence, show each step
//   sack-sfi record [--runs N]              learn profiles from the standard
//                                           IVI media workloads and print a
//                                           replay-verified .sfi policy
//
// Exit status: 0 clean, 1 findings/denial, 2 usage or I/O error.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ivi/ivi_system.h"
#include "sfi/automaton.h"
#include "sfi/profile.h"
#include "sfi/recorder.h"

namespace {

using namespace sack;
using namespace sack::sfi;

int usage() {
  std::fprintf(stderr,
               "usage: sack-sfi lint <file>...\n"
               "       sack-sfi compile <file>\n"
               "       sack-sfi simulate <file> <exe> [--situation S] "
               "<syscall>...\n"
               "       sack-sfi record [--runs N]\n");
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int cmd_lint(const std::vector<std::string>& files) {
  if (files.empty()) return usage();
  int errors = 0;
  for (const auto& file : files) {
    std::string text;
    if (!read_file(file, &text)) {
      std::fprintf(stderr, "sack-sfi: cannot read %s\n", file.c_str());
      return 2;
    }
    auto r = parse_sfi_policy(text);
    for (const auto& e : r.errors)
      std::printf("%s:%d: error: %s\n", file.c_str(), e.line,
                  e.message.c_str());
    errors += static_cast<int>(r.errors.size());
    if (r.ok())
      std::printf("sack-sfi: %s: %zu profile(s) OK\n", file.c_str(),
                  r.policy.profiles.size());
  }
  std::printf("sack-sfi: lint: %d error(s) in %zu file(s)\n", errors,
              files.size());
  return errors ? 1 : 0;
}

int cmd_compile(const std::vector<std::string>& files) {
  if (files.size() != 1) return usage();
  std::string text;
  if (!read_file(files[0], &text)) {
    std::fprintf(stderr, "sack-sfi: cannot read %s\n", files[0].c_str());
    return 2;
  }
  auto r = parse_sfi_policy(text);
  if (!r.ok()) {
    for (const auto& e : r.errors)
      std::fprintf(stderr, "%s:%d: error: %s\n", files[0].c_str(), e.line,
                   e.message.c_str());
    return 1;
  }
  auto compiled = compile_sfi_policy(r.policy, 1);
  if (!compiled.ok()) {
    std::fprintf(stderr, "sack-sfi: compile failed\n");
    return 1;
  }
  std::fputs(dump_sfi_policy(r.policy).c_str(), stdout);
  std::size_t states = 0;
  for (const auto& p : r.policy.profiles) states += p.states.size();
  std::printf(
      "# compiled: %zu profile(s), %zu state(s), %zu situation(s), "
      "%zu-entry syscall axis\n",
      (*compiled)->size(), states, (*compiled)->situations().size(),
      kSyscallNames.size());
  return 0;
}

int cmd_simulate(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  std::string text;
  if (!read_file(args[0], &text)) {
    std::fprintf(stderr, "sack-sfi: cannot read %s\n", args[0].c_str());
    return 2;
  }
  auto r = parse_sfi_policy(text);
  if (!r.ok()) {
    for (const auto& e : r.errors)
      std::fprintf(stderr, "%s:%d: error: %s\n", args[0].c_str(), e.line,
                   e.message.c_str());
    return 1;
  }
  auto compiled = compile_sfi_policy(r.policy, 1);
  if (!compiled.ok()) {
    std::fprintf(stderr, "sack-sfi: compile failed\n");
    return 1;
  }

  const std::string& exe = args[1];
  std::string situation;
  std::vector<std::string> calls;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--situation" && i + 1 < args.size()) {
      situation = args[++i];
    } else {
      calls.push_back(args[i]);
    }
  }

  const Program* program = (*compiled)->find(exe);
  if (!program) {
    std::fprintf(stderr, "sack-sfi: no profile for %s\n", exe.c_str());
    return 2;
  }
  std::uint32_t token = situation.empty()
                            ? kNoSituation
                            : (*compiled)->situation_token(situation);

  std::vector<SimStep> steps;
  int denied = simulate_program(*program, token, calls, &steps);
  for (const auto& s : steps) {
    if (s.denied)
      std::printf("  %-18s %s -> DENIED%s\n", s.syscall.c_str(),
                  s.from_state.c_str(), s.overlay_deny ? " (overlay)" : "");
    else
      std::printf("  %-18s %s -> %s\n", s.syscall.c_str(),
                  s.from_state.c_str(), s.to_state.c_str());
  }
  if (denied < 0) {
    std::printf("sack-sfi: simulate: %zu step(s), admissible\n", calls.size());
    return 0;
  }
  std::printf("sack-sfi: simulate: denied at step %d (%s)\n", denied,
              calls[static_cast<std::size_t>(denied)].c_str());
  return 1;
}

int cmd_record(const std::vector<std::string>& args) {
  int runs = 3;
  for (std::size_t i = 0; i < args.size(); ++i)
    if (args[i] == "--runs" && i + 1 < args.size())
      runs = std::atoi(args[++i].c_str());
  if (runs < 1) runs = 1;

  // Learning rig: the full IVI stack with an observation-only recorder
  // stacked behind the MAC modules. No SFI enforcement — record first,
  // verify, only then flip to enforce.
  ivi::IviSystem sys(ivi::IviSystem::Options{
      .mac = ivi::MacConfig::stacked_independent,
      .start_sds = false,
  });
  auto* recorder = static_cast<SfiRecorder*>(
      sys.kernel().add_lsm(std::make_unique<SfiRecorder>()));

  for (int i = 0; i < runs; ++i) {
    (void)sys.media().set_volume(10 + i % 4);
    (void)sys.media().play_track(ivi::IviSystem::kMediaTrack);
  }

  SfiPolicy learned = recorder->distill();
  auto report = recorder->verify(learned);
  if (!report.clean) {
    std::fprintf(stderr, "sack-sfi: record: replay verification FAILED: %s\n",
                 report.detail.c_str());
    return 1;
  }
  std::printf("# Learned by `sack-sfi record` from %d run(s) of the media\n"
              "# workloads; replay-verified against %llu recorded call(s).\n",
              runs,
              static_cast<unsigned long long>(recorder->observed_calls()));
  std::fputs(dump_sfi_policy(learned).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);
  if (cmd == "lint") return cmd_lint(rest);
  if (cmd == "compile") return cmd_compile(rest);
  if (cmd == "simulate") return cmd_simulate(rest);
  if (cmd == "record") return cmd_record(rest);
  return usage();
}
