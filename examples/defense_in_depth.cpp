// Defense in depth: SACK stacked in front of BOTH other MAC engines —
// CONFIG_LSM="sack,apparmor,setype" — each contributing a different model:
//
//   SACK      situation-aware object guards (when may anyone do this?)
//   AppArmor  per-program path profiles     (what may this program touch?)
//   setype    type enforcement              (which domains reach which types?)
//
// A single access must clear all three. This generalizes the paper's §IV-D
// compatibility evaluation from one extra LSM to two, including the timed
// fail-safe extension.
//
//   $ ./examples/defense_in_depth
#include <cstdio>

#include "apparmor/apparmor.h"
#include "core/sack_module.h"
#include "kernel/process.h"
#include "te/te_module.h"

using namespace sack;

namespace {

void verdict(const char* what, bool allowed, const char* expected) {
  std::printf("  %-52s %-8s (expected: %s)\n", what,
              allowed ? "ALLOWED" : "denied", expected);
}

}  // namespace

int main() {
  kernel::Kernel k;

  // CONFIG_LSM="sack,apparmor,setype" — whitelist order, SACK first.
  auto* sack_mod = static_cast<core::SackModule*>(k.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));
  auto* apparmor_mod = static_cast<apparmor::AppArmorModule*>(
      k.add_lsm(std::make_unique<apparmor::AppArmorModule>()));
  auto* te_mod =
      static_cast<te::TeModule*>(k.add_lsm(std::make_unique<te::TeModule>()));
  (void)apparmor_mod;

  std::printf("LSM stack:");
  for (const auto& name : k.lsm().module_names())
    std::printf(" %s", name.c_str());
  std::printf("\n\n");

  // World: a diagnostics tool and the vehicle bus device.
  kernel::Process admin(k, k.init_task());
  k.vfs().mkdir_p("/etc/vehicle");
  (void)admin.write_file("/usr/bin/diag_tool", "ELF");
  (void)k.sys_chmod(k.init_task(), "/usr/bin/diag_tool", 0755);
  (void)admin.write_file("/dev/vehicle_bus", "");
  (void)admin.write_file("/etc/vehicle/calib", "calibration");

  // Layer 1 — SACK: bus writes only while parked, with a 5 s service window
  // fail-safe (timed transition back to driving).
  (void)sack_mod->load_policy_text(R"(
states { driving = 0; service = 1; }
initial driving;
transitions {
  driving -> service on service_mode_enabled;
  service -> driving on service_mode_disabled;
  service -> driving after 5000;           # fail-safe window
}
permissions { BUS_WRITE; }
state_per { service: BUS_WRITE; }
per_rules { BUS_WRITE { allow * /dev/vehicle_bus write ioctl; } }
)");

  // Layer 2 — AppArmor: only the diagnostics tool's profile mentions the bus.
  (void)apparmor_mod->load_policy_text(R"(
profile diag_tool /usr/bin/diag_tool {
  /dev/vehicle_bus rwi,
  /etc/vehicle/** r,
}
profile media_app /usr/bin/media_app {
  /var/media/** r,
}
# The rogue updater service is known and confined — its profile simply has
# no business with the vehicle bus. (A binary AppArmor has never heard of
# would run unconfined here; independent SACK still guards the bus object
# itself, which is exactly the gap the paper closes.)
profile rogue /usr/bin/rogue {
  /var/cache/** rw,
}
)");

  // Layer 3 — setype: only the diag domain reaches the bus type.
  (void)te_mod->load_policy_text(R"(
type diag_t;
type diag_exec_t;
type vbus_t;
type vehicle_conf_t;
allow diag_t vbus_t : file { read write ioctl };
allow diag_t diag_exec_t : file { execute getattr };
allow diag_t vehicle_conf_t : file { read getattr };
domain_transition unconfined_t diag_exec_t diag_t;
filecon /usr/bin/diag_tool diag_exec_t;
filecon /dev/vehicle_bus vbus_t;
filecon /etc/vehicle/** vehicle_conf_t;
)");

  // Actors.
  auto& diag_task = k.spawn_task("sh", kernel::Cred::root(), "/bin/sh");
  (void)k.sys_execve(diag_task, "/usr/bin/diag_tool");  // enters all domains
  kernel::Process diag(k, diag_task);
  auto& rogue_task =
      k.spawn_task("rogue", kernel::Cred::root(), "/usr/bin/rogue");
  kernel::Process rogue(k, rogue_task);

  auto try_bus = [&](kernel::Process& p) {
    auto fd = p.open("/dev/vehicle_bus", kernel::OpenFlags::write);
    if (!fd.ok()) return false;
    (void)p.close(*fd);
    return true;
  };

  std::printf("[driving] nobody may touch the bus (SACK layer):\n");
  verdict("diag_tool writes /dev/vehicle_bus", try_bus(diag), "denied");
  verdict("rogue    writes /dev/vehicle_bus", try_bus(rogue), "denied");

  std::printf("\n[service mode enabled]\n");
  (void)sack_mod->deliver_event("service_mode_enabled");
  verdict("diag_tool writes /dev/vehicle_bus", try_bus(diag), "ALLOWED");
  verdict("rogue    writes /dev/vehicle_bus (AppArmor+TE layers)",
          try_bus(rogue), "denied");
  verdict("diag_tool reads /etc/vehicle/calib",
          diag.read_file("/etc/vehicle/calib").ok(), "ALLOWED");

  std::printf("\n[5 s pass with no service activity -> timed fail-safe]\n");
  k.advance_clock_ms(5001);
  std::printf("  situation is now: %s\n",
              sack_mod->current_state_name().c_str());
  verdict("diag_tool writes /dev/vehicle_bus", try_bus(diag), "denied");

  std::printf("\naudit trail (denials + transitions):\n%s",
              admin.read_file("/sys/kernel/security/audit/log")
                  .value_or("(unreadable)")
                  .c_str());
  return 0;
}
