// The paper's case study (Fig 4): "allow unlock car door only in
// emergencies", on the full IVI emulator — vehicle hardware devices, a
// rescue daemon, the SDS, and a crash scenario played from a synthetic
// highway trace.
//
//   $ ./examples/ivi_emergency [independent|enhanced]
#include <cstdio>
#include <cstring>

#include "ivi/ivi_system.h"
#include "sds/traces.h"

using namespace sack;

namespace {

void print_vehicle(const ivi::VehicleState& state) {
  std::printf("    doors: ");
  for (bool locked : state.door_locked) std::printf("%s ", locked ? "L" : "u");
  std::printf("   windows: ");
  for (int pct : state.window_open_pct) std::printf("%3d%% ", pct);
  std::printf("\n");
}

void print_attempt(const ivi::AttemptLog& log) {
  for (const auto& a : log.attempts) {
    std::printf("    %-24s -> %s\n", a.action.c_str(),
                a.result == Errno::ok
                    ? "OK"
                    : std::string(errno_name(a.result)).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ivi::MacConfig mac = ivi::MacConfig::independent_sack;
  if (argc > 1) {
    if (std::strcmp(argv[1], "enhanced") == 0) {
      mac = ivi::MacConfig::sack_enhanced_apparmor;
    } else if (std::strcmp(argv[1], "independent") != 0) {
      std::fprintf(stderr, "usage: ivi_emergency [independent|enhanced]\n");
      return 2;
    }
  }

  ivi::IviSystem ivi({.mac = mac});
  std::printf("IVI system booted, CONFIG_LSM-style stack: %s\n",
              std::string(ivi::mac_config_name(mac)).c_str());
  std::printf("situation: %s\n", ivi.situation().c_str());
  print_vehicle(ivi.hardware().state());

  std::printf("\n[1] normal situation: rescue daemon attempts door/window "
              "control\n");
  print_attempt(ivi.rescue().respond_to_emergency());
  print_vehicle(ivi.hardware().state());

  std::printf("\n[2] highway drive begins; a crash happens (synthetic trace "
              "through the SDS)...\n");
  auto trace = sds::highway_crash_trace(/*crash_at_s=*/20);
  bool responded = false;
  for (const auto& frame : trace) {
    auto fed = ivi.sds().feed(frame);
    for (const auto& event : fed.delivered) {
      std::printf("    t=%6.1fs  SDS event: %-22s -> situation: %s\n",
                  static_cast<double>(frame.time_ms) / 1000.0, event.c_str(),
                  ivi.situation().c_str());
    }
    if (ivi.situation() == "emergency" && !responded) {
      responded = true;
      std::printf("\n[3] emergency! the rescue daemon breaks the glass:\n");
      print_attempt(ivi.rescue().respond_to_emergency());
      print_vehicle(ivi.hardware().state());
      std::printf("\n[4] waiting for the emergency to clear...\n");
    }
  }

  std::printf("\n[5] emergency cleared -> situation: %s; privileges are "
              "gone again:\n",
              ivi.situation().c_str());
  print_attempt(ivi.rescue().respond_to_emergency());
  print_vehicle(ivi.hardware().state());

  std::printf("\ndone: doors could be unlocked during the emergency and "
              "only then.\n");
  return 0;
}
