// Security comparison: a KOFFEE-style (CVE-2020-8539) command-injection
// attack and a CVE-2023-6073-style max-volume attack, replayed against four
// MAC configurations. Shows why user-space checks alone are not enough and
// what each kernel configuration stops.
//
//   $ ./examples/koffee_attack
#include <cstdio>

#include "ivi/ivi_system.h"

using namespace sack;

namespace {

struct Outcome {
  bool confined_injection_blocked = false;
  bool dropped_injection_blocked = false;
  bool can_injection_blocked = false;
  bool volume_attack_blocked = false;
  bool emergency_rescue_works = false;
};

Outcome attack(ivi::MacConfig mac) {
  Outcome out;
  ivi::IviSystem ivi({.mac = mac});

  // (a) the attack through the compromised-but-known ota_helper service.
  out.confined_injection_blocked =
      ivi.attacker().inject_vehicle_control().all_denied();

  // (b) the attack through a dropped binary no profile ever mentioned
  // (the post-exploitation reality user-space checks can't see).
  auto& dropped_task = ivi.kernel().spawn_task(
      "payload", kernel::Cred::root(), "/usr/bin/.cache_helper");
  ivi::KoffeeInjector dropped{kernel::Process(ivi.kernel(), dropped_task)};
  out.dropped_injection_blocked =
      dropped.inject_vehicle_control().all_denied();

  // (c) the raw CAN-frame injection (the literal KOFFEE payload).
  out.can_injection_blocked = !dropped.inject_can_frames().ok();

  // Reset hardware state the attacks may have changed.
  ivi.hardware().state() = ivi::VehicleState{};

  // (d) CVE-2023-6073: set the volume to max (from the dropped binary).
  out.volume_attack_blocked = !dropped.max_volume().ok();

  // (d) and the legitimate flow must still work: crash -> rescue daemon.
  if (ivi.sack()) {
    (void)ivi.sds().send_event("crash_detected");
    out.emergency_rescue_works = ivi.rescue().respond_to_emergency().all_ok();
  } else {
    // Without SACK there is no situation awareness; rescue "works" only
    // because nothing ever stops it (or fails under static AppArmor).
    out.emergency_rescue_works = ivi.rescue().respond_to_emergency().all_ok();
  }
  return out;
}

const char* mark(bool blocked) { return blocked ? "BLOCKED" : "succeeds"; }

}  // namespace

int main() {
  const ivi::MacConfig configs[] = {
      ivi::MacConfig::none,
      ivi::MacConfig::apparmor_only,
      ivi::MacConfig::independent_sack,
      ivi::MacConfig::sack_enhanced_apparmor,
  };

  std::printf("%-26s %-12s %-12s %-12s %-12s %-14s\n", "MAC configuration",
              "inj(known)", "inj(dropped)", "CAN frames", "max-volume",
              "rescue@crash");
  std::printf("%.*s\n", 93,
              "--------------------------------------------------------------"
              "-------------------------------");
  for (auto mac : configs) {
    Outcome o = attack(mac);
    std::printf("%-26s %-12s %-12s %-12s %-12s %-14s\n",
                std::string(ivi::mac_config_name(mac)).c_str(),
                mark(o.confined_injection_blocked),
                mark(o.dropped_injection_blocked),
                mark(o.can_injection_blocked),
                mark(o.volume_attack_blocked),
                o.emergency_rescue_works ? "works" : "FAILS");
  }

  std::printf(
      "\nReading the table:\n"
      "  - with no MAC, every injected command reaches the vehicle;\n"
      "  - static AppArmor stops the known (confined) service but not a\n"
      "    dropped binary, and granting the rescue daemon standing door\n"
      "    permissions would violate least privilege;\n"
      "  - SACK guards the *objects*, so even unknown subjects are denied,\n"
      "    while the rescue daemon gains exactly the permissions the\n"
      "    emergency situation grants (POLP + optimistic access control).\n");
  return 0;
}
