// fleet_sim: plays several full driving scenarios through independent
// vehicles (kernel + SACK + SDS each) and prints a per-vehicle journal of
// situation transitions and access decisions — a miniature fleet telemetry
// view of situation-aware access control at work.
//
//   $ ./examples/fleet_sim [seed]
#include <cstdio>
#include <cstdlib>

#include "ivi/ivi_system.h"
#include "sds/traces.h"

using namespace sack;

namespace {

struct Scenario {
  const char* name;
  sds::Trace trace;
};

void run_vehicle(int index, const Scenario& scenario) {
  ivi::IviSystem ivi({.mac = ivi::MacConfig::independent_sack});
  std::printf("vehicle %d: scenario '%s' (%zu frames)\n", index,
              scenario.name, scenario.trace.size());

  std::string last = ivi.situation();
  std::printf("    start situation: %s\n", last.c_str());
  std::size_t media_ok = 0, media_denied = 0;
  std::size_t doors_ok = 0, doors_denied = 0;

  for (std::size_t i = 0; i < scenario.trace.size(); ++i) {
    (void)ivi.sds().feed(scenario.trace[i]);
    std::string now = ivi.situation();
    if (now != last) {
      std::printf("    t=%6.1fs  %-22s -> %s\n",
                  static_cast<double>(scenario.trace[i].time_ms) / 1000.0,
                  last.c_str(), now.c_str());
      last = now;
    }
    // Every ~2 seconds of scenario time the apps try their thing.
    if (i % 20 == 0) {
      if (ivi.media().play_track(ivi::IviSystem::kMediaTrack).ok()) {
        ++media_ok;
      } else {
        ++media_denied;
      }
      auto rescue = ivi.rescue().respond_to_emergency();
      if (rescue.all_ok()) {
        ++doors_ok;
        (void)ivi.rescue().secure_vehicle();
      } else {
        ++doors_denied;
      }
    }
  }
  std::printf("    end situation: %s\n", last.c_str());
  std::printf("    media reads:   %zu allowed, %zu denied\n", media_ok,
              media_denied);
  std::printf("    door control:  %zu allowed, %zu denied  (allowed only "
              "while in 'emergency')\n\n",
              doors_ok, doors_denied);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  Scenario scenarios[] = {
      {"city errands", sds::city_drive_trace(90, {.seed = seed})},
      {"highway crash + rescue", sds::highway_crash_trace(30, {.seed = seed + 1})},
      {"parking handoff", sds::parking_handoff_trace({.seed = seed + 2})},
  };

  std::printf("=== SACK fleet simulation (seed %llu) ===\n\n",
              static_cast<unsigned long long>(seed));
  for (int v = 0; v < 3; ++v) run_vehicle(v, scenarios[v]);

  std::printf("fleet run complete: each vehicle enforced situation-adaptive "
              "permissions in its own simulated kernel.\n");
  return 0;
}
