// Quickstart: boot a simulated kernel with SACK, load a small situation
// policy, and watch permissions change with the environmental situation.
//
//   $ ./examples/quickstart
//
// Walks through the public API end to end: Kernel + SackModule setup, policy
// loading through SACKfs, situation events, and access checks.
#include <cstdio>

#include "core/sack_module.h"
#include "kernel/kernel.h"
#include "kernel/process.h"

using namespace sack;

namespace {

constexpr std::string_view kPolicy = R"(
# Two situations; the door device is controllable only in emergencies.
states { normal = 0; emergency = 1; }
initial normal;
transitions {
  normal -> emergency on crash_detected;
  emergency -> normal on emergency_cleared;
}
permissions { CONTROL_CAR_DOORS; }
state_per { emergency: CONTROL_CAR_DOORS; }
per_rules {
  CONTROL_CAR_DOORS { allow /usr/bin/rescue_daemon /dev/door write ioctl; }
}
)";

void show(const char* what, bool allowed) {
  std::printf("  %-42s %s\n", what, allowed ? "ALLOWED" : "denied");
}

}  // namespace

int main() {
  // 1. Boot the simulated kernel with SACK as the (only) MAC module.
  kernel::Kernel kernel;
  auto* sack_module = static_cast<core::SackModule*>(kernel.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));

  // 2. Create the world: a door device file and the rescue daemon binary.
  kernel::Process admin(kernel, kernel.init_task());
  (void)admin.write_file("/dev/door", "");
  (void)admin.write_file("/usr/bin/rescue_daemon", "ELF");

  // 3. Load the situation policy the way a real administrator would:
  //    by writing the SACKfs policy interface.
  auto rc = admin.write_existing("/sys/kernel/security/SACK/policy/load",
                                 kPolicy);
  if (!rc.ok()) {
    std::fprintf(stderr, "policy load failed: %s\n",
                 std::string(errno_name(rc.error())).c_str());
    return 1;
  }
  std::printf("policy loaded; current situation: %s\n\n",
              admin.read_file("/sys/kernel/security/SACK/current_state")
                  ->c_str());

  // 4. A rescue daemon process tries to use the door device.
  auto& rescue_task = kernel.spawn_task("rescue_daemon", kernel::Cred::root(),
                                        "/usr/bin/rescue_daemon");
  kernel::Process rescue(kernel, rescue_task);
  auto try_door = [&] {
    auto fd = rescue.open("/dev/door", kernel::OpenFlags::write);
    if (!fd.ok()) return false;
    (void)rescue.close(*fd);
    return true;
  };

  std::printf("in 'normal' (POLP: nobody needs door control):\n");
  show("rescue_daemon opens /dev/door for writing", try_door());

  // 5. A crash: the situation detection service reports the event.
  (void)admin.write_existing("/sys/kernel/security/SACK/events",
                             "crash_detected\n");
  std::printf("\nevent 'crash_detected' -> situation: %s\n",
              sack_module->current_state_name().c_str());
  std::printf("in 'emergency' (OAC: break the glass):\n");
  show("rescue_daemon opens /dev/door for writing", try_door());

  // 6. Emergency over: the permission disappears again.
  (void)admin.write_existing("/sys/kernel/security/SACK/events",
                             "emergency_cleared\n");
  std::printf("\nevent 'emergency_cleared' -> situation: %s\n",
              sack_module->current_state_name().c_str());
  show("rescue_daemon opens /dev/door for writing", try_door());

  std::printf("\nkernel status:\n%s",
              admin.read_file("/sys/kernel/security/SACK/status")->c_str());
  return 0;
}
