// Generality demo (the paper's conclusion: "SACK is a general solution at
// kernel space and therefore applicable to scenarios such as the smartphone,
// IoT and medical applications").
//
// A smart-home gateway: occupancy defines the situation. While someone is
// home, indoor cameras must be OFF-limits to the cloud uploader (privacy);
// when everyone leaves, the security system may stream them. The door lock
// is remotely controllable only in away mode with a vacation timer
// fail-safe. Same SACK machinery, different domain.
//
//   $ ./examples/iot_gateway
#include <cstdio>

#include "core/sack_module.h"
#include "kernel/kernel.h"
#include "kernel/process.h"

using namespace sack;

namespace {

constexpr std::string_view kPolicy = R"(
states { home = 0; away = 1; vacation = 2; }
initial home;
transitions {
  home -> away on everyone_left;
  away -> home on someone_arrived;
  away -> vacation on vacation_armed;
  vacation -> home on someone_arrived;
  vacation -> away after 1209600000;      # 14 days: vacation mode decays
}
permissions { CAMERA_STREAM; REMOTE_LOCK; SENSOR_READ; }
state_per {
  home: SENSOR_READ;
  away: SENSOR_READ, CAMERA_STREAM, REMOTE_LOCK;
  vacation: SENSOR_READ, CAMERA_STREAM, REMOTE_LOCK;
}
per_rules {
  SENSOR_READ {
    allow * /dev/sensors/** read getattr;
  }
  CAMERA_STREAM {
    allow /usr/bin/securityd /dev/camera* read ioctl;
  }
  REMOTE_LOCK {
    allow /usr/bin/securityd /dev/doorlock write ioctl;
  }
}
)";

void verdict(const char* what, bool allowed) {
  std::printf("  %-46s %s\n", what, allowed ? "ALLOWED" : "denied");
}

}  // namespace

int main() {
  kernel::Kernel k;
  auto* mod = static_cast<core::SackModule*>(k.add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));

  kernel::Process admin(k, k.init_task());
  k.vfs().mkdir_p("/dev/sensors");
  (void)admin.write_file("/dev/camera0", "");
  (void)admin.write_file("/dev/doorlock", "");
  (void)admin.write_file("/dev/sensors/thermostat", "21.5");
  (void)admin.write_file("/usr/bin/securityd", "ELF");
  (void)admin.write_file("/usr/bin/clouduploader", "ELF");

  if (!mod->load_policy_text(kPolicy).ok()) {
    std::fprintf(stderr, "policy rejected\n");
    return 1;
  }

  auto& securityd = k.spawn_task("securityd", kernel::Cred::root(),
                                 "/usr/bin/securityd");
  auto& uploader = k.spawn_task("clouduploader", kernel::Cred::root(),
                                "/usr/bin/clouduploader");
  kernel::Process sec(k, securityd);
  kernel::Process cloud(k, uploader);

  auto camera = [&](kernel::Process& p) {
    auto fd = p.open("/dev/camera0", kernel::OpenFlags::read);
    if (!fd.ok()) return false;
    (void)p.close(*fd);
    return true;
  };
  auto lock = [&](kernel::Process& p) {
    auto fd = p.open("/dev/doorlock", kernel::OpenFlags::write);
    if (!fd.ok()) return false;
    (void)p.close(*fd);
    return true;
  };

  std::printf("situation: %s (family at home)\n",
              mod->current_state_name().c_str());
  verdict("securityd streams the indoor camera", camera(sec));
  verdict("securityd operates the door lock remotely", lock(sec));
  verdict("anyone reads the thermostat",
          cloud.read_file("/dev/sensors/thermostat").ok());

  (void)mod->deliver_event("everyone_left");
  std::printf("\nsituation: %s\n", mod->current_state_name().c_str());
  verdict("securityd streams the indoor camera", camera(sec));
  verdict("securityd operates the door lock remotely", lock(sec));
  verdict("clouduploader grabs camera frames", camera(cloud));

  (void)mod->deliver_event("someone_arrived");
  std::printf("\nsituation: %s (privacy restored)\n",
              mod->current_state_name().c_str());
  verdict("securityd streams the indoor camera", camera(sec));

  std::printf("\nSame kernel mechanism, different domain: situation states "
              "are a general security context.\n");
  return 0;
}
