// policy_lint: the SACK policy-checking tool (§III-D: "Our policy-checking
// tools also handle errors and conflicts").
//
//   $ ./examples/policy_lint <policy-file> [--mode independent|enhanced]
//   $ ./examples/policy_lint --demo        # lint a deliberately broken policy
//
// Exit status: 0 clean, 1 warnings only, 2 errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/policy_checker.h"
#include "core/policy_parser.h"

using namespace sack;

namespace {

constexpr std::string_view kDemoPolicy = R"(
states {
  normal = 0;
  driving = 1;
  ghost_town = 2;
  twin = 0;           # duplicate encoding, and unreachable
}
initial normal;
transitions {
  normal -> driving on start_driving;
  driving -> normal on stop_driving;
  normal -> nowhere on teleport;            # undefined target state
  normal -> driving on conflicting;
  normal -> ghost_town on conflicting;      # nondeterministic (same trigger)
}
events { start_driving; stop_driving; conflicting; teleport; unused_event; }
permissions { MEDIA; DOORS; ORPHAN; }
state_per {
  normal: MEDIA;
  driving: MEDIA, UNDECLARED_PERM;          # undeclared permission
  missing_state: DOORS;                     # undeclared state
}
per_rules {
  MEDIA {
    allow * /var/media/** read;
    deny  * /var/media/** read;             # shadows the allow
  }
  DOORS { allow @rescue /dev/door* ioctl; }
}
)";

int lint(std::string_view text, core::CheckMode mode) {
  auto parsed = core::parse_policy(text);
  if (!parsed.errors.empty()) {
    std::printf("-- syntax --\n");
    for (const auto& e : parsed.errors)
      std::printf("  error: %s\n", e.to_string().c_str());
  }
  auto diagnostics = core::check_policy(parsed.policy, mode);
  if (!diagnostics.empty()) {
    std::printf("-- semantics --\n");
    for (const auto& d : diagnostics)
      std::printf("  %s\n", d.to_string().c_str());
  }

  std::size_t rules = 0;
  for (const auto& [perm, rs] : parsed.policy.per_rules) rules += rs.size();
  std::printf("-- summary --\n"
              "  states: %zu  transitions: %zu  permissions: %zu  "
              "MAC rules: %zu\n",
              parsed.policy.states.size(), parsed.policy.transitions.size(),
              parsed.policy.permissions.size(), rules);

  bool syntax_errors = !parsed.errors.empty();
  bool semantic_errors = core::has_errors(diagnostics);
  if (syntax_errors || semantic_errors) {
    std::printf("  result: REJECTED (the kernel would refuse this policy)\n");
    return 2;
  }
  if (!diagnostics.empty()) {
    std::printf("  result: loadable, with warnings\n");
    return 1;
  }
  std::printf("  result: clean\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  core::CheckMode mode = core::CheckMode::any;
  std::string path;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      ++i;
      if (std::strcmp(argv[i], "independent") == 0)
        mode = core::CheckMode::independent;
      else if (std::strcmp(argv[i], "enhanced") == 0)
        mode = core::CheckMode::apparmor_enhanced;
    } else {
      path = argv[i];
    }
  }

  if (demo) {
    std::printf("linting the built-in demo policy (intentionally broken):\n\n");
    return lint(kDemoPolicy, mode);
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: policy_lint <policy-file> [--mode "
                 "independent|enhanced] | --demo\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint(buffer.str(), mode);
}
