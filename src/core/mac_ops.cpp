#include "core/mac_ops.h"

#include <array>
#include <bit>

namespace sack::core {

namespace {
constexpr std::array<std::string_view, kMacOpCount> kNames = {
    "read",   "write",  "append", "exec",  "ioctl",
    "mmap",   "create", "unlink", "mkdir", "rmdir",
    "rename", "getattr", "chmod", "chown", "truncate",
};
}  // namespace

std::size_t mac_op_index(MacOp op) {
  return static_cast<std::size_t>(
      std::countr_zero(static_cast<std::uint32_t>(op)));
}

MacOp mac_op_from_index(std::size_t idx) {
  return static_cast<MacOp>(1u << idx);
}

Result<MacOp> mac_op_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) return mac_op_from_index(i);
  }
  return Errno::einval;
}

std::string_view mac_op_name(MacOp op) {
  std::size_t idx = mac_op_index(op);
  if (idx >= kNames.size()) return "?";
  return kNames[idx];
}

std::string format_mac_ops(MacOp mask) {
  std::string out;
  for (std::size_t i = 0; i < kMacOpCount; ++i) {
    if (has_any(mask, mac_op_from_index(i))) {
      if (!out.empty()) out += ',';
      out += kNames[i];
    }
  }
  return out;
}

}  // namespace sack::core
