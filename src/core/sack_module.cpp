#include "core/sack_module.h"

#include <algorithm>
#include <cstdio>

#include "util/fault.h"
#include "util/log.h"
#include "util/strings.h"

namespace sack::core {

using kernel::AccessMask;
using kernel::Capability;
using kernel::Task;

namespace {

// MacOp -> AppArmor file-permission letters, for enhanced-mode injection.
apparmor::FilePerm apparmor_perms_for(MacOp ops) {
  using apparmor::FilePerm;
  FilePerm p = FilePerm::none;
  if (has_any(ops, MacOp::read | MacOp::getattr)) p |= FilePerm::read;
  if (has_any(ops, MacOp::write | MacOp::create | MacOp::unlink |
                       MacOp::mkdir | MacOp::rmdir | MacOp::rename |
                       MacOp::chmod | MacOp::chown | MacOp::truncate))
    p |= FilePerm::write;
  if (has_any(ops, MacOp::append)) p |= FilePerm::append;
  if (has_any(ops, MacOp::exec)) p |= FilePerm::exec;
  if (has_any(ops, MacOp::ioctl)) p |= FilePerm::ioctl;
  if (has_any(ops, MacOp::mmap)) p |= FilePerm::mmap;
  // 'w' and 'a' cannot coexist in one AppArmor rule; write subsumes append.
  if (has_all(p, FilePerm::write | FilePerm::append)) p &= ~FilePerm::append;
  return p;
}

}  // namespace

// --- SACKfs files ---

class SackModule::EventsFile final : public kernel::VirtualFileOps {
 public:
  explicit EventsFile(SackModule* mod) : mod_(mod) {}
  Result<void> write_content(Task&, std::string_view data) override {
    // One event per line; empty lines ignored. The handler runs inside the
    // write(2) path — this synchronous dispatch is SACK's low-latency
    // transmission channel.
    //
    // A line may carry a sequence stamp: "seq=<n> <event>". The kernel keeps
    // the highest delivered sequence per event name; a replay (seq <= that)
    // is accepted as a no-op — the SDS retry path can safely re-send a write
    // whose success report was lost without double-transitioning the SSM.
    // Unstamped lines bypass the check (back-compat; the raw emulation
    // channel used by the case studies).
    //
    // Partial-write semantics: every valid line is delivered, and the write
    // succeeds if *any* line was accepted — a batch with one typo must not
    // be reported to the SDS as a total failure (it would retry events that
    // already took effect). Rejected lines are visible individually through
    // events_rejected in status/metrics; only an all-bad write is EINVAL.
    mod_->note_sds_activity(mod_->kernel_ ? mod_->kernel_->clock().now() : 0);
    std::size_t accepted = 0, rejected = 0;
    for (auto line : split(data, '\n')) {
      auto name = trim(line);
      if (name.empty()) continue;
      std::uint64_t seq = 0;
      bool stamped = false;
      if (name.starts_with("seq=")) {
        auto rest = name.substr(4);
        std::size_t i = 0;
        while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') {
          seq = seq * 10 + static_cast<std::uint64_t>(rest[i] - '0');
          ++i;
        }
        if (i == 0 || i >= rest.size() || rest[i] != ' ') {
          ++rejected;
          ++mod_->events_rejected_;
          continue;
        }
        name = trim(rest.substr(i));
        stamped = true;
      }
      if (stamped && mod_->stale_event_seq(name, seq)) {
        ++accepted;  // replay of an already-delivered event: success, no-op
        continue;
      }
      if (mod_->deliver_event(name).ok())
        ++accepted;
      else
        ++rejected;
    }
    if (rejected > 0 && accepted == 0) return Errno::einval;
    return {};
  }

 private:
  SackModule* mod_;
};

// The SDS liveness beacon. The SDS writes one line per frame ("alive"), and
// "resync" after a restart when the kernel reports resync_pending — the
// recovery handshake that re-converges the SSM (force to initial, then the
// SDS replays its detector consensus). Reading returns the watchdog status
// the SDS polls to learn it must resync. Mode 0600: only root's SDS may
// claim liveness.
class SackModule::HeartbeatFile final : public kernel::VirtualFileOps {
 public:
  explicit HeartbeatFile(SackModule* mod) : mod_(mod) {}

  Result<std::string> read_content(Task&) override {
    std::string out = "sds_alive=";
    out += mod_->sds_alive_ ? "1" : "0";
    out += " resync_pending=";
    out += mod_->resync_pending_ ? "1" : "0";
    out += " deadline_ms=" +
           std::to_string(mod_->watchdog_deadline_ns_ / 1'000'000);
    out += " trips=" + std::to_string(mod_->watchdog_trips_) + "\n";
    return out;
  }

  Result<void> write_content(Task&, std::string_view data) override {
    const SimTime now = mod_->kernel_ ? mod_->kernel_->clock().now() : 0;
    auto word = trim(data);
    if (word.empty() || word == "alive" || word == "ping") {
      ++mod_->heartbeats_received_;
      mod_->note_sds_activity(now);
      return {};
    }
    if (word == "resync") return mod_->resync_from_sds();
    return Errno::einval;
  }

 private:
  SackModule* mod_;
};

class SackModule::CurrentStateFile final : public kernel::VirtualFileOps {
 public:
  explicit CurrentStateFile(SackModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    if (!mod_->ssm_) return std::string("(no policy)\n");
    return mod_->ssm_->current_name() + " " +
           std::to_string(mod_->ssm_->current_encoding()) + "\n";
  }

 private:
  SackModule* mod_;
};

class SackModule::StatusFile final : public kernel::VirtualFileOps {
 public:
  explicit StatusFile(SackModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    return mod_->status_text();
  }

 private:
  SackModule* mod_;
};

class SackModule::PolicyLoadFile final : public kernel::VirtualFileOps {
 public:
  explicit PolicyLoadFile(SackModule* mod) : mod_(mod) {}
  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    std::vector<Diagnostic> diags;
    std::vector<ParseError> perrs;
    auto rc = mod_->load_policy_text(data, &diags, &perrs);
    if (!rc.ok()) {
      for (const auto& e : perrs)
        log_warn("sack: policy parse error: ", e.to_string());
      for (const auto& d : diags)
        log_warn("sack: policy check: ", d.to_string());
    }
    return rc;
  }

 private:
  SackModule* mod_;
};

// Dry-run validation: write a candidate policy, read back the full
// diagnostic report. Never touches the loaded policy — the administrator's
// pre-flight check (the user-space policy_lint tool runs the same checker).
class SackModule::PolicyValidateFile final : public kernel::VirtualFileOps {
 public:
  explicit PolicyValidateFile(SackModule* mod) : mod_(mod) {}

  Result<std::string> read_content(Task&) override {
    return mod_->last_validation_report_;
  }

  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    std::string report;
    auto parsed = parse_policy(data);
    for (const auto& e : parsed.errors)
      report += "syntax error: " + e.to_string() + "\n";
    auto diags = check_policy(parsed.policy,
                              mod_->mode_ == SackMode::independent
                                  ? CheckMode::independent
                                  : CheckMode::apparmor_enhanced);
    for (const auto& d : diags) report += d.to_string() + "\n";
    bool loadable = parsed.ok() && !has_errors(diags);
    report += std::string("verdict: ") +
              (loadable ? "loadable" : "REJECTED") + "\n";
    mod_->last_validation_report_ = std::move(report);
    // The write itself reports the verdict too.
    return loadable ? Result<void>() : Result<void>(Errno::einval);
  }

 private:
  SackModule* mod_;
};

// One per section interface (Table I). Reading dumps the canonical section;
// writing replaces it (atomically: a rejected policy leaves the old one).
class SackModule::SectionFile final : public kernel::VirtualFileOps {
 public:
  enum class Which { states, watchdog, permissions, state_per, per_rules };
  SectionFile(SackModule* mod, Which which) : mod_(mod), which_(which) {}

  Result<std::string> read_content(Task&) override {
    switch (which_) {
      case Which::states: return mod_->policy_.states_text();
      case Which::watchdog: return mod_->policy_.watchdog_text();
      case Which::permissions: return mod_->policy_.permissions_text();
      case Which::state_per: return mod_->policy_.state_per_text();
      case Which::per_rules: return mod_->policy_.per_rules_text();
    }
    return Errno::einval;
  }

  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    return mod_->load_section_text(data);
  }

 private:
  SackModule* mod_;
  Which which_;
};

class SackModule::MetricsFile final : public kernel::VirtualFileOps {
 public:
  explicit MetricsFile(SackModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    return mod_->metrics_text();
  }

 private:
  SackModule* mod_;
};

class SackModule::TraceFile final : public kernel::VirtualFileOps {
 public:
  static constexpr std::size_t kReadBack = 256;  // last N records per read
  explicit TraceFile(SackModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    const auto& ring = mod_->trace_;
    std::string out = "# trace enabled=" +
                      std::string(ring.enabled() ? "1" : "0") +
                      " recorded=" + std::to_string(ring.recorded()) +
                      " dropped=" + std::to_string(ring.dropped()) +
                      " capacity=" + std::to_string(ring.capacity()) + "\n";
    for (const auto& r : ring.snapshot(kReadBack)) out += r.to_line();
    return out;
  }

 private:
  SackModule* mod_;
};

// Runtime toggle: "1"/"on" enables tracing + hook timing, "0"/"off"
// disables. Toggling off leaves the collected data readable; writing
// "clear" resets histograms and the ring.
class SackModule::TraceEnableFile final : public kernel::VirtualFileOps {
 public:
  explicit TraceEnableFile(SackModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    return std::string(mod_->observing() ? "1\n" : "0\n");
  }
  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    auto word = trim(data);
    if (word == "1" || word == "on") {
      mod_->set_observe(true);
    } else if (word == "0" || word == "off") {
      mod_->set_observe(false);
    } else if (word == "clear") {
      mod_->reset_metrics();
    } else {
      return Errno::einval;
    }
    return {};
  }

 private:
  SackModule* mod_;
};

// --- module ---

SackModule::SackModule(SackMode mode, RuleSetKind ruleset_kind)
    : mode_(mode) {
  switch (ruleset_kind) {
    case RuleSetKind::compiled:
      rules_ = std::make_unique<CompiledRuleSet>();
      break;
    case RuleSetKind::linear:
      rules_ = std::make_unique<LinearRuleSet>();
      break;
    case RuleSetKind::dfa:
      rules_ = std::make_unique<DfaRuleSet>();
      break;
  }
}

SackModule::~SackModule() = default;

bool SackModule::set_dfa_build_limits(GlobDfa::BuildLimits limits,
                                      bool strict) {
  auto* dfa = dynamic_cast<DfaRuleSet*>(rules_.get());
  if (!dfa) return false;
  dfa->set_build_limits(limits, strict);
  return true;
}

void SackModule::initialize(kernel::Kernel& kernel) {
  kernel_ = &kernel;
  auto& fs = kernel.securityfs();
  auto dir = std::string(kFsDir);

  auto add = [&](std::string path, std::unique_ptr<kernel::VirtualFileOps> f,
                 kernel::FileMode mode) {
    (void)fs.register_file(path, f.get(), mode);
    fs_files_.push_back(std::move(f));
  };
  add(dir + "/events", std::make_unique<EventsFile>(this), 0200);
  add(dir + "/heartbeat", std::make_unique<HeartbeatFile>(this), 0600);
  add(dir + "/current_state", std::make_unique<CurrentStateFile>(this), 0444);
  add(dir + "/status", std::make_unique<StatusFile>(this), 0444);
  add(dir + "/policy/load", std::make_unique<PolicyLoadFile>(this), 0200);
  add(dir + "/policy/validate", std::make_unique<PolicyValidateFile>(this),
      0600);
  add(dir + "/policy/states",
      std::make_unique<SectionFile>(this, SectionFile::Which::states), 0600);
  add(dir + "/policy/watchdog",
      std::make_unique<SectionFile>(this, SectionFile::Which::watchdog), 0600);
  add(dir + "/policy/permissions",
      std::make_unique<SectionFile>(this, SectionFile::Which::permissions),
      0600);
  add(dir + "/policy/state_per",
      std::make_unique<SectionFile>(this, SectionFile::Which::state_per),
      0600);
  add(dir + "/policy/per_rules",
      std::make_unique<SectionFile>(this, SectionFile::Which::per_rules),
      0600);
  add(dir + "/metrics", std::make_unique<MetricsFile>(this), 0444);
  add(dir + "/trace", std::make_unique<TraceFile>(this), 0600);
  add(dir + "/trace_enable", std::make_unique<TraceEnableFile>(this), 0600);
}

Result<void> SackModule::load_policy(SackPolicy policy,
                                     std::vector<Diagnostic>* diagnostics) {
  // Chaos site: a reload that fails here must leave the running policy, the
  // SSM, and the liveness state untouched (reload is all-or-nothing).
  if (auto injected = util::FaultInjector::instance().fail_errno(
          "sack.policy.reload"))
    return *injected;
  auto diags = check_policy(policy, mode_ == SackMode::independent
                                        ? CheckMode::independent
                                        : CheckMode::apparmor_enhanced);
  if (diagnostics) *diagnostics = diags;
  if (has_errors(diags)) return Errno::einval;
  if (mode_ == SackMode::apparmor_enhanced && !apparmor_) return Errno::einval;

  auto ssm = SituationStateMachine::build(policy);
  if (!ssm.ok()) return ssm.error();

  // Last fallible step: compile the rule inventory. The rule set itself is
  // transactional (it publishes only as its final step), so a failure here —
  // strict DFA budget ENOMEM, injected build fault — leaves the previous
  // program, its label generation, the AVC, and every cached inode label
  // exactly as they were: zero decisions change.
  if (auto compiled = rules_->load(policy); !compiled.ok())
    return compiled.error();

  // Commit point: retract what the old policy injected, swap, re-apply.
  retract_all_injected();
  policy_ = std::move(policy);
  ssm_ = std::move(ssm).value();
  // Fresh per-state occupancy/entry stats: state ids are policy-relative.
  state_stats_count_ = ssm_->state_count();
  state_stats_ = std::make_unique<StateStats[]>(state_stats_count_);
  // Fresh liveness contract: the new policy defines (or drops) the watchdog,
  // and the reload itself proves an administrator is alive — restart the
  // deadline clock instead of tripping on stale pre-reload silence. Sequence
  // history is policy-relative (the SDS restarts its counters on reload).
  watchdog_deadline_ns_ = 0;
  failsafe_state_.reset();
  if (policy_.watchdog) {
    watchdog_deadline_ns_ = policy_.watchdog->deadline_ms * 1'000'000;
    auto id = ssm_->state_id(policy_.watchdog->failsafe_state);
    if (id.ok()) failsafe_state_ = *id;  // checker guarantees this
  }
  last_sds_activity_ = kernel_ ? kernel_->clock().now() : 0;
  sds_alive_ = true;
  resync_pending_ = false;
  event_seq_.clear();
  loaded_ = true;
  apply_current_state(/*force=*/true);
  if (transition_listener_) transition_listener_(ssm_->current_name());
  log_info("sack: policy loaded: ", policy_.states.size(), " states, ",
           policy_.permissions.size(), " permissions, ",
           rules_->total_rule_count(), " MAC rules, initial state '",
           ssm_->current_name(), "'");
  return {};
}

Result<void> SackModule::load_policy_text(
    std::string_view text, std::vector<Diagnostic>* diagnostics,
    std::vector<ParseError>* parse_errors) {
  auto parsed = parse_policy(text);
  if (parse_errors) *parse_errors = parsed.errors;
  if (!parsed.ok()) return Errno::einval;
  return load_policy(std::move(parsed.policy), diagnostics);
}

Result<void> SackModule::load_section_text(std::string_view text) {
  SectionPresence presence;
  auto parsed = parse_policy(text, &presence);
  if (!parsed.ok()) return Errno::einval;
  SackPolicy merged = policy_;
  merge_policy_sections(merged, parsed.policy, presence);
  return load_policy(std::move(merged));
}

Result<SituationStateMachine::Outcome> SackModule::deliver_event(
    std::string_view event_name) {
  ++events_received_;
  const bool obs = observing();
  const std::uint64_t t_start = obs ? monotonic_ns() : 0;
  if (!ssm_) {
    ++events_rejected_;
    return Errno::einval;
  }
  const SimTime now = kernel_ ? kernel_->clock().now() : 0;
  const SimTime prev_entered = ssm_->entered_current_at();
  auto outcome = ssm_->deliver(event_name, now);
  if (!outcome.ok()) {
    ++events_rejected_;
    log_warn("sack: unknown situation event '", event_name, "'");
    if (obs) {
      TraceRecord tr;
      tr.time = now;
      tr.hook = TraceHook::event;
      tr.verdict = Errno::einval;
      tr.state_encoding = current_encoding_or(-1);
      tr.subject = std::string(event_name);
      tr.latency_ns = monotonic_ns() - t_start;
      trace_.append(std::move(tr));
    }
    return outcome.error();
  }
  metrics_.events_accepted.inc();
  if (outcome->transitioned) {
    log_info("sack: situation transition '",
             ssm_->state_name(outcome->from), "' -> '",
             ssm_->state_name(outcome->to), "' on event '", event_name, "'");
    if (kernel_) {
      // Situation transitions are security-relevant: audit them like the
      // permission changes they are.
      kernel::AuditRecord record;
      record.time = now;
      record.module = std::string(kName);
      record.subject = ssm_->state_name(outcome->from);
      record.object = ssm_->state_name(outcome->to);
      record.operation = "transition:" + std::string(event_name);
      record.verdict = kernel::AuditVerdict::allowed;
      kernel_->audit().record(std::move(record));
    }
    note_transition(outcome->from, outcome->to, prev_entered, now,
                    event_name);
    apply_current_state();
  }
  if (obs) {
    // Event->enforcement latency: from SACKfs write entry to the APE having
    // applied the (possibly unchanged) state.
    const std::uint64_t elapsed = monotonic_ns() - t_start;
    metrics_.event_to_enforce_ns.record(elapsed);
    TraceRecord tr;
    tr.time = now;
    tr.hook = TraceHook::event;
    tr.state_encoding = current_encoding_or(-1);
    tr.subject = std::string(event_name);
    tr.latency_ns = elapsed;
    trace_.append(std::move(tr));
  }
  return outcome;
}

void SackModule::note_transition(StateId from, StateId to,
                                 SimTime prev_entered, SimTime now,
                                 std::string_view via) {
  if (state_stats_ && ssm_) {
    const auto from_i = static_cast<std::size_t>(from.get());
    const auto to_i = static_cast<std::size_t>(to.get());
    if (from_i < state_stats_count_ && now >= prev_entered)
      state_stats_[from_i].occupied_ns.inc(
          static_cast<std::uint64_t>(now - prev_entered));
    if (to_i < state_stats_count_) state_stats_[to_i].entries.inc();
  }
  if (observing() && ssm_) {
    TraceRecord tr;
    tr.time = now;
    tr.hook = TraceHook::transition;
    tr.state_encoding = ssm_->encoding(to);
    tr.subject = ssm_->state_name(from) + " -> " + ssm_->state_name(to);
    tr.object = std::string(via);
    trace_.append(std::move(tr));
  }
  if (transition_listener_ && ssm_)
    transition_listener_(ssm_->state_name(to));
}

std::string SackModule::current_state_name() const {
  return ssm_ ? ssm_->current_name() : std::string{};
}

std::vector<std::string> SackModule::current_permissions() const {
  if (!ssm_) return {};
  return policy_.permissions_of(ssm_->current_name());
}

void SackModule::retract_all_injected() {
  if (mode_ != SackMode::apparmor_enhanced || !apparmor_) return;
  for (const auto& perm : injected_perms_) {
    apparmor_->remove_rules_by_origin("sack:" + perm);
    metrics_.aa_rulesets_retracted.inc();
  }
  injected_perms_.clear();
}

void SackModule::apply_current_state(bool force) {
  const bool obs = observing();
  const std::uint64_t t_start = obs ? monotonic_ns() : 0;
  struct ApeTimer {
    SackModule* mod;
    bool obs;
    std::uint64_t t_start;
    ~ApeTimer() {
      if (!obs) return;
      const std::uint64_t elapsed = monotonic_ns() - t_start;
      mod->metrics_.apply_state_ns.record(elapsed);
      TraceRecord tr;
      tr.time = mod->kernel_ ? mod->kernel_->clock().now() : 0;
      tr.hook = TraceHook::apply_state;
      tr.state_encoding = mod->current_encoding_or(-1);
      tr.latency_ns = elapsed;
      mod->trace_.append(std::move(tr));
    }
  } ape_timer{this, obs, t_start};

  auto perms = current_permissions();

  // Enforcement-neutral transitions (self-loops, equivalent states) keep the
  // same permission set: skip the index rebuild, the generation bump, and
  // the AVC flush — open-fd verdicts and cached decisions stay warm.
  std::vector<std::string> sorted = perms;
  std::sort(sorted.begin(), sorted.end());
  if (!force && applied_valid_ && sorted == applied_perms_) return;
  applied_perms_ = std::move(sorted);
  applied_valid_ = true;

  if (mode_ == SackMode::independent) {
    // Ordering matters for cache correctness under concurrent enforcement:
    // 1. publish the new rule snapshot (readers switch atomically),
    // 2. bump the generation with release semantics — any reader that
    //    observes the new generation also observes the new snapshot, so a
    //    verdict stamped with the new generation was computed on it,
    // 3. flush the AVC. Entries inserted before the flush are gone; a racing
    //    insert computed on the old snapshot carries the old generation
    //    stamp and can never be served after the bump.
    rules_->activate(perms);
    generation_.fetch_add(1, std::memory_order_release);
    avc_.invalidate_all();
    return;
  }
  generation_.fetch_add(1, std::memory_order_release);

  // SACK-enhanced AppArmor: reconcile injected rules with the new state.
  std::set<std::string> target(perms.begin(), perms.end());
  for (auto it = injected_perms_.begin(); it != injected_perms_.end();) {
    if (!target.contains(*it)) {
      apparmor_->remove_rules_by_origin("sack:" + *it);
      metrics_.aa_rulesets_retracted.inc();
      it = injected_perms_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& perm : target) {
    if (injected_perms_.contains(perm)) continue;
    auto rules_it = policy_.per_rules.find(perm);
    if (rules_it == policy_.per_rules.end()) continue;
    // Group this permission's rules by target profile.
    std::map<std::string, std::vector<apparmor::FileRule>> by_profile;
    for (const MacRule& rule : rules_it->second) {
      if (rule.subject_kind != SubjectKind::profile) continue;
      apparmor::FileRule fr;
      fr.pattern = rule.object;
      fr.perms = apparmor_perms_for(rule.ops);
      fr.deny = rule.effect == RuleEffect::deny;
      fr.origin = "sack:" + perm;
      by_profile[rule.subject_text].push_back(std::move(fr));
    }
    for (auto& [profile, frs] : by_profile) {
      auto rc = apparmor_->inject_rules(profile, std::move(frs));
      if (!rc.ok())
        log_warn("sack: cannot inject rules for permission '", perm,
                 "': AppArmor profile '", profile, "' not loaded");
    }
    metrics_.aa_rulesets_injected.inc();
    injected_perms_.insert(perm);
  }
}

std::string SackModule::status_text() const {
  std::string out;
  out += "mode: ";
  out += mode_ == SackMode::independent ? "independent" : "apparmor_enhanced";
  out += "\npolicy_loaded: ";
  out += loaded_ ? "yes" : "no";
  out += "\ncurrent_state: " + current_state_name();
  if (ssm_) {
    out += "\nstates: " + std::to_string(ssm_->state_count());
    out += "\nevents_delivered: " + std::to_string(ssm_->events_delivered());
    out += "\ntransitions_taken: " + std::to_string(ssm_->transitions_taken());
  }
  out += "\nevents_received: " + std::to_string(events_received_);
  out += "\nevents_rejected: " + std::to_string(events_rejected_);
  out += "\nevents_stale: " + std::to_string(events_stale_);
  out += "\nwatchdog_deadline_ms: " +
         std::to_string(watchdog_deadline_ns_ / 1'000'000);
  out += "\nsds_alive: ";
  out += sds_alive_ ? "1" : "0";
  out += "\nresync_pending: ";
  out += resync_pending_ ? "1" : "0";
  out += "\nwatchdog_trips: " + std::to_string(watchdog_trips_);
  out += "\nresyncs: " + std::to_string(resyncs_);
  out += "\nheartbeats_received: " + std::to_string(heartbeats_received_);
  out += "\ngeneration: " + std::to_string(policy_generation());
  out += "\ntotal_rules: " + std::to_string(rules_->total_rule_count());
  out += "\nactive_rules: " + std::to_string(rules_->active_rule_count());
  out += "\ndenials: " + std::to_string(denial_count());
  const auto avc = avc_.stats();
  out += "\navc_enabled: ";
  out += avc_enabled_ ? "yes" : "no";
  out += "\navc_hits: " + std::to_string(avc.hits);
  out += "\navc_misses: " + std::to_string(avc.misses);
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.3f", avc.hit_rate());
  out += "\navc_hit_rate: ";
  out += rate;
  out += "\navc_entries: " + std::to_string(avc.entries) + "/" +
         std::to_string(avc.capacity);
  out += "\navc_evictions: " + std::to_string(avc.evictions);
  out += "\navc_invalidations: " + std::to_string(avc.invalidations);
  out += "\n";
  return out;
}

std::string SackModule::metrics_text() const {
  const auto avc = avc_.stats();
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.3f", avc.hit_rate());
  std::string out = "# SACK pipeline metrics\n";
  out += "observe: ";
  out += observing() ? "on" : "off";
  out += "\nchecks: " + std::to_string(avc.hits + avc.misses);
  out += "\ndenials: " + std::to_string(denial_count());
  out += "\navc_hits: " + std::to_string(avc.hits);
  out += "\navc_misses: " + std::to_string(avc.misses);
  out += "\navc_hit_rate: ";
  out += rate;
  out += "\nhook_total_ns: " + metrics_.hook_total_ns.summary();
  out += "\navc_probe_ns: " + metrics_.avc_probe_ns.summary();
  out += "\nmatcher_walk_ns: " + metrics_.matcher_walk_ns.summary();
  out += "\nevent_to_enforce_ns: " + metrics_.event_to_enforce_ns.summary();
  out += "\napply_state_ns: " + metrics_.apply_state_ns.summary();
  out += "\nevents_received: " + std::to_string(events_received_);
  out += "\nevents_accepted: " +
         std::to_string(metrics_.events_accepted.value());
  out += "\nevents_rejected: " + std::to_string(events_rejected_);
  if (ssm_) {
    out += "\ntransitions_taken: " +
           std::to_string(ssm_->transitions_taken());
    out += "\ninvalid_event_ids: " +
           std::to_string(ssm_->events_invalid());
  }
  out += "\nevents_stale: " + std::to_string(events_stale_);
  out += "\nwatchdog_deadline_ms: " +
         std::to_string(watchdog_deadline_ns_ / 1'000'000);
  out += "\nsds_alive: ";
  out += sds_alive_ ? "1" : "0";
  out += "\nwatchdog_trips: " + std::to_string(watchdog_trips_);
  out += "\nresyncs: " + std::to_string(resyncs_);
  out += "\nheartbeats_received: " + std::to_string(heartbeats_received_);
  out += "\naa_rulesets_injected: " +
         std::to_string(metrics_.aa_rulesets_injected.value());
  out += "\naa_rulesets_retracted: " +
         std::to_string(metrics_.aa_rulesets_retracted.value());
  if (ssm_ && state_stats_) {
    out += "\nstate_occupancy:";
    for (std::size_t i = 0; i < state_stats_count_; ++i) {
      out += "\n  " + ssm_->state_name(StateId(
                          static_cast<StateId::rep_type>(i))) +
             ": entries=" + std::to_string(state_stats_[i].entries.value()) +
             " occupied_ns=" +
             std::to_string(state_stats_[i].occupied_ns.value());
    }
  }
  out += "\ntrace_enabled: ";
  out += trace_.enabled() ? "1" : "0";
  out += "\ntrace_recorded: " + std::to_string(trace_.recorded());
  out += "\ntrace_dropped: " + std::to_string(trace_.dropped());
  out += "\n";
  return out;
}

std::string SackModule::metrics_json() const {
  const auto avc = avc_.stats();
  std::string out = "{";
  out += "\"checks\": " + std::to_string(avc.hits + avc.misses);
  out += ", \"denials\": " + std::to_string(denial_count());
  out += ", \"avc_hits\": " + std::to_string(avc.hits);
  out += ", \"avc_misses\": " + std::to_string(avc.misses);
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.4f", avc.hit_rate());
  out += ", \"avc_hit_rate\": ";
  out += rate;
  out += ", \"hook_total_ns\": " + metrics_.hook_total_ns.json();
  out += ", \"avc_probe_ns\": " + metrics_.avc_probe_ns.json();
  out += ", \"matcher_walk_ns\": " + metrics_.matcher_walk_ns.json();
  out += ", \"event_to_enforce_ns\": " +
         metrics_.event_to_enforce_ns.json();
  out += ", \"apply_state_ns\": " + metrics_.apply_state_ns.json();
  out += ", \"events\": {\"received\": " + std::to_string(events_received_) +
         ", \"accepted\": " +
         std::to_string(metrics_.events_accepted.value()) +
         ", \"rejected\": " + std::to_string(events_rejected_) +
         ", \"stale\": " + std::to_string(events_stale_) + "}";
  out += ", \"watchdog\": {\"deadline_ms\": " +
         std::to_string(watchdog_deadline_ns_ / 1'000'000) +
         ", \"sds_alive\": " + (sds_alive_ ? "true" : "false") +
         ", \"trips\": " + std::to_string(watchdog_trips_) +
         ", \"resyncs\": " + std::to_string(resyncs_) +
         ", \"heartbeats\": " + std::to_string(heartbeats_received_) + "}";
  out += ", \"aa_rulesets\": {\"injected\": " +
         std::to_string(metrics_.aa_rulesets_injected.value()) +
         ", \"retracted\": " +
         std::to_string(metrics_.aa_rulesets_retracted.value()) + "}";
  if (ssm_ && state_stats_) {
    out += ", \"states\": [";
    for (std::size_t i = 0; i < state_stats_count_; ++i) {
      if (i) out += ", ";
      out += "{\"name\": \"" +
             ssm_->state_name(StateId(static_cast<StateId::rep_type>(i))) +
             "\", \"entries\": " +
             std::to_string(state_stats_[i].entries.value()) +
             ", \"occupied_ns\": " +
             std::to_string(state_stats_[i].occupied_ns.value()) + "}";
    }
    out += "]";
  }
  out += ", \"trace\": {\"enabled\": ";
  out += trace_.enabled() ? "true" : "false";
  out += ", \"recorded\": " + std::to_string(trace_.recorded()) +
         ", \"dropped\": " + std::to_string(trace_.dropped()) + "}";
  out += "}";
  return out;
}

void SackModule::reset_metrics() {
  metrics_.hook_total_ns.reset();
  metrics_.avc_probe_ns.reset();
  metrics_.matcher_walk_ns.reset();
  metrics_.event_to_enforce_ns.reset();
  metrics_.apply_state_ns.reset();
  trace_.clear();
}

// --- independent-mode enforcement ---

std::string_view SackModule::profile_of(const Task& task) const {
  if (!apparmor_) return {};
  auto ref = task.security_blob<std::string>(
      std::string(apparmor::AppArmorModule::kName));
  return ref ? std::string_view(*ref) : std::string_view{};
}

void SackModule::note_denial(const Task& task, std::string_view path,
                             MacOp op) {
  denials_.fetch_add(1, std::memory_order_relaxed);
  if (kernel_) {
    kernel::AuditRecord record;
    record.time = kernel_->clock().now();
    record.module = std::string(kName);
    record.pid = task.pid();
    record.subject = task.exe_path();
    record.object = std::string(path);
    record.operation = std::string(mac_op_name(op));
    record.verdict = kernel::AuditVerdict::denied;
    record.context = "state=" + current_state_name();
    kernel_->audit().record(std::move(record));
  }
  log_debug("sack: DENIED state=", current_state_name(), " subject=",
            task.exe_path(), " object=", path, " op=", mac_op_name(op));
}

Errno SackModule::check_op(const Task& task, std::string_view path, MacOp op,
                           const kernel::Inode* inode) {
  if (mode_ != SackMode::independent || !loaded_) return Errno::ok;
  // Observability gate: one relaxed load. Everything below only takes
  // timestamps / appends trace records when `obs` is set, so the disabled
  // hook path is the pre-observability code plus predictable branches.
  const bool obs = observing();
  const std::uint64_t t_start = obs ? monotonic_ns() : 0;
  AccessQuery query;
  query.subject_exe = task.exe_path();
  query.subject_profile = profile_of(task);
  query.object_path = path;
  query.op = op;
  // Read the generation before consulting any cache or rule snapshot. If a
  // transition lands between this load and the rule walk below, the verdict
  // we insert carries this (now old) stamp and is never served again.
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  bool avc_hit = false;
  Errno rc = Errno::ok;
  if (avc_enabled_) {
    if (auto cached = avc_.probe(query, generation)) {
      avc_hit = true;
      rc = *cached;
    }
  }
  const std::uint64_t t_probe = obs ? monotonic_ns() : 0;
  if (!avc_hit) {
    // Pre-resolved label fast path: when the rule set supports labels and
    // the hook has an inode, the activation-independent half of the decision
    // ("which loaded rules name this path") is cached on the inode — an AVC
    // miss then costs only mask intersections, not a matcher walk. The label
    // generation is read before resolving; if a policy load lands in
    // between, check_labeled sees the stale stamp and recomputes. The probe
    // is keyed on the path too: a hard-linked inode reached under another
    // name, or an inode re-checked after rename, misses and re-resolves
    // rather than reusing a label that encodes a different name's rules.
    bool labeled = false;
    if (inode != nullptr) {
      if (const std::uint64_t label_gen = rules_->label_generation();
          label_gen != 0) {
        if (auto cached = inode->mac_label(kName, label_gen, path)) {
          rc = rules_->check_labeled(
              query, *static_cast<const ObjectLabel*>(cached.get()),
              label_gen);
          labeled = true;
        } else if (auto label = rules_->resolve_label(path)) {
          rc = rules_->check_labeled(query, *label, label_gen);
          inode->mac_label_store(kName, label_gen, path, std::move(label));
          labeled = true;
        }
      }
    }
    if (!labeled) rc = rules_->check(query);
    if (avc_enabled_) avc_.insert(query, generation, rc);
  }
  // Denials audit on every occurrence, cached or not — the AVC caches the
  // decision, not the audit obligation.
  if (rc != Errno::ok) note_denial(task, path, op);
  if (obs) {
    const std::uint64_t t_end = monotonic_ns();
    metrics_.hook_total_ns.record(t_end - t_start);
    metrics_.avc_probe_ns.record(t_probe - t_start);
    if (!avc_hit) metrics_.matcher_walk_ns.record(t_end - t_probe);
    TraceRecord tr;
    tr.time = kernel_ ? kernel_->clock().now() : 0;
    tr.pid = task.pid().get();
    tr.hook = TraceHook::check_op;
    tr.op = op;
    tr.verdict = rc;
    tr.avc_hit = avc_hit;
    tr.state_encoding = current_encoding_or(-1);
    tr.subject = task.exe_path();
    tr.object = std::string(path);
    tr.latency_ns = t_end - t_start;
    trace_.append(std::move(tr));
  }
  return rc;
}

Errno SackModule::check_access_mask(const Task& task, std::string_view path,
                                    AccessMask access,
                                    const kernel::Inode* inode) {
  if (has_any(access, AccessMask::read)) {
    if (Errno rc = check_op(task, path, MacOp::read, inode); rc != Errno::ok)
      return rc;
  }
  if (has_any(access, AccessMask::write)) {
    if (Errno rc = check_op(task, path, MacOp::write, inode); rc != Errno::ok)
      return rc;
  }
  if (has_any(access, AccessMask::append)) {
    if (Errno rc = check_op(task, path, MacOp::append, inode); rc != Errno::ok)
      return rc;
  }
  if (has_any(access, AccessMask::exec)) {
    if (Errno rc = check_op(task, path, MacOp::exec, inode); rc != Errno::ok)
      return rc;
  }
  return Errno::ok;
}

void SackModule::check_ops(const kernel::Task& task,
                           std::span<AccessQuery> queries,
                           std::span<Errno> verdicts) {
  if (mode_ != SackMode::independent || !loaded_) {
    for (std::size_t i = 0; i < queries.size(); ++i) verdicts[i] = Errno::ok;
    return;
  }
  const bool obs = observing();
  const std::uint64_t t_start = obs ? monotonic_ns() : 0;
  const std::string_view exe = task.exe_path();
  const std::string_view profile = profile_of(task);
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  std::vector<std::size_t> miss_index;
  std::vector<AccessQuery> misses;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    AccessQuery& query = queries[i];
    query.subject_exe = exe;
    query.subject_profile = profile;
    bool avc_hit = false;
    if (avc_enabled_) {
      if (auto cached = avc_.probe(query, generation)) {
        verdicts[i] = *cached;
        avc_hit = true;
      }
    }
    if (!avc_hit) miss_index.push_back(i);
  }
  const std::uint64_t t_probe = obs ? monotonic_ns() : 0;
  if (!miss_index.empty()) {
    misses.reserve(miss_index.size());
    for (std::size_t i : miss_index) misses.push_back(queries[i]);
    std::vector<Errno> miss_verdicts(misses.size());
    rules_->check_ops(misses, miss_verdicts);
    for (std::size_t m = 0; m < miss_index.size(); ++m) {
      verdicts[miss_index[m]] = miss_verdicts[m];
      if (avc_enabled_)
        avc_.insert(misses[m], generation, miss_verdicts[m]);
    }
  }
  const std::uint64_t t_walk = obs ? monotonic_ns() : 0;
  // The AVC caches decisions, not audit obligations: every denial in the
  // batch audits, exactly as the equivalent check_op sequence would.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (verdicts[i] != Errno::ok)
      note_denial(task, queries[i].object_path, queries[i].op);
  }
  if (obs && !queries.empty()) {
    // Batch observability mirrors check_op's one-sample-per-decision shape:
    // each query contributes one trace record and one sample per stage
    // histogram, with the measured batch stage cost split evenly across the
    // queries that went through that stage. Sample counts (and therefore
    // percentile weighting against the hook path) stay honest; only the
    // per-query attribution is amortized, as the header documents.
    const std::uint64_t t_end = monotonic_ns();
    const std::uint64_t per_query_total = (t_end - t_start) / queries.size();
    const std::uint64_t per_query_probe =
        (t_probe - t_start) / queries.size();
    const std::uint64_t per_miss_walk =
        miss_index.empty() ? 0 : (t_walk - t_probe) / miss_index.size();
    const SimTime now = kernel_ ? kernel_->clock().now() : 0;
    const int state = current_encoding_or(-1);
    std::size_t next_miss = 0;  // miss_index is ascending by construction
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const bool missed =
          next_miss < miss_index.size() && miss_index[next_miss] == i;
      if (missed) ++next_miss;
      metrics_.hook_total_ns.record(per_query_total);
      metrics_.avc_probe_ns.record(per_query_probe);
      if (missed) metrics_.matcher_walk_ns.record(per_miss_walk);
      TraceRecord tr;
      tr.time = now;
      tr.pid = task.pid().get();
      tr.hook = TraceHook::check_op;
      tr.op = queries[i].op;
      tr.verdict = verdicts[i];
      tr.avc_hit = !missed;
      tr.state_encoding = state;
      tr.subject = task.exe_path();
      tr.object = std::string(queries[i].object_path);
      tr.latency_ns = per_query_total;
      trace_.append(std::move(tr));
    }
  }
}

Errno SackModule::file_open(Task& task, const std::string& path,
                            const kernel::Inode& inode, AccessMask access) {
  return check_access_mask(task, path, access, &inode);
}

Errno SackModule::file_permission(Task& task, const kernel::File& file,
                                  AccessMask access) {
  if (mode_ != SackMode::independent || !loaded_) return Errno::ok;
  if (file.path().starts_with("pipe:") || file.is_socket()) return Errno::ok;
  if (!revalidate_cache_)
    return check_access_mask(task, file.path(), access, file.inode().get());
  // Revalidate when the situation/policy changed (generation) OR the subject
  // changed (open files survive exec) since the last successful check on
  // this open file — the adaptive-revocation path. Read the generation once
  // so a transition racing this check can only make us re-validate, never
  // stamp a new-generation verdict computed on old rules. The cache probe
  // compares the subject views against the stored key in place — the warm
  // path (every read/write after the first) allocates nothing; the composed
  // subject string is only built to store a fresh verdict.
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  const std::string_view exe = task.exe_path();
  const std::string_view profile = profile_of(task);
  if (file.mac_verdict_current(kName, generation, exe, profile))
    return Errno::ok;
  Errno rc = check_access_mask(task, file.path(), access, file.inode().get());
  if (rc == Errno::ok) {
    std::string subject(exe);
    subject += '\0';
    subject += profile;
    file.mac_verdict_store(kName, generation, std::move(subject));
  }
  return rc;
}

Errno SackModule::file_ioctl(Task& task, const kernel::File& file,
                             std::uint32_t) {
  return check_op(task, file.path(), MacOp::ioctl, file.inode().get());
}

Errno SackModule::mmap_file(Task& task, const kernel::File& file,
                            AccessMask) {
  return check_op(task, file.path(), MacOp::mmap, file.inode().get());
}

Errno SackModule::path_mknod(Task& task, const std::string& path,
                             kernel::InodeType) {
  return check_op(task, path, MacOp::create);
}
Errno SackModule::path_unlink(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::unlink);
}
Errno SackModule::path_mkdir(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::mkdir);
}
Errno SackModule::path_rmdir(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::rmdir);
}
Errno SackModule::path_rename(Task& task, const std::string& old_path,
                              const std::string& new_path) {
  if (Errno rc = check_op(task, old_path, MacOp::rename); rc != Errno::ok)
    return rc;
  return check_op(task, new_path, MacOp::rename);
}
Errno SackModule::path_symlink(Task& task, const std::string& path,
                               const std::string&) {
  return check_op(task, path, MacOp::create);
}
Errno SackModule::path_link(Task& task, const std::string& old_path,
                            const std::string& new_path) {
  // A hard link is a new name for a guarded object: gate it like creation on
  // the new name, and like a read on the existing one (aliasing a guarded
  // object out from under its rules must not be free).
  if (Errno rc = check_op(task, old_path, MacOp::read); rc != Errno::ok)
    return rc;
  return check_op(task, new_path, MacOp::create);
}

Errno SackModule::path_truncate(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::truncate);
}
Errno SackModule::path_chmod(Task& task, const std::string& path,
                             kernel::FileMode) {
  return check_op(task, path, MacOp::chmod);
}
Errno SackModule::path_chown(Task& task, const std::string& path, kernel::Uid,
                             kernel::Gid) {
  return check_op(task, path, MacOp::chown);
}
Errno SackModule::inode_getattr(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::getattr);
}
Errno SackModule::bprm_check_security(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::exec);
}

std::string SackModule::getprocattr(const kernel::Task& task) {
  (void)task;
  if (!loaded_ || !ssm_) return {};
  std::string out = "state=" + ssm_->current_name() +
                    " encoding=" + std::to_string(ssm_->current_encoding());
  auto perms = current_permissions();
  if (!perms.empty()) {
    out += " permissions=";
    for (std::size_t i = 0; i < perms.size(); ++i)
      out += (i ? "," : "") + perms[i];
  }
  return out;
}

void SackModule::clock_tick(SimTime now) {
  if (!ssm_) return;
  if (ssm_->has_timed_rule()) {
    const SimTime prev_entered = ssm_->entered_current_at();
    auto outcome = ssm_->tick(now);
    if (outcome.transitioned) {
      note_transition(outcome.from, outcome.to, prev_entered, now, "timeout");
      log_info("sack: timed situation transition '",
               ssm_->state_name(outcome.from), "' -> '",
               ssm_->state_name(outcome.to), "'");
      if (kernel_) {
        kernel::AuditRecord record;
        record.time = now;
        record.module = std::string(kName);
        record.subject = ssm_->state_name(outcome.from);
        record.object = ssm_->state_name(outcome.to);
        record.operation = "transition:timeout";
        record.verdict = kernel::AuditVerdict::allowed;
        kernel_->audit().record(std::move(record));
      }
      apply_current_state();
    }
  }
  check_watchdog(now);
}

void SackModule::check_watchdog(SimTime now) {
  if (watchdog_deadline_ns_ <= 0 || !failsafe_state_) return;
  if (!sds_alive_) return;  // already tripped; waiting for the SDS to return
  if (now - last_sds_activity_ < watchdog_deadline_ns_) return;
  sds_alive_ = false;
  resync_pending_ = true;
  ++watchdog_trips_;
  const SimTime prev_entered = ssm_->entered_current_at();
  auto outcome = ssm_->force(*failsafe_state_, now);
  log_warn("sack: SDS liveness watchdog tripped (no activity for ",
           (now - last_sds_activity_) / 1'000'000, " ms >= deadline ",
           watchdog_deadline_ns_ / 1'000'000, " ms); failsafe state '",
           ssm_->state_name(*failsafe_state_), "'");
  if (kernel_) {
    kernel::AuditRecord record;
    record.time = now;
    record.module = std::string(kName);
    record.subject = ssm_->state_name(outcome.from);
    record.object = ssm_->state_name(*failsafe_state_);
    record.operation = outcome.transitioned ? "transition:watchdog_failsafe"
                                            : "watchdog:trip";
    record.verdict = kernel::AuditVerdict::allowed;
    kernel_->audit().record(std::move(record));
  }
  if (outcome.transitioned) {
    note_transition(outcome.from, outcome.to, prev_entered, now, "watchdog");
    apply_current_state();
  }
}

void SackModule::note_sds_activity(SimTime now) {
  if (now > last_sds_activity_) last_sds_activity_ = now;
  if (!sds_alive_) {
    sds_alive_ = true;
    log_info("sack: SDS activity resumed",
             resync_pending_ ? " (resync pending)" : "");
  }
}

Result<void> SackModule::resync_from_sds() {
  if (!ssm_) return Errno::einval;
  const SimTime now = kernel_ ? kernel_->clock().now() : 0;
  note_sds_activity(now);
  // The restarted SDS has no memory of past sequence numbers; its replayed
  // consensus starts a fresh numbering, so the old history must not mark it
  // stale.
  event_seq_.clear();
  const SimTime prev_entered = ssm_->entered_current_at();
  auto outcome = ssm_->force(ssm_->initial(), now);
  resync_pending_ = false;
  ++resyncs_;
  log_info("sack: SDS resync: SSM reset to '", ssm_->current_name(),
           "' awaiting consensus replay");
  if (kernel_) {
    kernel::AuditRecord record;
    record.time = now;
    record.module = std::string(kName);
    record.subject = ssm_->state_name(outcome.from);
    record.object = ssm_->current_name();
    record.operation = "transition:resync";
    record.verdict = kernel::AuditVerdict::allowed;
    kernel_->audit().record(std::move(record));
  }
  if (outcome.transitioned) {
    note_transition(outcome.from, outcome.to, prev_entered, now, "resync");
    apply_current_state();
  }
  return {};
}

bool SackModule::stale_event_seq(std::string_view name, std::uint64_t seq) {
  auto it = event_seq_.find(name);
  if (it != event_seq_.end() && seq <= it->second) {
    ++events_stale_;
    return true;
  }
  if (it != event_seq_.end())
    it->second = seq;
  else
    event_seq_.emplace(std::string(name), seq);
  return false;
}

}  // namespace sack::core
