#include "core/sack_module.h"

#include <algorithm>
#include <cstdio>

#include "util/log.h"
#include "util/strings.h"

namespace sack::core {

using kernel::AccessMask;
using kernel::Capability;
using kernel::Task;

namespace {

// MacOp -> AppArmor file-permission letters, for enhanced-mode injection.
apparmor::FilePerm apparmor_perms_for(MacOp ops) {
  using apparmor::FilePerm;
  FilePerm p = FilePerm::none;
  if (has_any(ops, MacOp::read | MacOp::getattr)) p |= FilePerm::read;
  if (has_any(ops, MacOp::write | MacOp::create | MacOp::unlink |
                       MacOp::mkdir | MacOp::rmdir | MacOp::rename |
                       MacOp::chmod | MacOp::chown | MacOp::truncate))
    p |= FilePerm::write;
  if (has_any(ops, MacOp::append)) p |= FilePerm::append;
  if (has_any(ops, MacOp::exec)) p |= FilePerm::exec;
  if (has_any(ops, MacOp::ioctl)) p |= FilePerm::ioctl;
  if (has_any(ops, MacOp::mmap)) p |= FilePerm::mmap;
  // 'w' and 'a' cannot coexist in one AppArmor rule; write subsumes append.
  if (has_all(p, FilePerm::write | FilePerm::append)) p &= ~FilePerm::append;
  return p;
}

}  // namespace

// --- SACKfs files ---

class SackModule::EventsFile final : public kernel::VirtualFileOps {
 public:
  explicit EventsFile(SackModule* mod) : mod_(mod) {}
  Result<void> write_content(Task&, std::string_view data) override {
    // One event per line; empty lines ignored. The handler runs inside the
    // write(2) path — this synchronous dispatch is SACK's low-latency
    // transmission channel.
    bool any_bad = false;
    for (auto line : split(data, '\n')) {
      auto name = trim(line);
      if (name.empty()) continue;
      if (!mod_->deliver_event(name).ok()) any_bad = true;
    }
    return any_bad ? Result<void>(Errno::einval) : Result<void>();
  }

 private:
  SackModule* mod_;
};

class SackModule::CurrentStateFile final : public kernel::VirtualFileOps {
 public:
  explicit CurrentStateFile(SackModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    if (!mod_->ssm_) return std::string("(no policy)\n");
    return mod_->ssm_->current_name() + " " +
           std::to_string(mod_->ssm_->current_encoding()) + "\n";
  }

 private:
  SackModule* mod_;
};

class SackModule::StatusFile final : public kernel::VirtualFileOps {
 public:
  explicit StatusFile(SackModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    return mod_->status_text();
  }

 private:
  SackModule* mod_;
};

class SackModule::PolicyLoadFile final : public kernel::VirtualFileOps {
 public:
  explicit PolicyLoadFile(SackModule* mod) : mod_(mod) {}
  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    std::vector<Diagnostic> diags;
    std::vector<ParseError> perrs;
    auto rc = mod_->load_policy_text(data, &diags, &perrs);
    if (!rc.ok()) {
      for (const auto& e : perrs)
        log_warn("sack: policy parse error: ", e.to_string());
      for (const auto& d : diags)
        log_warn("sack: policy check: ", d.to_string());
    }
    return rc;
  }

 private:
  SackModule* mod_;
};

// Dry-run validation: write a candidate policy, read back the full
// diagnostic report. Never touches the loaded policy — the administrator's
// pre-flight check (the user-space policy_lint tool runs the same checker).
class SackModule::PolicyValidateFile final : public kernel::VirtualFileOps {
 public:
  explicit PolicyValidateFile(SackModule* mod) : mod_(mod) {}

  Result<std::string> read_content(Task&) override {
    return mod_->last_validation_report_;
  }

  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    std::string report;
    auto parsed = parse_policy(data);
    for (const auto& e : parsed.errors)
      report += "syntax error: " + e.to_string() + "\n";
    auto diags = check_policy(parsed.policy,
                              mod_->mode_ == SackMode::independent
                                  ? CheckMode::independent
                                  : CheckMode::apparmor_enhanced);
    for (const auto& d : diags) report += d.to_string() + "\n";
    bool loadable = parsed.ok() && !has_errors(diags);
    report += std::string("verdict: ") +
              (loadable ? "loadable" : "REJECTED") + "\n";
    mod_->last_validation_report_ = std::move(report);
    // The write itself reports the verdict too.
    return loadable ? Result<void>() : Result<void>(Errno::einval);
  }

 private:
  SackModule* mod_;
};

// One per section interface (Table I). Reading dumps the canonical section;
// writing replaces it (atomically: a rejected policy leaves the old one).
class SackModule::SectionFile final : public kernel::VirtualFileOps {
 public:
  enum class Which { states, permissions, state_per, per_rules };
  SectionFile(SackModule* mod, Which which) : mod_(mod), which_(which) {}

  Result<std::string> read_content(Task&) override {
    switch (which_) {
      case Which::states: return mod_->policy_.states_text();
      case Which::permissions: return mod_->policy_.permissions_text();
      case Which::state_per: return mod_->policy_.state_per_text();
      case Which::per_rules: return mod_->policy_.per_rules_text();
    }
    return Errno::einval;
  }

  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    return mod_->load_section_text(data);
  }

 private:
  SackModule* mod_;
  Which which_;
};

// --- module ---

SackModule::SackModule(SackMode mode, RuleSetKind ruleset_kind)
    : mode_(mode) {
  if (ruleset_kind == RuleSetKind::compiled) {
    rules_ = std::make_unique<CompiledRuleSet>();
  } else {
    rules_ = std::make_unique<LinearRuleSet>();
  }
}

SackModule::~SackModule() = default;

void SackModule::initialize(kernel::Kernel& kernel) {
  kernel_ = &kernel;
  auto& fs = kernel.securityfs();
  auto dir = std::string(kFsDir);

  auto add = [&](std::string path, std::unique_ptr<kernel::VirtualFileOps> f,
                 kernel::FileMode mode) {
    (void)fs.register_file(path, f.get(), mode);
    fs_files_.push_back(std::move(f));
  };
  add(dir + "/events", std::make_unique<EventsFile>(this), 0200);
  add(dir + "/current_state", std::make_unique<CurrentStateFile>(this), 0444);
  add(dir + "/status", std::make_unique<StatusFile>(this), 0444);
  add(dir + "/policy/load", std::make_unique<PolicyLoadFile>(this), 0200);
  add(dir + "/policy/validate", std::make_unique<PolicyValidateFile>(this),
      0600);
  add(dir + "/policy/states",
      std::make_unique<SectionFile>(this, SectionFile::Which::states), 0600);
  add(dir + "/policy/permissions",
      std::make_unique<SectionFile>(this, SectionFile::Which::permissions),
      0600);
  add(dir + "/policy/state_per",
      std::make_unique<SectionFile>(this, SectionFile::Which::state_per),
      0600);
  add(dir + "/policy/per_rules",
      std::make_unique<SectionFile>(this, SectionFile::Which::per_rules),
      0600);
}

Result<void> SackModule::load_policy(SackPolicy policy,
                                     std::vector<Diagnostic>* diagnostics) {
  auto diags = check_policy(policy, mode_ == SackMode::independent
                                        ? CheckMode::independent
                                        : CheckMode::apparmor_enhanced);
  if (diagnostics) *diagnostics = diags;
  if (has_errors(diags)) return Errno::einval;
  if (mode_ == SackMode::apparmor_enhanced && !apparmor_) return Errno::einval;

  auto ssm = SituationStateMachine::build(policy);
  if (!ssm.ok()) return ssm.error();

  // Commit point: retract what the old policy injected, swap, re-apply.
  retract_all_injected();
  policy_ = std::move(policy);
  ssm_ = std::move(ssm).value();
  rules_->load(policy_);
  loaded_ = true;
  apply_current_state(/*force=*/true);
  log_info("sack: policy loaded: ", policy_.states.size(), " states, ",
           policy_.permissions.size(), " permissions, ",
           rules_->total_rule_count(), " MAC rules, initial state '",
           ssm_->current_name(), "'");
  return {};
}

Result<void> SackModule::load_policy_text(
    std::string_view text, std::vector<Diagnostic>* diagnostics,
    std::vector<ParseError>* parse_errors) {
  auto parsed = parse_policy(text);
  if (parse_errors) *parse_errors = parsed.errors;
  if (!parsed.ok()) return Errno::einval;
  return load_policy(std::move(parsed.policy), diagnostics);
}

Result<void> SackModule::load_section_text(std::string_view text) {
  SectionPresence presence;
  auto parsed = parse_policy(text, &presence);
  if (!parsed.ok()) return Errno::einval;
  SackPolicy merged = policy_;
  merge_policy_sections(merged, parsed.policy, presence);
  return load_policy(std::move(merged));
}

Result<SituationStateMachine::Outcome> SackModule::deliver_event(
    std::string_view event_name) {
  ++events_received_;
  if (!ssm_) {
    ++events_rejected_;
    return Errno::einval;
  }
  auto outcome =
      ssm_->deliver(event_name, kernel_ ? kernel_->clock().now() : 0);
  if (!outcome.ok()) {
    ++events_rejected_;
    log_warn("sack: unknown situation event '", event_name, "'");
    return outcome.error();
  }
  if (outcome->transitioned) {
    log_info("sack: situation transition '",
             ssm_->state_name(outcome->from), "' -> '",
             ssm_->state_name(outcome->to), "' on event '", event_name, "'");
    if (kernel_) {
      // Situation transitions are security-relevant: audit them like the
      // permission changes they are.
      kernel::AuditRecord record;
      record.time = kernel_->clock().now();
      record.module = std::string(kName);
      record.subject = ssm_->state_name(outcome->from);
      record.object = ssm_->state_name(outcome->to);
      record.operation = "transition:" + std::string(event_name);
      record.verdict = kernel::AuditVerdict::allowed;
      kernel_->audit().record(std::move(record));
    }
    apply_current_state();
  }
  return outcome;
}

std::string SackModule::current_state_name() const {
  return ssm_ ? ssm_->current_name() : std::string{};
}

std::vector<std::string> SackModule::current_permissions() const {
  if (!ssm_) return {};
  return policy_.permissions_of(ssm_->current_name());
}

void SackModule::retract_all_injected() {
  if (mode_ != SackMode::apparmor_enhanced || !apparmor_) return;
  for (const auto& perm : injected_perms_) {
    apparmor_->remove_rules_by_origin("sack:" + perm);
  }
  injected_perms_.clear();
}

void SackModule::apply_current_state(bool force) {
  auto perms = current_permissions();

  // Enforcement-neutral transitions (self-loops, equivalent states) keep the
  // same permission set: skip the index rebuild, the generation bump, and
  // the AVC flush — open-fd verdicts and cached decisions stay warm.
  std::vector<std::string> sorted = perms;
  std::sort(sorted.begin(), sorted.end());
  if (!force && applied_valid_ && sorted == applied_perms_) return;
  applied_perms_ = std::move(sorted);
  applied_valid_ = true;

  if (mode_ == SackMode::independent) {
    // Ordering matters for cache correctness under concurrent enforcement:
    // 1. publish the new rule snapshot (readers switch atomically),
    // 2. bump the generation with release semantics — any reader that
    //    observes the new generation also observes the new snapshot, so a
    //    verdict stamped with the new generation was computed on it,
    // 3. flush the AVC. Entries inserted before the flush are gone; a racing
    //    insert computed on the old snapshot carries the old generation
    //    stamp and can never be served after the bump.
    rules_->activate(perms);
    generation_.fetch_add(1, std::memory_order_release);
    avc_.invalidate_all();
    return;
  }
  generation_.fetch_add(1, std::memory_order_release);

  // SACK-enhanced AppArmor: reconcile injected rules with the new state.
  std::set<std::string> target(perms.begin(), perms.end());
  for (auto it = injected_perms_.begin(); it != injected_perms_.end();) {
    if (!target.contains(*it)) {
      apparmor_->remove_rules_by_origin("sack:" + *it);
      it = injected_perms_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& perm : target) {
    if (injected_perms_.contains(perm)) continue;
    auto rules_it = policy_.per_rules.find(perm);
    if (rules_it == policy_.per_rules.end()) continue;
    // Group this permission's rules by target profile.
    std::map<std::string, std::vector<apparmor::FileRule>> by_profile;
    for (const MacRule& rule : rules_it->second) {
      if (rule.subject_kind != SubjectKind::profile) continue;
      apparmor::FileRule fr;
      fr.pattern = rule.object;
      fr.perms = apparmor_perms_for(rule.ops);
      fr.deny = rule.effect == RuleEffect::deny;
      fr.origin = "sack:" + perm;
      by_profile[rule.subject_text].push_back(std::move(fr));
    }
    for (auto& [profile, frs] : by_profile) {
      auto rc = apparmor_->inject_rules(profile, std::move(frs));
      if (!rc.ok())
        log_warn("sack: cannot inject rules for permission '", perm,
                 "': AppArmor profile '", profile, "' not loaded");
    }
    injected_perms_.insert(perm);
  }
}

std::string SackModule::status_text() const {
  std::string out;
  out += "mode: ";
  out += mode_ == SackMode::independent ? "independent" : "apparmor_enhanced";
  out += "\npolicy_loaded: ";
  out += loaded_ ? "yes" : "no";
  out += "\ncurrent_state: " + current_state_name();
  if (ssm_) {
    out += "\nstates: " + std::to_string(ssm_->state_count());
    out += "\nevents_delivered: " + std::to_string(ssm_->events_delivered());
    out += "\ntransitions_taken: " + std::to_string(ssm_->transitions_taken());
  }
  out += "\nevents_received: " + std::to_string(events_received_);
  out += "\nevents_rejected: " + std::to_string(events_rejected_);
  out += "\ngeneration: " + std::to_string(policy_generation());
  out += "\ntotal_rules: " + std::to_string(rules_->total_rule_count());
  out += "\nactive_rules: " + std::to_string(rules_->active_rule_count());
  out += "\ndenials: " + std::to_string(denial_count());
  const auto avc = avc_.stats();
  out += "\navc_enabled: ";
  out += avc_enabled_ ? "yes" : "no";
  out += "\navc_hits: " + std::to_string(avc.hits);
  out += "\navc_misses: " + std::to_string(avc.misses);
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.3f", avc.hit_rate());
  out += "\navc_hit_rate: ";
  out += rate;
  out += "\navc_entries: " + std::to_string(avc.entries) + "/" +
         std::to_string(avc.capacity);
  out += "\navc_evictions: " + std::to_string(avc.evictions);
  out += "\navc_invalidations: " + std::to_string(avc.invalidations);
  out += "\n";
  return out;
}

// --- independent-mode enforcement ---

std::string_view SackModule::profile_of(const Task& task) const {
  if (!apparmor_) return {};
  auto ref = task.security_blob<std::string>(
      std::string(apparmor::AppArmorModule::kName));
  return ref ? std::string_view(*ref) : std::string_view{};
}

void SackModule::note_denial(const Task& task, std::string_view path,
                             MacOp op) {
  denials_.fetch_add(1, std::memory_order_relaxed);
  if (kernel_) {
    kernel::AuditRecord record;
    record.time = kernel_->clock().now();
    record.module = std::string(kName);
    record.pid = task.pid();
    record.subject = task.exe_path();
    record.object = std::string(path);
    record.operation = std::string(mac_op_name(op));
    record.verdict = kernel::AuditVerdict::denied;
    record.context = "state=" + current_state_name();
    kernel_->audit().record(std::move(record));
  }
  log_debug("sack: DENIED state=", current_state_name(), " subject=",
            task.exe_path(), " object=", path, " op=", mac_op_name(op));
}

Errno SackModule::check_op(const Task& task, std::string_view path,
                           MacOp op) {
  if (mode_ != SackMode::independent || !loaded_) return Errno::ok;
  AccessQuery query;
  query.subject_exe = task.exe_path();
  query.subject_profile = profile_of(task);
  query.object_path = path;
  query.op = op;
  // Read the generation before consulting any cache or rule snapshot. If a
  // transition lands between this load and the rule walk below, the verdict
  // we insert carries this (now old) stamp and is never served again.
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  if (avc_enabled_) {
    if (auto cached = avc_.probe(query, generation)) {
      // Denials audit on every occurrence, cached or not — the AVC caches
      // the decision, not the audit obligation.
      if (*cached != Errno::ok) note_denial(task, path, op);
      return *cached;
    }
  }
  Errno rc = rules_->check(query);
  if (avc_enabled_) avc_.insert(query, generation, rc);
  if (rc != Errno::ok) note_denial(task, path, op);
  return rc;
}

Errno SackModule::check_access_mask(const Task& task, std::string_view path,
                                    AccessMask access) {
  if (has_any(access, AccessMask::read)) {
    if (Errno rc = check_op(task, path, MacOp::read); rc != Errno::ok)
      return rc;
  }
  if (has_any(access, AccessMask::write)) {
    if (Errno rc = check_op(task, path, MacOp::write); rc != Errno::ok)
      return rc;
  }
  if (has_any(access, AccessMask::append)) {
    if (Errno rc = check_op(task, path, MacOp::append); rc != Errno::ok)
      return rc;
  }
  if (has_any(access, AccessMask::exec)) {
    if (Errno rc = check_op(task, path, MacOp::exec); rc != Errno::ok)
      return rc;
  }
  return Errno::ok;
}

Errno SackModule::file_open(Task& task, const std::string& path,
                            const kernel::Inode&, AccessMask access) {
  return check_access_mask(task, path, access);
}

Errno SackModule::file_permission(Task& task, const kernel::File& file,
                                  AccessMask access) {
  if (mode_ != SackMode::independent || !loaded_) return Errno::ok;
  if (file.path().starts_with("pipe:") || file.is_socket()) return Errno::ok;
  if (!revalidate_cache_) return check_access_mask(task, file.path(), access);
  // Revalidate when the situation/policy changed (generation) OR the subject
  // changed (open files survive exec) since the last successful check on
  // this open file — the adaptive-revocation path. Read the generation once
  // so a transition racing this check can only make us re-validate, never
  // stamp a new-generation verdict computed on old rules.
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  std::string subject = task.exe_path();
  subject += '\0';
  subject += profile_of(task);
  if (file.mac_verdict_current(kName, generation, subject)) return Errno::ok;
  Errno rc = check_access_mask(task, file.path(), access);
  if (rc == Errno::ok)
    file.mac_verdict_store(kName, generation, std::move(subject));
  return rc;
}

Errno SackModule::file_ioctl(Task& task, const kernel::File& file,
                             std::uint32_t) {
  return check_op(task, file.path(), MacOp::ioctl);
}

Errno SackModule::mmap_file(Task& task, const kernel::File& file,
                            AccessMask) {
  return check_op(task, file.path(), MacOp::mmap);
}

Errno SackModule::path_mknod(Task& task, const std::string& path,
                             kernel::InodeType) {
  return check_op(task, path, MacOp::create);
}
Errno SackModule::path_unlink(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::unlink);
}
Errno SackModule::path_mkdir(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::mkdir);
}
Errno SackModule::path_rmdir(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::rmdir);
}
Errno SackModule::path_rename(Task& task, const std::string& old_path,
                              const std::string& new_path) {
  if (Errno rc = check_op(task, old_path, MacOp::rename); rc != Errno::ok)
    return rc;
  return check_op(task, new_path, MacOp::rename);
}
Errno SackModule::path_symlink(Task& task, const std::string& path,
                               const std::string&) {
  return check_op(task, path, MacOp::create);
}
Errno SackModule::path_link(Task& task, const std::string& old_path,
                            const std::string& new_path) {
  // A hard link is a new name for a guarded object: gate it like creation on
  // the new name, and like a read on the existing one (aliasing a guarded
  // object out from under its rules must not be free).
  if (Errno rc = check_op(task, old_path, MacOp::read); rc != Errno::ok)
    return rc;
  return check_op(task, new_path, MacOp::create);
}

Errno SackModule::path_truncate(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::truncate);
}
Errno SackModule::path_chmod(Task& task, const std::string& path,
                             kernel::FileMode) {
  return check_op(task, path, MacOp::chmod);
}
Errno SackModule::path_chown(Task& task, const std::string& path, kernel::Uid,
                             kernel::Gid) {
  return check_op(task, path, MacOp::chown);
}
Errno SackModule::inode_getattr(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::getattr);
}
Errno SackModule::bprm_check_security(Task& task, const std::string& path) {
  return check_op(task, path, MacOp::exec);
}

std::string SackModule::getprocattr(const kernel::Task& task) {
  (void)task;
  if (!loaded_ || !ssm_) return {};
  std::string out = "state=" + ssm_->current_name() +
                    " encoding=" + std::to_string(ssm_->current_encoding());
  auto perms = current_permissions();
  if (!perms.empty()) {
    out += " permissions=";
    for (std::size_t i = 0; i < perms.size(); ++i)
      out += (i ? "," : "") + perms[i];
  }
  return out;
}

void SackModule::clock_tick(SimTime now) {
  if (!ssm_ || !ssm_->has_timed_rule()) return;
  auto outcome = ssm_->tick(now);
  if (!outcome.transitioned) return;
  log_info("sack: timed situation transition '",
           ssm_->state_name(outcome.from), "' -> '",
           ssm_->state_name(outcome.to), "'");
  if (kernel_) {
    kernel::AuditRecord record;
    record.time = now;
    record.module = std::string(kName);
    record.subject = ssm_->state_name(outcome.from);
    record.object = ssm_->state_name(outcome.to);
    record.operation = "transition:timeout";
    record.verdict = kernel::AuditVerdict::allowed;
    kernel_->audit().record(std::move(record));
  }
  apply_current_state();
}

}  // namespace sack::core
