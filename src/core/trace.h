// Ring-buffer event tracer for the SACK hook path.
//
// Compiled in, runtime-toggleable: the `enabled()` probe the hooks run on
// every operation is a single relaxed atomic load, so with tracing off the
// enforcement hot path is unperturbed (the Table II guarantee). When
// enabled, every decision appends one record — timestamp, task, hook, op,
// verdict, AVC hit/miss, situation state at decision time, and the measured
// latency — into a bounded ring. The ring never grows: once full, each
// append overwrites the oldest record and bumps a drop counter, the same
// loss-visibility contract as the kernel audit ring.
//
// Appends take a mutex (tracing is a diagnostic mode; the lock is
// uncontended in the common case and keeps snapshot() trivially correct
// under concurrent enforcement threads — the TSan suite covers that).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/mac_ops.h"
#include "util/clock.h"
#include "util/errno.h"
#include "util/thread_annotations.h"

namespace sack::core {

enum class TraceHook : std::uint8_t {
  check_op,     // one enforcement decision (LSM hook -> verdict)
  event,        // situation event delivered to the SSM
  transition,   // SSM state change (event or timed)
  apply_state,  // APE applied the new state (rules or AppArmor patch)
};

std::string_view trace_hook_name(TraceHook hook);

struct TraceRecord {
  std::uint64_t seq = 0;
  SimTime time = 0;             // virtual kernel clock at the decision
  std::int64_t pid = 0;         // 0 = kernel-internal (events, timers)
  TraceHook hook = TraceHook::check_op;
  MacOp op = MacOp::none;       // check_op records only
  Errno verdict = Errno::ok;
  bool avc_hit = false;         // check_op records only
  int state_encoding = -1;      // situation state at decision time
  std::string subject;          // exe path / event name / from-state
  std::string object;           // object path / to-state
  std::uint64_t latency_ns = 0; // measured wall-clock cost of the stage

  std::string to_line() const;
};

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void append(TraceRecord record);

  // The last min(n, size) records, oldest first.
  std::vector<TraceRecord> snapshot(std::size_t n) const;

  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;

  void clear();

 private:
  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};

  mutable util::Mutex mu_;
  // ring_[ (head_ + i) % capacity_ ]
  std::vector<TraceRecord> ring_ SACK_GUARDED_BY(mu_);
  std::size_t head_ SACK_GUARDED_BY(mu_) = 0;  // index of oldest record
  std::size_t count_ SACK_GUARDED_BY(mu_) = 0;
};

}  // namespace sack::core
