#include "core/ssm.h"

namespace sack::core {

Result<SituationStateMachine> SituationStateMachine::build(
    const SackPolicy& policy) {
  SituationStateMachine ssm;
  if (policy.states.empty() || policy.initial_state.empty())
    return Errno::einval;

  for (const auto& s : policy.states) {
    if (ssm.state_by_name_.contains(s.name)) return Errno::einval;
    StateId id(static_cast<StateId::rep_type>(ssm.state_names_.size()));
    ssm.state_by_name_.emplace(s.name, id);
    ssm.state_names_.push_back(s.name);
    ssm.encodings_.push_back(s.encoding);
  }

  for (const auto& name : policy.all_events()) {
    EventId id(static_cast<EventId::rep_type>(ssm.event_names_.size()));
    ssm.event_by_name_.emplace(name, id);
    ssm.event_names_.push_back(name);
  }

  const std::size_t n_states = ssm.state_names_.size();
  const std::size_t n_events = ssm.event_names_.size();
  ssm.transition_.assign(n_states * n_events, -1);
  for (const auto& t : policy.transitions) {
    auto from = ssm.state_by_name_.find(t.from);
    auto to = ssm.state_by_name_.find(t.to);
    auto ev = ssm.event_by_name_.find(t.event);
    if (from == ssm.state_by_name_.end() || to == ssm.state_by_name_.end() ||
        ev == ssm.event_by_name_.end())
      return Errno::einval;
    auto& slot = ssm.transition_[idx(from->second) * n_events +
                                 idx(ev->second)];
    if (slot != -1 &&
        slot != static_cast<std::int32_t>(idx(to->second)))
      return Errno::einval;  // nondeterministic
    slot = static_cast<std::int32_t>(idx(to->second));
  }

  ssm.timed_.assign(n_states, TimedRule{});
  for (const auto& t : policy.timed_transitions) {
    auto from = ssm.state_by_name_.find(t.from);
    auto to = ssm.state_by_name_.find(t.to);
    if (from == ssm.state_by_name_.end() || to == ssm.state_by_name_.end())
      return Errno::einval;
    if (t.after_ms <= 0) return Errno::einval;
    TimedRule& slot = ssm.timed_[idx(from->second)];
    if (slot.delay_ns != -1) return Errno::einval;  // one per state
    slot.delay_ns = t.after_ms * 1'000'000;
    slot.target = static_cast<std::int32_t>(idx(to->second));
  }

  auto init = ssm.state_by_name_.find(policy.initial_state);
  if (init == ssm.state_by_name_.end()) return Errno::einval;
  ssm.initial_ = init->second;
  ssm.current_ = ssm.initial_;
  return ssm;
}

void SituationStateMachine::reset() {
  current_ = initial_;
  entered_at_ = 0;
  events_delivered_ = 0;
  transitions_taken_ = 0;
  events_invalid_ = 0;
}

Result<SituationStateMachine::Outcome> SituationStateMachine::deliver(
    std::string_view event_name, SimTime now) {
  auto it = event_by_name_.find(event_name);
  if (it == event_by_name_.end()) return Errno::einval;
  return deliver(it->second, now);
}

SituationStateMachine::Outcome SituationStateMachine::deliver(EventId event,
                                                              SimTime now) {
  Outcome outcome;
  outcome.from = current_;
  outcome.to = current_;
  // A pre-interned EventId is only valid against the machine that interned
  // it. After a policy reload the id space changes, so a stale or foreign id
  // would index transition_ out of bounds — ignore it cleanly instead (the
  // caller kept an id across a reload; the by-name path is the safe one).
  if (idx(event) >= event_names_.size()) {
    ++events_invalid_;
    return outcome;
  }
  ++events_delivered_;
  std::int32_t target =
      transition_[idx(current_) * event_names_.size() + idx(event)];
  if (target >= 0 && static_cast<std::size_t>(target) != idx(current_)) {
    current_ = StateId(target);
    entered_at_ = now;
    outcome.to = current_;
    outcome.transitioned = true;
    ++transitions_taken_;
  } else if (target >= 0) {
    // Self-loop: matches a rule but stays put; not counted as a transition.
    outcome.transitioned = false;
  }
  return outcome;
}

SituationStateMachine::Outcome SituationStateMachine::tick(SimTime now) {
  Outcome outcome;
  outcome.from = current_;
  outcome.to = current_;
  const TimedRule& rule = timed_[idx(current_)];
  if (rule.delay_ns < 0) return outcome;
  if (now - entered_at_ < rule.delay_ns) return outcome;
  current_ = StateId(rule.target);
  entered_at_ = now;
  outcome.to = current_;
  outcome.transitioned = outcome.from != outcome.to;
  if (outcome.transitioned) ++transitions_taken_;
  return outcome;
}

SituationStateMachine::Outcome SituationStateMachine::force(StateId target,
                                                            SimTime now) {
  Outcome outcome;
  outcome.from = current_;
  outcome.to = current_;
  if (idx(target) >= state_names_.size() || target == current_)
    return outcome;
  current_ = target;
  entered_at_ = now;
  outcome.to = current_;
  outcome.transitioned = true;
  ++transitions_taken_;
  return outcome;
}

bool SituationStateMachine::has_timed_rule() const {
  return timed_[idx(current_)].delay_ns >= 0;
}

Result<StateId> SituationStateMachine::state_id(std::string_view name) const {
  auto it = state_by_name_.find(name);
  if (it == state_by_name_.end()) return Errno::einval;
  return it->second;
}

Result<EventId> SituationStateMachine::event_id(std::string_view name) const {
  auto it = event_by_name_.find(name);
  if (it == event_by_name_.end()) return Errno::einval;
  return it->second;
}

}  // namespace sack::core
