#include "core/policy_parser.h"

namespace sack::core {

namespace {

void synchronize_stmt(TokenStream& ts) {
  while (!ts.at_end()) {
    const Token& t = ts.peek();
    if (t.is_punct(';')) {
      ts.next();
      return;
    }
    if (t.is_punct('}')) return;
    ts.next();
  }
}

void parse_states_block(TokenStream& ts, SackPolicy& policy) {
  if (!ts.expect_punct('{').ok()) return;
  while (!ts.at_end() && !ts.peek().is_punct('}')) {
    auto name = ts.expect_ident();
    if (!name.ok()) {
      synchronize_stmt(ts);
      continue;
    }
    if (!ts.expect_punct('=').ok()) {
      synchronize_stmt(ts);
      continue;
    }
    auto num = ts.expect_number();
    if (!num.ok()) {
      synchronize_stmt(ts);
      continue;
    }
    if (!ts.expect_punct(';').ok()) {
      synchronize_stmt(ts);
      continue;
    }
    policy.states.push_back({name->text, std::stoi(num->text)});
  }
  (void)ts.expect_punct('}');
}

void parse_transitions_block(TokenStream& ts, SackPolicy& policy) {
  if (!ts.expect_punct('{').ok()) return;
  while (!ts.at_end() && !ts.peek().is_punct('}')) {
    auto from = ts.expect_ident();
    if (!from.ok()) {
      synchronize_stmt(ts);
      continue;
    }
    if (ts.peek().kind != TokenKind::arrow) {
      ts.record_error("expected '->' in transition rule");
      synchronize_stmt(ts);
      continue;
    }
    ts.next();
    auto to = ts.expect_ident();
    if (!to.ok()) {
      synchronize_stmt(ts);
      continue;
    }
    if (ts.accept_ident("after")) {
      // Timed transition: "<from> -> <to> after <milliseconds>;"
      auto ms = ts.expect_number();
      if (!ms.ok() || !ts.expect_punct(';').ok()) {
        synchronize_stmt(ts);
        continue;
      }
      policy.timed_transitions.push_back(
          {from->text, std::stoll(ms->text), to->text});
      continue;
    }
    if (!ts.accept_ident("on")) {
      ts.record_error("expected 'on <event>' or 'after <ms>' in transition "
                      "rule");
      synchronize_stmt(ts);
      continue;
    }
    auto event = ts.expect_ident();
    if (!event.ok()) {
      synchronize_stmt(ts);
      continue;
    }
    if (!ts.expect_punct(';').ok()) {
      synchronize_stmt(ts);
      continue;
    }
    policy.transitions.push_back({from->text, event->text, to->text});
  }
  (void)ts.expect_punct('}');
}

// "watchdog { deadline <ms>; failsafe <state>; }" — the SDS liveness
// contract. An empty block clears the clause (the canonical "no watchdog"
// form); completeness of a non-empty block is the checker's job.
void parse_watchdog_block(TokenStream& ts, SackPolicy& policy) {
  if (!ts.expect_punct('{').ok()) return;
  WatchdogSpec spec;
  bool any = false;
  while (!ts.at_end() && !ts.peek().is_punct('}')) {
    if (ts.accept_ident("deadline")) {
      auto ms = ts.expect_number();
      if (!ms.ok() || !ts.expect_punct(';').ok()) {
        synchronize_stmt(ts);
        continue;
      }
      spec.deadline_ms = std::stoll(ms->text);
      any = true;
    } else if (ts.accept_ident("failsafe")) {
      auto state = ts.expect_ident();
      if (!state.ok() || !ts.expect_punct(';').ok()) {
        synchronize_stmt(ts);
        continue;
      }
      spec.failsafe_state = state->text;
      any = true;
    } else {
      ts.record_error("expected 'deadline <ms>;' or 'failsafe <state>;' in "
                      "watchdog block, got '" +
                      ts.peek().text + "'");
      synchronize_stmt(ts);
    }
  }
  (void)ts.expect_punct('}');
  if (any) policy.watchdog = std::move(spec);
}

void parse_ident_list_block(TokenStream& ts, std::vector<std::string>& out) {
  if (!ts.expect_punct('{').ok()) return;
  while (!ts.at_end() && !ts.peek().is_punct('}')) {
    auto name = ts.expect_ident();
    if (!name.ok() || !ts.expect_punct(';').ok()) {
      synchronize_stmt(ts);
      continue;
    }
    out.push_back(name->text);
  }
  (void)ts.expect_punct('}');
}

void parse_state_per_block(TokenStream& ts, SackPolicy& policy) {
  if (!ts.expect_punct('{').ok()) return;
  while (!ts.at_end() && !ts.peek().is_punct('}')) {
    auto state = ts.expect_ident();
    if (!state.ok() || !ts.expect_punct(':').ok()) {
      synchronize_stmt(ts);
      continue;
    }
    std::vector<std::string> perms;
    bool bad = false;
    for (;;) {
      auto perm = ts.expect_ident();
      if (!perm.ok()) {
        bad = true;
        break;
      }
      perms.push_back(perm->text);
      if (ts.accept_punct(',')) continue;
      break;
    }
    if (bad || !ts.expect_punct(';').ok()) {
      synchronize_stmt(ts);
      continue;
    }
    auto& existing = policy.state_per[state->text];
    existing.insert(existing.end(), perms.begin(), perms.end());
  }
  (void)ts.expect_punct('}');
}

bool parse_mac_rule(TokenStream& ts, std::vector<MacRule>& out) {
  MacRule rule;
  if (ts.accept_ident("allow")) {
    rule.effect = RuleEffect::allow;
  } else if (ts.accept_ident("deny")) {
    rule.effect = RuleEffect::deny;
  } else {
    ts.record_error("expected 'allow' or 'deny', got '" + ts.peek().text +
                    "'");
    return false;
  }

  // Subject.
  const Token& subj = ts.peek();
  if (subj.is_punct('*')) {
    ts.next();
    rule.subject_kind = SubjectKind::any;
  } else if (subj.is_punct('@')) {
    ts.next();
    auto prof = ts.expect_ident();
    if (!prof.ok()) return false;
    rule.subject_kind = SubjectKind::profile;
    rule.subject_text = prof->text;
  } else if (subj.kind == TokenKind::path) {
    rule.subject_kind = SubjectKind::path;
    rule.subject_text = ts.next().text;
    auto glob = Glob::compile(rule.subject_text);
    if (!glob.ok()) {
      ts.record_error("bad subject pattern '" + rule.subject_text + "'");
      return false;
    }
    rule.subject_glob = std::move(glob).value();
  } else {
    ts.record_error("expected subject ('*', '@profile' or a path), got '" +
                    subj.text + "'");
    return false;
  }

  // Object.
  auto obj = ts.expect(TokenKind::path, "object path pattern");
  if (!obj.ok()) return false;
  auto glob = Glob::compile(obj->text);
  if (!glob.ok()) {
    ts.record_error("bad object pattern '" + obj->text + "'");
    return false;
  }
  rule.object = std::move(glob).value();

  // Ops (one or more, space- or comma-separated, terminated by ';').
  bool any_op = false;
  while (ts.peek().kind == TokenKind::identifier) {
    auto op = mac_op_from_name(ts.peek().text);
    if (!op.ok()) {
      ts.record_error("unknown operation '" + ts.peek().text + "'");
      return false;
    }
    ts.next();
    rule.ops |= op.value();
    any_op = true;
    (void)ts.accept_punct(',');
  }
  if (!any_op) {
    ts.record_error("rule grants no operations");
    return false;
  }
  if (!ts.expect_punct(';').ok()) return false;
  out.push_back(std::move(rule));
  return true;
}

void parse_per_rules_block(TokenStream& ts, SackPolicy& policy) {
  if (!ts.expect_punct('{').ok()) return;
  while (!ts.at_end() && !ts.peek().is_punct('}')) {
    auto perm = ts.expect_ident();
    if (!perm.ok()) {
      synchronize_stmt(ts);
      continue;
    }
    if (!ts.expect_punct('{').ok()) {
      synchronize_stmt(ts);
      continue;
    }
    auto& rules = policy.per_rules[perm->text];
    while (!ts.at_end() && !ts.peek().is_punct('}')) {
      if (!parse_mac_rule(ts, rules)) synchronize_stmt(ts);
    }
    (void)ts.expect_punct('}');
  }
  (void)ts.expect_punct('}');
}

}  // namespace

PolicyParseResult parse_policy(std::string_view text,
                               SectionPresence* presence) {
  PolicyParseResult result;
  SectionPresence local;
  Tokenizer tokenizer(text);
  auto tokens = tokenizer.run();
  if (!tokens.ok()) {
    result.errors.push_back(tokenizer.last_error());
    return result;
  }
  TokenStream ts(std::move(tokens).value());
  while (!ts.at_end()) {
    if (ts.accept_ident("states")) {
      parse_states_block(ts, result.policy);
      local.states = true;
    } else if (ts.accept_ident("initial")) {
      auto name = ts.expect_ident();
      if (name.ok()) result.policy.initial_state = name->text;
      (void)ts.expect_punct(';');
      local.states = true;
    } else if (ts.accept_ident("transitions")) {
      parse_transitions_block(ts, result.policy);
      local.states = true;
    } else if (ts.accept_ident("events")) {
      parse_ident_list_block(ts, result.policy.events);
      local.states = true;
    } else if (ts.accept_ident("watchdog")) {
      parse_watchdog_block(ts, result.policy);
      local.watchdog = true;
    } else if (ts.accept_ident("permissions")) {
      parse_ident_list_block(ts, result.policy.permissions);
      local.permissions = true;
    } else if (ts.accept_ident("state_per")) {
      parse_state_per_block(ts, result.policy);
      local.state_per = true;
    } else if (ts.accept_ident("per_rules")) {
      parse_per_rules_block(ts, result.policy);
      local.per_rules = true;
    } else {
      ts.record_error("expected a section keyword (states / initial / "
                      "transitions / events / watchdog / permissions / "
                      "state_per / per_rules), got '" +
                      ts.peek().text + "'");
      ts.next();
    }
  }
  result.errors = ts.take_errors();
  if (presence) *presence = local;
  return result;
}

void merge_policy_sections(SackPolicy& base, const SackPolicy& incoming,
                           const SectionPresence& presence) {
  if (presence.states) {
    base.states = incoming.states;
    base.initial_state = incoming.initial_state;
    base.transitions = incoming.transitions;
    base.timed_transitions = incoming.timed_transitions;
    base.events = incoming.events;
  }
  if (presence.watchdog) base.watchdog = incoming.watchdog;
  if (presence.permissions) base.permissions = incoming.permissions;
  if (presence.state_per) base.state_per = incoming.state_per;
  if (presence.per_rules) base.per_rules = incoming.per_rules;
}

}  // namespace sack::core
