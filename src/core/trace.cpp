#include "core/trace.h"

namespace sack::core {

std::string_view trace_hook_name(TraceHook hook) {
  switch (hook) {
    case TraceHook::check_op: return "check_op";
    case TraceHook::event: return "event";
    case TraceHook::transition: return "transition";
    case TraceHook::apply_state: return "apply_state";
  }
  return "?";
}

std::string TraceRecord::to_line() const {
  std::string out = "seq=" + std::to_string(seq) +
                    " t=" + std::to_string(time) +
                    " pid=" + std::to_string(pid) + " hook=";
  out += trace_hook_name(hook);
  if (hook == TraceHook::check_op) {
    out += " op=";
    out += mac_op_name(op);
    out += " avc=";
    out += avc_hit ? "hit" : "miss";
  }
  out += " verdict=";
  out += verdict == Errno::ok ? "ok" : errno_name(verdict);
  out += " state=" + std::to_string(state_encoding);
  if (!subject.empty()) out += " subject=" + subject;
  if (!object.empty()) out += " object=" + object;
  out += " latency_ns=" + std::to_string(latency_ns) + "\n";
  return out;
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {
  ring_.resize(capacity_);
}

void TraceRing::append(TraceRecord record) {
  util::MutexLock lock(mu_);
  record.seq = recorded_.fetch_add(1, std::memory_order_relaxed);
  if (count_ < capacity_) {
    ring_[(head_ + count_) % capacity_] = std::move(record);
    ++count_;
  } else {
    // Full: overwrite the oldest record and account for the loss.
    ring_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<TraceRecord> TraceRing::snapshot(std::size_t n) const {
  util::MutexLock lock(mu_);
  const std::size_t take = n < count_ ? n : count_;
  std::vector<TraceRecord> out;
  out.reserve(take);
  for (std::size_t i = count_ - take; i < count_; ++i)
    out.push_back(ring_[(head_ + i) % capacity_]);
  return out;
}

std::size_t TraceRing::size() const {
  util::MutexLock lock(mu_);
  return count_;
}

void TraceRing::clear() {
  util::MutexLock lock(mu_);
  head_ = 0;
  count_ = 0;
}

}  // namespace sack::core
