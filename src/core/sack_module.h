// SackModule: the SACK security module (the paper's contribution).
//
// Two deployment modes, matching §III-E.3:
//
//  * SackMode::independent — SACK enforces its own MAC rules. The APE keeps
//    a compiled rule set activated for the current situation state; LSM
//    hooks consult it. Guarded objects are deny-by-default (POLP), and a
//    situation transition re-activates the rule set and bumps the policy
//    generation so even already-open fds are re-validated (OAC: permissions
//    appear in emergencies and vanish when the emergency clears).
//
//  * SackMode::apparmor_enhanced — SACK does not mediate file access itself;
//    on every situation transition the APE injects/retracts origin-tagged
//    rules in the loaded AppArmor profiles, and AppArmor enforces as usual
//    ("the permission check process ... is the same as that for the original
//    AppArmor").
//
// SACKfs (on securityfs, §III-C):
//   /sys/kernel/security/SACK/events          write: situation events (SDS)
//   /sys/kernel/security/SACK/current_state   read:  name + encoding
//   /sys/kernel/security/SACK/status          read:  counters & mode
//   /sys/kernel/security/SACK/policy/load     write: full policy document
//   /sys/kernel/security/SACK/policy/{states,permissions,state_per,per_rules}
//                                             write: replace one section
//                                             read:  canonical section dump
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "apparmor/apparmor.h"
#include "core/avc.h"
#include "core/policy.h"
#include "core/policy_checker.h"
#include "core/policy_parser.h"
#include "core/ruleset.h"
#include "core/ssm.h"
#include "kernel/kernel.h"
#include "kernel/lsm/module.h"

namespace sack::core {

enum class SackMode : std::uint8_t { independent, apparmor_enhanced };

enum class RuleSetKind : std::uint8_t { compiled, linear };

class SackModule final : public kernel::SecurityModule {
 public:
  static constexpr std::string_view kName = "sack";
  static constexpr std::string_view kFsDir = "SACK";  // as in the paper

  explicit SackModule(SackMode mode,
                      RuleSetKind ruleset_kind = RuleSetKind::compiled);

  // Ablation hook: disable the per-file revalidation cache so every
  // file_permission check re-runs the full rule match (what a naive port
  // would do). Enabled by default.
  void set_revalidation_cache(bool enabled) { revalidate_cache_ = enabled; }
  // Ablation hook: disable the access vector cache so every check_op pays
  // the full rule walk. Enabled by default.
  void set_avc(bool enabled) { avc_enabled_ = enabled; }
  const AccessVectorCache& avc() const { return avc_; }
  ~SackModule() override;

  std::string_view name() const override { return kName; }
  void initialize(kernel::Kernel& kernel) override;

  SackMode mode() const { return mode_; }

  // Enhanced mode needs the AppArmor module to patch. Must be called before
  // the first policy load in apparmor_enhanced mode.
  void attach_apparmor(apparmor::AppArmorModule* apparmor) {
    apparmor_ = apparmor;
  }

  // --- policy (kernel-side API; SACKfs routes here) ---
  Result<void> load_policy(SackPolicy policy,
                           std::vector<Diagnostic>* diagnostics = nullptr);
  Result<void> load_policy_text(std::string_view text,
                                std::vector<Diagnostic>* diagnostics = nullptr,
                                std::vector<ParseError>* parse_errors = nullptr);
  // Per-section write (States / Permissions / State_Per / Per_Rules
  // interfaces): replaces the sections present in `text`, revalidates, and
  // re-applies. Incomplete intermediate policies are rejected atomically.
  Result<void> load_section_text(std::string_view text);

  bool policy_loaded() const { return loaded_; }
  const SackPolicy& policy() const { return policy_; }

  // --- situation events ---
  // Kernel-internal delivery (tests, SACKfs handler): runs the SSM and, on
  // transition, the APE.
  Result<SituationStateMachine::Outcome> deliver_event(
      std::string_view event_name);

  const SituationStateMachine* ssm() const {
    return ssm_ ? &*ssm_ : nullptr;
  }
  std::string current_state_name() const;

  // Active SACK permissions for the current situation state.
  std::vector<std::string> current_permissions() const;

  // Bumped on every policy load and on every situation transition that
  // changes the granted permission set (equivalent-state transitions keep
  // the generation, so caches stay warm).
  std::uint64_t policy_generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  std::uint64_t events_received() const { return events_received_; }
  std::uint64_t events_rejected() const { return events_rejected_; }
  std::uint64_t denial_count() const {
    return denials_.load(std::memory_order_relaxed);
  }
  const RuleSetBase& ruleset() const { return *rules_; }

  std::string status_text() const;

  // --- LSM hooks (independent mode enforcement) ---
  Errno file_open(kernel::Task& task, const std::string& path,
                  const kernel::Inode& inode,
                  kernel::AccessMask access) override;
  Errno file_permission(kernel::Task& task, const kernel::File& file,
                        kernel::AccessMask access) override;
  Errno file_ioctl(kernel::Task& task, const kernel::File& file,
                   std::uint32_t cmd) override;
  Errno mmap_file(kernel::Task& task, const kernel::File& file,
                  kernel::AccessMask prot) override;
  Errno path_mknod(kernel::Task& task, const std::string& path,
                   kernel::InodeType type) override;
  Errno path_unlink(kernel::Task& task, const std::string& path) override;
  Errno path_mkdir(kernel::Task& task, const std::string& path) override;
  Errno path_rmdir(kernel::Task& task, const std::string& path) override;
  Errno path_rename(kernel::Task& task, const std::string& old_path,
                    const std::string& new_path) override;
  Errno path_symlink(kernel::Task& task, const std::string& path,
                     const std::string& target) override;
  Errno path_link(kernel::Task& task, const std::string& old_path,
                  const std::string& new_path) override;
  Errno path_truncate(kernel::Task& task, const std::string& path) override;
  Errno path_chmod(kernel::Task& task, const std::string& path,
                   kernel::FileMode mode) override;
  Errno path_chown(kernel::Task& task, const std::string& path,
                   kernel::Uid uid, kernel::Gid gid) override;
  Errno inode_getattr(kernel::Task& task, const std::string& path) override;
  Errno bprm_check_security(kernel::Task& task,
                            const std::string& path) override;
  void clock_tick(SimTime now) override;
  // SACK's security context is the (global) situation state plus the
  // permissions it grants this task's subject identity.
  std::string getprocattr(const kernel::Task& task) override;

 private:
  // The Adaptive Policy Enforcer: maps the current situation state to
  // active MAC rules (independent) or AppArmor profile patches (enhanced).
  // `force` rebuilds even when the permission set is unchanged (policy
  // load); transitions pass false so self-loops and equivalent states skip
  // the rebuild, the generation bump, and the AVC flush.
  void apply_current_state(bool force = false);
  void retract_all_injected();

  Errno check_op(const kernel::Task& task, std::string_view path, MacOp op);
  Errno check_access_mask(const kernel::Task& task, std::string_view path,
                          kernel::AccessMask access);
  void note_denial(const kernel::Task& task, std::string_view path, MacOp op);
  std::string_view profile_of(const kernel::Task& task) const;

  SackMode mode_;
  bool revalidate_cache_ = true;
  bool avc_enabled_ = true;
  std::unique_ptr<RuleSetBase> rules_;
  AccessVectorCache avc_;
  SackPolicy policy_;
  bool loaded_ = false;
  std::optional<SituationStateMachine> ssm_;
  apparmor::AppArmorModule* apparmor_ = nullptr;
  kernel::Kernel* kernel_ = nullptr;

  std::atomic<std::uint64_t> generation_{1};
  std::uint64_t events_received_ = 0;
  std::uint64_t events_rejected_ = 0;
  std::atomic<std::uint64_t> denials_{0};
  std::set<std::string> injected_perms_;
  // Permission set (sorted) the APE last applied; equality means a
  // transition is enforcement-neutral and can skip the rebuild.
  std::vector<std::string> applied_perms_;
  bool applied_valid_ = false;

  class EventsFile;
  class CurrentStateFile;
  class StatusFile;
  class PolicyLoadFile;
  class PolicyValidateFile;
  class SectionFile;
  std::vector<std::unique_ptr<kernel::VirtualFileOps>> fs_files_;
  std::string last_validation_report_ = "(nothing validated yet)\n";
};

}  // namespace sack::core
