// SackModule: the SACK security module (the paper's contribution).
//
// Two deployment modes, matching §III-E.3:
//
//  * SackMode::independent — SACK enforces its own MAC rules. The APE keeps
//    a compiled rule set activated for the current situation state; LSM
//    hooks consult it. Guarded objects are deny-by-default (POLP), and a
//    situation transition re-activates the rule set and bumps the policy
//    generation so even already-open fds are re-validated (OAC: permissions
//    appear in emergencies and vanish when the emergency clears).
//
//  * SackMode::apparmor_enhanced — SACK does not mediate file access itself;
//    on every situation transition the APE injects/retracts origin-tagged
//    rules in the loaded AppArmor profiles, and AppArmor enforces as usual
//    ("the permission check process ... is the same as that for the original
//    AppArmor").
//
// SACKfs (on securityfs, §III-C):
//   /sys/kernel/security/SACK/events          write: situation events (SDS)
//   /sys/kernel/security/SACK/current_state   read:  name + encoding
//   /sys/kernel/security/SACK/status          read:  counters & mode
//   /sys/kernel/security/SACK/policy/load     write: full policy document
//   /sys/kernel/security/SACK/policy/{states,permissions,state_per,per_rules}
//                                             write: replace one section
//                                             read:  canonical section dump
//   /sys/kernel/security/SACK/metrics         read:  counters + per-stage
//                                                    latency percentiles
//   /sys/kernel/security/SACK/trace           read:  last-N trace records
//   /sys/kernel/security/SACK/trace_enable    read/write: toggle tracing
//   /sys/kernel/security/SACK/heartbeat       write: SDS liveness beacon
//                                             read:  watchdog status line
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "apparmor/apparmor.h"
#include "core/avc.h"
#include "core/policy.h"
#include "core/policy_checker.h"
#include "core/policy_parser.h"
#include "core/ruleset.h"
#include "core/ssm.h"
#include "core/trace.h"
#include "kernel/kernel.h"
#include "kernel/lsm/module.h"
#include "util/metrics.h"
#include "util/transparent_hash.h"

namespace sack::core {

enum class SackMode : std::uint8_t { independent, apparmor_enhanced };

// Which RuleSetBase implementation backs enforcement. `dfa` (the default)
// compiles the loaded globs into one table-driven automaton with pre-
// resolvable object labels; `compiled` is the indexed per-rule matcher it
// replaced; `linear` is the naive-scan ablation baseline.
enum class RuleSetKind : std::uint8_t { compiled, linear, dfa };

class SackModule final : public kernel::SecurityModule {
 public:
  static constexpr std::string_view kName = "sack";
  static constexpr std::string_view kFsDir = "SACK";  // as in the paper

  explicit SackModule(SackMode mode,
                      RuleSetKind ruleset_kind = RuleSetKind::dfa);

  // Ablation hook: disable the per-file revalidation cache so every
  // file_permission check re-runs the full rule match (what a naive port
  // would do). Enabled by default.
  void set_revalidation_cache(bool enabled) { revalidate_cache_ = enabled; }
  // Ablation hook: disable the access vector cache so every check_op pays
  // the full rule walk. Enabled by default.
  void set_avc(bool enabled) { avc_enabled_ = enabled; }
  const AccessVectorCache& avc() const { return avc_; }
  ~SackModule() override;

  std::string_view name() const override { return kName; }
  void initialize(kernel::Kernel& kernel) override;

  SackMode mode() const { return mode_; }

  // Enhanced mode needs the AppArmor module to patch. Must be called before
  // the first policy load in apparmor_enhanced mode.
  void attach_apparmor(apparmor::AppArmorModule* apparmor) {
    apparmor_ = apparmor;
  }

  // --- policy (kernel-side API; SACKfs routes here) ---
  Result<void> load_policy(SackPolicy policy,
                           std::vector<Diagnostic>* diagnostics = nullptr);
  Result<void> load_policy_text(std::string_view text,
                                std::vector<Diagnostic>* diagnostics = nullptr,
                                std::vector<ParseError>* parse_errors = nullptr);
  // Per-section write (States / Permissions / State_Per / Per_Rules
  // interfaces): replaces the sections present in `text`, revalidates, and
  // re-applies. Incomplete intermediate policies are rejected atomically.
  Result<void> load_section_text(std::string_view text);

  bool policy_loaded() const { return loaded_; }
  const SackPolicy& policy() const { return policy_; }

  // --- situation events ---
  // Kernel-internal delivery (tests, SACKfs handler): runs the SSM and, on
  // transition, the APE.
  Result<SituationStateMachine::Outcome> deliver_event(
      std::string_view event_name);

  const SituationStateMachine* ssm() const {
    return ssm_ ? &*ssm_ : nullptr;
  }
  std::string current_state_name() const;

  // Situation fan-out: invoked with the new state's name after every SSM
  // transition (event, timeout, watchdog, resync) and once on policy load
  // with the initial state. This is how sibling LSMs that key policy off the
  // situation (the SFI module's overlays) track the SSM without polling.
  void set_transition_listener(std::function<void(std::string_view)> fn) {
    transition_listener_ = std::move(fn);
    if (loaded_ && ssm_ && transition_listener_)
      transition_listener_(ssm_->current_name());
  }

  // Active SACK permissions for the current situation state.
  std::vector<std::string> current_permissions() const;

  // Bumped on every policy load and on every situation transition that
  // changes the granted permission set (equivalent-state transitions keep
  // the generation, so caches stay warm).
  std::uint64_t policy_generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  std::uint64_t events_received() const { return events_received_; }
  std::uint64_t events_rejected() const { return events_rejected_; }
  // Stale-sequence replays (accepted no-ops; see the events-file protocol).
  std::uint64_t events_stale() const { return events_stale_; }

  // --- SDS liveness watchdog (policy `watchdog` clause) ---
  // Any events-file or heartbeat write counts as SDS activity. When the
  // policy declares a watchdog and no activity arrives within the deadline,
  // the next clock tick forces the SSM into the failsafe state and latches
  // resync_pending until the (restarted) SDS writes "resync" to the
  // heartbeat file.
  bool watchdog_enabled() const { return watchdog_deadline_ns_ > 0; }
  bool sds_alive() const { return sds_alive_; }
  bool resync_pending() const { return resync_pending_; }
  std::uint64_t watchdog_trips() const { return watchdog_trips_; }
  std::uint64_t resyncs() const { return resyncs_; }
  std::uint64_t heartbeats_received() const { return heartbeats_received_; }
  // Kernel-internal entry points (the SACKfs heartbeat file routes here).
  void note_sds_activity(SimTime now);
  Result<void> resync_from_sds();
  std::uint64_t denial_count() const {
    return denials_.load(std::memory_order_relaxed);
  }
  const RuleSetBase& ruleset() const { return *rules_; }

  // Strict DFA build budget for subsequent load_policy() calls (dfa rule-set
  // kind only; returns false otherwise). In strict mode a budget blowout
  // fails the load with ENOMEM instead of degrading to the scan fallback —
  // and, like every other load_policy failure, changes zero decisions.
  bool set_dfa_build_limits(GlobDfa::BuildLimits limits, bool strict);

  // Batch enforcement: decides queries[i] for `task`, writing verdicts[i].
  // Fills each query's subject fields in place from the task (callers set
  // only object_path and op). The subject resolution, generation read, and
  // rule-set snapshot are amortized over the whole batch; per-query AVC
  // probe/insert and denial auditing match check_op exactly, and with
  // observability on, every query still yields one trace record and one
  // sample per stage histogram (stage costs divided evenly across the
  // batch, keeping sample counts and percentiles comparable with the hook
  // path). Two deliberate deviations from the equivalent hook sequence:
  // per-query latencies are amortized rather than individually timed, and
  // batch queries carry no inode, so the per-inode label fast path does not
  // apply — misses take the rule set's own batch walk instead.
  // `verdicts.size()` must be >= `queries.size()`.
  void check_ops(const kernel::Task& task, std::span<AccessQuery> queries,
                 std::span<Errno> verdicts);

  std::string status_text() const;

  // --- observability ---
  // One runtime toggle gates the whole layer: hook timing, per-stage
  // histograms, and the trace ring. Off (the default), every hook pays one
  // relaxed atomic load and nothing else — the Table II overhead guarantee.
  // Toggle programmatically here or via the SACKfs `trace_enable` file.
  bool observing() const { return trace_.enabled(); }
  void set_observe(bool on) { trace_.set_enabled(on); }
  const TraceRing& trace_ring() const { return trace_; }
  // Human-readable dump (the SACKfs `metrics` file content).
  std::string metrics_text() const;
  // Machine-readable per-stage percentiles; benches embed this verbatim.
  std::string metrics_json() const;
  // Clears histograms, observability counters, and the trace ring (not the
  // enforcement counters surfaced in status_text).
  void reset_metrics();

  // --- LSM hooks (independent mode enforcement) ---
  Errno file_open(kernel::Task& task, const std::string& path,
                  const kernel::Inode& inode,
                  kernel::AccessMask access) override;
  Errno file_permission(kernel::Task& task, const kernel::File& file,
                        kernel::AccessMask access) override;
  Errno file_ioctl(kernel::Task& task, const kernel::File& file,
                   std::uint32_t cmd) override;
  Errno mmap_file(kernel::Task& task, const kernel::File& file,
                  kernel::AccessMask prot) override;
  Errno path_mknod(kernel::Task& task, const std::string& path,
                   kernel::InodeType type) override;
  Errno path_unlink(kernel::Task& task, const std::string& path) override;
  Errno path_mkdir(kernel::Task& task, const std::string& path) override;
  Errno path_rmdir(kernel::Task& task, const std::string& path) override;
  Errno path_rename(kernel::Task& task, const std::string& old_path,
                    const std::string& new_path) override;
  Errno path_symlink(kernel::Task& task, const std::string& path,
                     const std::string& target) override;
  Errno path_link(kernel::Task& task, const std::string& old_path,
                  const std::string& new_path) override;
  Errno path_truncate(kernel::Task& task, const std::string& path) override;
  Errno path_chmod(kernel::Task& task, const std::string& path,
                   kernel::FileMode mode) override;
  Errno path_chown(kernel::Task& task, const std::string& path,
                   kernel::Uid uid, kernel::Gid gid) override;
  Errno inode_getattr(kernel::Task& task, const std::string& path) override;
  Errno bprm_check_security(kernel::Task& task,
                            const std::string& path) override;
  void clock_tick(SimTime now) override;
  // SACK's security context is the (global) situation state plus the
  // permissions it grants this task's subject identity.
  std::string getprocattr(const kernel::Task& task) override;

 private:
  // The Adaptive Policy Enforcer: maps the current situation state to
  // active MAC rules (independent) or AppArmor profile patches (enhanced).
  // `force` rebuilds even when the permission set is unchanged (policy
  // load); transitions pass false so self-loops and equivalent states skip
  // the rebuild, the generation bump, and the AVC flush.
  void apply_current_state(bool force = false);
  void retract_all_injected();

  // `inode`, when the hook has one, enables the pre-resolved label cache: an
  // AVC miss re-runs only the activation-dependent half of the decision
  // against the label cached on the inode instead of the full matcher walk.
  Errno check_op(const kernel::Task& task, std::string_view path, MacOp op,
                 const kernel::Inode* inode = nullptr);
  Errno check_access_mask(const kernel::Task& task, std::string_view path,
                          kernel::AccessMask access,
                          const kernel::Inode* inode = nullptr);
  void note_denial(const kernel::Task& task, std::string_view path, MacOp op);
  std::string_view profile_of(const kernel::Task& task) const;
  // Occupancy + entry accounting and the transition trace record, shared by
  // the event and timed transition paths. `prev_entered` is the virtual time
  // the old state was entered (captured before the SSM moved).
  void note_transition(StateId from, StateId to, SimTime prev_entered,
                       SimTime now, std::string_view via);
  int current_encoding_or(int fallback) const {
    return ssm_ ? ssm_->current_encoding() : fallback;
  }

  SackMode mode_;
  std::function<void(std::string_view)> transition_listener_;
  bool revalidate_cache_ = true;
  bool avc_enabled_ = true;
  std::unique_ptr<RuleSetBase> rules_;
  AccessVectorCache avc_;
  SackPolicy policy_;
  bool loaded_ = false;
  std::optional<SituationStateMachine> ssm_;
  apparmor::AppArmorModule* apparmor_ = nullptr;
  kernel::Kernel* kernel_ = nullptr;

  void check_watchdog(SimTime now);
  // Stale-replay suppression: true if `seq` was already seen for `name`
  // (the delivery must become a no-op); otherwise records it.
  bool stale_event_seq(std::string_view name, std::uint64_t seq);

  std::atomic<std::uint64_t> generation_{1};
  std::uint64_t events_received_ = 0;
  std::uint64_t events_rejected_ = 0;
  std::uint64_t events_stale_ = 0;

  // --- watchdog state ---
  SimTime watchdog_deadline_ns_ = 0;  // 0 = no watchdog clause
  std::optional<StateId> failsafe_state_;
  SimTime last_sds_activity_ = 0;
  bool sds_alive_ = true;
  bool resync_pending_ = false;
  std::uint64_t watchdog_trips_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t heartbeats_received_ = 0;
  // Highest sequence number delivered per event name ("seq=<n> <event>"
  // lines); cleared on policy load and on resync (the SDS restarts at 1).
  StringMap<std::uint64_t> event_seq_;
  std::atomic<std::uint64_t> denials_{0};
  std::set<std::string> injected_perms_;
  // Permission set (sorted) the APE last applied; equality means a
  // transition is enforcement-neutral and can skip the rebuild.
  std::vector<std::string> applied_perms_;
  bool applied_valid_ = false;

  // --- observability state (tentpole: hook-path tracing + metrics) ---
  TraceRing trace_{TraceRing::kDefaultCapacity};
  struct PipelineMetrics {
    // check_op end-to-end, split into the AVC probe and (on miss) the
    // matcher walk — the per-hook attribution Table II cannot give.
    util::LatencyHistogram hook_total_ns;
    util::LatencyHistogram avc_probe_ns;
    util::LatencyHistogram matcher_walk_ns;
    // deliver_event entry -> enforcement applied (the event->APE latency).
    util::LatencyHistogram event_to_enforce_ns;
    // One APE application (rule activation or AppArmor reconcile).
    util::LatencyHistogram apply_state_ns;
    util::Counter events_accepted;
    util::Counter aa_rulesets_injected;
    util::Counter aa_rulesets_retracted;
  };
  PipelineMetrics metrics_;
  // Per-state SSM statistics, indexed by StateId; rebuilt on policy load.
  struct StateStats {
    util::Counter entries;
    util::Counter occupied_ns;  // virtual ns spent before each exit
  };
  std::unique_ptr<StateStats[]> state_stats_;
  std::size_t state_stats_count_ = 0;

  class EventsFile;
  class HeartbeatFile;
  class CurrentStateFile;
  class StatusFile;
  class PolicyLoadFile;
  class PolicyValidateFile;
  class SectionFile;
  class MetricsFile;
  class TraceFile;
  class TraceEnableFile;
  std::vector<std::unique_ptr<kernel::VirtualFileOps>> fs_files_;
  std::string last_validation_report_ = "(nothing validated yet)\n";
};

}  // namespace sack::core
