#include "core/policy.h"

#include <algorithm>
#include <set>

namespace sack::core {

std::string MacRule::to_text() const {
  std::string out = effect == RuleEffect::allow ? "allow " : "deny ";
  switch (subject_kind) {
    case SubjectKind::any: out += "*"; break;
    case SubjectKind::path: out += subject_text; break;
    case SubjectKind::profile: out += "@" + subject_text; break;
  }
  out += " " + object.pattern() + " ";
  // Ops as space-separated words (the parser's input form).
  bool first = true;
  for (std::size_t i = 0; i < kMacOpCount; ++i) {
    MacOp op = mac_op_from_index(i);
    if (has_any(ops, op)) {
      if (!first) out += ' ';
      out += mac_op_name(op);
      first = false;
    }
  }
  out += ";";
  return out;
}

bool SackPolicy::has_state(std::string_view name) const {
  return find_state(name) != nullptr;
}

const SituationState* SackPolicy::find_state(std::string_view name) const {
  for (const auto& s : states)
    if (s.name == name) return &s;
  return nullptr;
}

bool SackPolicy::has_permission(std::string_view name) const {
  return std::find(permissions.begin(), permissions.end(), name) !=
         permissions.end();
}

std::vector<std::string> SackPolicy::all_events() const {
  std::set<std::string> uniq(events.begin(), events.end());
  for (const auto& t : transitions) uniq.insert(t.event);
  return {uniq.begin(), uniq.end()};
}

std::vector<std::string> SackPolicy::permissions_of(
    std::string_view state) const {
  auto it = state_per.find(std::string(state));
  return it == state_per.end() ? std::vector<std::string>{} : it->second;
}

std::string SackPolicy::states_text() const {
  std::string out = "states {\n";
  for (const auto& s : states)
    out += "  " + s.name + " = " + std::to_string(s.encoding) + ";\n";
  out += "}\n";
  if (!initial_state.empty()) out += "initial " + initial_state + ";\n";
  if (!transitions.empty() || !timed_transitions.empty()) {
    out += "transitions {\n";
    for (const auto& t : transitions)
      out += "  " + t.from + " -> " + t.to + " on " + t.event + ";\n";
    for (const auto& t : timed_transitions)
      out += "  " + t.from + " -> " + t.to + " after " +
             std::to_string(t.after_ms) + ";\n";
    out += "}\n";
  }
  if (!events.empty()) {
    out += "events {\n";
    for (const auto& e : events) out += "  " + e + ";\n";
    out += "}\n";
  }
  return out;
}

std::string SackPolicy::watchdog_text() const {
  // An empty block is the canonical "no watchdog" dump: writing it to the
  // SACKfs section file clears the clause, so the round-trip is lossless.
  std::string out = "watchdog {\n";
  if (watchdog) {
    out += "  deadline " + std::to_string(watchdog->deadline_ms) + ";\n";
    out += "  failsafe " + watchdog->failsafe_state + ";\n";
  }
  out += "}\n";
  return out;
}

std::string SackPolicy::permissions_text() const {
  std::string out = "permissions {\n";
  for (const auto& p : permissions) out += "  " + p + ";\n";
  out += "}\n";
  return out;
}

std::string SackPolicy::state_per_text() const {
  std::string out = "state_per {\n";
  for (const auto& [state, perms] : state_per) {
    out += "  " + state + ":";
    for (std::size_t i = 0; i < perms.size(); ++i)
      out += (i ? ", " : " ") + perms[i];
    out += ";\n";
  }
  out += "}\n";
  return out;
}

std::string SackPolicy::per_rules_text() const {
  std::string out = "per_rules {\n";
  for (const auto& [perm, rules] : per_rules) {
    out += "  " + perm + " {\n";
    for (const auto& r : rules) out += "    " + r.to_text() + "\n";
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

std::string SackPolicy::to_text() const {
  return states_text() + (watchdog ? watchdog_text() : std::string{}) +
         permissions_text() + state_per_text() + per_rules_text();
}

}  // namespace sack::core
