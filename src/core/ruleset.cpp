#include "core/ruleset.h"

#include "util/fault.h"

namespace sack::core {

namespace detail {

bool subject_matches(const MacRule& rule, const AccessQuery& query) {
  switch (rule.subject_kind) {
    case SubjectKind::any:
      return true;
    case SubjectKind::path:
      return rule.subject_glob.matches(query.subject_exe);
    case SubjectKind::profile:
      return !query.subject_profile.empty() &&
             rule.subject_text == query.subject_profile;
  }
  return false;
}

}  // namespace detail

// --- CompiledRuleSet ---

CompiledRuleSet::CompiledRuleSet() {
  // Never-null snapshot: readers skip a branch, and a check() before the
  // first load() is simply "nothing guarded".
  snap_.store(make_snapshot(std::make_shared<const LoadedPolicy>(), {}));
}

bool CompiledRuleSet::LoadedPolicy::guarded(
    std::string_view object_path) const {
  if (guard_literals.contains(object_path)) return true;
  for (const Glob* g : guard_globs) {
    if (g->matches(object_path)) return true;
  }
  return false;
}

Result<void> CompiledRuleSet::load(const SackPolicy& policy) {
  if (auto err =
          util::FaultInjector::instance().fail_errno("sack.ruleset.load"))
    return *err;
  auto base = std::make_shared<LoadedPolicy>();
  base->policy = policy;  // own a copy: indexes borrow pointers into it

  for (const auto& [perm, rules] : base->policy.per_rules) {
    auto& slot = base->by_permission[perm];
    for (const auto& rule : rules) {
      slot.push_back(&rule);
      ++base->total_rules;
      if (rule.object.is_literal()) {
        base->guard_literals.insert(rule.object.literal());
      } else {
        base->guard_globs.push_back(&rule.object);
      }
    }
  }
  snap_.store(make_snapshot(std::move(base), {}));
  return {};
}

std::shared_ptr<const CompiledRuleSet::Snapshot> CompiledRuleSet::make_snapshot(
    std::shared_ptr<const LoadedPolicy> base,
    const std::vector<std::string>& permissions) {
  auto snap = std::make_shared<Snapshot>();
  for (const auto& perm : permissions) {
    auto it = base->by_permission.find(perm);
    if (it == base->by_permission.end()) continue;
    for (const MacRule* rule : it->second) {
      ++snap->active_rules;
      snap->active_list.push_back(rule);
      auto& tables = rule->effect == RuleEffect::allow ? snap->active_allow
                                                       : snap->active_deny;
      for (std::size_t i = 0; i < kMacOpCount; ++i) {
        if (!has_any(rule->ops, mac_op_from_index(i))) continue;
        if (rule->object.is_literal()) {
          tables[i].literal[rule->object.literal()].push_back({rule});
        } else {
          tables[i].globs.push_back({rule});
        }
      }
    }
  }
  snap->base = std::move(base);
  return snap;
}

void CompiledRuleSet::activate(const std::vector<std::string>& permissions) {
  // All rebuild work happens on this (control) thread against a private
  // snapshot; readers see either the old or the new one, never a partial.
  snap_.store(make_snapshot(snapshot()->base, permissions));
}

bool CompiledRuleSet::guarded(std::string_view object_path) const {
  return snapshot()->base->guarded(object_path);
}

std::size_t CompiledRuleSet::total_rule_count() const {
  return snapshot()->base->total_rules;
}

std::size_t CompiledRuleSet::active_rule_count() const {
  return snapshot()->active_rules;
}

std::vector<const MacRule*> CompiledRuleSet::active_rules() const {
  return snapshot()->active_list;
}

Errno CompiledRuleSet::check(const AccessQuery& query) const {
  // One snapshot for the whole decision: guard set and active indexes are
  // guaranteed mutually consistent, and stay alive until `snap` drops.
  const std::shared_ptr<const Snapshot> snap = snapshot();
  return decide(*snap, query);
}

void CompiledRuleSet::check_ops(std::span<const AccessQuery> queries,
                                std::span<Errno> verdicts) const {
  // One snapshot acquisition for the whole batch: every verdict is computed
  // on the same consistent activation, and the RcuPtr load is paid once.
  const std::shared_ptr<const Snapshot> snap = snapshot();
  for (std::size_t i = 0; i < queries.size(); ++i)
    verdicts[i] = decide(*snap, queries[i]);
}

Errno CompiledRuleSet::decide(const Snapshot& snap, const AccessQuery& query) {
  if (!snap.base->guarded(query.object_path)) return Errno::ok;

  const std::size_t op = mac_op_index(query.op);
  if (op >= kMacOpCount) return Errno::einval;

  // Deny rules first: deny wins over any allow.
  const OpTable& deny = snap.active_deny[op];
  if (!deny.literal.empty()) {
    auto it = deny.literal.find(query.object_path);
    if (it != deny.literal.end()) {
      for (const auto& r : it->second) {
        if (detail::subject_matches(*r.rule, query)) return Errno::eacces;
      }
    }
  }
  for (const auto& r : deny.globs) {
    if (r.rule->object.matches(query.object_path) &&
        detail::subject_matches(*r.rule, query))
      return Errno::eacces;
  }

  const OpTable& allow = snap.active_allow[op];
  if (!allow.literal.empty()) {
    auto it = allow.literal.find(query.object_path);
    if (it != allow.literal.end()) {
      for (const auto& r : it->second) {
        if (detail::subject_matches(*r.rule, query)) return Errno::ok;
      }
    }
  }
  for (const auto& r : allow.globs) {
    if (r.rule->object.matches(query.object_path) &&
        detail::subject_matches(*r.rule, query))
      return Errno::ok;
  }
  return Errno::eacces;  // guarded and not allowed in the current state
}

// --- DfaRuleSet (table-driven matcher) ---

namespace {
// Process-wide label-generation source. Labels are stamped onto inodes that
// several module/rule-set instances can share (one VFS, stacked or test
// fixtures side by side), and the inode cache keys on (module name, gen):
// per-instance counters would both count 1, 2, 3…, letting one instance hit
// a label resolved under another's rule numbering. A global counter makes
// every load() generation unique across the process.
std::atomic<std::uint64_t> g_label_gen{0};
}  // namespace

DfaRuleSet::DfaRuleSet() {
  // Never-null snapshot, same contract as CompiledRuleSet.
  snap_.store(make_snapshot(std::make_shared<const Program>(), {}));
}

std::shared_ptr<const ObjectLabel> DfaRuleSet::Program::resolve(
    std::string_view path) const {
  // Copy the accept mask out of the DFA's per-state storage rather than
  // aliasing it: resolve() feeds the inode label cache, and an aliased
  // pointer would keep this entire Program (policy copy + DFA tables) alive
  // for as long as any inode anywhere still holds a label from it. The copy
  // costs one allocation on the resolve (store) path only — label *hits*
  // never come through here.
  if (dfa) return std::make_shared<ObjectLabel>(dfa->match(path));
  // Scan fallback: materialize the mask rule by rule.
  auto label = std::make_shared<ObjectLabel>(rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i]->object.matches(path)) label->set(i);
  }
  return label;
}

Result<void> DfaRuleSet::load(const SackPolicy& policy) {
  if (auto err =
          util::FaultInjector::instance().fail_errno("sack.ruleset.load"))
    return *err;
  auto base = std::make_shared<Program>();
  base->policy = policy;  // own a copy: rule ids index into it

  for (const auto& [perm, rules] : base->policy.per_rules) {
    auto& slot = base->by_permission[perm];
    for (const auto& rule : rules) {
      slot.push_back(static_cast<std::uint32_t>(base->rules.size()));
      base->rules.push_back(&rule);
    }
  }
  std::vector<const Glob*> patterns;
  patterns.reserve(base->rules.size());
  for (const MacRule* rule : base->rules) patterns.push_back(&rule->object);
  if (!patterns.empty()) {
    auto dfa = GlobDfa::build(patterns, build_limits_);
    if (dfa.ok()) {
      base->dfa = std::move(dfa).value();
    } else if (strict_build_) {
      // Budget blown in strict mode: fail the load with nothing published.
      // The generation counter was never touched; inode labels, the AVC,
      // and the previous program all stay exactly as they were.
      return dfa.error();
    }
    // else: budget blown — keep the scan fallback (correctness unchanged).
  }
  base->empty_label = ObjectLabel(base->rules.size());
  base->label_gen =
      g_label_gen.fetch_add(1, std::memory_order_relaxed) + 1;  // never 0
  snap_.store(make_snapshot(std::move(base), {}));
  return {};
}

std::shared_ptr<const DfaRuleSet::Snapshot> DfaRuleSet::make_snapshot(
    std::shared_ptr<const Program> base,
    const std::vector<std::string>& permissions) {
  auto snap = std::make_shared<Snapshot>();
  const std::size_t n = base->rules.size();
  snap->active_allow.assign(kMacOpCount, ObjectLabel(n));
  snap->active_deny.assign(kMacOpCount, ObjectLabel(n));
  for (const auto& perm : permissions) {
    auto it = base->by_permission.find(perm);
    if (it == base->by_permission.end()) continue;
    for (std::uint32_t id : it->second) {
      const MacRule* rule = base->rules[id];
      snap->active_list.push_back(rule);
      auto& masks = rule->effect == RuleEffect::allow ? snap->active_allow
                                                      : snap->active_deny;
      for (std::size_t i = 0; i < kMacOpCount; ++i) {
        if (has_any(rule->ops, mac_op_from_index(i))) masks[i].set(id);
      }
    }
  }
  snap->base = std::move(base);
  return snap;
}

void DfaRuleSet::activate(const std::vector<std::string>& permissions) {
  // The DFA is untouched: a transition republishes only the active masks.
  snap_.store(make_snapshot(snapshot()->base, permissions));
}

Errno DfaRuleSet::decide(const Snapshot& snap, const AccessQuery& query,
                         const ObjectLabel& label) {
  // An empty label means no loaded rule names this path: unguarded, OK.
  if (label.none()) return Errno::ok;

  const std::size_t op = mac_op_index(query.op);
  if (op >= kMacOpCount) return Errno::einval;

  const std::vector<const MacRule*>& rules = snap.base->rules;
  // Deny wins over any allow; subject predicates only run on the (few)
  // candidate rules the mask intersection leaves.
  Errno verdict = Errno::eacces;
  bool denied = false;
  DenseBitset::for_each_and(label, snap.active_deny[op],
                            [&](std::size_t id) {
                              if (!denied &&
                                  detail::subject_matches(*rules[id], query))
                                denied = true;
                            });
  if (denied) return Errno::eacces;
  DenseBitset::for_each_and(label, snap.active_allow[op],
                            [&](std::size_t id) {
                              if (verdict != Errno::ok &&
                                  detail::subject_matches(*rules[id], query))
                                verdict = Errno::ok;
                            });
  return verdict;  // guarded and not allowed in the current state: EACCES
}

Errno DfaRuleSet::check(const AccessQuery& query) const {
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const Program& prog = *snap->base;
  if (prog.dfa) {
    // One pass over the path; the accept mask is a reference into the DFA —
    // the whole decision is allocation-free.
    return decide(*snap, query, prog.dfa->match(query.object_path));
  }
  auto label = prog.resolve(query.object_path);
  return decide(*snap, query, *label);
}

void DfaRuleSet::check_ops(std::span<const AccessQuery> queries,
                           std::span<Errno> verdicts) const {
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const Program& prog = *snap->base;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (prog.dfa) {
      verdicts[i] =
          decide(*snap, queries[i], prog.dfa->match(queries[i].object_path));
    } else {
      auto label = prog.resolve(queries[i].object_path);
      verdicts[i] = decide(*snap, queries[i], *label);
    }
  }
}

bool DfaRuleSet::guarded(std::string_view object_path) const {
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const Program& prog = *snap->base;
  if (prog.dfa) return prog.dfa->match(object_path).any();
  for (const MacRule* rule : prog.rules) {
    if (rule->object.matches(object_path)) return true;
  }
  return false;
}

std::uint64_t DfaRuleSet::label_generation() const {
  return snapshot()->base->label_gen;
}

std::shared_ptr<const ObjectLabel> DfaRuleSet::resolve_label(
    std::string_view path) const {
  return snapshot()->base->resolve(path);
}

Errno DfaRuleSet::check_labeled(const AccessQuery& query,
                                const ObjectLabel& label,
                                std::uint64_t generation) const {
  const std::shared_ptr<const Snapshot> snap = snapshot();
  // A label carries bit indices of the Program it was resolved under; if a
  // load() republished since, the numbering is stale — recompute instead of
  // intersecting apples with oranges.
  if (snap->base->label_gen != generation) return check(query);
  return decide(*snap, query, label);
}

std::size_t DfaRuleSet::total_rule_count() const {
  return snapshot()->base->rules.size();
}

std::size_t DfaRuleSet::active_rule_count() const {
  return snapshot()->active_list.size();
}

std::vector<const MacRule*> DfaRuleSet::active_rules() const {
  return snapshot()->active_list;
}

bool DfaRuleSet::table_driven() const {
  return snapshot()->base->dfa.has_value();
}

// --- LinearRuleSet (ablation baseline) ---

Result<void> LinearRuleSet::load(const SackPolicy& policy) {
  if (auto err =
          util::FaultInjector::instance().fail_errno("sack.ruleset.load"))
    return *err;
  policy_ = policy;
  active_.clear();
  return {};
}

void LinearRuleSet::activate(const std::vector<std::string>& permissions) {
  active_.clear();
  for (const auto& perm : permissions) {
    auto it = policy_.per_rules.find(perm);
    if (it == policy_.per_rules.end()) continue;
    for (const auto& rule : it->second) active_.push_back(&rule);
  }
}

bool LinearRuleSet::guarded(std::string_view object_path) const {
  // Naive: scan every rule of every permission.
  for (const auto& [perm, rules] : policy_.per_rules) {
    for (const auto& rule : rules) {
      if (rule.object.matches(object_path)) return true;
    }
  }
  return false;
}

std::size_t LinearRuleSet::total_rule_count() const {
  std::size_t n = 0;
  for (const auto& [perm, rules] : policy_.per_rules) n += rules.size();
  return n;
}

Errno LinearRuleSet::check(const AccessQuery& query) const {
  if (!guarded(query.object_path)) return Errno::ok;
  bool allowed = false;
  for (const MacRule* rule : active_) {
    if (!has_any(rule->ops, query.op)) continue;
    if (!rule->object.matches(query.object_path)) continue;
    if (!detail::subject_matches(*rule, query)) continue;
    if (rule->effect == RuleEffect::deny) return Errno::eacces;
    allowed = true;
  }
  return allowed ? Errno::ok : Errno::eacces;
}

}  // namespace sack::core
