#include "core/ruleset.h"

namespace sack::core {

namespace detail {

bool subject_matches(const MacRule& rule, const AccessQuery& query) {
  switch (rule.subject_kind) {
    case SubjectKind::any:
      return true;
    case SubjectKind::path:
      return rule.subject_glob.matches(query.subject_exe);
    case SubjectKind::profile:
      return !query.subject_profile.empty() &&
             rule.subject_text == query.subject_profile;
  }
  return false;
}

}  // namespace detail

// --- CompiledRuleSet ---

CompiledRuleSet::CompiledRuleSet() {
  // Never-null snapshot: readers skip a branch, and a check() before the
  // first load() is simply "nothing guarded".
  snap_.store(make_snapshot(std::make_shared<const LoadedPolicy>(), {}));
}

bool CompiledRuleSet::LoadedPolicy::guarded(
    std::string_view object_path) const {
  if (guard_literals.contains(object_path)) return true;
  for (const Glob* g : guard_globs) {
    if (g->matches(object_path)) return true;
  }
  return false;
}

void CompiledRuleSet::load(const SackPolicy& policy) {
  auto base = std::make_shared<LoadedPolicy>();
  base->policy = policy;  // own a copy: indexes borrow pointers into it

  for (const auto& [perm, rules] : base->policy.per_rules) {
    auto& slot = base->by_permission[perm];
    for (const auto& rule : rules) {
      slot.push_back(&rule);
      ++base->total_rules;
      if (rule.object.is_literal()) {
        base->guard_literals.insert(rule.object.literal());
      } else {
        base->guard_globs.push_back(&rule.object);
      }
    }
  }
  snap_.store(make_snapshot(std::move(base), {}));
}

std::shared_ptr<const CompiledRuleSet::Snapshot> CompiledRuleSet::make_snapshot(
    std::shared_ptr<const LoadedPolicy> base,
    const std::vector<std::string>& permissions) {
  auto snap = std::make_shared<Snapshot>();
  for (const auto& perm : permissions) {
    auto it = base->by_permission.find(perm);
    if (it == base->by_permission.end()) continue;
    for (const MacRule* rule : it->second) {
      ++snap->active_rules;
      snap->active_list.push_back(rule);
      auto& tables = rule->effect == RuleEffect::allow ? snap->active_allow
                                                       : snap->active_deny;
      for (std::size_t i = 0; i < kMacOpCount; ++i) {
        if (!has_any(rule->ops, mac_op_from_index(i))) continue;
        if (rule->object.is_literal()) {
          tables[i].literal[rule->object.literal()].push_back({rule});
        } else {
          tables[i].globs.push_back({rule});
        }
      }
    }
  }
  snap->base = std::move(base);
  return snap;
}

void CompiledRuleSet::activate(const std::vector<std::string>& permissions) {
  // All rebuild work happens on this (control) thread against a private
  // snapshot; readers see either the old or the new one, never a partial.
  snap_.store(make_snapshot(snapshot()->base, permissions));
}

bool CompiledRuleSet::guarded(std::string_view object_path) const {
  return snapshot()->base->guarded(object_path);
}

std::size_t CompiledRuleSet::total_rule_count() const {
  return snapshot()->base->total_rules;
}

std::size_t CompiledRuleSet::active_rule_count() const {
  return snapshot()->active_rules;
}

std::vector<const MacRule*> CompiledRuleSet::active_rules() const {
  return snapshot()->active_list;
}

Errno CompiledRuleSet::check(const AccessQuery& query) const {
  // One snapshot for the whole decision: guard set and active indexes are
  // guaranteed mutually consistent, and stay alive until `snap` drops.
  const std::shared_ptr<const Snapshot> snap = snapshot();
  if (!snap->base->guarded(query.object_path)) return Errno::ok;

  const std::size_t op = mac_op_index(query.op);
  if (op >= kMacOpCount) return Errno::einval;

  // Deny rules first: deny wins over any allow.
  const OpTable& deny = snap->active_deny[op];
  if (!deny.literal.empty()) {
    auto it = deny.literal.find(query.object_path);
    if (it != deny.literal.end()) {
      for (const auto& r : it->second) {
        if (detail::subject_matches(*r.rule, query)) return Errno::eacces;
      }
    }
  }
  for (const auto& r : deny.globs) {
    if (r.rule->object.matches(query.object_path) &&
        detail::subject_matches(*r.rule, query))
      return Errno::eacces;
  }

  const OpTable& allow = snap->active_allow[op];
  if (!allow.literal.empty()) {
    auto it = allow.literal.find(query.object_path);
    if (it != allow.literal.end()) {
      for (const auto& r : it->second) {
        if (detail::subject_matches(*r.rule, query)) return Errno::ok;
      }
    }
  }
  for (const auto& r : allow.globs) {
    if (r.rule->object.matches(query.object_path) &&
        detail::subject_matches(*r.rule, query))
      return Errno::ok;
  }
  return Errno::eacces;  // guarded and not allowed in the current state
}

// --- LinearRuleSet (ablation baseline) ---

void LinearRuleSet::load(const SackPolicy& policy) {
  policy_ = policy;
  active_.clear();
}

void LinearRuleSet::activate(const std::vector<std::string>& permissions) {
  active_.clear();
  for (const auto& perm : permissions) {
    auto it = policy_.per_rules.find(perm);
    if (it == policy_.per_rules.end()) continue;
    for (const auto& rule : it->second) active_.push_back(&rule);
  }
}

bool LinearRuleSet::guarded(std::string_view object_path) const {
  // Naive: scan every rule of every permission.
  for (const auto& [perm, rules] : policy_.per_rules) {
    for (const auto& rule : rules) {
      if (rule.object.matches(object_path)) return true;
    }
  }
  return false;
}

std::size_t LinearRuleSet::total_rule_count() const {
  std::size_t n = 0;
  for (const auto& [perm, rules] : policy_.per_rules) n += rules.size();
  return n;
}

Errno LinearRuleSet::check(const AccessQuery& query) const {
  if (!guarded(query.object_path)) return Errno::ok;
  bool allowed = false;
  for (const MacRule* rule : active_) {
    if (!has_any(rule->ops, query.op)) continue;
    if (!rule->object.matches(query.object_path)) continue;
    if (!detail::subject_matches(*rule, query)) continue;
    if (rule->effect == RuleEffect::deny) return Errno::eacces;
    allowed = true;
  }
  return allowed ? Errno::ok : Errno::eacces;
}

}  // namespace sack::core
