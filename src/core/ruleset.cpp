#include "core/ruleset.h"

namespace sack::core {

namespace detail {

bool subject_matches(const MacRule& rule, const AccessQuery& query) {
  switch (rule.subject_kind) {
    case SubjectKind::any:
      return true;
    case SubjectKind::path:
      return rule.subject_glob.matches(query.subject_exe);
    case SubjectKind::profile:
      return !query.subject_profile.empty() &&
             rule.subject_text == query.subject_profile;
  }
  return false;
}

}  // namespace detail

// --- CompiledRuleSet ---

void CompiledRuleSet::load(const SackPolicy& policy) {
  policy_ = policy;  // own a copy: indexes borrow pointers into it
  guard_literals_.clear();
  guard_globs_.clear();
  by_permission_.clear();
  total_rules_ = 0;

  for (const auto& [perm, rules] : policy_.per_rules) {
    auto& slot = by_permission_[perm];
    for (const auto& rule : rules) {
      slot.push_back(&rule);
      ++total_rules_;
      if (rule.object.is_literal()) {
        guard_literals_.insert(rule.object.literal());
      } else {
        guard_globs_.push_back(&rule.object);
      }
    }
  }
  activate({});
}

void CompiledRuleSet::activate(const std::vector<std::string>& permissions) {
  for (auto& t : active_allow_) {
    t.literal.clear();
    t.globs.clear();
  }
  for (auto& t : active_deny_) {
    t.literal.clear();
    t.globs.clear();
  }
  active_rules_ = 0;

  for (const auto& perm : permissions) {
    auto it = by_permission_.find(perm);
    if (it == by_permission_.end()) continue;
    for (const MacRule* rule : it->second) {
      ++active_rules_;
      auto& tables =
          rule->effect == RuleEffect::allow ? active_allow_ : active_deny_;
      for (std::size_t i = 0; i < kMacOpCount; ++i) {
        if (!has_any(rule->ops, mac_op_from_index(i))) continue;
        if (rule->object.is_literal()) {
          tables[i].literal[rule->object.literal()].push_back({rule});
        } else {
          tables[i].globs.push_back({rule});
        }
      }
    }
  }
}

bool CompiledRuleSet::guarded(std::string_view object_path) const {
  if (guard_literals_.contains(object_path)) return true;
  for (const Glob* g : guard_globs_) {
    if (g->matches(object_path)) return true;
  }
  return false;
}

Errno CompiledRuleSet::check(const AccessQuery& query) const {
  if (!guarded(query.object_path)) return Errno::ok;

  const std::size_t op = mac_op_index(query.op);
  if (op >= kMacOpCount) return Errno::einval;

  // Deny rules first: deny wins over any allow.
  const OpTable& deny = active_deny_[op];
  if (!deny.literal.empty()) {
    auto it = deny.literal.find(query.object_path);
    if (it != deny.literal.end()) {
      for (const auto& r : it->second) {
        if (detail::subject_matches(*r.rule, query)) return Errno::eacces;
      }
    }
  }
  for (const auto& r : deny.globs) {
    if (r.rule->object.matches(query.object_path) &&
        detail::subject_matches(*r.rule, query))
      return Errno::eacces;
  }

  const OpTable& allow = active_allow_[op];
  if (!allow.literal.empty()) {
    auto it = allow.literal.find(query.object_path);
    if (it != allow.literal.end()) {
      for (const auto& r : it->second) {
        if (detail::subject_matches(*r.rule, query)) return Errno::ok;
      }
    }
  }
  for (const auto& r : allow.globs) {
    if (r.rule->object.matches(query.object_path) &&
        detail::subject_matches(*r.rule, query))
      return Errno::ok;
  }
  return Errno::eacces;  // guarded and not allowed in the current state
}

// --- LinearRuleSet (ablation baseline) ---

void LinearRuleSet::load(const SackPolicy& policy) {
  policy_ = policy;
  active_.clear();
}

void LinearRuleSet::activate(const std::vector<std::string>& permissions) {
  active_.clear();
  for (const auto& perm : permissions) {
    auto it = policy_.per_rules.find(perm);
    if (it == policy_.per_rules.end()) continue;
    for (const auto& rule : it->second) active_.push_back(&rule);
  }
}

bool LinearRuleSet::guarded(std::string_view object_path) const {
  // Naive: scan every rule of every permission.
  for (const auto& [perm, rules] : policy_.per_rules) {
    for (const auto& rule : rules) {
      if (rule.object.matches(object_path)) return true;
    }
  }
  return false;
}

std::size_t LinearRuleSet::total_rule_count() const {
  std::size_t n = 0;
  for (const auto& [perm, rules] : policy_.per_rules) n += rules.size();
  return n;
}

Errno LinearRuleSet::check(const AccessQuery& query) const {
  if (!guarded(query.object_path)) return Errno::ok;
  bool allowed = false;
  for (const MacRule* rule : active_) {
    if (!has_any(rule->ops, query.op)) continue;
    if (!rule->object.matches(query.object_path)) continue;
    if (!detail::subject_matches(*rule, query)) continue;
    if (rule->effect == RuleEffect::deny) return Errno::eacces;
    allowed = true;
  }
  return allowed ? Errno::ok : Errno::eacces;
}

}  // namespace sack::core
