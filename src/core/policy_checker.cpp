#include "core/policy_checker.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "util/glob_subsume.h"

namespace sack::core {

std::string Diagnostic::to_string() const {
  return std::string(severity == Severity::error ? "error: " : "warning: ") +
         message;
}

bool has_errors(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) {
                       return d.severity == Severity::error;
                     });
}

namespace {

// True if `general`'s subject matches every task `specific`'s subject
// matches: '*' covers everything, profile subjects compare by name, path
// subjects by glob containment. Path and profile subjects constrain
// different identities (executable vs AppArmor label), so neither covers
// the other.
bool subject_subsumes(const MacRule& general, const MacRule& specific) {
  if (general.subject_kind == SubjectKind::any) return true;
  if (specific.subject_kind == SubjectKind::any) return false;
  if (general.subject_kind != specific.subject_kind) return false;
  if (general.subject_kind == SubjectKind::profile)
    return general.subject_text == specific.subject_text;
  return glob_subsumes(general.subject_glob, specific.subject_glob)
      .subsumes();
}

// True if the deny covers every access the allow could grant: subject,
// object pattern (by glob containment — `deny * /data/** read` shadows
// `allow * /data/logs/app.log read`), and operation mask. An `undecided`
// containment verdict (budget blown on pathological patterns) produces no
// warning rather than a wrong one.
bool deny_shadows(const MacRule& deny, const MacRule& allow) {
  if (!has_all(deny.ops, allow.ops)) return false;
  if (!subject_subsumes(deny, allow)) return false;
  return glob_subsumes(deny.object, allow.object).subsumes();
}

}  // namespace

std::vector<Diagnostic> check_policy(const SackPolicy& policy,
                                     CheckMode mode) {
  std::vector<Diagnostic> out;
  auto error = [&out](CheckCode code, std::string msg) {
    out.push_back({Severity::error, code, std::move(msg)});
  };
  auto warn = [&out](CheckCode code, std::string msg) {
    out.push_back({Severity::warning, code, std::move(msg)});
  };

  // --- states ---
  if (policy.states.empty()) {
    error(CheckCode::no_states, "policy declares no situation states");
    return out;
  }
  {
    std::set<std::string> names;
    std::map<int, std::string> encodings;
    for (const auto& s : policy.states) {
      if (!names.insert(s.name).second)
        error(CheckCode::duplicate_state_name,
              "duplicate situation state '" + s.name + "'");
      auto [it, inserted] = encodings.emplace(s.encoding, s.name);
      if (!inserted)
        error(CheckCode::duplicate_state_encoding,
              "states '" + it->second + "' and '" + s.name +
                  "' share encoding " + std::to_string(s.encoding));
    }
  }
  if (policy.initial_state.empty()) {
    error(CheckCode::missing_initial, "no initial state declared");
  } else if (!policy.has_state(policy.initial_state)) {
    error(CheckCode::undefined_initial,
          "initial state '" + policy.initial_state + "' is not declared");
  }

  // --- transitions ---
  std::map<std::pair<std::string, std::string>, std::string> seen_transition;
  for (const auto& t : policy.transitions) {
    if (!policy.has_state(t.from))
      error(CheckCode::undefined_transition_state,
            "transition source state '" + t.from + "' is not declared");
    if (!policy.has_state(t.to))
      error(CheckCode::undefined_transition_state,
            "transition target state '" + t.to + "' is not declared");
    auto key = std::pair{t.from, t.event};
    auto [it, inserted] = seen_transition.emplace(key, t.to);
    if (!inserted && it->second != t.to)
      error(CheckCode::nondeterministic_transition,
            "state '" + t.from + "' has conflicting transitions on event '" +
                t.event + "' (to '" + it->second + "' and '" + t.to + "')");
  }

  // --- timed transitions (extension) ---
  {
    std::set<std::string> timed_sources;
    for (const auto& t : policy.timed_transitions) {
      if (!policy.has_state(t.from))
        error(CheckCode::undefined_transition_state,
              "timed transition source state '" + t.from +
                  "' is not declared");
      if (!policy.has_state(t.to))
        error(CheckCode::undefined_transition_state,
              "timed transition target state '" + t.to + "' is not declared");
      if (t.after_ms <= 0)
        error(CheckCode::nondeterministic_transition,
              "timed transition from '" + t.from +
                  "' has a non-positive delay");
      if (!timed_sources.insert(t.from).second)
        error(CheckCode::nondeterministic_transition,
              "state '" + t.from + "' has more than one timed transition");
    }
  }

  // --- watchdog (extension) ---
  if (policy.watchdog) {
    if (policy.watchdog->deadline_ms <= 0)
      error(CheckCode::invalid_watchdog_deadline,
            "watchdog deadline must be a positive number of milliseconds");
    if (policy.watchdog->failsafe_state.empty())
      error(CheckCode::undefined_watchdog_state,
            "watchdog declares no failsafe state");
    else if (!policy.has_state(policy.watchdog->failsafe_state))
      error(CheckCode::undefined_watchdog_state,
            "watchdog failsafe state '" + policy.watchdog->failsafe_state +
                "' is not declared");
  }

  // --- reachability from the initial state ---
  if (policy.has_state(policy.initial_state)) {
    std::set<std::string> reachable{policy.initial_state};
    std::queue<std::string> frontier;
    frontier.push(policy.initial_state);
    // The watchdog can force the SSM into its failsafe state from anywhere,
    // so that state (and everything below it) is reachable by design.
    if (policy.watchdog && policy.has_state(policy.watchdog->failsafe_state) &&
        reachable.insert(policy.watchdog->failsafe_state).second)
      frontier.push(policy.watchdog->failsafe_state);
    while (!frontier.empty()) {
      std::string cur = frontier.front();
      frontier.pop();
      for (const auto& t : policy.transitions) {
        if (t.from == cur && reachable.insert(t.to).second) frontier.push(t.to);
      }
      for (const auto& t : policy.timed_transitions) {
        if (t.from == cur && reachable.insert(t.to).second) frontier.push(t.to);
      }
    }
    for (const auto& s : policy.states) {
      if (!reachable.contains(s.name))
        warn(CheckCode::unreachable_state,
             "situation state '" + s.name +
                 "' is unreachable from the initial state");
    }
  }

  // --- permissions ---
  {
    std::set<std::string> perms;
    for (const auto& p : policy.permissions) {
      if (!perms.insert(p).second)
        error(CheckCode::duplicate_permission,
              "duplicate permission '" + p + "'");
    }
  }

  // --- state_per ---
  std::set<std::string> granted_somewhere;
  for (const auto& [state, perms] : policy.state_per) {
    if (!policy.has_state(state))
      error(CheckCode::undefined_state_in_state_per,
            "State_Per references undeclared state '" + state + "'");
    for (const auto& p : perms) {
      if (!policy.has_permission(p))
        error(CheckCode::undefined_permission_in_state_per,
              "State_Per grants undeclared permission '" + p + "' in state '" +
                  state + "'");
      granted_somewhere.insert(p);
    }
  }
  for (const auto& p : policy.permissions) {
    if (!granted_somewhere.contains(p))
      warn(CheckCode::permission_never_granted,
           "permission '" + p + "' is never granted by any state");
  }

  // --- per_rules ---
  for (const auto& [perm, rules] : policy.per_rules) {
    if (!policy.has_permission(perm))
      error(CheckCode::undefined_permission_in_per_rules,
            "Per_Rules defines rules for undeclared permission '" + perm +
                "'");
    for (const auto& r : rules) {
      if (r.subject_kind == SubjectKind::profile &&
          mode == CheckMode::independent)
        error(CheckCode::profile_subject_in_independent_mode,
              "rule in '" + perm + "' names AppArmor profile '@" +
                  r.subject_text +
                  "' but independent SACK has no profiles to match");
      if (r.subject_kind == SubjectKind::path &&
          mode == CheckMode::apparmor_enhanced)
        warn(CheckCode::path_subject_in_enhanced_mode,
             "rule in '" + perm + "' uses a path subject '" + r.subject_text +
                 "'; SACK-enhanced AppArmor only injects '@profile' rules");
    }
    // Dead allows: an allow rule can never take effect when a deny in the
    // same permission subsumes it — same or broader subject, an object
    // pattern that contains the allow's (decided by util/glob_subsume), and
    // a superset of its ops. (Cross-permission shadows depend on which
    // permissions are co-active, i.e. on State_Per and reachability; the
    // verify subsystem's state-level shadow analysis covers those.)
    for (const auto& r : rules) {
      if (r.effect != RuleEffect::allow) continue;
      for (const auto& d : rules) {
        if (d.effect != RuleEffect::deny) continue;
        if (deny_shadows(d, r)) {
          warn(CheckCode::shadowed_allow_rule,
               "allow rule '" + r.to_text() + "' in '" + perm +
                   "' is fully shadowed by deny rule '" + d.to_text() + "'");
        }
      }
    }
  }
  for (const auto& p : policy.permissions) {
    auto it = policy.per_rules.find(p);
    if (it == policy.per_rules.end() || it->second.empty())
      warn(CheckCode::permission_without_rules,
           "permission '" + p + "' has no MAC rules (grants nothing)");
  }

  // --- declared events ---
  {
    std::set<std::string> used;
    for (const auto& t : policy.transitions) used.insert(t.event);
    for (const auto& e : policy.events) {
      if (!used.contains(e))
        warn(CheckCode::declared_event_unused,
             "declared event '" + e + "' triggers no transition");
    }
  }

  return out;
}

}  // namespace sack::core
