// PolicyChecker: semantic validation of a SackPolicy — the paper's
// "policy-checking tools [that] handle errors and conflicts" (§III-D).
//
// Errors make the policy unloadable; warnings indicate likely mistakes
// (dead rules, unreachable states) but do not block loading.
#pragma once

#include <string>
#include <vector>

#include "core/policy.h"

namespace sack::core {

enum class Severity : std::uint8_t { warning, error };

enum class CheckCode : std::uint8_t {
  // errors
  no_states,
  duplicate_state_name,
  duplicate_state_encoding,
  missing_initial,
  undefined_initial,
  undefined_transition_state,
  nondeterministic_transition,
  duplicate_permission,
  undefined_state_in_state_per,
  undefined_permission_in_state_per,
  undefined_permission_in_per_rules,
  profile_subject_in_independent_mode,
  invalid_watchdog_deadline,
  undefined_watchdog_state,
  // warnings
  unreachable_state,
  permission_never_granted,
  permission_without_rules,
  declared_event_unused,
  shadowed_allow_rule,
  path_subject_in_enhanced_mode,
};

struct Diagnostic {
  Severity severity{};
  CheckCode code{};
  std::string message;

  std::string to_string() const;
};

// Mode-dependent checks: independent SACK enforces its own rules (profile
// subjects can never match), SACK-enhanced AppArmor injects into profiles
// (path subjects are ignored by the APE).
enum class CheckMode : std::uint8_t { independent, apparmor_enhanced, any };

std::vector<Diagnostic> check_policy(const SackPolicy& policy,
                                     CheckMode mode = CheckMode::any);

bool has_errors(const std::vector<Diagnostic>& diagnostics);

}  // namespace sack::core
