#include "core/avc.h"

namespace sack::core {

AccessVectorCache::AccessVectorCache(std::size_t capacity)
    : shards_(std::make_unique<Shard[]>(kShards)),
      shard_capacity_(capacity >= kShards ? capacity / kShards : 1) {}

std::optional<Errno> AccessVectorCache::probe(const AccessQuery& query,
                                              std::uint64_t generation) const {
  const KeyView key{query.subject_exe, query.subject_profile,
                    query.object_path, query.op};
  const std::size_t hash = KeyHash{}(key);
  Shard& shard = shard_for(hash);
  {
    util::SharedReadLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.generation == generation) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.verdict;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void AccessVectorCache::insert(const AccessQuery& query,
                               std::uint64_t generation, Errno verdict) {
  // Probe with the transparent view key first: re-stamping an existing entry
  // (the common case after an AVC flush — same queries, new generation)
  // never copies the key strings. Only a genuinely new entry materializes an
  // owned Key.
  const KeyView view{query.subject_exe, query.subject_profile,
                     query.object_path, query.op};
  const std::size_t hash = KeyHash{}(view);
  Shard& shard = shard_for(hash);
  util::WriteLock lock(shard.mu);
  auto it = shard.map.find(view);
  if (it != shard.map.end()) {
    it->second = Entry{verdict, generation};
    return;
  }
  if (shard.map.size() >= shard_capacity_) {
    shard.map.erase(shard.map.begin());
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  Key key{std::string(query.subject_exe), std::string(query.subject_profile),
          std::string(query.object_path), query.op};
  shard.map.emplace(std::move(key), Entry{verdict, generation});
}

void AccessVectorCache::invalidate_all() {
  for (std::size_t i = 0; i < kShards; ++i) {
    util::WriteLock lock(shards_[i].mu);
    shards_[i].map.clear();
  }
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

AccessVectorCache::Stats AccessVectorCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.capacity = shard_capacity_ * kShards;
  for (std::size_t i = 0; i < kShards; ++i) {
    util::SharedReadLock lock(shards_[i].mu);
    s.entries += shards_[i].map.size();
  }
  return s;
}

void AccessVectorCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
}

}  // namespace sack::core
