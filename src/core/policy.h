// SackPolicy: the in-memory model of the four SACK policy interfaces
// (Table I of the paper): States, Permissions, State_Per, Per_Rules.
//
// Each enforcement policy is conceptually the triple (SS_i, P_i, MR_i): a
// situation state, the SACK permissions it grants, and the MAC rules each
// permission expands to.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/mac_ops.h"
#include "util/glob.h"

namespace sack::core {

// --- States interface ---

struct SituationState {
  std::string name;
  int encoding = 0;  // the kernel-side numeric security-context value
};

struct TransitionRule {
  std::string from;
  std::string event;
  std::string to;
};

// Extension beyond the paper: a dwell-time transition. After `after_ms`
// milliseconds in `from` (with no other transition resetting the clock) the
// SSM moves to `to` on the next kernel clock tick. The motivating use is a
// fail-safe: an emergency that auto-reverts even if the SDS dies before
// sending the clearing event.
struct TimedTransitionRule {
  std::string from;
  std::int64_t after_ms = 0;
  std::string to;
};

// Extension beyond the paper: the SDS liveness contract. The SDS is a single
// point of failure — if the daemon dies, the SSM freezes in its last state
// (possibly holding emergency permissions forever). A watchdog clause makes
// the failure mode explicit: if the kernel sees neither an events-file write
// nor a heartbeat for `deadline_ms`, it forces the SSM into `failsafe_state`.
struct WatchdogSpec {
  std::int64_t deadline_ms = 0;
  std::string failsafe_state;
};

// --- Per_Rules interface ---

enum class RuleEffect : std::uint8_t { allow, deny };

enum class SubjectKind : std::uint8_t {
  any,      // '*': every task
  path,     // glob over the task's executable path (independent SACK)
  profile,  // '@name': an AppArmor profile (SACK-enhanced AppArmor)
};

struct MacRule {
  RuleEffect effect = RuleEffect::allow;
  SubjectKind subject_kind = SubjectKind::any;
  std::string subject_text;  // raw subject ("" for any, name for profile)
  Glob subject_glob;         // compiled, for path subjects
  Glob object;               // object path pattern
  MacOp ops = MacOp::none;

  std::string to_text() const;
};

// --- the whole policy ---

struct SackPolicy {
  // States
  std::vector<SituationState> states;
  std::string initial_state;
  std::vector<TransitionRule> transitions;
  std::vector<TimedTransitionRule> timed_transitions;
  std::vector<std::string> events;  // optional explicit declarations
  std::optional<WatchdogSpec> watchdog;

  // Permissions
  std::vector<std::string> permissions;

  // State_Per: state name -> granted permission names
  std::map<std::string, std::vector<std::string>> state_per;

  // Per_Rules: permission name -> MAC rules
  std::map<std::string, std::vector<MacRule>> per_rules;

  bool has_state(std::string_view name) const;
  bool has_permission(std::string_view name) const;
  const SituationState* find_state(std::string_view name) const;

  // Every event referenced by a transition or declared explicitly.
  std::vector<std::string> all_events() const;

  // Permissions granted in `state` (empty if none configured).
  std::vector<std::string> permissions_of(std::string_view state) const;

  // Canonical policy-language dump (round-trips through the parser).
  std::string to_text() const;
  std::string states_text() const;
  std::string watchdog_text() const;
  std::string permissions_text() const;
  std::string state_per_text() const;
  std::string per_rules_text() const;
};

}  // namespace sack::core
