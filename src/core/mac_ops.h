// MacOp: the operation vocabulary of SACK MAC rules (Per_Rules interface).
//
// These name kernel-level operations — the granularity SACK policies control
// — and map 1:1 onto the LSM hooks of the simulated kernel.
#pragma once

#include <string>
#include <string_view>

#include "util/bitmask.h"
#include "util/result.h"

namespace sack::core {

enum class MacOp : std::uint32_t {
  none = 0,
  read = 1u << 0,
  write = 1u << 1,
  append = 1u << 2,
  exec = 1u << 3,
  ioctl = 1u << 4,
  mmap = 1u << 5,
  create = 1u << 6,
  unlink = 1u << 7,
  mkdir = 1u << 8,
  rmdir = 1u << 9,
  rename = 1u << 10,
  getattr = 1u << 11,
  chmod = 1u << 12,
  chown = 1u << 13,
  truncate = 1u << 14,
};

inline constexpr std::size_t kMacOpCount = 15;

// Index of a single-bit op (for per-op rule tables).
std::size_t mac_op_index(MacOp op);
MacOp mac_op_from_index(std::size_t idx);

// "read" -> MacOp::read; EINVAL for unknown names.
Result<MacOp> mac_op_from_name(std::string_view name);
std::string_view mac_op_name(MacOp op);

// "read,write" style list for a mask.
std::string format_mac_ops(MacOp mask);

}  // namespace sack::core

namespace sack {
template <>
struct EnableBitmask<core::MacOp> : std::true_type {};
}  // namespace sack
