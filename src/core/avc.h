// Access vector cache (AVC) for the SACK enforcement hot path.
//
// The same idea as SELinux's avc.c: remember the verdict of a fully-resolved
// access query so repeated hooks on the same (subject, object, op) tuple skip
// the rule walk entirely. Correctness under adaptive revocation comes from
// generation stamping: every entry records the policy generation it was
// computed under, and a probe only hits when the stamp matches the caller's
// current generation. A situation transition bumps the generation (and clears
// the cache wholesale), so a revoked permission can never be served stale —
// even an insert racing a transition lands with an old stamp and is dead on
// arrival.
//
// The cache is sharded: each shard is an independent bounded map behind its
// own shared_mutex, so concurrent probes from enforcement threads only
// contend when they hash to the same shard. Eviction is bounded and cheap
// (drop an arbitrary resident entry of the full shard); an AVC is a cache of
// recomputable verdicts, so eviction policy affects only the hit rate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/ruleset.h"
#include "util/errno.h"
#include "util/thread_annotations.h"

namespace sack::core {

class AccessVectorCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit AccessVectorCache(std::size_t capacity = kDefaultCapacity);
  AccessVectorCache(const AccessVectorCache&) = delete;
  AccessVectorCache& operator=(const AccessVectorCache&) = delete;

  // Returns the cached verdict for `query` iff it was computed under
  // `generation`; a stale-stamped entry counts as a miss (it is overwritten
  // by the next insert for that key rather than erased here, keeping the
  // probe path read-only).
  std::optional<Errno> probe(const AccessQuery& query,
                             std::uint64_t generation) const;

  // Records a verdict computed under `generation`. The caller must pass the
  // generation it read *before* running the rule match — if a transition
  // happened in between, the stale stamp keeps the entry from ever hitting.
  void insert(const AccessQuery& query, std::uint64_t generation,
              Errno verdict);

  // Whole-cache flush, called on every policy load / situation transition.
  void invalidate_all();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
  };
  Stats stats() const;
  void reset_stats();

 private:
  struct Key {
    std::string subject_exe;
    std::string subject_profile;
    std::string object_path;
    MacOp op = MacOp::none;
  };
  // Heterogeneous lookup view so a probe never allocates.
  struct KeyView {
    std::string_view subject_exe;
    std::string_view subject_profile;
    std::string_view object_path;
    MacOp op = MacOp::none;
  };
  struct KeyHash {
    using is_transparent = void;
    static std::size_t mix(std::size_t seed, std::size_t h) {
      return seed ^ (h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
    }
    static std::size_t of(std::string_view exe, std::string_view profile,
                          std::string_view path, MacOp op) {
      std::size_t h = std::hash<std::string_view>{}(exe);
      h = mix(h, std::hash<std::string_view>{}(profile));
      h = mix(h, std::hash<std::string_view>{}(path));
      return mix(h, static_cast<std::size_t>(op));
    }
    std::size_t operator()(const Key& k) const {
      return of(k.subject_exe, k.subject_profile, k.object_path, k.op);
    }
    std::size_t operator()(const KeyView& k) const {
      return of(k.subject_exe, k.subject_profile, k.object_path, k.op);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      return a.op == b.op && a.object_path == b.object_path &&
             a.subject_exe == b.subject_exe &&
             a.subject_profile == b.subject_profile;
    }
  };
  struct Entry {
    Errno verdict = Errno::ok;
    std::uint64_t generation = 0;
  };
  struct Shard {
    mutable util::SharedMutex mu;
    std::unordered_map<Key, Entry, KeyHash, KeyEq> map SACK_GUARDED_BY(mu);
  };

  static constexpr std::size_t kShards = 16;  // power of two

  Shard& shard_for(std::size_t hash) const {
    // The map consumes the hash from the low bits; pick the shard from
    // higher bits so shard choice and in-shard bucket stay independent.
    return shards_[(hash >> 16) & (kShards - 1)];
  }

  mutable std::unique_ptr<Shard[]> shards_;
  std::size_t shard_capacity_;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace sack::core
