// SituationStateMachine (SSM): the kernel-resident finite state machine that
// maintains the current situation state (the new security context) and
// performs the transition half of the paper's Algorithm 1:
//
//   if SE_current != NULL and (SE_current, SS_current) match TR_i then
//     SS_current = TR_i(SE_current, SS_current)
//
// States and events are interned to dense ids at build time; a delivery is
// then two array lookups — which is why the transition path stays in the
// microsecond range regardless of policy size.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/policy.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/strong_id.h"
#include "util/transparent_hash.h"

namespace sack::core {

class SituationStateMachine {
 public:
  SituationStateMachine() = default;

  // Builds from the States interface of `policy`. Fails with EINVAL if the
  // policy has structural errors (undefined states, no initial state); run
  // check_policy first for diagnostics.
  static Result<SituationStateMachine> build(const SackPolicy& policy);

  // --- current state ---
  StateId current() const { return current_; }
  const std::string& current_name() const { return state_names_[idx(current_)]; }
  int current_encoding() const { return encodings_[idx(current_)]; }

  // Resets to the initial state (policy reload).
  void reset();

  StateId initial() const { return initial_; }

  struct Outcome {
    bool transitioned = false;
    StateId from;
    StateId to;
  };

  // Delivers a situation event by name. Unknown events are EINVAL (they
  // indicate an SDS/policy mismatch); known events that match no transition
  // rule from the current state are accepted but cause no transition.
  // `now` stamps the dwell clock for timed transitions.
  Result<Outcome> deliver(std::string_view event_name, SimTime now = 0);

  // Fast path for pre-interned events.
  Outcome deliver(EventId event, SimTime now = 0);

  // Timed-transition extension: fires the current state's dwell-time rule if
  // its delay has elapsed at `now`. Call from the kernel's clock tick.
  Outcome tick(SimTime now);

  // Forces the machine into `target` regardless of transition rules — the
  // watchdog failsafe path and the post-recovery resync use this. Returns
  // the outcome exactly like deliver() (transitioned=false on a no-op).
  Outcome force(StateId target, SimTime now);

  // Dwell-time rule of the current state, if any: (delay_ns, target).
  bool has_timed_rule() const;
  SimTime entered_current_at() const { return entered_at_; }

  // --- lookups ---
  std::size_t state_count() const { return state_names_.size(); }
  std::size_t event_count() const { return event_names_.size(); }
  Result<StateId> state_id(std::string_view name) const;
  Result<EventId> event_id(std::string_view name) const;
  const std::string& state_name(StateId id) const { return state_names_[idx(id)]; }
  const std::string& event_name(EventId id) const { return event_names_[idx(id)]; }
  int encoding(StateId id) const { return encodings_[idx(id)]; }

  // --- statistics (surfaced through /sys/kernel/security/SACK/status) ---
  std::uint64_t events_delivered() const { return events_delivered_; }
  std::uint64_t transitions_taken() const { return transitions_taken_; }
  // Pre-interned ids rejected by the bounds check in deliver(EventId) —
  // nonzero means a caller held an EventId across a policy reload.
  std::uint64_t events_invalid() const { return events_invalid_; }

 private:
  template <typename Id>
  static std::size_t idx(Id id) {
    return static_cast<std::size_t>(id.get());
  }

  std::vector<std::string> state_names_;
  std::vector<int> encodings_;
  std::vector<std::string> event_names_;
  StringMap<StateId> state_by_name_;
  StringMap<EventId> event_by_name_;

  // transition_[state * event_count + event] = target state or -1.
  std::vector<std::int32_t> transition_;

  // Per-state dwell-time rule: delay in ns (-1 = none) and target state.
  struct TimedRule {
    SimTime delay_ns = -1;
    std::int32_t target = -1;
  };
  std::vector<TimedRule> timed_;

  StateId initial_;
  StateId current_;
  SimTime entered_at_ = 0;
  std::uint64_t events_delivered_ = 0;
  std::uint64_t transitions_taken_ = 0;
  std::uint64_t events_invalid_ = 0;
};

}  // namespace sack::core
