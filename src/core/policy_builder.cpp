#include "core/policy_builder.h"

#include <cstdio>
#include <cstdlib>

namespace sack::core {

Result<MacRule> make_rule(RuleEffect effect, std::string_view subject,
                          std::string_view object, MacOp ops) {
  MacRule rule;
  rule.effect = effect;
  rule.ops = ops;
  if (subject == "*") {
    rule.subject_kind = SubjectKind::any;
  } else if (!subject.empty() && subject[0] == '@') {
    rule.subject_kind = SubjectKind::profile;
    rule.subject_text = std::string(subject.substr(1));
  } else {
    rule.subject_kind = SubjectKind::path;
    rule.subject_text = std::string(subject);
    SACK_ASSIGN_OR_RETURN(rule.subject_glob, Glob::compile(subject));
  }
  SACK_ASSIGN_OR_RETURN(rule.object, Glob::compile(object));
  if (is_empty(ops)) return Errno::einval;
  return rule;
}

PolicyBuilder& PolicyBuilder::state(std::string name, int encoding) {
  policy_.states.push_back({std::move(name), encoding});
  return *this;
}

PolicyBuilder& PolicyBuilder::initial(std::string name) {
  policy_.initial_state = std::move(name);
  return *this;
}

PolicyBuilder& PolicyBuilder::transition(std::string from, std::string event,
                                         std::string to) {
  policy_.transitions.push_back(
      {std::move(from), std::move(event), std::move(to)});
  return *this;
}

PolicyBuilder& PolicyBuilder::timed_transition(std::string from,
                                               std::int64_t after_ms,
                                               std::string to) {
  policy_.timed_transitions.push_back({std::move(from), after_ms,
                                       std::move(to)});
  return *this;
}

PolicyBuilder& PolicyBuilder::event(std::string name) {
  policy_.events.push_back(std::move(name));
  return *this;
}

PolicyBuilder& PolicyBuilder::watchdog(std::int64_t deadline_ms,
                                       std::string failsafe) {
  policy_.watchdog = WatchdogSpec{deadline_ms, std::move(failsafe)};
  return *this;
}

PolicyBuilder& PolicyBuilder::permission(std::string name) {
  policy_.permissions.push_back(std::move(name));
  return *this;
}

PolicyBuilder& PolicyBuilder::grant(std::string state, std::string permission) {
  policy_.state_per[std::move(state)].push_back(std::move(permission));
  return *this;
}

PolicyBuilder& PolicyBuilder::rule(RuleEffect effect, std::string permission,
                                   std::string_view subject,
                                   std::string_view object, MacOp ops) {
  auto r = make_rule(effect, subject, object, ops);
  if (!r.ok()) {
    std::fprintf(stderr, "PolicyBuilder: bad rule (subject='%.*s' object='%.*s')\n",
                 static_cast<int>(subject.size()), subject.data(),
                 static_cast<int>(object.size()), object.data());
    std::abort();
  }
  policy_.per_rules[std::move(permission)].push_back(std::move(r).value());
  return *this;
}

PolicyBuilder& PolicyBuilder::allow(std::string permission,
                                    std::string_view subject,
                                    std::string_view object, MacOp ops) {
  return rule(RuleEffect::allow, std::move(permission), subject, object, ops);
}

PolicyBuilder& PolicyBuilder::deny(std::string permission,
                                   std::string_view subject,
                                   std::string_view object, MacOp ops) {
  return rule(RuleEffect::deny, std::move(permission), subject, object, ops);
}

}  // namespace sack::core
