// Rule-set compilation for independent SACK enforcement.
//
// Independent SACK is deny-by-default over *guarded* objects: a path is
// guarded if any rule anywhere in the loaded policy names it. Access to a
// guarded path is allowed only by the rules mapped from the *current*
// situation state (State_Per ∘ Per_Rules, Algorithm 1's g(f(SS_current))).
// Unguarded paths are untouched — that check is the per-operation hot path,
// so it is a literal hash probe plus a scan of the (few) non-literal globs.
//
// Two implementations share an interface so the matcher ablation bench can
// compare them: CompiledRuleSet (indexes, the real thing) and LinearRuleSet
// (naive full scan, what a straightforward port would do).
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/mac_ops.h"
#include "core/policy.h"
#include "util/dense_bitset.h"
#include "util/glob_dfa.h"
#include "util/rcu_ptr.h"
#include "util/transparent_hash.h"

namespace sack::core {

// A fully-resolved access query.
struct AccessQuery {
  std::string_view subject_exe;   // task executable path
  std::string_view subject_profile;  // AppArmor profile, "" if none/unknown
  std::string_view object_path;
  MacOp op = MacOp::none;
};

// A pre-resolved object label: one bit per loaded rule whose object pattern
// matches the path. Everything about a decision that depends only on the
// loaded policy and the path — not on the active situation state — so a
// label survives activate() and is what the per-inode cache stores.
using ObjectLabel = DenseBitset;

class RuleSetBase {
 public:
  virtual ~RuleSetBase() = default;

  // Loads the full policy's rule inventory (builds the guard set).
  // Transactional: on failure the previously published snapshot, activation,
  // and label generation are untouched — every decision is computed exactly
  // as before the attempt. Implementations build everything off to the side
  // and publish only as the final step.
  virtual Result<void> load(const SackPolicy& policy) = 0;

  // Activates the rules of exactly these permissions (APE, on transition).
  virtual void activate(const std::vector<std::string>& permissions) = 0;

  // The decision: OK for unguarded objects, otherwise allow iff an active
  // allow rule matches and no active deny rule does.
  virtual Errno check(const AccessQuery& query) const = 0;

  // Batch decision: verdicts[i] = check(queries[i]), with snapshot
  // acquisition amortized across the batch by implementations that publish
  // snapshots. `verdicts.size()` must be >= `queries.size()`.
  virtual void check_ops(std::span<const AccessQuery> queries,
                         std::span<Errno> verdicts) const {
    for (std::size_t i = 0; i < queries.size(); ++i)
      verdicts[i] = check(queries[i]);
  }

  virtual bool guarded(std::string_view object_path) const = 0;

  // --- pre-resolved object labels (per-inode caching) ---
  // label_generation() identifies the rule numbering labels are valid for;
  // it changes on every load() and never on activate() (a label records
  // which *loaded* rules match, not which are active). Zero means the
  // implementation does not support labels — callers skip the cache.
  virtual std::uint64_t label_generation() const { return 0; }
  // Resolves the label for a path, or nullptr when unsupported. The result
  // owns its storage — it stays valid across load() without pinning the
  // retired rule tables it was computed from — but is only *meaningful*
  // while label_generation() still returns the value observed at resolve
  // time.
  virtual std::shared_ptr<const ObjectLabel> resolve_label(
      std::string_view /*path*/) const {
    return nullptr;
  }
  // The decision given a pre-resolved label computed under `generation`.
  // Implementations must fall back to a full check when `generation` is not
  // the current label generation (the label's bit numbering is stale).
  virtual Errno check_labeled(const AccessQuery& query,
                              const ObjectLabel& /*label*/,
                              std::uint64_t /*generation*/) const {
    return check(query);
  }

  virtual std::size_t total_rule_count() const = 0;
  virtual std::size_t active_rule_count() const = 0;

  // Enumeration hook for analysis tooling (the verify subsystem's
  // differential oracle cross-checks this against State_Per ∘ Per_Rules):
  // the rules the current activation actually enforces, in no particular
  // order. Pointers stay valid until the next load().
  virtual std::vector<const MacRule*> active_rules() const = 0;
};

namespace detail {
// One rule with its owning permission resolved.
struct OwnedRule {
  const MacRule* rule;
  std::string permission;
};

bool subject_matches(const MacRule& rule, const AccessQuery& query);
}  // namespace detail

// Read-mostly, concurrency-safe rule set. Readers (`check`/`guarded`, every
// LSM hook) grab one atomically-published shared_ptr to an immutable
// Snapshot and work entirely off it. Writers (`load` on policy replacement,
// `activate` on situation transition) build a *fresh* snapshot off the read
// path and publish it with a single atomic swap — the RCU read-mostly
// pattern (see util/rcu_ptr.h for why the publication cell is hand-rolled
// rather than std::atomic<std::shared_ptr>). Readers mid-check keep the old
// snapshot alive through their shared_ptr; it is destroyed when the last
// one drops it. Writers are the control plane (policy load, situation
// transitions) and are assumed serialized with respect to each other, as in
// the kernel.
class CompiledRuleSet final : public RuleSetBase {
 public:
  CompiledRuleSet();
  // Non-copyable/movable: the snapshots hold raw pointers into the shared
  // LoadedPolicy; identity matters.
  CompiledRuleSet(const CompiledRuleSet&) = delete;
  CompiledRuleSet& operator=(const CompiledRuleSet&) = delete;

  Result<void> load(const SackPolicy& policy) override;
  void activate(const std::vector<std::string>& permissions) override;
  Errno check(const AccessQuery& query) const override;
  void check_ops(std::span<const AccessQuery> queries,
                 std::span<Errno> verdicts) const override;
  bool guarded(std::string_view object_path) const override;
  std::size_t total_rule_count() const override;
  std::size_t active_rule_count() const override;
  std::vector<const MacRule*> active_rules() const override;

 private:
  struct ActiveRule {
    const MacRule* rule;
  };
  struct OpTable {
    // Literal object path -> rules naming exactly that path.
    StringMap<std::vector<ActiveRule>> literal;
    std::vector<ActiveRule> globs;
  };

  // Everything derived from one load(): the policy copy that owns the rule
  // storage, the guard inventory, and the permission -> rules grouping.
  // Immutable once built; shared by every snapshot activated from it.
  struct LoadedPolicy {
    SackPolicy policy;  // owns the rules the pointers below point into
    std::unordered_set<std::string, TransparentStringHash, std::equal_to<>>
        guard_literals;
    std::vector<const Glob*> guard_globs;
    StringMap<std::vector<const MacRule*>> by_permission;
    std::size_t total_rules = 0;

    bool guarded(std::string_view object_path) const;
  };

  // One activation: the per-op active-rule indexes for a permission set,
  // denies separated so the precedence scan touches them first. Keeps its
  // base alive so the borrowed rule pointers stay valid even if a concurrent
  // load() republished.
  struct Snapshot {
    std::shared_ptr<const LoadedPolicy> base;
    std::vector<OpTable> active_allow = std::vector<OpTable>(kMacOpCount);
    std::vector<OpTable> active_deny = std::vector<OpTable>(kMacOpCount);
    std::size_t active_rules = 0;
    // Flat activation inventory for the enumeration hook (off the hot path).
    std::vector<const MacRule*> active_list;
  };

  static std::shared_ptr<const Snapshot> make_snapshot(
      std::shared_ptr<const LoadedPolicy> base,
      const std::vector<std::string>& permissions);
  static Errno decide(const Snapshot& snap, const AccessQuery& query);

  std::shared_ptr<const Snapshot> snapshot() const { return snap_.load(); }

  RcuPtr<const Snapshot> snap_;
};

// Table-driven rule set: the whole loaded rule inventory compiles into one
// GlobDfa whose accepting states carry per-rule bitmasks, so a miss-path
// decision is a single pass over the path bytes followed by mask
// intersections — no per-rule glob walk, at any rule count. Activation is a
// *mask swap*: the DFA (built once per load) never changes; activate() just
// publishes fresh per-op allow/deny rule-id masks, which makes transition
// storms cheap — a post-storm AVC miss re-runs the table walk (or skips even
// that via a cached inode label), not a rule-set walk.
//
// Concurrency follows CompiledRuleSet: immutable Program (per load) and
// Snapshot (per activation) published through RcuPtr. If the pattern set is
// pathological enough to blow the DFA construction budget, the Program
// keeps a per-rule scan fallback — decisions stay correct, only the speed
// claim degrades.
class DfaRuleSet final : public RuleSetBase {
 public:
  DfaRuleSet();
  DfaRuleSet(const DfaRuleSet&) = delete;
  DfaRuleSet& operator=(const DfaRuleSet&) = delete;

  Result<void> load(const SackPolicy& policy) override;
  void activate(const std::vector<std::string>& permissions) override;
  Errno check(const AccessQuery& query) const override;
  void check_ops(std::span<const AccessQuery> queries,
                 std::span<Errno> verdicts) const override;
  bool guarded(std::string_view object_path) const override;
  std::uint64_t label_generation() const override;
  std::shared_ptr<const ObjectLabel> resolve_label(
      std::string_view path) const override;
  Errno check_labeled(const AccessQuery& query, const ObjectLabel& label,
                      std::uint64_t generation) const override;
  std::size_t total_rule_count() const override;
  std::size_t active_rule_count() const override;
  std::vector<const MacRule*> active_rules() const override;

  // True when the loaded rules determinized within budget (the table path);
  // false on the scan fallback. Surfaced for tests and status reporting.
  bool table_driven() const;

  // Build-budget policy for the *next* load(). By default a budget blowout
  // silently degrades to the per-rule scan fallback; in strict mode it fails
  // the load with ENOMEM instead, leaving the previous program published —
  // what a transactional control plane wants.
  void set_build_limits(GlobDfa::BuildLimits limits, bool strict = false) {
    build_limits_ = limits;
    strict_build_ = strict;
  }

 private:
  // Everything derived from one load(): the owning policy copy, the dense
  // rule numbering (bit i of every mask refers to rules[i]), the compiled
  // automaton, and the permission -> rule-id grouping. Immutable once built.
  struct Program {
    SackPolicy policy;  // owns the rules the pointers below point into
    std::vector<const MacRule*> rules;
    StringMap<std::vector<std::uint32_t>> by_permission;
    std::optional<GlobDfa> dfa;  // nullopt: scan fallback
    std::uint64_t label_gen = 0;
    ObjectLabel empty_label;  // returned for paths no rule matches (scan path)

    // The activation-independent half of a decision. The returned label
    // owns its bits: callers park these on inodes for arbitrarily long, so
    // aliasing the Program here would let every stale inode label pin a
    // whole retired policy (DFA tables included) across loads.
    std::shared_ptr<const ObjectLabel> resolve(std::string_view path) const;
  };

  // One activation: per-op allow/deny masks over the Program's rule ids.
  struct Snapshot {
    std::shared_ptr<const Program> base;
    std::vector<ObjectLabel> active_allow;  // kMacOpCount masks
    std::vector<ObjectLabel> active_deny;
    std::vector<const MacRule*> active_list;
  };

  static std::shared_ptr<const Snapshot> make_snapshot(
      std::shared_ptr<const Program> base,
      const std::vector<std::string>& permissions);
  static Errno decide(const Snapshot& snap, const AccessQuery& query,
                      const ObjectLabel& label);

  std::shared_ptr<const Snapshot> snapshot() const { return snap_.load(); }

  RcuPtr<const Snapshot> snap_;
  GlobDfa::BuildLimits build_limits_{};
  bool strict_build_ = false;
};

class LinearRuleSet final : public RuleSetBase {
 public:
  LinearRuleSet() = default;
  LinearRuleSet(const LinearRuleSet&) = delete;  // active_ points into policy_
  LinearRuleSet& operator=(const LinearRuleSet&) = delete;

  Result<void> load(const SackPolicy& policy) override;
  void activate(const std::vector<std::string>& permissions) override;
  Errno check(const AccessQuery& query) const override;
  bool guarded(std::string_view object_path) const override;
  std::size_t total_rule_count() const override;
  std::size_t active_rule_count() const override { return active_.size(); }
  std::vector<const MacRule*> active_rules() const override { return active_; }

 private:
  SackPolicy policy_;
  std::vector<const MacRule*> active_;
};

}  // namespace sack::core
