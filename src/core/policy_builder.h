// PolicyBuilder: fluent programmatic construction of SackPolicy objects.
//
// The benchmarks and tests generate many synthetic policies (N states,
// N rules); building them as text and re-parsing would be slow and noisy,
// so this builder produces the model directly (still validated by
// check_policy on load).
#pragma once

#include <string>
#include <string_view>

#include "core/policy.h"
#include "util/result.h"

namespace sack::core {

class PolicyBuilder {
 public:
  PolicyBuilder& state(std::string name, int encoding);
  PolicyBuilder& initial(std::string name);
  PolicyBuilder& transition(std::string from, std::string event,
                            std::string to);
  PolicyBuilder& timed_transition(std::string from, std::int64_t after_ms,
                                  std::string to);
  PolicyBuilder& event(std::string name);
  PolicyBuilder& watchdog(std::int64_t deadline_ms, std::string failsafe);
  PolicyBuilder& permission(std::string name);
  PolicyBuilder& grant(std::string state, std::string permission);

  // Rule helpers; patterns are compiled here (hard failure on bad globs —
  // builder inputs are programmer-controlled).
  PolicyBuilder& allow(std::string permission, std::string_view subject,
                       std::string_view object, MacOp ops);
  PolicyBuilder& deny(std::string permission, std::string_view subject,
                      std::string_view object, MacOp ops);

  SackPolicy build() const { return policy_; }

 private:
  PolicyBuilder& rule(RuleEffect effect, std::string permission,
                      std::string_view subject, std::string_view object,
                      MacOp ops);
  SackPolicy policy_;
};

// Subject spelling shared with the policy language: "*", "@profile", or a
// path glob.
Result<MacRule> make_rule(RuleEffect effect, std::string_view subject,
                          std::string_view object, MacOp ops);

}  // namespace sack::core
