// Parser for the SACK policy language.
//
// A policy document is any combination of the four interface sections:
//
//   states {                        # States interface
//     normal = 0;
//     emergency = 4;
//   }
//   initial normal;
//   transitions {
//     normal -> emergency on crash_detected;
//     emergency -> normal on emergency_cleared;
//   }
//   events { crash_detected; emergency_cleared; }     # optional
//
//   permissions {                   # Permissions interface
//     NORMAL;
//     CONTROL_CAR_DOORS;
//   }
//
//   state_per {                     # State_Per interface
//     normal: NORMAL;
//     emergency: NORMAL, CONTROL_CAR_DOORS;
//   }
//
//   per_rules {                     # Per_Rules interface
//     CONTROL_CAR_DOORS {
//       allow @rescue_daemon /dev/vehicle/door* ioctl write;
//       allow /usr/bin/rescue_* /dev/vehicle/window* ioctl;
//       deny * /dev/vehicle/door* write;
//     }
//   }
//
// Subjects: '*' (any task), a path glob over the task's executable, or
// '@profile' naming an AppArmor profile (SACK-enhanced mode).
// '#' starts a comment. Errors are collected with positions; parsing
// continues past recoverable mistakes.
#pragma once

#include <string_view>
#include <vector>

#include "core/policy.h"
#include "util/tokenizer.h"

namespace sack::core {

struct PolicyParseResult {
  SackPolicy policy;
  std::vector<ParseError> errors;

  bool ok() const { return errors.empty(); }
};

// Which sections a document actually contained (used by the per-section
// securityfs interfaces to replace just their part).
struct SectionPresence {
  bool states = false;
  bool watchdog = false;
  bool permissions = false;
  bool state_per = false;
  bool per_rules = false;
};

PolicyParseResult parse_policy(std::string_view text,
                               SectionPresence* presence = nullptr);

// Merges the sections present in `incoming` into `base` (replacing those
// sections wholesale) — the securityfs per-section write semantics.
void merge_policy_sections(SackPolicy& base, const SackPolicy& incoming,
                           const SectionPresence& presence);

}  // namespace sack::core
