// TeModule: the type-enforcement LSM.
//
// Labels: object types come from filecon patterns, computed on first use and
// cached in the inode's security map under this module's name; task domains
// live in the task security blob and change on exec via domain_transition
// rules. Tasks in the default domain ("unconfined_t" unless the policy says
// otherwise) bypass enforcement, so an unloaded/minimal policy is harmless —
// mirroring SELinux's permissive bring-up story without modelling it fully.
#pragma once

#include <memory>
#include <string>

#include "kernel/kernel.h"
#include "kernel/lsm/module.h"
#include "te/te_policy.h"
#include "util/transparent_hash.h"

namespace sack::te {

class TeModule final : public kernel::SecurityModule {
 public:
  static constexpr std::string_view kName = "setype";

  TeModule();
  ~TeModule() override;

  std::string_view name() const override { return kName; }
  void initialize(kernel::Kernel& kernel) override;

  // --- policy ---
  Result<void> load_policy_text(std::string_view text,
                                std::vector<ParseError>* errors = nullptr);
  Result<void> load_policy(TePolicy policy);
  const TePolicy& policy() const { return policy_; }
  bool policy_loaded() const { return loaded_; }

  // --- labels ---
  // The type of the object at `path` (labels the inode on first query).
  std::string type_of(const std::string& path, const kernel::Inode& inode);
  // The domain confining `task` (default domain when unset).
  std::string domain_of(const kernel::Task& task) const;
  void set_domain(kernel::Task& task, std::string domain);

  std::uint64_t denial_count() const { return denials_; }

  // --- booleans (conditional policy) ---
  // Flips a policy boolean and rebuilds the active rule index. This is the
  // pre-SACK way to make policy react to the environment: a user-space
  // daemon toggling booleans. Note what it does NOT do: unlike SACK's
  // generation bump, already-open fds keep their access (no file_permission
  // revalidation in TE), and the flip rebuilds the whole index instead of
  // an O(1) state transition.
  Result<void> set_boolean(std::string_view name, bool value);
  Result<bool> get_boolean(std::string_view name) const;

  // --- hooks ---
  Errno file_open(kernel::Task& task, const std::string& path,
                  const kernel::Inode& inode,
                  kernel::AccessMask access) override;
  Errno file_ioctl(kernel::Task& task, const kernel::File& file,
                   std::uint32_t cmd) override;
  Errno mmap_file(kernel::Task& task, const kernel::File& file,
                  kernel::AccessMask prot) override;
  Errno path_mknod(kernel::Task& task, const std::string& path,
                   kernel::InodeType type) override;
  Errno path_unlink(kernel::Task& task, const std::string& path) override;
  Errno inode_getattr(kernel::Task& task, const std::string& path) override;
  Errno bprm_check_security(kernel::Task& task,
                            const std::string& path) override;
  void bprm_committed_creds(kernel::Task& task,
                            const std::string& path) override;
  Errno task_alloc(kernel::Task& parent, kernel::Task& child) override;
  std::string getprocattr(const kernel::Task& task) override {
    return loaded_ ? domain_of(task) : std::string{};
  }

 private:
  // Type of a path per filecon rules (no inode cache).
  std::string type_of_path(std::string_view path) const;
  Errno check(const kernel::Task& task, std::string_view object_type,
              TeClass cls, TePerm wanted, std::string_view object_path);
  bool allowed(std::string_view domain, std::string_view type, TeClass cls,
               TePerm wanted) const;

  void rebuild_rule_index();

  TePolicy policy_;
  bool loaded_ = false;
  std::uint64_t denials_ = 0;
  std::uint64_t generation_ = 1;
  std::map<std::string, bool, std::less<>> boolean_values_;

  // (source, target, class) -> permission mask, built at load time.
  struct Key {
    std::string source, target;
    TeClass cls;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = std::hash<std::string>{}(k.source);
      h = h * 31 + std::hash<std::string>{}(k.target);
      return h * 31 + static_cast<std::size_t>(k.cls);
    }
  };
  std::unordered_map<Key, TePerm, KeyHash> rule_index_;

  class PolicyFile;
  class StatusFile;
  class BooleansFile;
  std::unique_ptr<PolicyFile> policy_file_;
  std::unique_ptr<StatusFile> status_file_;
  std::unique_ptr<BooleansFile> booleans_file_;
  kernel::Kernel* kernel_ = nullptr;
};

}  // namespace sack::te
