#include "te/te_module.h"

#include "util/log.h"
#include "util/strings.h"

namespace sack::te {

using kernel::AccessMask;
using kernel::Task;

class TeModule::PolicyFile final : public kernel::VirtualFileOps {
 public:
  explicit PolicyFile(TeModule* mod) : mod_(mod) {}
  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, kernel::Capability::mac_admin) !=
        Errno::ok)
      return Errno::eperm;
    return mod_->load_policy_text(data);
  }

 private:
  TeModule* mod_;
};

class TeModule::StatusFile final : public kernel::VirtualFileOps {
 public:
  explicit StatusFile(TeModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    return "policy_loaded: " + std::string(mod_->loaded_ ? "yes" : "no") +
           "\ntypes: " + std::to_string(mod_->policy_.types.size()) +
           "\nrules: " + std::to_string(mod_->policy_.rules.size()) +
           "\ndenials: " + std::to_string(mod_->denials_) + "\n";
  }

 private:
  TeModule* mod_;
};

// Boolean control: read lists "name value" lines; write takes "name 0|1".
class TeModule::BooleansFile final : public kernel::VirtualFileOps {
 public:
  explicit BooleansFile(TeModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    std::string out;
    for (const auto& [name, value] : mod_->boolean_values_)
      out += name + " " + (value ? "1" : "0") + "\n";
    return out;
  }
  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, kernel::Capability::mac_admin) !=
        Errno::ok)
      return Errno::eperm;
    auto fields = split_ws(data);
    if (fields.size() != 2 || (fields[1] != "0" && fields[1] != "1"))
      return Errno::einval;
    return mod_->set_boolean(fields[0], fields[1] == "1");
  }

 private:
  TeModule* mod_;
};

TeModule::TeModule() = default;
TeModule::~TeModule() = default;

void TeModule::initialize(kernel::Kernel& kernel) {
  kernel_ = &kernel;
  policy_file_ = std::make_unique<PolicyFile>(this);
  status_file_ = std::make_unique<StatusFile>(this);
  (void)kernel.securityfs().register_file("setype/policy", policy_file_.get(),
                                          0200);
  (void)kernel.securityfs().register_file("setype/status", status_file_.get(),
                                          0444);
  booleans_file_ = std::make_unique<BooleansFile>(this);
  (void)kernel.securityfs().register_file("setype/booleans",
                                          booleans_file_.get(), 0600);
}

Result<void> TeModule::load_policy_text(std::string_view text,
                                        std::vector<ParseError>* errors) {
  auto parsed = parse_te_policy(text);
  if (errors) *errors = parsed.errors;
  if (!parsed.ok()) {
    for (const auto& e : parsed.errors)
      log_warn("setype: parse error: ", e.to_string());
    return Errno::einval;
  }
  return load_policy(std::move(parsed.policy));
}

Result<void> TeModule::load_policy(TePolicy policy) {
  auto problems = check_te_policy(policy);
  if (!problems.empty()) {
    for (const auto& p : problems) log_warn("setype: ", p);
    return Errno::einval;
  }
  policy_ = std::move(policy);
  boolean_values_.clear();
  for (const auto& b : policy_.booleans)
    boolean_values_[b.name] = b.default_value;
  rebuild_rule_index();
  loaded_ = true;
  ++generation_;
  return {};
}

void TeModule::rebuild_rule_index() {
  rule_index_.clear();
  for (const auto& rule : policy_.rules) {
    if (!rule.condition.empty()) {
      auto it = boolean_values_.find(rule.condition);
      if (it == boolean_values_.end() ||
          it->second != rule.condition_value)
        continue;  // conditional rule currently inactive
    }
    rule_index_[{rule.source, rule.target, rule.cls}] |= rule.perms;
  }
}

Result<void> TeModule::set_boolean(std::string_view name, bool value) {
  auto it = boolean_values_.find(name);
  if (it == boolean_values_.end()) return Errno::enoent;
  if (it->second == value) return {};
  it->second = value;
  rebuild_rule_index();
  ++generation_;
  log_info("setype: boolean '", name, "' = ", value ? "1" : "0");
  return {};
}

Result<bool> TeModule::get_boolean(std::string_view name) const {
  auto it = boolean_values_.find(name);
  if (it == boolean_values_.end()) return Errno::enoent;
  return it->second;
}

std::string TeModule::type_of_path(std::string_view path) const {
  // Last match wins, like file_contexts ordering in SELinux userspace.
  const FileContext* match = nullptr;
  for (const auto& fc : policy_.file_contexts) {
    if (fc.pattern.matches(path)) match = &fc;
  }
  return match ? match->type : policy_.default_file_type;
}

std::string TeModule::type_of(const std::string& path,
                              const kernel::Inode& inode) {
  // Labels are cached on the inode (visible as the security.setype xattr);
  // a side entry records the policy generation so reloads relabel lazily.
  const std::string key = std::string(kName);
  const std::string gen_key = key + ".cache_gen";
  const std::string* cached = inode.get_security(key);
  const std::string* cached_gen = inode.get_security(gen_key);
  if (cached && cached_gen &&
      std::stoull(*cached_gen) == generation_) {
    return *cached;
  }
  std::string type = type_of_path(path);
  auto& mutable_inode = const_cast<kernel::Inode&>(inode);
  mutable_inode.set_security(key, type);
  mutable_inode.set_security(gen_key, std::to_string(generation_));
  return type;
}

std::string TeModule::domain_of(const Task& task) const {
  auto blob = task.security_blob<std::string>(std::string(kName));
  return blob ? *blob : policy_.default_domain;
}

void TeModule::set_domain(Task& task, std::string domain) {
  task.set_security_blob(std::string(kName),
                         std::make_shared<std::string>(std::move(domain)));
}

bool TeModule::allowed(std::string_view domain, std::string_view type,
                       TeClass cls, TePerm wanted) const {
  auto it = rule_index_.find(
      Key{std::string(domain), std::string(type), cls});
  if (it == rule_index_.end()) return false;
  return has_all(it->second, wanted);
}

Errno TeModule::check(const Task& task, std::string_view object_type,
                      TeClass cls, TePerm wanted,
                      std::string_view object_path) {
  if (!loaded_) return Errno::ok;
  std::string domain = domain_of(task);
  if (domain == policy_.default_domain) return Errno::ok;  // unconfined
  if (allowed(domain, object_type, cls, wanted)) return Errno::ok;
  ++denials_;
  if (kernel_) {
    kernel::AuditRecord record;
    record.time = kernel_->clock().now();
    record.module = std::string(kName);
    record.pid = task.pid();
    record.subject = domain;
    record.object = std::string(object_path) + " (" +
                    std::string(object_type) + ")";
    record.operation = format_te_perms(wanted);
    record.verdict = kernel::AuditVerdict::denied;
    kernel_->audit().record(std::move(record));
  }
  return Errno::eacces;
}

namespace {

TeClass class_of_inode(const kernel::Inode& inode) {
  switch (inode.type()) {
    case kernel::InodeType::directory: return TeClass::dir;
    case kernel::InodeType::chardev: return TeClass::chardev;
    case kernel::InodeType::symlink: return TeClass::symlink;
    case kernel::InodeType::socket: return TeClass::socket;
    default: return TeClass::file;
  }
}

TePerm perms_from_access(AccessMask access) {
  TePerm p = TePerm::none;
  if (has_any(access, AccessMask::read)) p |= TePerm::read;
  if (has_any(access, AccessMask::write)) p |= TePerm::write;
  if (has_any(access, AccessMask::append)) p |= TePerm::append;
  if (has_any(access, AccessMask::exec)) p |= TePerm::execute;
  return p;
}

}  // namespace

Errno TeModule::file_open(Task& task, const std::string& path,
                          const kernel::Inode& inode, AccessMask access) {
  if (!loaded_) return Errno::ok;
  return check(task, type_of(path, inode), class_of_inode(inode),
               perms_from_access(access), path);
}

Errno TeModule::file_ioctl(Task& task, const kernel::File& file,
                           std::uint32_t) {
  if (!loaded_ || !file.inode()) return Errno::ok;
  return check(task, type_of(file.path(), *file.inode()),
               class_of_inode(*file.inode()), TePerm::ioctl, file.path());
}

Errno TeModule::mmap_file(Task& task, const kernel::File& file, AccessMask) {
  if (!loaded_ || !file.inode()) return Errno::ok;
  return check(task, type_of(file.path(), *file.inode()),
               class_of_inode(*file.inode()), TePerm::mmap, file.path());
}

Errno TeModule::path_mknod(Task& task, const std::string& path,
                           kernel::InodeType) {
  if (!loaded_) return Errno::ok;
  return check(task, type_of_path(path), TeClass::file, TePerm::create, path);
}

Errno TeModule::path_unlink(Task& task, const std::string& path) {
  if (!loaded_) return Errno::ok;
  return check(task, type_of_path(path), TeClass::file, TePerm::unlink, path);
}

Errno TeModule::inode_getattr(Task& task, const std::string& path) {
  if (!loaded_) return Errno::ok;
  std::string domain = domain_of(task);
  if (domain == policy_.default_domain) return Errno::ok;
  // getattr is class-agnostic here; check against the path label as a file.
  return check(task, type_of_path(path), TeClass::file, TePerm::getattr,
               path);
}

Errno TeModule::bprm_check_security(Task& task, const std::string& path) {
  if (!loaded_) return Errno::ok;
  return check(task, type_of_path(path), TeClass::file, TePerm::execute,
               path);
}

void TeModule::bprm_committed_creds(Task& task, const std::string& path) {
  if (!loaded_) return;
  std::string exec_type = type_of_path(path);
  std::string current = domain_of(task);
  for (const auto& t : policy_.transitions) {
    if (t.source_domain == current && t.exec_type == exec_type) {
      set_domain(task, t.target_domain);
      return;
    }
  }
}

Errno TeModule::task_alloc(Task& parent, Task& child) {
  auto blob = parent.security_blob<std::string>(std::string(kName));
  if (blob) child.set_security_blob(std::string(kName), blob);
  return Errno::ok;
}

}  // namespace sack::te
