#include "te/te_policy.h"

namespace sack::te {

std::string_view te_class_name(TeClass c) {
  switch (c) {
    case TeClass::file: return "file";
    case TeClass::dir: return "dir";
    case TeClass::chardev: return "chardev";
    case TeClass::symlink: return "symlink";
    case TeClass::socket: return "socket";
    case TeClass::process: return "process";
  }
  return "?";
}

Result<TeClass> te_class_from_name(std::string_view name) {
  for (auto c : {TeClass::file, TeClass::dir, TeClass::chardev,
                 TeClass::symlink, TeClass::socket, TeClass::process}) {
    if (te_class_name(c) == name) return c;
  }
  return Errno::einval;
}

namespace {
constexpr std::pair<std::string_view, TePerm> kPermNames[] = {
    {"read", TePerm::read},       {"write", TePerm::write},
    {"append", TePerm::append},   {"execute", TePerm::execute},
    {"getattr", TePerm::getattr}, {"setattr", TePerm::setattr},
    {"create", TePerm::create},   {"unlink", TePerm::unlink},
    {"ioctl", TePerm::ioctl},     {"mmap", TePerm::mmap},
    {"transition", TePerm::transition},
};
}  // namespace

Result<TePerm> te_perm_from_name(std::string_view name) {
  for (const auto& [n, p] : kPermNames) {
    if (n == name) return p;
  }
  return Errno::einval;
}

std::string format_te_perms(TePerm perms) {
  std::string out;
  for (const auto& [n, p] : kPermNames) {
    if (has_any(perms, p)) {
      if (!out.empty()) out += ' ';
      out += n;
    }
  }
  return out;
}

namespace {

void sync_stmt(TokenStream& ts) {
  while (!ts.at_end()) {
    if (ts.peek().is_punct(';')) {
      ts.next();
      return;
    }
    ts.next();
  }
}

bool parse_allow(TokenStream& ts, TePolicy& policy,
                 const std::string& condition = {},
                 bool condition_value = true) {
  TeRule rule;
  auto src = ts.expect_ident();
  if (!src.ok()) return false;
  rule.source = src->text;
  auto tgt = ts.expect_ident();
  if (!tgt.ok()) return false;
  rule.target = tgt->text;
  if (!ts.expect_punct(':').ok()) return false;
  auto cls = ts.expect_ident();
  if (!cls.ok()) return false;
  auto parsed_cls = te_class_from_name(cls->text);
  if (!parsed_cls.ok()) {
    ts.record_error("unknown object class '" + cls->text + "'");
    return false;
  }
  rule.cls = parsed_cls.value();
  if (!ts.expect_punct('{').ok()) return false;
  while (!ts.at_end() && !ts.peek().is_punct('}')) {
    auto perm = ts.expect_ident();
    if (!perm.ok()) return false;
    auto parsed = te_perm_from_name(perm->text);
    if (!parsed.ok()) {
      ts.record_error("unknown permission '" + perm->text + "'");
      return false;
    }
    rule.perms |= parsed.value();
  }
  if (!ts.expect_punct('}').ok() || !ts.expect_punct(';').ok()) return false;
  if (is_empty(rule.perms)) {
    ts.record_error("allow rule grants no permissions");
    return false;
  }
  rule.condition = condition;
  rule.condition_value = condition_value;
  policy.rules.push_back(std::move(rule));
  return true;
}

// "if [!]BOOL { allow ...; allow ...; }" — conditional rule blocks.
bool parse_if_block(TokenStream& ts, TePolicy& policy) {
  bool value = true;
  // Optional negation: "if !name" spelled as identifier 'not' or '!'? The
  // tokenizer has no '!', so the grammar uses "if name" / "ifnot name".
  auto name = ts.expect_ident();
  if (!name.ok()) return false;
  if (!ts.expect_punct('{').ok()) return false;
  while (!ts.at_end() && !ts.peek().is_punct('}')) {
    if (!ts.accept_ident("allow")) {
      ts.record_error("only allow rules may appear in an if block");
      return false;
    }
    if (!parse_allow(ts, policy, name->text, value)) return false;
  }
  return ts.expect_punct('}').ok();
}

}  // namespace

TeParseResult parse_te_policy(std::string_view text) {
  TeParseResult result;
  Tokenizer tokenizer(text);
  auto tokens = tokenizer.run();
  if (!tokens.ok()) {
    result.errors.push_back(tokenizer.last_error());
    return result;
  }
  TokenStream ts(std::move(tokens).value());
  while (!ts.at_end()) {
    if (ts.accept_ident("type")) {
      auto name = ts.expect_ident();
      if (!name.ok() || !ts.expect_punct(';').ok()) {
        sync_stmt(ts);
        continue;
      }
      result.policy.types.insert(name->text);
    } else if (ts.accept_ident("attribute")) {
      auto name = ts.expect_ident();
      if (!name.ok() || !ts.expect_punct(';').ok()) {
        sync_stmt(ts);
        continue;
      }
      result.policy.attributes.insert(name->text);
    } else if (ts.accept_ident("allow")) {
      if (!parse_allow(ts, result.policy)) sync_stmt(ts);
    } else if (ts.accept_ident("bool")) {
      auto name = ts.expect_ident();
      auto value = ts.expect_ident();
      if (!name.ok() || !value.ok() || !ts.expect_punct(';').ok() ||
          (value->text != "true" && value->text != "false")) {
        if (name.ok() && value.ok() && value->text != "true" &&
            value->text != "false")
          ts.record_error("boolean default must be 'true' or 'false'");
        sync_stmt(ts);
        continue;
      }
      result.policy.booleans.push_back({name->text, value->text == "true"});
    } else if (ts.accept_ident("if")) {
      if (!parse_if_block(ts, result.policy)) sync_stmt(ts);
    } else if (ts.accept_ident("domain_transition")) {
      auto a = ts.expect_ident();
      auto b = ts.expect_ident();
      auto c = ts.expect_ident();
      if (!a.ok() || !b.ok() || !c.ok() || !ts.expect_punct(';').ok()) {
        sync_stmt(ts);
        continue;
      }
      result.policy.transitions.push_back({a->text, b->text, c->text});
    } else if (ts.accept_ident("filecon")) {
      auto path = ts.expect(TokenKind::path, "path pattern");
      auto type = ts.expect_ident();
      if (!path.ok() || !type.ok() || !ts.expect_punct(';').ok()) {
        sync_stmt(ts);
        continue;
      }
      auto glob = Glob::compile(path->text);
      if (!glob.ok()) {
        ts.record_error("bad file-context pattern '" + path->text + "'");
        sync_stmt(ts);
        continue;
      }
      result.policy.file_contexts.push_back(
          {std::move(glob).value(), type->text});
    } else if (ts.accept_ident("default_domain")) {
      auto name = ts.expect_ident();
      if (!name.ok() || !ts.expect_punct(';').ok()) {
        sync_stmt(ts);
        continue;
      }
      result.policy.default_domain = name->text;
    } else if (ts.accept_ident("default_file_type")) {
      auto name = ts.expect_ident();
      if (!name.ok() || !ts.expect_punct(';').ok()) {
        sync_stmt(ts);
        continue;
      }
      result.policy.default_file_type = name->text;
    } else {
      ts.record_error("expected a TE statement, got '" + ts.peek().text +
                      "'");
      ts.next();
    }
  }
  result.errors = ts.take_errors();
  return result;
}

std::vector<std::string> check_te_policy(const TePolicy& policy) {
  std::vector<std::string> problems;
  auto require_type = [&](const std::string& name, const char* where) {
    if (!policy.has_type(name) && name != policy.default_domain &&
        name != policy.default_file_type) {
      problems.push_back(std::string("undefined type '") + name + "' in " +
                         where);
    }
  };
  std::set<std::string> bool_names;
  for (const auto& b : policy.booleans) {
    if (!bool_names.insert(b.name).second)
      problems.push_back("duplicate boolean '" + b.name + "'");
  }
  for (const auto& rule : policy.rules) {
    require_type(rule.source, "allow rule source");
    require_type(rule.target, "allow rule target");
    if (!rule.condition.empty() && !bool_names.contains(rule.condition))
      problems.push_back("conditional rule references undeclared boolean '" +
                         rule.condition + "'");
  }
  for (const auto& t : policy.transitions) {
    require_type(t.source_domain, "domain_transition source");
    require_type(t.exec_type, "domain_transition exec type");
    require_type(t.target_domain, "domain_transition target");
  }
  for (const auto& fc : policy.file_contexts) {
    require_type(fc.type, "filecon");
  }
  return problems;
}

}  // namespace sack::te
