// Type-enforcement (TE) policy model — a compact SELinux-flavoured MAC
// module. The paper notes that "most security modules are based on the type
// enforcement (TE) model"; this module exists to demonstrate SACK's
// compatibility claims against a second, label-based LSM (not just the
// path-based AppArmor-alike).
//
// Simplifications vs SELinux: a security context is a single type (no
// user:role:level), object classes are the simulator's inode/socket kinds,
// and labels are assigned by file-context patterns instead of persisted
// xattrs (they are cached in the inode security map once computed).
//
// Policy language:
//
//   type init_t;
//   type media_exec_t;
//   attribute domain;                     # declared but informational
//   allow media_t media_file_t : file { read getattr };
//   allow media_t audio_dev_t : chardev { write ioctl };
//   bool emergency_mode false;
//   if emergency_mode { allow rescue_t door_dev_t : chardev { write ioctl }; }
//   domain_transition init_t media_exec_t media_t;
//   filecon /usr/bin/media_app media_exec_t;
//   filecon /var/media/** media_file_t;
//   default_domain unconfined_t;
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/bitmask.h"
#include "util/glob.h"
#include "util/tokenizer.h"

namespace sack::te {

enum class TeClass : std::uint8_t { file, dir, chardev, symlink, socket, process };

std::string_view te_class_name(TeClass c);
Result<TeClass> te_class_from_name(std::string_view name);

enum class TePerm : std::uint32_t {
  none = 0,
  read = 1u << 0,
  write = 1u << 1,
  append = 1u << 2,
  execute = 1u << 3,
  getattr = 1u << 4,
  setattr = 1u << 5,
  create = 1u << 6,
  unlink = 1u << 7,
  ioctl = 1u << 8,
  mmap = 1u << 9,
  transition = 1u << 10,  // process class: domain entry
};

Result<TePerm> te_perm_from_name(std::string_view name);
std::string format_te_perms(TePerm perms);

struct TeRule {
  std::string source;  // subject domain type
  std::string target;  // object type
  TeClass cls{};
  TePerm perms = TePerm::none;
  // SELinux-style conditional: the rule is active only while the named
  // boolean has the given value ("" = unconditional). Booleans are the
  // closest pre-SACK mechanism to situation awareness — a user-space daemon
  // flipping them approximates situation-adaptive policy, which is exactly
  // the comparison the ablation bench draws.
  std::string condition;
  bool condition_value = true;
};

struct TeBoolean {
  std::string name;
  bool default_value = false;
};

struct DomainTransition {
  std::string source_domain;
  std::string exec_type;
  std::string target_domain;
};

struct FileContext {
  Glob pattern;
  std::string type;
};

struct TePolicy {
  std::set<std::string> types;
  std::set<std::string> attributes;
  std::vector<TeBoolean> booleans;
  std::vector<TeRule> rules;
  std::vector<DomainTransition> transitions;
  std::vector<FileContext> file_contexts;
  std::string default_domain = "unconfined_t";
  std::string default_file_type = "unlabeled_t";

  bool has_type(std::string_view name) const {
    return types.contains(std::string(name));
  }
};

struct TeParseResult {
  TePolicy policy;
  std::vector<ParseError> errors;
  bool ok() const { return errors.empty(); }
};

TeParseResult parse_te_policy(std::string_view text);

// Semantic validation: undefined types in rules/transitions/contexts.
std::vector<std::string> check_te_policy(const TePolicy& policy);

}  // namespace sack::te

namespace sack {
template <>
struct EnableBitmask<te::TePerm> : std::true_type {};
}  // namespace sack
