// LsmStack: ordered module list with first-deny-wins semantics.
//
// This reproduces the whitelist-based stacking the paper relies on
// (CONFIG_LSM="SACK,AppArmor,..."): modules are consulted in registration
// order and the first non-OK verdict short-circuits the chain, so SACK
// placed first filters every access before AppArmor sees it.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/lsm/module.h"
#include "kernel/lsm/witness.h"

namespace sack::kernel {

class LsmStack {
 public:
  // Appends a module (later == lower priority). Returns the raw pointer for
  // convenience; the stack owns the module.
  SecurityModule* add(std::unique_ptr<SecurityModule> module);

  // Prepends a module ahead of everything already registered, including the
  // capability module. Only observation modules belong here: a head-of-stack
  // sentinel sees every hook dispatch before any enforcing module can deny
  // and short-circuit the chain.
  SecurityModule* add_front(std::unique_ptr<SecurityModule> module);

  SecurityModule* find(std::string_view name) const;

  std::vector<std::string> module_names() const;
  std::size_t size() const { return modules_.size(); }

  // Installs (or clears, with nullptr) the runtime mediation witness that
  // receives one chain_verdict per dispatched chain. Not owned.
  void set_witness(MediationWitness* witness) { witness_ = witness; }

  // Generic dispatcher: fn(module) -> Errno; stops at the first non-OK.
  template <typename Fn>
  Errno check(Fn&& fn) const {
    Errno rc = Errno::ok;
    for (const auto& m : modules_) {
      rc = fn(*m);
      if (rc != Errno::ok) {
        // Attribute the denial before short-circuiting so a witness can
        // verify first-deny-wins: the chain verdict below must carry exactly
        // this module's errno.
        if (witness_) witness_->module_verdict(m->name(), rc);
        break;
      }
    }
    if (witness_) witness_->chain_verdict(rc);
    return rc;
  }

  // Void dispatcher for notification hooks.
  template <typename Fn>
  void notify(Fn&& fn) const {
    for (const auto& m : modules_) fn(*m);
    if (witness_) witness_->chain_verdict(Errno::ok);
  }

 private:
  std::vector<std::unique_ptr<SecurityModule>> modules_;
  MediationWitness* witness_ = nullptr;
};

}  // namespace sack::kernel
