// LsmStack: ordered module list with first-deny-wins semantics.
//
// This reproduces the whitelist-based stacking the paper relies on
// (CONFIG_LSM="SACK,AppArmor,..."): modules are consulted in registration
// order and the first non-OK verdict short-circuits the chain, so SACK
// placed first filters every access before AppArmor sees it.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/lsm/module.h"

namespace sack::kernel {

class LsmStack {
 public:
  // Appends a module (later == lower priority). Returns the raw pointer for
  // convenience; the stack owns the module.
  SecurityModule* add(std::unique_ptr<SecurityModule> module);

  SecurityModule* find(std::string_view name) const;

  std::vector<std::string> module_names() const;
  std::size_t size() const { return modules_.size(); }

  // Generic dispatcher: fn(module) -> Errno; stops at the first non-OK.
  template <typename Fn>
  Errno check(Fn&& fn) const {
    for (const auto& m : modules_) {
      Errno rc = fn(*m);
      if (rc != Errno::ok) return rc;
    }
    return Errno::ok;
  }

  // Void dispatcher for notification hooks.
  template <typename Fn>
  void notify(Fn&& fn) const {
    for (const auto& m : modules_) fn(*m);
  }

 private:
  std::vector<std::unique_ptr<SecurityModule>> modules_;
};

}  // namespace sack::kernel
