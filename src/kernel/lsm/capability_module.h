// The "capability" LSM: the always-present module that implements POSIX
// capability semantics for the capable() hook, as in the real kernel where
// it is implicitly first on every LSM list.
#pragma once

#include "kernel/lsm/module.h"
#include "kernel/task.h"

namespace sack::kernel {

class CapabilityModule final : public SecurityModule {
 public:
  std::string_view name() const override { return "capability"; }

  Errno capable(const Task& task, Capability cap) override {
    return task.cred().caps.has(cap) ? Errno::ok : Errno::eperm;
  }
};

}  // namespace sack::kernel
