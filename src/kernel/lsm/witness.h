// MediationWitness: runtime observation points for dynamic mediation
// verification (the dynamic half of the hookcheck story).
//
// The static analyzer (sack-hookcheck) proves that every syscall entry *can*
// reach its manifest-required hooks; the witness lets a runtime oracle watch
// what actually happens on a live kernel: which syscalls ran, which hook
// chains were dispatched inside them, what each chain decided, and where
// state was mutated. The kernel emits four kinds of events:
//
//   syscall_enter/exit  - one pair per syscall invocation (nested pairs for
//                         kernel-internal syscalls, e.g. sys_exit inside
//                         sys_kill);
//   hook_enter          - a named hook chain started (reported by a
//                         fuzz-harness sentinel module installed at the head
//                         of the LSM stack, so denials by real modules cannot
//                         hide the dispatch);
//   chain_verdict       - the first-deny-wins result of the chain that most
//                         recently entered (reported by LsmStack itself);
//   mutation            - a named state-mutation site fired (reported by the
//                         syscall bodies right before the mutation).
//
// With no witness installed every observation point is a single untaken
// branch on a null pointer — the enforcement hot path is unaffected, which
// is why the witness can stay compiled in unconditionally.
#pragma once

#include <string_view>

#include "util/errno.h"

namespace sack::kernel {

class MediationWitness {
 public:
  virtual ~MediationWitness() = default;

  // A syscall entry point began / returned. `name` is the kernel entry name
  // ("sys_open"). Pairs may nest; exits match the innermost open enter.
  virtual void syscall_enter(std::string_view name) { (void)name; }
  virtual void syscall_exit(std::string_view name) { (void)name; }

  // A hook chain was dispatched under the given hook name. Emitted by the
  // head-of-stack sentinel module, i.e. before any enforcing module has had
  // a chance to deny.
  virtual void hook_enter(std::string_view hook) { (void)hook; }

  // The chain that most recently entered resolved to `verdict`
  // (Errno::ok for notify chains, which cannot veto).
  virtual void chain_verdict(Errno verdict) { (void)verdict; }

  // The named module produced the first non-OK verdict of the current chain
  // (reported by LsmStack immediately before it short-circuits, i.e. before
  // the matching chain_verdict). Lets an oracle prove first-deny-wins: the
  // chain verdict must equal the denial of the module that fired first — no
  // later module may overwrite or swallow it.
  virtual void module_verdict(std::string_view module, Errno verdict) {
    (void)module; (void)verdict;
  }

  // A named state-mutation site is about to execute (fd_install,
  // vfs_create, sock_bind, ...). Site names are the runtime analogue of the
  // manifest's static ordering anchors; docs/FUZZER.md lists them.
  virtual void mutation(std::string_view site) { (void)site; }
};

}  // namespace sack::kernel
