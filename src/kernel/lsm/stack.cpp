#include "kernel/lsm/stack.h"

namespace sack::kernel {

SecurityModule* LsmStack::add(std::unique_ptr<SecurityModule> module) {
  modules_.push_back(std::move(module));
  return modules_.back().get();
}

SecurityModule* LsmStack::add_front(std::unique_ptr<SecurityModule> module) {
  modules_.insert(modules_.begin(), std::move(module));
  return modules_.front().get();
}

SecurityModule* LsmStack::find(std::string_view name) const {
  for (const auto& m : modules_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

std::vector<std::string> LsmStack::module_names() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& m : modules_) names.emplace_back(m->name());
  return names;
}

}  // namespace sack::kernel
