// SecurityModule: the LSM hook interface.
//
// Hook names and call sites mirror the real LSM framework (security/security.c)
// for the subset the simulator's syscalls exercise. A hook returning
// Errno::ok allows the operation; anything else denies it with that error.
// Default implementations allow everything, so modules override only the
// hooks they mediate — exactly like a sparse struct security_hook_list.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "kernel/cred.h"
#include "kernel/types.h"
#include "util/clock.h"
#include "util/result.h"

namespace sack::kernel {

class Task;
class File;
class Inode;
class Socket;
class Kernel;

class SecurityModule {
 public:
  virtual ~SecurityModule() = default;

  virtual std::string_view name() const = 0;

  // Called once after the module is added to the stack, with the kernel
  // booted far enough for securityfs registration.
  virtual void initialize(Kernel& kernel) { (void)kernel; }

  // --- file hooks ---
  virtual Errno file_open(Task& task, const std::string& path,
                          const Inode& inode, AccessMask access) {
    (void)task; (void)path; (void)inode; (void)access;
    return Errno::ok;
  }
  virtual Errno file_permission(Task& task, const File& file,
                                AccessMask access) {
    (void)task; (void)file; (void)access;
    return Errno::ok;
  }
  virtual Errno file_ioctl(Task& task, const File& file, std::uint32_t cmd) {
    (void)task; (void)file; (void)cmd;
    return Errno::ok;
  }
  virtual Errno mmap_file(Task& task, const File& file, AccessMask prot) {
    (void)task; (void)file; (void)prot;
    return Errno::ok;
  }

  // --- path hooks (path-based MAC: AppArmor, SACK) ---
  virtual Errno path_mknod(Task& task, const std::string& path,
                           InodeType type) {
    (void)task; (void)path; (void)type;
    return Errno::ok;
  }
  virtual Errno path_unlink(Task& task, const std::string& path) {
    (void)task; (void)path;
    return Errno::ok;
  }
  virtual Errno path_mkdir(Task& task, const std::string& path) {
    (void)task; (void)path;
    return Errno::ok;
  }
  virtual Errno path_rmdir(Task& task, const std::string& path) {
    (void)task; (void)path;
    return Errno::ok;
  }
  virtual Errno path_rename(Task& task, const std::string& old_path,
                            const std::string& new_path) {
    (void)task; (void)old_path; (void)new_path;
    return Errno::ok;
  }
  virtual Errno path_symlink(Task& task, const std::string& path,
                             const std::string& target) {
    (void)task; (void)path; (void)target;
    return Errno::ok;
  }
  virtual Errno path_link(Task& task, const std::string& old_path,
                          const std::string& new_path) {
    (void)task; (void)old_path; (void)new_path;
    return Errno::ok;
  }
  virtual Errno path_truncate(Task& task, const std::string& path) {
    (void)task; (void)path;
    return Errno::ok;
  }
  virtual Errno path_chmod(Task& task, const std::string& path,
                           FileMode mode) {
    (void)task; (void)path; (void)mode;
    return Errno::ok;
  }
  virtual Errno path_chown(Task& task, const std::string& path, Uid uid,
                           Gid gid) {
    (void)task; (void)path; (void)uid; (void)gid;
    return Errno::ok;
  }
  virtual Errno inode_getattr(Task& task, const std::string& path) {
    (void)task; (void)path;
    return Errno::ok;
  }
  // Mirrors security_inode_readlink: reading a link target leaks where the
  // link points, so it is mediated like getattr.
  virtual Errno inode_readlink(Task& task, const std::string& path) {
    (void)task; (void)path;
    return Errno::ok;
  }
  // Mirrors security_inode_listxattr: enumerating attribute names reveals
  // which LSM labels an object carries.
  virtual Errno inode_listxattr(Task& task, const std::string& path) {
    (void)task; (void)path;
    return Errno::ok;
  }
  virtual Errno inode_getxattr(Task& task, const std::string& path,
                               const std::string& name) {
    (void)task; (void)path; (void)name;
    return Errno::ok;
  }
  virtual Errno inode_setxattr(Task& task, const std::string& path,
                               const std::string& name,
                               const std::string& value) {
    (void)task; (void)path; (void)name; (void)value;
    return Errno::ok;
  }

  // --- program execution ---
  virtual Errno bprm_check_security(Task& task, const std::string& path) {
    (void)task; (void)path;
    return Errno::ok;
  }
  // Domain transitions happen here (no veto possible, like the real hook).
  virtual void bprm_committed_creds(Task& task, const std::string& path) {
    (void)task; (void)path;
  }

  // --- syscall flow ---
  // Dispatched once at the top of every syscall entry (sys_exit excepted:
  // exit cannot be vetoed), before argument validation or any DAC check.
  // `syscall` is the kernel entry name ("sys_open"). This is the observation
  // and enforcement point for syscall-flow-integrity modules (src/sfi): a
  // per-syscall-granularity hook, where every other hook in this interface is
  // per-object. Modules that don't track flow inherit the allow default.
  virtual Errno task_syscall(Task& task, std::string_view syscall) {
    (void)task; (void)syscall;
    return Errno::ok;
  }

  // --- task lifecycle ---
  virtual Errno task_alloc(Task& parent, Task& child) {
    (void)parent; (void)child;
    return Errno::ok;
  }
  virtual void task_free(Task& task) { (void)task; }
  virtual Errno task_kill(Task& sender, Task& target, int sig) {
    (void)sender; (void)target; (void)sig;
    return Errno::ok;
  }

  // --- introspection ---
  // The module's contribution to /proc/<pid>/attr/current (how AppArmor &
  // SELinux expose task confinement). Empty string = nothing to report.
  virtual std::string getprocattr(const Task& task) {
    (void)task;
    return {};
  }

  // --- time ---
  // Called when the kernel's virtual clock advances (timer interrupt
  // analogue); modules with time-dependent policy react here.
  virtual void clock_tick(SimTime now) { (void)now; }

  // --- capabilities ---
  virtual Errno capable(const Task& task, Capability cap) {
    (void)task; (void)cap;
    return Errno::ok;
  }

  // --- sockets ---
  virtual Errno socket_create(Task& task, SockFamily family, SockType type) {
    (void)task; (void)family; (void)type;
    return Errno::ok;
  }
  virtual Errno socket_bind(Task& task, const Socket& sock) {
    (void)task; (void)sock;
    return Errno::ok;
  }
  virtual Errno socket_connect(Task& task, const Socket& sock) {
    (void)task; (void)sock;
    return Errno::ok;
  }
  // Mirrors security_socket_listen: checked before the socket becomes
  // reachable by peers.
  virtual Errno socket_listen(Task& task, const Socket& sock, int backlog) {
    (void)task; (void)sock; (void)backlog;
    return Errno::ok;
  }
  // Mirrors security_socket_accept: checked before a queued connection is
  // handed to the caller (a denial must leave the backlog intact).
  virtual Errno socket_accept(Task& task, const Socket& sock) {
    (void)task; (void)sock;
    return Errno::ok;
  }
  virtual Errno socket_sendmsg(Task& task, const Socket& sock) {
    (void)task; (void)sock;
    return Errno::ok;
  }
  virtual Errno socket_recvmsg(Task& task, const Socket& sock) {
    (void)task; (void)sock;
    return Errno::ok;
  }
};

}  // namespace sack::kernel
