// Loopback-only socket simulation: AF_UNIX and AF_INET stream sockets.
//
// A connected socket pair is two PipeBuffers (one per direction). INET
// sockets additionally pay a simulated protocol cost per segment (header
// build + checksum over the payload) so that TCP bandwidth and AF_UNIX
// bandwidth are distinguishable, as they are in LMBench.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "kernel/pipe.h"
#include "kernel/types.h"
#include "util/result.h"

namespace sack::kernel {

struct SockAddr {
  SockFamily family{};
  std::string path;        // AF_UNIX
  std::uint32_t ip = 0;    // AF_INET (loopback only)
  std::uint16_t port = 0;  // AF_INET

  friend bool operator==(const SockAddr& a, const SockAddr& b) = default;

  static SockAddr un(std::string path) {
    return {SockFamily::unix_, std::move(path), 0, 0};
  }
  static SockAddr in(std::uint16_t port) {
    return {SockFamily::inet, {}, 0x7f000001, port};
  }
};

enum class SockState : std::uint8_t {
  created,
  bound,
  listening,
  connected,
  closed,
};

class Socket {
 public:
  Socket(SockFamily family, SockType type) : family_(family), type_(type) {}

  SockFamily family() const { return family_; }
  SockType type() const { return type_; }
  SockState state = SockState::created;
  SockAddr local;
  SockAddr peer;

  // Data path: rx is what we read, tx is what the peer reads.
  std::shared_ptr<PipeBuffer> rx;
  std::shared_ptr<PipeBuffer> tx;

  // Listening sockets queue fully-formed peer endpoints for accept().
  std::deque<std::shared_ptr<Socket>> backlog;
  int backlog_limit = 0;

  Result<std::size_t> send(std::string_view data);
  Result<std::size_t> recv(std::string& out, std::size_t n);

  void shutdown();

 private:
  SockFamily family_;
  SockType type_;
};

// Wires a <-> b as a connected pair.
void connect_sockets(Socket& a, Socket& b);

}  // namespace sack::kernel
