// Open file descriptions and per-task fd tables.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/inode.h"
#include "kernel/pipe.h"
#include "kernel/socket.h"
#include "kernel/types.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/transparent_hash.h"

namespace sack::kernel {

enum class PipeEnd : std::uint8_t { read, write };

// An open file description (struct file). Shared between fds after dup/fork.
class File {
 public:
  File(InodePtr inode, OpenFlags flags, std::string path)
      : inode_(std::move(inode)), flags_(flags), path_(std::move(path)) {}

  // Pipe end constructor.
  File(std::shared_ptr<PipeBuffer> pipe, PipeEnd end)
      : flags_(end == PipeEnd::read ? OpenFlags::read : OpenFlags::write),
        path_(end == PipeEnd::read ? "pipe:[r]" : "pipe:[w]"),
        pipe_(std::move(pipe)),
        pipe_end_(end) {}

  // Socket constructor.
  explicit File(std::shared_ptr<Socket> sock)
      : flags_(OpenFlags::rdwr), path_("socket:"), socket_(std::move(sock)) {}

  // Closing the last fd on a pipe end or socket tears the endpoint down.
  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  const InodePtr& inode() const { return inode_; }
  OpenFlags flags() const { return flags_; }
  // Resolved absolute path captured at open time; this is what path-based
  // LSMs (AppArmor, SACK) match against, like the kernel's file->f_path.
  const std::string& path() const { return path_; }

  bool readable() const { return has_any(flags_, OpenFlags::read); }
  bool writable() const { return has_any(flags_, OpenFlags::write); }
  bool append_only() const { return has_any(flags_, OpenFlags::append); }

  std::uint64_t offset = 0;

  bool is_pipe() const { return pipe_ != nullptr; }
  const std::shared_ptr<PipeBuffer>& pipe() const { return pipe_; }
  PipeEnd pipe_end() const { return pipe_end_; }

  bool is_socket() const { return socket_ != nullptr; }
  const std::shared_ptr<Socket>& socket() const { return socket_; }

  // securityfs read snapshot: filled on first read, served from then on, so a
  // reader sees one consistent version even if the handler's state changes.
  std::optional<std::string> vfile_snapshot;

  // --- per-module revalidation cache, keyed by LSM name ---
  // A MAC module stores its policy generation AND the subject identity it
  // validated after a successful file_permission check, and skips
  // re-matching until either changes — the mechanism that makes
  // already-open fds subject to situation transitions without paying a full
  // rule match on every read/write. The subject matters because open files
  // survive exec(): the task's executable/profile can change under a cached
  // verdict. The cache is logically not file state (it memoizes a
  // recomputable decision), so the accessors are const over a mutable,
  // mutex-guarded map — open file descriptions are shared across fds and
  // tasks after dup()/fork(), and hooks may run concurrently.

  // True iff `module` validated this file under exactly this generation and
  // subject.
  bool mac_verdict_current(std::string_view module, std::uint64_t generation,
                           std::string_view subject) const;
  // Same check for a subject stored as `exe + '\0' + profile`, compared
  // piecewise against the cached key so the (hot) probe never composes the
  // subject string — file_permission's warm path stays allocation-free.
  bool mac_verdict_current(std::string_view module, std::uint64_t generation,
                           std::string_view exe,
                           std::string_view profile) const;
  // Records a successful validation (overwrites any previous entry).
  void mac_verdict_store(std::string_view module, std::uint64_t generation,
                         std::string subject) const;

 private:
  struct MacCacheEntry {
    std::uint64_t generation = 0;
    std::string subject;
  };

  InodePtr inode_;
  OpenFlags flags_;
  std::string path_;
  std::shared_ptr<PipeBuffer> pipe_;
  PipeEnd pipe_end_ = PipeEnd::read;
  std::shared_ptr<Socket> socket_;
  mutable util::Mutex mac_mu_;
  mutable StringMap<MacCacheEntry> mac_revalidate_ SACK_GUARDED_BY(mac_mu_);
};

using FilePtr = std::shared_ptr<File>;

class FdTable {
 public:
  static constexpr std::size_t kMaxFds = 1024;  // RLIMIT_NOFILE default

  // Lowest-free-slot allocation, as POSIX requires.
  Result<Fd> install(FilePtr file);
  Result<FilePtr> get(Fd fd) const;
  Result<void> remove(Fd fd);

  std::size_t open_count() const;

  // fork() shares open file descriptions.
  FdTable clone() const { return *this; }

  void close_all() { slots_.clear(); }

  // Marks/queries close-on-exec (tracked per slot, not per description).
  void set_cloexec(Fd fd, bool on);
  void drop_cloexec();

 private:
  struct Slot {
    FilePtr file;
    bool cloexec = false;
  };
  std::vector<Slot> slots_;
};

}  // namespace sack::kernel
