// A /proc-like view of task security attributes.
//
// Real LSMs expose per-task confinement through /proc/<pid>/attr/current;
// this component maintains /proc/<pid>/attr/current nodes in the simulated
// VFS for every live task, answering reads by asking each module's
// getprocattr hook. Nodes appear at task creation and vanish when the task
// is reaped.
#pragma once

#include <map>
#include <memory>

#include "kernel/device.h"
#include "kernel/inode.h"
#include "kernel/types.h"

namespace sack::kernel {

class Kernel;
class Vfs;

class ProcFs {
 public:
  ProcFs(Kernel* kernel, Vfs* vfs);
  ~ProcFs();

  void on_task_created(const Task& task);
  void on_task_reaped(const Task& task);

 private:
  class AttrFile;

  Kernel* kernel_;
  Vfs* vfs_;
  InodePtr proc_root_;
  std::map<Pid, std::unique_ptr<AttrFile>> files_;
};

}  // namespace sack::kernel
