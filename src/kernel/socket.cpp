#include "kernel/socket.h"

namespace sack::kernel {

namespace {

// Simulated per-segment TCP cost: builds a header and checksums the payload.
// This is deliberately cheap-but-nonzero; it makes INET bandwidth trail
// AF_UNIX bandwidth the way it does on real systems.
std::uint32_t simulate_inet_segment(std::string_view payload) {
  struct Header {
    std::uint16_t src_port, dst_port;
    std::uint32_t seq, ack;
    std::uint16_t window, checksum;
  } hdr{0x1234, 0x50, 0, 0, 0xffff, 0};
  std::uint32_t sum = hdr.src_port + hdr.dst_port + hdr.window;
  for (unsigned char c : payload) sum += c;
  sum = (sum & 0xffff) + (sum >> 16);
  return sum;
}

}  // namespace

Result<std::size_t> Socket::send(std::string_view data) {
  if (state != SockState::connected || !tx) return Errno::enotconn;
  if (family_ == SockFamily::inet) {
    // Segment at a 1460-byte MSS; cost accrues per segment.
    constexpr std::size_t kMss = 1460;
    std::uint32_t sum = 0;
    for (std::size_t off = 0; off < data.size(); off += kMss) {
      sum += simulate_inet_segment(data.substr(off, kMss));
    }
    // Keep the checksum work observable so the optimizer can't delete it.
    volatile std::uint32_t sink = sum;
    (void)sink;
  }
  return tx->write(data);
}

Result<std::size_t> Socket::recv(std::string& out, std::size_t n) {
  if (state != SockState::connected || !rx) return Errno::enotconn;
  return rx->read(out, n);
}

void Socket::shutdown() {
  // We are the reader of rx and the writer of tx; closing must drop *our*
  // ends so the surviving peer sees EOF on its next recv (our tx is its rx,
  // now writerless) and EPIPE on its next send (our rx is its tx, now
  // readerless). The old code flipped the peer's ends instead, leaving the
  // survivor polling EAGAIN on a connection nobody could ever finish.
  if (rx) rx->reader_open = false;
  if (tx) tx->writer_open = false;
  state = SockState::closed;
}

void connect_sockets(Socket& a, Socket& b) {
  auto ab = std::make_shared<PipeBuffer>();
  auto ba = std::make_shared<PipeBuffer>();
  a.tx = ab;
  b.rx = ab;
  b.tx = ba;
  a.rx = ba;
  a.state = SockState::connected;
  b.state = SockState::connected;
  a.peer = b.local;
  b.peer = a.local;
}

}  // namespace sack::kernel
