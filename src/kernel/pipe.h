// Pipe buffers.
//
// The simulator is single-threaded and cooperative, so pipe I/O never blocks:
// a write into a full pipe and a read from an empty pipe return EAGAIN, and
// callers (benchmarks, apps) interleave the two ends explicitly. Capacity
// matches Linux's default 64 KiB.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/result.h"

namespace sack::kernel {

class PipeBuffer {
 public:
  static constexpr std::size_t kCapacity = 64 * 1024;

  explicit PipeBuffer(std::size_t capacity = kCapacity)
      : capacity_(capacity) {}

  std::size_t available() const { return size_; }
  std::size_t space() const { return capacity_ - size_; }
  bool empty() const { return size_ == 0; }

  bool reader_open = true;
  bool writer_open = true;

  // Writes as much as fits; EPIPE if the read end is gone, EAGAIN if full.
  Result<std::size_t> write(std::string_view data);

  // Reads up to n bytes; 0 at EOF (writer closed), EAGAIN if empty.
  Result<std::size_t> read(std::string& out, std::size_t n);

 private:
  // Ring buffer over a flat string.
  std::size_t capacity_;
  std::string buf_ = std::string(kCapacity, '\0');
  std::size_t head_ = 0;  // read position
  std::size_t size_ = 0;
};

}  // namespace sack::kernel
