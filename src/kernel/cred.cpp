#include "kernel/cred.h"

#include <array>

#include "util/strings.h"

namespace sack::kernel {

namespace {
constexpr std::array<std::string_view,
                     static_cast<std::size_t>(Capability::count_)>
    kCapNames = {
        "chown",       "dac_override", "dac_read_search", "fowner",
        "kill",        "setuid",       "setgid",          "net_bind_service",
        "net_raw",     "net_admin",    "ipc_lock",        "sys_module",
        "sys_rawio",   "sys_admin",    "sys_boot",        "sys_nice",
        "sys_time",    "mknod",        "audit_write",     "mac_override",
        "mac_admin",
};
}  // namespace

std::string_view capability_name(Capability c) {
  auto idx = static_cast<std::size_t>(c);
  if (idx >= kCapNames.size()) return "unknown";
  return kCapNames[idx];
}

Result<Capability> capability_from_name(std::string_view name) {
  std::string lowered = to_lower(name);
  std::string_view n = lowered;
  if (n.starts_with("cap_")) n.remove_prefix(4);
  for (std::size_t i = 0; i < kCapNames.size(); ++i) {
    if (kCapNames[i] == n) return static_cast<Capability>(i);
  }
  return Errno::einval;
}

CapSet CapSet::full() {
  CapSet s;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Capability::count_);
       ++i) {
    s.add(static_cast<Capability>(i));
  }
  return s;
}

Cred Cred::root() {
  Cred c;
  c.uid = c.euid = kRootUid;
  c.gid = c.egid = kRootGid;
  c.caps = CapSet::full();
  return c;
}

Cred Cred::user(Uid uid, Gid gid) {
  Cred c;
  c.uid = c.euid = uid;
  c.gid = c.egid = gid;
  c.caps = CapSet::empty();
  return c;
}

}  // namespace sack::kernel
