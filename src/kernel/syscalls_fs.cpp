// File-system syscalls. LSM hook placement follows fs/namei.c, fs/open.c,
// fs/read_write.c: DAC first, then the LSM chain, then the operation.
#include <algorithm>

#include "kernel/kernel.h"
#include "util/log.h"

namespace sack::kernel {

namespace {

AccessMask open_access(OpenFlags flags) {
  AccessMask a = AccessMask::none;
  if (has_any(flags, OpenFlags::read)) a |= AccessMask::read;
  if (has_any(flags, OpenFlags::write)) a |= AccessMask::write;
  if (has_any(flags, OpenFlags::append)) a |= AccessMask::append;
  return a;
}

}  // namespace

Result<Fd> Kernel::sys_open(Task& task, std::string_view path, OpenFlags flags,
                            FileMode mode) {
  SyscallScope scope(*this, "sys_open");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_open"); });
  if (flow_rc != Errno::ok) return flow_rc;
  if (is_empty(open_access(flags))) return Errno::einval;

  bool want_create = has_any(flags, OpenFlags::create);
  auto r = want_create
               ? vfs_.resolve_parent(task.cred(), path, task.cwd())
               : vfs_.resolve(task.cred(), path, task.cwd(),
                              !has_any(flags, OpenFlags::nofollow));
  if (!r.ok()) return r.error();

  InodePtr inode = r->inode;
  bool created = false;

  if (!inode) {
    // O_CREAT on a missing file.
    if (Errno rc = dac_check(task.cred(), *r->parent, AccessMask::write);
        rc != Errno::ok)
      return rc;
    Errno rc = lsm_.check([&](SecurityModule& m) {
      return m.path_mknod(task, r->path, InodeType::regular);
    });
    if (rc != Errno::ok) return rc;
    note_mutation("vfs_create");
    inode = vfs_.make_inode(InodeType::regular, mode, task.cred().euid,
                            task.cred().egid);
    vfs_.link_child(r->parent, r->leaf, inode);
    created = true;
  } else {
    if (want_create && has_any(flags, OpenFlags::excl)) return Errno::eexist;
    if (inode->is_symlink()) {
      // resolve_parent / nofollow left us at the link itself.
      if (has_any(flags, OpenFlags::nofollow)) return Errno::eloop;
      auto rr = vfs_.resolve(task.cred(), path, task.cwd());
      if (!rr.ok()) return rr.error();
      r = rr;
      inode = r->inode;
    }
  }

  if (inode->is_dir()) {
    if (has_any(flags, OpenFlags::write)) return Errno::eisdir;
  } else if (has_any(flags, OpenFlags::directory)) {
    return Errno::enotdir;
  }

  AccessMask access = open_access(flags);
  if (!created) {
    if (Errno rc = dac_check(task.cred(), *inode, access); rc != Errno::ok)
      return rc;
  }
  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.file_open(task, r->path, *inode, access);
  });
  if (rc != Errno::ok) {
    log_debug("open denied by MAC: ", r->path);
    return rc;
  }

  if (has_any(flags, OpenFlags::trunc) && inode->is_regular() &&
      has_any(flags, OpenFlags::write) && !inode->data().empty()) {
    Errno trc = lsm_.check(
        [&](SecurityModule& m) { return m.path_truncate(task, r->path); });
    if (trc != Errno::ok) return trc;
    note_mutation("file_truncate");
    inode->data().clear();
    inode->mtime = clock_.now();
  }

  auto file = std::make_shared<File>(inode, flags, r->path);
  if (has_any(flags, OpenFlags::append)) file->offset = inode->data().size();
  note_mutation("fd_install");
  auto fd = task.fds().install(file);
  if (!fd.ok()) return fd.error();
  if (has_any(flags, OpenFlags::cloexec))
    task.fds().set_cloexec(fd.value(), true);
  inode->atime = clock_.now();
  return fd;
}

Result<void> Kernel::sys_close(Task& task, Fd fd) {
  SyscallScope scope(*this, "sys_close");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_close"); });
  if (flow_rc != Errno::ok) return flow_rc;
  note_mutation("fd_close");
  return task.fds().remove(fd);
}

Result<std::size_t> Kernel::sys_read(Task& task, Fd fd, std::string& out,
                                     std::size_t n) {
  SyscallScope scope(*this, "sys_read");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_read"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto fr = task.fds().get(fd);
  if (!fr.ok()) return fr.error();
  File& file = **fr;
  if (!file.readable()) return Errno::ebadf;

  if (file.is_socket()) {
    Errno rc = lsm_.check([&](SecurityModule& m) {
      return m.socket_recvmsg(task, *file.socket());
    });
    if (rc != Errno::ok) return rc;
    note_mutation("sock_recv");
    return file.socket()->recv(out, n);
  }

  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.file_permission(task, file, AccessMask::read);
  });
  if (rc != Errno::ok) return rc;

  if (file.is_pipe()) {
    if (file.pipe_end() != PipeEnd::read) return Errno::ebadf;
    note_mutation("pipe_read");
    return file.pipe()->read(out, n);
  }

  const InodePtr& inode = file.inode();
  if (inode->is_dir()) return Errno::eisdir;

  if (inode->vfile) {
    // securityfs read: snapshot once per description, serve from it.
    if (!file.vfile_snapshot) {
      auto content = inode->vfile->read_content(task);
      if (!content.ok()) return content.error();
      file.vfile_snapshot = std::move(content).value();
    }
    const std::string& snap = *file.vfile_snapshot;
    if (file.offset >= snap.size()) {
      out.clear();
      return std::size_t{0};
    }
    std::size_t take = std::min(n, snap.size() - file.offset);
    out.assign(snap, file.offset, take);
    file.offset += take;
    return take;
  }

  if (inode->is_chardev()) {
    if (!inode->device) return Errno::enodev;
    return inode->device->read(task, file, out, n);
  }

  const std::string& data = inode->data();
  if (file.offset >= data.size()) {
    out.clear();
    return std::size_t{0};
  }
  std::size_t take = std::min(n, data.size() - file.offset);
  out.assign(data, file.offset, take);
  file.offset += take;
  inode->atime = clock_.now();
  return take;
}

Result<std::size_t> Kernel::sys_write(Task& task, Fd fd,
                                      std::string_view data) {
  SyscallScope scope(*this, "sys_write");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_write"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto fr = task.fds().get(fd);
  if (!fr.ok()) return fr.error();
  File& file = **fr;
  if (!file.writable()) return Errno::ebadf;

  if (file.is_socket()) {
    Errno rc = lsm_.check([&](SecurityModule& m) {
      return m.socket_sendmsg(task, *file.socket());
    });
    if (rc != Errno::ok) return rc;
    note_mutation("sock_send");
    return file.socket()->send(data);
  }

  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.file_permission(task, file,
                             file.append_only() ? AccessMask::append
                                                : AccessMask::write);
  });
  if (rc != Errno::ok) return rc;

  if (file.is_pipe()) {
    if (file.pipe_end() != PipeEnd::write) return Errno::ebadf;
    note_mutation("pipe_write");
    return file.pipe()->write(data);
  }

  const InodePtr& inode = file.inode();

  if (inode->vfile) {
    // securityfs write: dispatch synchronously to the owning module.
    note_mutation("vfile_write");
    auto wr = inode->vfile->write_content(task, data);
    if (!wr.ok()) return wr.error();
    return data.size();
  }

  if (inode->is_chardev()) {
    if (!inode->device) return Errno::enodev;
    note_mutation("dev_write");
    return inode->device->write(task, file, data);
  }
  if (!inode->is_regular()) return Errno::einval;

  std::string& content = inode->data();
  if (file.append_only()) file.offset = content.size();
  // An lseek far past EOF followed by a write would otherwise ask resize()
  // for an arbitrary caller-chosen size — std::length_error, i.e. a
  // user-triggerable kernel crash. Real filesystems bound this with EFBIG.
  if (file.offset + data.size() > kMaxFileSize) return Errno::efbig;
  note_mutation("file_write");
  if (file.offset + data.size() > content.size())
    content.resize(file.offset + data.size());
  std::copy(data.begin(), data.end(), content.begin() + static_cast<std::ptrdiff_t>(file.offset));
  file.offset += data.size();
  inode->mtime = clock_.now();
  return data.size();
}

Result<std::uint64_t> Kernel::sys_lseek(Task& task, Fd fd, std::int64_t offset,
                                        Whence whence) {
  SyscallScope scope(*this, "sys_lseek");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_lseek"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto fr = task.fds().get(fd);
  if (!fr.ok()) return fr.error();
  File& file = **fr;
  if (file.is_pipe() || file.is_socket()) return Errno::espipe;
  std::int64_t base = 0;
  switch (whence) {
    case Whence::set: base = 0; break;
    case Whence::cur: base = static_cast<std::int64_t>(file.offset); break;
    case Whence::end:
      base = static_cast<std::int64_t>(file.inode()->data().size());
      break;
  }
  std::int64_t target = base + offset;
  if (target < 0) return Errno::einval;
  file.offset = static_cast<std::uint64_t>(target);
  return file.offset;
}

namespace {
Stat stat_of(const Inode& inode) {
  Stat st;
  st.ino = inode.ino();
  st.type = inode.type();
  st.mode = inode.mode();
  st.uid = inode.uid();
  st.gid = inode.gid();
  st.size = inode.size();
  st.nlink = inode.nlink();
  st.atime = inode.atime;
  st.mtime = inode.mtime;
  st.ctime = inode.ctime;
  return st;
}
}  // namespace

Result<Stat> Kernel::sys_stat(Task& task, std::string_view path) {
  SyscallScope scope(*this, "sys_stat");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_stat"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd());
  if (!r.ok()) return r.error();
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.inode_getattr(task, r->path); });
  if (rc != Errno::ok) return rc;
  return stat_of(*r->inode);
}

Result<Stat> Kernel::sys_fstat(Task& task, Fd fd) {
  SyscallScope scope(*this, "sys_fstat");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_fstat"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto fr = task.fds().get(fd);
  if (!fr.ok()) return fr.error();
  File& file = **fr;
  if (!file.inode()) return Errno::ebadf;  // pipe/socket: not modeled
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.inode_getattr(task, file.path()); });
  if (rc != Errno::ok) return rc;
  return stat_of(*file.inode());
}

Result<void> Kernel::sys_mkdir(Task& task, std::string_view path,
                               FileMode mode) {
  SyscallScope scope(*this, "sys_mkdir");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_mkdir"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve_parent(task.cred(), path, task.cwd());
  if (!r.ok()) return r.error();
  if (r->inode) return Errno::eexist;
  if (Errno rc = dac_check(task.cred(), *r->parent, AccessMask::write);
      rc != Errno::ok)
    return rc;
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.path_mkdir(task, r->path); });
  if (rc != Errno::ok) return rc;
  note_mutation("vfs_create");
  auto dir = vfs_.make_inode(InodeType::directory, mode, task.cred().euid,
                             task.cred().egid);
  dir->set_nlink(2);
  vfs_.link_child(r->parent, r->leaf, dir);
  return {};
}

Result<void> Kernel::sys_rmdir(Task& task, std::string_view path) {
  SyscallScope scope(*this, "sys_rmdir");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_rmdir"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd(), false);
  if (!r.ok()) return r.error();
  if (!r->inode->is_dir()) return Errno::enotdir;
  if (!r->inode->children().empty()) return Errno::enotempty;
  if (r->inode == vfs_.root()) return Errno::ebusy;
  if (Errno rc = dac_check(task.cred(), *r->parent, AccessMask::write);
      rc != Errno::ok)
    return rc;
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.path_rmdir(task, r->path); });
  if (rc != Errno::ok) return rc;
  note_mutation("vfs_unlink");
  vfs_.unlink_child(r->parent, r->leaf);
  return {};
}

Result<void> Kernel::sys_unlink(Task& task, std::string_view path) {
  SyscallScope scope(*this, "sys_unlink");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_unlink"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd(), false);
  if (!r.ok()) return r.error();
  if (r->inode->is_dir()) return Errno::eisdir;
  if (Errno rc = dac_check(task.cred(), *r->parent, AccessMask::write);
      rc != Errno::ok)
    return rc;
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.path_unlink(task, r->path); });
  if (rc != Errno::ok) return rc;
  note_mutation("vfs_unlink");
  vfs_.unlink_child(r->parent, r->leaf);
  return {};
}

Result<void> Kernel::sys_rename(Task& task, std::string_view from,
                                std::string_view to) {
  SyscallScope scope(*this, "sys_rename");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_rename"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto rf = vfs_.resolve(task.cred(), from, task.cwd(), false);
  if (!rf.ok()) return rf.error();
  auto rt = vfs_.resolve_parent(task.cred(), to, task.cwd());
  if (!rt.ok()) return rt.error();
  // Renaming a path onto itself is a no-op (POSIX) — short-circuit before
  // the unlink/link dance would corrupt the link count. The same applies to
  // two hard links of one inode: rename("a", "b") with a and b linked to the
  // same file must leave both names in place and succeed.
  if (rf->path == rt->path) return {};
  if (rt->inode && rt->inode == rf->inode) return {};
  if (rt->inode && rt->inode->is_dir()) return Errno::eisdir;
  // Renaming a directory into its own subtree would orphan the subtree (and
  // cycle the tree); the real VFS returns EINVAL for this.
  if (rf->inode->is_dir()) {
    for (InodePtr p = rt->parent; p; p = p->parent.lock()) {
      if (p == rf->inode) return Errno::einval;
    }
  }
  if (Errno rc = dac_check(task.cred(), *rf->parent, AccessMask::write);
      rc != Errno::ok)
    return rc;
  if (Errno rc = dac_check(task.cred(), *rt->parent, AccessMask::write);
      rc != Errno::ok)
    return rc;
  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.path_rename(task, rf->path, rt->path);
  });
  if (rc != Errno::ok) return rc;
  InodePtr moving = rf->inode;
  note_mutation("vfs_rename");
  vfs_.unlink_child(rf->parent, rf->leaf);
  if (rt->inode) vfs_.unlink_child(rt->parent, rt->leaf);
  vfs_.link_child(rt->parent, rt->leaf, moving);
  // unlink_child dropped the moving inode's link count but link_child does
  // not restore it (hard links go through sys_link, which bumps explicitly).
  // Without this, every rename leaked one link and a renamed multi-link file
  // could hit nlink 0 with live names still pointing at it.
  moving->set_nlink(moving->nlink() + 1);
  // Renames of directories re-root a subtree; path-based labels follow paths,
  // so nothing else to fix up.
  return {};
}

Result<void> Kernel::sys_symlink(Task& task, std::string_view target,
                                 std::string_view linkpath) {
  SyscallScope scope(*this, "sys_symlink");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_symlink"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve_parent(task.cred(), linkpath, task.cwd());
  if (!r.ok()) return r.error();
  if (r->inode) return Errno::eexist;
  if (Errno rc = dac_check(task.cred(), *r->parent, AccessMask::write);
      rc != Errno::ok)
    return rc;
  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.path_symlink(task, r->path, std::string(target));
  });
  if (rc != Errno::ok) return rc;
  note_mutation("vfs_create");
  auto link = vfs_.make_inode(InodeType::symlink, 0777, task.cred().euid,
                              task.cred().egid);
  link->set_symlink_target(std::string(target));
  vfs_.link_child(r->parent, r->leaf, link);
  return {};
}

Result<void> Kernel::sys_link(Task& task, std::string_view existing,
                              std::string_view newpath) {
  SyscallScope scope(*this, "sys_link");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_link"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto src = vfs_.resolve(task.cred(), existing, task.cwd());
  if (!src.ok()) return src.error();
  if (src->inode->is_dir()) return Errno::eperm;  // no directory hard links
  auto dst = vfs_.resolve_parent(task.cred(), newpath, task.cwd());
  if (!dst.ok()) return dst.error();
  if (dst->inode) return Errno::eexist;
  if (Errno rc = dac_check(task.cred(), *dst->parent, AccessMask::write);
      rc != Errno::ok)
    return rc;
  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.path_link(task, src->path, dst->path);
  });
  if (rc != Errno::ok) return rc;
  note_mutation("vfs_link");
  vfs_.link_child(dst->parent, dst->leaf, src->inode);
  src->inode->set_nlink(src->inode->nlink() + 1);
  src->inode->ctime = clock_.now();
  return {};
}

Result<std::string> Kernel::sys_readlink(Task& task, std::string_view path) {
  SyscallScope scope(*this, "sys_readlink");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_readlink"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd(), false);
  if (!r.ok()) return r.error();
  if (!r->inode->is_symlink()) return Errno::einval;
  // Mediation gap fix (found by sack-hookcheck): link targets were
  // disclosed without any LSM consultation (security_inode_readlink).
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.inode_readlink(task, r->path); });
  if (rc != Errno::ok) return rc;
  return r->inode->symlink_target();
}

Result<void> Kernel::sys_chmod(Task& task, std::string_view path,
                               FileMode mode) {
  SyscallScope scope(*this, "sys_chmod");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_chmod"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd());
  if (!r.ok()) return r.error();
  if (task.cred().euid != r->inode->uid() &&
      !task.cred().caps.has(Capability::fowner))
    return Errno::eperm;
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.path_chmod(task, r->path, mode); });
  if (rc != Errno::ok) return rc;
  note_mutation("inode_setattr");
  r->inode->set_mode(mode & 07777);
  r->inode->ctime = clock_.now();
  return {};
}

Result<void> Kernel::sys_chown(Task& task, std::string_view path, Uid uid,
                               Gid gid) {
  SyscallScope scope(*this, "sys_chown");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_chown"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd());
  if (!r.ok()) return r.error();
  if (!task.cred().caps.has(Capability::chown)) return Errno::eperm;
  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.path_chown(task, r->path, uid, gid);
  });
  if (rc != Errno::ok) return rc;
  note_mutation("inode_setattr");
  r->inode->set_owner(uid, gid);
  r->inode->ctime = clock_.now();
  return {};
}

Result<void> Kernel::sys_truncate(Task& task, std::string_view path,
                                  std::uint64_t length) {
  SyscallScope scope(*this, "sys_truncate");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_truncate"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd());
  if (!r.ok()) return r.error();
  if (!r->inode->is_regular()) return Errno::einval;
  if (Errno rc = dac_check(task.cred(), *r->inode, AccessMask::write);
      rc != Errno::ok)
    return rc;
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.path_truncate(task, r->path); });
  if (rc != Errno::ok) return rc;
  if (length > kMaxFileSize) return Errno::efbig;
  note_mutation("file_truncate");
  r->inode->data().resize(length);
  r->inode->mtime = clock_.now();
  return {};
}

Result<long> Kernel::sys_ioctl(Task& task, Fd fd, std::uint32_t cmd,
                               long arg) {
  SyscallScope scope(*this, "sys_ioctl");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_ioctl"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto fr = task.fds().get(fd);
  if (!fr.ok()) return fr.error();
  File& file = **fr;
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.file_ioctl(task, file, cmd); });
  if (rc != Errno::ok) {
    log_debug("ioctl denied by MAC: ", file.path(), " cmd=", cmd);
    return rc;
  }
  if (!file.inode() || !file.inode()->is_chardev()) return Errno::enotty;
  if (!file.inode()->device) return Errno::enodev;
  note_mutation("dev_ioctl");
  return file.inode()->device->ioctl(task, file, cmd, arg);
}

namespace {
constexpr std::string_view kSecurityPrefix = "security.";
constexpr std::string_view kUserPrefix = "user.";
}  // namespace

Result<std::string> Kernel::sys_getxattr(Task& task, std::string_view path,
                                         std::string_view name) {
  SyscallScope scope(*this, "sys_getxattr");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_getxattr"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd());
  if (!r.ok()) return r.error();
  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.inode_getxattr(task, r->path, std::string(name));
  });
  if (rc != Errno::ok) return rc;

  std::string key;
  if (name.starts_with(kSecurityPrefix)) {
    key = std::string(name.substr(kSecurityPrefix.size()));
  } else if (name.starts_with(kUserPrefix)) {
    if (Errno drc = dac_check(task.cred(), *r->inode, AccessMask::read);
        drc != Errno::ok)
      return drc;
    key = std::string(name);
  } else {
    return Errno::eopnotsupp;
  }
  const std::string* value = r->inode->get_security(key);
  if (!value) return Errno::enodata;
  return *value;
}

Result<void> Kernel::sys_setxattr(Task& task, std::string_view path,
                                  std::string_view name,
                                  std::string_view value) {
  SyscallScope scope(*this, "sys_setxattr");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_setxattr"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd());
  if (!r.ok()) return r.error();

  std::string key;
  if (name.starts_with(kSecurityPrefix)) {
    // Security labels are MAC state: only a MAC administrator may set them.
    if (capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    key = std::string(name.substr(kSecurityPrefix.size()));
  } else if (name.starts_with(kUserPrefix)) {
    if (Errno drc = dac_check(task.cred(), *r->inode, AccessMask::write);
        drc != Errno::ok)
      return drc;
    key = std::string(name);
  } else {
    return Errno::eopnotsupp;
  }
  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.inode_setxattr(task, r->path, std::string(name),
                            std::string(value));
  });
  if (rc != Errno::ok) return rc;
  note_mutation("inode_setxattr");
  r->inode->set_security(key, std::string(value));
  r->inode->ctime = clock_.now();
  return {};
}

Result<std::vector<std::string>> Kernel::sys_listxattr(Task& task,
                                                       std::string_view path) {
  SyscallScope scope(*this, "sys_listxattr");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_listxattr"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd());
  if (!r.ok()) return r.error();
  if (Errno drc = dac_check(task.cred(), *r->inode, AccessMask::read);
      drc != Errno::ok)
    return drc;
  // Mediation gap fix (found by sack-hookcheck): attribute-name enumeration
  // leaks which LSM labels an object carries (security_inode_listxattr).
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.inode_listxattr(task, r->path); });
  if (rc != Errno::ok) return rc;
  std::vector<std::string> names;
  for (const auto& [key, value] : r->inode->security_all()) {
    if (key.find('.') == std::string::npos) {
      names.push_back(std::string(kSecurityPrefix) + key);  // module label
    } else if (key.starts_with(kUserPrefix)) {
      names.push_back(key);
    }
    // Other dotted keys are module-internal bookkeeping; not surfaced.
  }
  return names;
}

Result<Fd> Kernel::sys_dup(Task& task, Fd fd) {
  SyscallScope scope(*this, "sys_dup");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_dup"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto fr = task.fds().get(fd);
  if (!fr.ok()) return fr.error();
  note_mutation("fd_install");
  return task.fds().install(*fr);
}

Result<std::vector<std::string>> Kernel::sys_readdir(Task& task,
                                                     std::string_view path) {
  SyscallScope scope(*this, "sys_readdir");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_readdir"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd());
  if (!r.ok()) return r.error();
  if (!r->inode->is_dir()) return Errno::enotdir;
  if (Errno rc = dac_check(task.cred(), *r->inode, AccessMask::read);
      rc != Errno::ok)
    return rc;
  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.file_open(task, r->path, *r->inode, AccessMask::read);
  });
  if (rc != Errno::ok) return rc;
  std::vector<std::string> names;
  names.reserve(r->inode->children().size());
  for (const auto& [name, child] : r->inode->children()) names.push_back(name);
  return names;
}

Result<void> Kernel::sys_chdir(Task& task, std::string_view path) {
  SyscallScope scope(*this, "sys_chdir");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_chdir"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd());
  if (!r.ok()) return r.error();
  if (!r->inode->is_dir()) return Errno::enotdir;
  if (Errno rc = dac_check(task.cred(), *r->inode, AccessMask::exec);
      rc != Errno::ok)
    return rc;
  note_mutation("task_chdir");
  task.set_cwd(r->path);
  return {};
}

// --- mmap ---

Result<int> Kernel::sys_mmap(Task& task, Fd fd, std::size_t length,
                             AccessMask prot) {
  SyscallScope scope(*this, "sys_mmap");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_mmap"); });
  if (flow_rc != Errno::ok) return flow_rc;
  if (length == 0) return Errno::einval;
  auto fr = task.fds().get(fd);
  if (!fr.ok()) return fr.error();
  File& file = **fr;
  if (!file.inode() || !file.inode()->is_regular()) return Errno::enodev;
  if (has_any(prot, AccessMask::read) && !file.readable()) return Errno::eacces;
  if (has_any(prot, AccessMask::write) && !file.writable())
    return Errno::eacces;
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.mmap_file(task, file, prot); });
  if (rc != Errno::ok) return rc;

  MmapRegion region;
  region.id = task.next_mmap_id();
  region.inode = file.inode();
  region.offset = 0;
  region.length = std::min(length, file.inode()->data().size());
  region.prot = prot;
  region.path = file.path();
  int id = region.id;
  note_mutation("mmap_install");
  task.mmaps().emplace(id, std::move(region));
  return id;
}

Result<int> Kernel::sys_mmap_anon(Task& task, std::size_t length,
                                  AccessMask prot) {
  SyscallScope scope(*this, "sys_mmap_anon");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_mmap_anon"); });
  if (flow_rc != Errno::ok) return flow_rc;
  if (length == 0) return Errno::einval;
  MmapRegion region;
  region.id = task.next_mmap_id();
  region.anon_data.assign(length, '\0');
  region.length = length;
  region.prot = prot;
  int id = region.id;
  note_mutation("mmap_install");
  task.mmaps().emplace(id, std::move(region));
  return id;
}

Result<void> Kernel::sys_munmap(Task& task, int mmap_id) {
  SyscallScope scope(*this, "sys_munmap");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_munmap"); });
  if (flow_rc != Errno::ok) return flow_rc;
  note_mutation("mmap_remove");
  if (task.mmaps().erase(mmap_id) == 0) return Errno::einval;
  return {};
}

Result<std::size_t> Kernel::mmap_read(Task& task, int mmap_id,
                                      std::string& out, std::size_t offset,
                                      std::size_t n) {
  auto it = task.mmaps().find(mmap_id);
  if (it == task.mmaps().end()) return Errno::einval;
  const MmapRegion& region = it->second;
  if (!has_any(region.prot, AccessMask::read)) return Errno::eacces;
  const std::string& data =
      region.inode ? region.inode->data() : region.anon_data;
  std::size_t limit = std::min<std::size_t>(region.length, data.size());
  if (offset >= limit) {
    out.clear();
    return std::size_t{0};
  }
  std::size_t take = std::min(n, limit - offset);
  out.assign(data, region.offset + offset, take);
  return take;
}

}  // namespace sack::kernel
