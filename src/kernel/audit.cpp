#include "kernel/audit.h"

#include <cstdio>

namespace sack::kernel {

std::string audit_escape_field(std::string_view value) {
  if (value.empty()) return "?";
  bool needs_quoting = false;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20) {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) return std::string(value);
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string AuditRecord::to_line() const {
  std::string out = "audit seq=" + std::to_string(seq) +
                    " time=" + std::to_string(time) +
                    " module=" + audit_escape_field(module) +
                    " pid=" + std::to_string(pid.get()) +
                    " subject=" + audit_escape_field(subject) +
                    " op=" + audit_escape_field(operation) +
                    " object=" + audit_escape_field(object) + " verdict=" +
                    (verdict == AuditVerdict::denied ? "DENIED" : "allowed");
  if (!context.empty()) out += " ctx=" + audit_escape_field(context);
  out += "\n";
  return out;
}

void AuditLog::record(AuditRecord record) {
  record.seq = next_seq_++;
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
}

std::string AuditLog::to_text() const {
  std::string out;
  for (const auto& r : records_) out += r.to_line();
  return out;
}

std::size_t AuditLog::count_denials(std::string_view module) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.verdict != AuditVerdict::denied) continue;
    if (!module.empty() && r.module != module) continue;
    ++n;
  }
  return n;
}

}  // namespace sack::kernel
