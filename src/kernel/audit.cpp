#include "kernel/audit.h"

namespace sack::kernel {

std::string AuditRecord::to_line() const {
  std::string out = "audit seq=" + std::to_string(seq) +
                    " time=" + std::to_string(time) + " module=" + module +
                    " pid=" + std::to_string(pid.get()) + " subject=" +
                    (subject.empty() ? "?" : subject) + " op=" + operation +
                    " object=" + (object.empty() ? "?" : object) +
                    " verdict=" +
                    (verdict == AuditVerdict::denied ? "DENIED" : "allowed");
  if (!context.empty()) out += " ctx=" + context;
  out += "\n";
  return out;
}

void AuditLog::record(AuditRecord record) {
  record.seq = next_seq_++;
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
}

std::string AuditLog::to_text() const {
  std::string out;
  for (const auto& r : records_) out += r.to_line();
  return out;
}

std::size_t AuditLog::count_denials(std::string_view module) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.verdict != AuditVerdict::denied) continue;
    if (!module.empty() && r.module != module) continue;
    ++n;
  }
  return n;
}

}  // namespace sack::kernel
