// Inodes: the single node type of the in-memory VFS.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "kernel/device.h"
#include "kernel/types.h"
#include "util/thread_annotations.h"
#include "util/transparent_hash.h"

namespace sack::kernel {

class Inode;
using InodePtr = std::shared_ptr<Inode>;

class Inode {
 public:
  Inode(InodeNo ino, InodeType type, FileMode mode, Uid uid, Gid gid)
      : ino_(ino), type_(type), mode_(mode), uid_(uid), gid_(gid) {}

  InodeNo ino() const { return ino_; }
  InodeType type() const { return type_; }
  bool is_dir() const { return type_ == InodeType::directory; }
  bool is_regular() const { return type_ == InodeType::regular; }
  bool is_symlink() const { return type_ == InodeType::symlink; }
  bool is_chardev() const { return type_ == InodeType::chardev; }

  FileMode mode() const { return mode_; }
  void set_mode(FileMode m) { mode_ = m; }
  Uid uid() const { return uid_; }
  Gid gid() const { return gid_; }
  void set_owner(Uid u, Gid g) { uid_ = u; gid_ = g; }

  std::uint32_t nlink() const { return nlink_; }
  void set_nlink(std::uint32_t n) { nlink_ = n; }

  SimTime atime = 0, mtime = 0, ctime = 0;

  // --- regular files ---
  std::string& data() { return data_; }
  const std::string& data() const { return data_; }
  std::uint64_t size() const;

  // --- symlinks ---
  const std::string& symlink_target() const { return symlink_target_; }
  void set_symlink_target(std::string t) { symlink_target_ = std::move(t); }

  // --- directories ---
  const std::map<std::string, InodePtr>& children() const { return children_; }
  InodePtr lookup_child(const std::string& name) const;
  void add_child(const std::string& name, InodePtr child);
  void remove_child(const std::string& name);

  std::weak_ptr<Inode> parent;

  // --- device / virtual file dispatch (non-owning) ---
  DeviceOps* device = nullptr;
  VirtualFileOps* vfile = nullptr;

  // --- per-LSM security labels (like security.* xattrs) ---
  // Keys without a '.' are module labels (exposed as "security.<key>");
  // the xattr syscalls additionally store free-form "user.*" entries under
  // their full names.
  const std::string* get_security(const std::string& lsm) const;
  void set_security(const std::string& lsm, std::string value);
  void remove_security(const std::string& key) { security_.erase(key); }
  const std::map<std::string, std::string>& security_all() const {
    return security_;
  }

  // --- per-module pre-resolved MAC label cache (the i_security analogue) ---
  // A MAC module that pre-resolves the policy-dependent half of a decision
  // for this object (SACK's table-driven matcher resolves "which loaded
  // rules name this path" into a rule bitmask) parks the result here,
  // stamped with the label generation it was computed under AND the path it
  // was resolved for. The pointer is opaque to the VFS — only the owning
  // module knows the concrete type. A lookup under any other generation
  // misses, so stale labels die on policy load without any sweep over the
  // inode table; a lookup under any other *path* also misses, because the
  // label is a property of a name, not of the inode — one inode is
  // reachable under several names (hard links) and keeps its name-derived
  // state across rename, and serving a label resolved for a different name
  // would be a wrong verdict, not a slow one. Like File's revalidation
  // cache this memoizes a recomputable decision, so the accessors are const
  // over a mutable, mutex-guarded map (inodes are shared VFS-wide and hooks
  // may run concurrently).
  std::shared_ptr<const void> mac_label(std::string_view module,
                                        std::uint64_t generation,
                                        std::string_view path) const;
  void mac_label_store(std::string_view module, std::uint64_t generation,
                       std::string_view path,
                       std::shared_ptr<const void> label) const;

 private:
  struct MacLabelEntry {
    std::uint64_t generation = 0;
    std::string path;  // the name the label was resolved for
    std::shared_ptr<const void> label;
  };

  InodeNo ino_;
  InodeType type_;
  FileMode mode_;
  Uid uid_;
  Gid gid_;
  std::uint32_t nlink_ = 1;
  std::string data_;
  std::string symlink_target_;
  std::map<std::string, InodePtr> children_;
  std::map<std::string, std::string> security_;
  mutable util::Mutex label_mu_;
  mutable StringMap<MacLabelEntry> mac_labels_ SACK_GUARDED_BY(label_mu_);
};

}  // namespace sack::kernel
