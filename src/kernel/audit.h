// Kernel audit subsystem (a slim take on the Linux audit framework).
//
// Security modules record access-control verdicts here; user space reads
// them back through securityfs (<mount>/audit/log). The log is a bounded
// ring: old records fall off, a sequence counter exposes loss, matching how
// audit consumers detect dropped records.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "kernel/types.h"
#include "util/clock.h"

namespace sack::kernel {

enum class AuditVerdict : std::uint8_t { allowed, denied };

// Renders one record field for the key=value log line. Fields whose content
// is attacker-influenced (paths, event names) could otherwise forge extra
// fields or whole records: a value containing whitespace, quotes, or
// control characters is double-quoted with backslash escapes (\" \\ \n \r
// \t), so one record is always exactly one line and `verdict=` appears only
// where the kernel wrote it. Empty fields render as "?".
std::string audit_escape_field(std::string_view value);

struct AuditRecord {
  std::uint64_t seq = 0;
  SimTime time = 0;
  std::string module;   // "apparmor", "sack", ...
  Pid pid;
  std::string subject;  // task exe path or profile/domain
  std::string object;   // path / capability name / socket family
  std::string operation;
  AuditVerdict verdict{};
  std::string context;  // module-specific (situation state, profile, ...)

  std::string to_line() const;
};

class AuditLog {
 public:
  explicit AuditLog(std::size_t capacity = 1024) : capacity_(capacity) {}

  void record(AuditRecord record);

  const std::deque<AuditRecord>& records() const { return records_; }
  std::uint64_t total_recorded() const { return next_seq_; }
  std::uint64_t dropped() const {
    return next_seq_ - static_cast<std::uint64_t>(records_.size());
  }
  std::size_t capacity() const { return capacity_; }

  void clear() { records_.clear(); }

  // Full log as text, newest last (the securityfs read content).
  std::string to_text() const;

  // Convenience: count of records matching a predicate field.
  std::size_t count_denials(std::string_view module = {}) const;

 private:
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::deque<AuditRecord> records_;
};

}  // namespace sack::kernel
