// In-memory VFS: a single tree of inodes with POSIX-style path resolution
// (symlink following with a loop budget, "." / ".." handling, per-component
// DAC search checks) and canonical-path tracking. Canonical paths matter
// because the MAC modules in this reproduction are path-based.
#pragma once

#include <string>
#include <string_view>

#include "kernel/cred.h"
#include "kernel/inode.h"
#include "util/clock.h"
#include "util/result.h"

namespace sack::kernel {

// DAC (mode-bit) check, honoring CAP_DAC_OVERRIDE / CAP_DAC_READ_SEARCH.
Errno dac_check(const Cred& cred, const Inode& inode, AccessMask access);

class Vfs {
 public:
  explicit Vfs(VirtualClock* clock);

  const InodePtr& root() const { return root_; }

  struct Resolved {
    InodePtr inode;       // null if the final component does not exist
    InodePtr parent;      // directory containing the final component
    std::string path;     // canonical absolute path of the final component
    std::string leaf;     // final component name
  };

  // Resolves a path to an existing inode. ENOENT if missing.
  // `follow_final`: whether a symlink as the *final* component is followed.
  Result<Resolved> resolve(const Cred& cred, std::string_view path,
                           const std::string& cwd,
                           bool follow_final = true) const;

  // Resolves for creation: the parent must exist and be searchable; the
  // final component may or may not exist (inode null if not).
  Result<Resolved> resolve_parent(const Cred& cred, std::string_view path,
                                  const std::string& cwd) const;

  // Allocates a fresh inode (not yet linked anywhere).
  InodePtr make_inode(InodeType type, FileMode mode, Uid uid, Gid gid);

  // Links `child` into `parent` under `name` and maintains nlink/parent.
  void link_child(const InodePtr& parent, const std::string& name,
                  const InodePtr& child);
  void unlink_child(const InodePtr& parent, const std::string& name);

  // Boot-time helper: creates all missing directories along `path` with
  // root ownership. No DAC/LSM checks (the kernel building its own tree).
  InodePtr mkdir_p(std::string_view path, FileMode mode = kModeDefaultDir);

  SimTime now() const { return clock_ ? clock_->now() : 0; }

  std::uint64_t inode_count() const { return next_ino_; }

 private:
  enum class Mode { existing, parent };
  Result<Resolved> walk(const Cred& cred, std::string_view path,
                        const std::string& cwd, bool follow_final,
                        Mode mode) const;

  VirtualClock* clock_;
  InodePtr root_;
  std::uint64_t next_ino_ = 1;
};

}  // namespace sack::kernel
