// Character-device and virtual-file operation interfaces.
//
// Char devices back the simulated vehicle hardware (/dev/vehicle/door, ...);
// virtual files back securityfs entries (SACKfs, AppArmor's policy loader).
// Both are implemented by objects *registered* with the kernel — inodes hold
// non-owning pointers, matching how the real VFS dispatches through
// file_operations tables owned by drivers/modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace sack::kernel {

class Task;
class File;

class DeviceOps {
 public:
  virtual ~DeviceOps() = default;

  virtual std::string_view device_name() const = 0;

  // Reads up to `n` bytes into `out` (replacing its contents).
  virtual Result<std::size_t> read(Task& task, File& file, std::string& out,
                                   std::size_t n);

  virtual Result<std::size_t> write(Task& task, File& file,
                                    std::string_view data);

  virtual Result<long> ioctl(Task& task, File& file, std::uint32_t cmd,
                             long arg);
};

// securityfs-style virtual file: read() produces a full snapshot, write()
// receives each write(2) payload synchronously (this synchronous dispatch is
// what gives SACK its microsecond event-transmission latency).
class VirtualFileOps {
 public:
  virtual ~VirtualFileOps() = default;

  virtual Result<std::string> read_content(Task& task) {
    (void)task;
    return std::string{};
  }

  virtual Result<void> write_content(Task& task, std::string_view data) {
    (void)task;
    (void)data;
    return Errno::eacces;
  }
};

}  // namespace sack::kernel
