// Pipe and socket syscalls (loopback only).
#include "kernel/kernel.h"

namespace sack::kernel {

Result<std::pair<Fd, Fd>> Kernel::sys_pipe(Task& task) {
  SyscallScope scope(*this, "sys_pipe");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_pipe"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto buffer = std::make_shared<PipeBuffer>();
  auto rd = std::make_shared<File>(buffer, PipeEnd::read);
  auto wr = std::make_shared<File>(buffer, PipeEnd::write);
  note_mutation("fd_install");
  auto rfd = task.fds().install(rd);
  if (!rfd.ok()) return rfd.error();
  note_mutation("fd_install");
  auto wfd = task.fds().install(wr);
  if (!wfd.ok()) {
    (void)task.fds().remove(rfd.value());
    return wfd.error();
  }
  return std::pair{rfd.value(), wfd.value()};
}

Result<Fd> Kernel::sys_socket(Task& task, SockFamily family, SockType type) {
  SyscallScope scope(*this, "sys_socket");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_socket"); });
  if (flow_rc != Errno::ok) return flow_rc;
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.socket_create(task, family, type); });
  if (rc != Errno::ok) return rc;
  auto sock = std::make_shared<Socket>(family, type);
  note_mutation("fd_install");
  return task.fds().install(std::make_shared<File>(std::move(sock)));
}

Result<std::pair<Fd, Fd>> Kernel::sys_socketpair(Task& task,
                                                 SockFamily family) {
  SyscallScope scope(*this, "sys_socketpair");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_socketpair"); });
  if (flow_rc != Errno::ok) return flow_rc;
  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.socket_create(task, family, SockType::stream);
  });
  if (rc != Errno::ok) return rc;
  auto a = std::make_shared<Socket>(family, SockType::stream);
  auto b = std::make_shared<Socket>(family, SockType::stream);
  note_mutation("sock_connect");
  connect_sockets(*a, *b);
  // Keep both Files in named locals so a partial failure can tear the pair
  // down symmetrically: the previous version moved the sockets straight into
  // install() and left the surviving endpoint of a half-installed pair
  // connected to a peer that no descriptor could ever close.
  auto fa = std::make_shared<File>(a);
  auto fb = std::make_shared<File>(b);
  note_mutation("fd_install");
  auto afd = task.fds().install(fa);
  if (!afd.ok()) {
    a->shutdown();
    b->shutdown();
    return afd.error();
  }
  note_mutation("fd_install");
  auto bfd = task.fds().install(fb);
  if (!bfd.ok()) {
    (void)task.fds().remove(afd.value());
    a->shutdown();
    b->shutdown();
    return bfd.error();
  }
  return std::pair{afd.value(), bfd.value()};
}

namespace {
Result<std::shared_ptr<Socket>> socket_of(Task& task, Fd fd) {
  auto fr = task.fds().get(fd);
  if (!fr.ok()) return fr.error();
  if (!(*fr)->is_socket()) return Errno::enotsock;
  return (*fr)->socket();
}
}  // namespace

Result<void> Kernel::sys_bind(Task& task, Fd fd, const SockAddr& addr) {
  SyscallScope scope(*this, "sys_bind");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_bind"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto fr = task.fds().get(fd);
  if (!fr.ok()) return fr.error();
  // Pin the validated description for the whole syscall. The hook chain may
  // run arbitrary module code; a module (or, on a real SMP kernel, a sibling
  // thread) that closes the fd mid-hook must not leave us re-fetching a dead
  // or recycled table slot after the verdict.
  FilePtr file = *fr;
  if (!file->is_socket()) return Errno::enotsock;
  Socket& sock = *file->socket();
  if (sock.state != SockState::created) return Errno::einval;
  if (addr.family != sock.family()) return Errno::einval;
  // Binding to a privileged port needs CAP_NET_BIND_SERVICE.
  if (addr.family == SockFamily::inet && addr.port < 1024) {
    if (capable(task, Capability::net_bind_service) != Errno::ok)
      return Errno::eacces;
  }
  Errno rc =
      lsm_.check([&](SecurityModule& m) { return m.socket_bind(task, sock); });
  if (rc != Errno::ok) return rc;
  // The address is reserved at bind time, as in real TCP/unix sockets.
  // A closed previous holder releases the address lazily here. The
  // reservation names `file` — the description the hook actually mediated —
  // never a re-fetch of whatever the slot holds now.
  auto stale = [](const std::weak_ptr<File>& w) {
    auto f = w.lock();
    return !f || !f->socket() || f->socket()->state == SockState::closed;
  };
  note_mutation("sock_bind");
  if (addr.family == SockFamily::inet) {
    auto it = inet_listeners_.find(addr.port);
    if (it != inet_listeners_.end()) {
      if (!stale(it->second)) return Errno::eaddrinuse;
      inet_listeners_.erase(it);
    }
    inet_listeners_[addr.port] = file;
  } else {
    auto it = unix_listeners_.find(addr.path);
    if (it != unix_listeners_.end()) {
      if (!stale(it->second)) return Errno::eaddrinuse;
      unix_listeners_.erase(it);
    }
    unix_listeners_[addr.path] = file;
  }
  sock.local = addr;
  sock.state = SockState::bound;
  return {};
}

Result<void> Kernel::sys_listen(Task& task, Fd fd, int backlog) {
  SyscallScope scope(*this, "sys_listen");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_listen"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto fr = task.fds().get(fd);
  if (!fr.ok()) return fr.error();
  if (!(*fr)->is_socket()) return Errno::enotsock;
  Socket& sock = *(*fr)->socket();
  if (sock.state != SockState::bound) return Errno::einval;
  // Mediation gap fix (found by sack-hookcheck): the listen transition used
  // to happen with no LSM consultation at all.
  Errno rc = lsm_.check([&](SecurityModule& m) {
    return m.socket_listen(task, sock, backlog);
  });
  if (rc != Errno::ok) return rc;
  note_mutation("sock_listen");
  sock.state = SockState::listening;
  sock.backlog_limit = backlog;
  return {};
}

Result<void> Kernel::sys_connect(Task& task, Fd fd, const SockAddr& addr) {
  SyscallScope scope(*this, "sys_connect");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_connect"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto sr = socket_of(task, fd);
  if (!sr.ok()) return sr.error();
  Socket& sock = **sr;
  if (sock.state == SockState::connected) return Errno::einval;
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.socket_connect(task, sock); });
  if (rc != Errno::ok) return rc;

  FilePtr listener_file;
  if (addr.family == SockFamily::inet) {
    auto it = inet_listeners_.find(addr.port);
    if (it == inet_listeners_.end()) return Errno::econnrefused;
    listener_file = it->second.lock();
  } else {
    auto it = unix_listeners_.find(addr.path);
    if (it == unix_listeners_.end()) return Errno::econnrefused;
    listener_file = it->second.lock();
  }
  if (!listener_file) return Errno::econnrefused;
  Socket& listener = *listener_file->socket();
  if (listener.state != SockState::listening) return Errno::econnrefused;
  if (listener.backlog_limit > 0 &&
      static_cast<int>(listener.backlog.size()) >= listener.backlog_limit)
    return Errno::econnrefused;

  // Create the server-side endpoint and hand it to the listener's backlog.
  auto server_end =
      std::make_shared<Socket>(listener.family(), listener.type());
  server_end->local = listener.local;
  note_mutation("sock_connect");
  connect_sockets(sock, *server_end);
  listener.backlog.push_back(std::move(server_end));
  return {};
}

Result<Fd> Kernel::sys_accept(Task& task, Fd fd) {
  SyscallScope scope(*this, "sys_accept");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_accept"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto sr = socket_of(task, fd);
  if (!sr.ok()) return sr.error();
  Socket& listener = **sr;
  if (listener.state != SockState::listening) return Errno::einval;
  if (listener.backlog.empty()) return Errno::eagain;
  // Mediation gap fix (found by sack-hookcheck): the hook must run before
  // the backlog pop — a denied accept may not consume the pending
  // connection.
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.socket_accept(task, listener); });
  if (rc != Errno::ok) return rc;
  note_mutation("sock_accept");
  auto endpoint = listener.backlog.front();
  listener.backlog.pop_front();
  note_mutation("fd_install");
  return task.fds().install(std::make_shared<File>(std::move(endpoint)));
}

Result<std::size_t> Kernel::sys_send(Task& task, Fd fd,
                                     std::string_view data) {
  SyscallScope scope(*this, "sys_send");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_send"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto sr = socket_of(task, fd);
  if (!sr.ok()) return sr.error();
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.socket_sendmsg(task, **sr); });
  if (rc != Errno::ok) return rc;
  note_mutation("sock_send");
  return (*sr)->send(data);
}

Result<std::size_t> Kernel::sys_recv(Task& task, Fd fd, std::string& out,
                                     std::size_t n) {
  SyscallScope scope(*this, "sys_recv");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_recv"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto sr = socket_of(task, fd);
  if (!sr.ok()) return sr.error();
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.socket_recvmsg(task, **sr); });
  if (rc != Errno::ok) return rc;
  note_mutation("sock_recv");
  return (*sr)->recv(out, n);
}

}  // namespace sack::kernel
