// Tasks (processes). The simulator has no preemption: host code drives tasks
// by invoking syscalls on their behalf, which is exactly what the benchmark
// harness and the IVI apps do.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "kernel/cred.h"
#include "kernel/file.h"
#include "kernel/types.h"

namespace sack::kernel {

enum class TaskState : std::uint8_t { running, zombie, dead };

// A memory mapping created by sys_mmap.
struct MmapRegion {
  int id = 0;
  InodePtr inode;          // file-backed if set
  std::string anon_data;   // anonymous otherwise
  std::uint64_t offset = 0;
  std::size_t length = 0;
  AccessMask prot{};
  std::string path;        // file path for MAC bookkeeping
};

class Task {
 public:
  Task(Pid pid, Pid ppid, std::string comm, Cred cred)
      : pid_(pid), ppid_(ppid), comm_(std::move(comm)), cred_(std::move(cred)) {}

  Pid pid() const { return pid_; }
  Pid ppid() const { return ppid_; }
  void set_ppid(Pid p) { ppid_ = p; }

  const std::string& comm() const { return comm_; }
  void set_comm(std::string c) { comm_ = std::move(c); }

  // Absolute path of the current executable (set by exec); path-based LSMs
  // use it to attach profiles.
  const std::string& exe_path() const { return exe_path_; }
  void set_exe_path(std::string p) { exe_path_ = std::move(p); }

  Cred& cred() { return cred_; }
  const Cred& cred() const { return cred_; }

  const std::string& cwd() const { return cwd_; }
  void set_cwd(std::string c) { cwd_ = std::move(c); }

  FdTable& fds() { return fds_; }
  const FdTable& fds() const { return fds_; }

  TaskState state = TaskState::running;
  int exit_code = 0;

  // --- mmap regions ---
  std::map<int, MmapRegion>& mmaps() { return mmaps_; }
  int next_mmap_id() { return next_mmap_id_++; }

  // --- per-LSM security blobs (task->security) ---
  // Each LSM stores what it likes under its own name; AppArmor keeps the
  // attached profile name here.
  template <typename T>
  std::shared_ptr<T> security_blob(const std::string& lsm) const {
    auto it = blobs_.find(lsm);
    if (it == blobs_.end()) return nullptr;
    return std::static_pointer_cast<T>(it->second);
  }
  void set_security_blob(const std::string& lsm, std::shared_ptr<void> blob) {
    blobs_[lsm] = std::move(blob);
  }
  const std::unordered_map<std::string, std::shared_ptr<void>>& blobs() const {
    return blobs_;
  }

 private:
  Pid pid_;
  Pid ppid_;
  std::string comm_;
  std::string exe_path_;
  Cred cred_;
  std::string cwd_ = "/";
  FdTable fds_;
  std::map<int, MmapRegion> mmaps_;
  int next_mmap_id_ = 1;
  std::unordered_map<std::string, std::shared_ptr<void>> blobs_;
};

using TaskPtr = std::shared_ptr<Task>;

}  // namespace sack::kernel
