#include "kernel/device.h"

namespace sack::kernel {

// Default device behaviour mirrors a driver without the respective
// file_operations entry: reads return no data, writes and ioctls are
// rejected with the errno the VFS would produce.

Result<std::size_t> DeviceOps::read(Task&, File&, std::string& out,
                                    std::size_t) {
  out.clear();
  return std::size_t{0};
}

Result<std::size_t> DeviceOps::write(Task&, File&, std::string_view) {
  return Errno::einval;
}

Result<long> DeviceOps::ioctl(Task&, File&, std::uint32_t, long) {
  return Errno::enotty;
}

}  // namespace sack::kernel
