#include "kernel/vfs.h"

#include <deque>

#include "util/strings.h"

namespace sack::kernel {

namespace {
constexpr int kMaxSymlinkDepth = 40;  // ELOOP budget, same as Linux

std::string join_canon(const std::vector<std::string>& parts) {
  if (parts.empty()) return "/";
  std::string out;
  for (const auto& p : parts) {
    out += '/';
    out += p;
  }
  return out;
}
}  // namespace

Errno dac_check(const Cred& cred, const Inode& inode, AccessMask access) {
  if (is_empty(access)) return Errno::ok;
  // CAP_DAC_OVERRIDE bypasses everything except exec of files with no x bit.
  if (cred.caps.has(Capability::dac_override)) {
    if (has_any(access, AccessMask::exec) && !inode.is_dir() &&
        (inode.mode() & 0111) == 0) {
      return Errno::eacces;
    }
    return Errno::ok;
  }
  FileMode mode = inode.mode();
  unsigned shift;
  if (cred.euid == inode.uid()) {
    shift = 6;
  } else if (cred.egid == inode.gid()) {
    shift = 3;
  } else {
    shift = 0;
  }
  unsigned bits = (mode >> shift) & 7u;
  if (has_any(access, AccessMask::read)) {
    if (!(bits & 4u)) {
      if (!(cred.caps.has(Capability::dac_read_search) &&
            !has_any(access, AccessMask::write | AccessMask::exec)))
        return Errno::eacces;
    }
  }
  if (has_any(access, AccessMask::write | AccessMask::append) && !(bits & 2u))
    return Errno::eacces;
  if (has_any(access, AccessMask::exec) && !(bits & 1u)) {
    if (inode.is_dir() && cred.caps.has(Capability::dac_read_search))
      return Errno::ok;
    return Errno::eacces;
  }
  return Errno::ok;
}

Vfs::Vfs(VirtualClock* clock) : clock_(clock) {
  root_ = make_inode(InodeType::directory, 0755, kRootUid, kRootGid);
  root_->set_nlink(2);
}

InodePtr Vfs::make_inode(InodeType type, FileMode mode, Uid uid, Gid gid) {
  auto inode = std::make_shared<Inode>(InodeNo(static_cast<InodeNo::rep_type>(next_ino_++)),
                                       type, mode, uid, gid);
  inode->atime = inode->mtime = inode->ctime = now();
  return inode;
}

void Vfs::link_child(const InodePtr& parent, const std::string& name,
                     const InodePtr& child) {
  parent->add_child(name, child);
  child->parent = parent;
  if (child->is_dir()) parent->set_nlink(parent->nlink() + 1);
  parent->mtime = now();
}

void Vfs::unlink_child(const InodePtr& parent, const std::string& name) {
  auto child = parent->lookup_child(name);
  if (child) {
    if (child->is_dir()) parent->set_nlink(parent->nlink() - 1);
    child->set_nlink(child->nlink() > 0 ? child->nlink() - 1 : 0);
  }
  parent->remove_child(name);
  parent->mtime = now();
}

InodePtr Vfs::mkdir_p(std::string_view path, FileMode mode) {
  InodePtr cur = root_;
  for (auto comp : split(path, '/')) {
    if (comp.empty() || comp == ".") continue;
    std::string name(comp);
    InodePtr child = cur->lookup_child(name);
    if (!child) {
      child = make_inode(InodeType::directory, mode, kRootUid, kRootGid);
      child->set_nlink(2);
      link_child(cur, name, child);
    }
    cur = child;
  }
  return cur;
}

Result<Vfs::Resolved> Vfs::walk(const Cred& cred, std::string_view path,
                                const std::string& cwd, bool follow_final,
                                Mode mode) const {
  if (path.empty()) return Errno::enoent;
  if (path.size() > 4096) return Errno::enametoolong;

  std::deque<std::string> todo;
  std::vector<std::string> canon;
  InodePtr cur;

  auto push_components = [&todo](std::string_view p) {
    auto comps = split(p, '/');
    for (auto it = comps.rbegin(); it != comps.rend(); ++it) {
      if (it->empty()) continue;
      todo.emplace_front(*it);
    }
  };

  if (path[0] == '/') {
    cur = root_;
  } else {
    // cwd is maintained canonical by the kernel; seed the walk from it.
    cur = root_;
    for (auto comp : split(cwd, '/')) {
      if (comp.empty()) continue;
      auto child = cur->lookup_child(std::string(comp));
      if (!child || !child->is_dir()) return Errno::enoent;
      canon.emplace_back(comp);
      cur = child;
    }
  }
  push_components(path);

  int symlink_budget = kMaxSymlinkDepth;
  InodePtr parent = cur;

  while (!todo.empty()) {
    std::string comp = std::move(todo.front());
    todo.pop_front();
    if (comp == ".") continue;
    if (comp == "..") {
      if (!canon.empty()) {
        canon.pop_back();
        auto p = cur->parent.lock();
        cur = p ? p : root_;
      }
      continue;
    }
    if (!cur->is_dir()) return Errno::enotdir;
    if (Errno rc = dac_check(cred, *cur, AccessMask::exec); rc != Errno::ok)
      return rc;

    InodePtr child = cur->lookup_child(comp);
    bool is_final = todo.empty();

    if (!child) {
      if (is_final && mode == Mode::parent) {
        Resolved r;
        r.inode = nullptr;
        r.parent = cur;
        canon.push_back(comp);
        r.path = join_canon(canon);
        r.leaf = comp;
        return r;
      }
      return Errno::enoent;
    }

    if (child->is_symlink() && (!is_final || follow_final)) {
      if (--symlink_budget < 0) return Errno::eloop;
      const std::string& target = child->symlink_target();
      if (!target.empty() && target[0] == '/') {
        cur = root_;
        canon.clear();
      }
      if (is_final && mode == Mode::parent) {
        // Creation through a symlink final component: re-walk the target.
        push_components(target);
        continue;
      }
      push_components(target);
      continue;
    }

    canon.push_back(comp);
    parent = cur;
    cur = child;
  }

  Resolved r;
  r.inode = cur;
  r.parent = cur == root_ ? root_ : parent;
  r.path = join_canon(canon);
  r.leaf = canon.empty() ? std::string("/") : canon.back();
  if (mode == Mode::parent && cur == root_) return Errno::eexist;
  return r;
}

Result<Vfs::Resolved> Vfs::resolve(const Cred& cred, std::string_view path,
                                   const std::string& cwd,
                                   bool follow_final) const {
  return walk(cred, path, cwd, follow_final, Mode::existing);
}

Result<Vfs::Resolved> Vfs::resolve_parent(const Cred& cred,
                                          std::string_view path,
                                          const std::string& cwd) const {
  return walk(cred, path, cwd, /*follow_final=*/false, Mode::parent);
}

}  // namespace sack::kernel
