// Process: the "user-space" view of a task.
//
// Applications in this reproduction (the SDS daemon, the IVI apps, the
// benchmark workloads) hold a Process and issue syscalls through it, so the
// code reads like ordinary POSIX user-space code. The wrapper also carries
// one-shot convenience helpers (read_file/write_file) built purely from
// syscalls — no back doors around the LSM stack.
#pragma once

#include <string>
#include <string_view>

#include "kernel/kernel.h"
#include "util/fault.h"

namespace sack::kernel {

class Process {
 public:
  Process(Kernel& kernel, Task& task) : kernel_(&kernel), task_(&task) {}

  Kernel& kernel() { return *kernel_; }
  Task& task() { return *task_; }
  const Task& task() const { return *task_; }
  Pid pid() const { return task_->pid(); }

  // --- direct syscall forwards ---
  Result<Fd> open(std::string_view path, OpenFlags flags,
                  FileMode mode = kModeDefaultFile) {
    return kernel_->sys_open(*task_, path, flags, mode);
  }
  Result<void> close(Fd fd) { return kernel_->sys_close(*task_, fd); }
  Result<std::size_t> read(Fd fd, std::string& out, std::size_t n) {
    return kernel_->sys_read(*task_, fd, out, n);
  }
  Result<std::size_t> write(Fd fd, std::string_view data) {
    return kernel_->sys_write(*task_, fd, data);
  }
  Result<long> ioctl(Fd fd, std::uint32_t cmd, long arg = 0) {
    return kernel_->sys_ioctl(*task_, fd, cmd, arg);
  }
  Result<Stat> stat(std::string_view path) {
    return kernel_->sys_stat(*task_, path);
  }
  Result<void> mkdir(std::string_view path, FileMode mode = kModeDefaultDir) {
    return kernel_->sys_mkdir(*task_, path, mode);
  }
  Result<void> unlink(std::string_view path) {
    return kernel_->sys_unlink(*task_, path);
  }
  Result<void> exec(std::string_view path) {
    return kernel_->sys_execve(*task_, path);
  }

  // --- one-shot helpers (open + I/O + close) ---
  Result<std::string> read_file(std::string_view path) {
    SACK_ASSIGN_OR_RETURN(Fd fd, open(path, OpenFlags::read));
    std::string out, chunk;
    for (;;) {
      auto n = read(fd, chunk, 64 * 1024);
      if (!n.ok()) {
        (void)close(fd);
        return n.error();
      }
      if (*n == 0) break;
      out += chunk;
    }
    SACK_TRY(close(fd));
    return out;
  }

  Result<void> write_file(std::string_view path, std::string_view data,
                          OpenFlags extra = OpenFlags::none) {
    SACK_ASSIGN_OR_RETURN(
        Fd fd, open(path, OpenFlags::write | OpenFlags::create | extra));
    auto n = write(fd, data);
    if (!n.ok()) {
      (void)close(fd);
      return n.error();
    }
    SACK_TRY(close(fd));
    if (*n != data.size()) return Errno::eio;
    return {};
  }

  // Appends one line to a securityfs-style control file (no O_CREAT).
  // Fault-injection site "sackfs.write" (detail = path): chaos tests inject
  // transient/persistent write errors here to exercise the SDS retry path
  // and the kernel liveness watchdog.
  Result<void> write_existing(std::string_view path, std::string_view data) {
    if (auto injected =
            util::FaultInjector::instance().fail_errno("sackfs.write", path))
      return *injected;
    SACK_ASSIGN_OR_RETURN(Fd fd, open(path, OpenFlags::write));
    auto n = write(fd, data);
    if (!n.ok()) {
      (void)close(fd);
      return n.error();
    }
    SACK_TRY(close(fd));
    return {};
  }

 private:
  Kernel* kernel_;
  Task* task_;
};

}  // namespace sack::kernel
