#include "kernel/securityfs.h"

#include "util/strings.h"

namespace sack::kernel {

SecurityFs::SecurityFs(Vfs* vfs) : vfs_(vfs) {
  mount_root_ = vfs_->mkdir_p(kMountPoint);
}

Result<InodePtr> SecurityFs::register_file(std::string_view rel_path,
                                           VirtualFileOps* ops,
                                           FileMode mode) {
  if (rel_path.empty() || !ops) return Errno::einval;
  auto parts = split(rel_path, '/');
  InodePtr dir = mount_root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i].empty()) continue;
    std::string name(parts[i]);
    InodePtr child = dir->lookup_child(name);
    if (!child) {
      child = vfs_->make_inode(InodeType::directory, 0700, kRootUid, kRootGid);
      child->set_nlink(2);
      vfs_->link_child(dir, name, child);
    }
    if (!child->is_dir()) return Errno::enotdir;
    dir = child;
  }
  std::string leaf(parts.back());
  if (leaf.empty()) return Errno::einval;
  if (dir->lookup_child(leaf)) return Errno::eexist;
  auto inode = vfs_->make_inode(InodeType::regular, mode, kRootUid, kRootGid);
  inode->vfile = ops;
  vfs_->link_child(dir, leaf, inode);
  return inode;
}

Result<InodePtr> SecurityFs::register_dir(std::string_view rel_path) {
  if (rel_path.empty()) return Errno::einval;
  std::string full = std::string(kMountPoint) + "/" + std::string(rel_path);
  return vfs_->mkdir_p(full, 0700);
}

Result<void> SecurityFs::unregister(std::string_view rel_path) {
  auto parts = split(rel_path, '/');
  InodePtr dir = mount_root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i].empty()) continue;
    auto child = dir->lookup_child(std::string(parts[i]));
    if (!child || !child->is_dir()) return Errno::enoent;
    dir = child;
  }
  std::string leaf(parts.back());
  if (!dir->lookup_child(leaf)) return Errno::enoent;
  vfs_->unlink_child(dir, leaf);
  return {};
}

}  // namespace sack::kernel
