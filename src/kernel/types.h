// Common value types for the simulated kernel.
#pragma once

#include <cstdint>
#include <string>

#include "util/bitmask.h"
#include "util/clock.h"
#include "util/strong_id.h"

namespace sack::kernel {

// Re-export the strong ids so kernel::Fd / kernel::Pid spell naturally.
using sack::EventId;
using sack::Fd;
using sack::InodeNo;
using sack::PermId;
using sack::Pid;
using sack::StateId;

using Uid = std::int32_t;
using Gid = std::int32_t;

inline constexpr Uid kRootUid = 0;
inline constexpr Gid kRootGid = 0;

enum class InodeType : std::uint8_t {
  regular,
  directory,
  symlink,
  chardev,
  fifo,
  socket,
};

std::string_view inode_type_name(InodeType t);

// Largest regular file the simulated VFS will materialise. Writes and
// truncates past this return EFBIG instead of letting a sparse lseek turn
// into an unbounded (and throwing) std::string::resize.
inline constexpr std::uint64_t kMaxFileSize = 1ull << 30;

// Permission bits, same layout as POSIX mode & 0777.
using FileMode = std::uint16_t;
inline constexpr FileMode kModeDefaultFile = 0644;
inline constexpr FileMode kModeDefaultDir = 0755;
inline constexpr FileMode kModeDefaultExe = 0755;

// open(2) flags. Unlike POSIX, the access mode is a pair of bits so that
// "wants read" / "wants write" are independently testable.
enum class OpenFlags : std::uint32_t {
  none = 0,
  read = 1u << 0,
  write = 1u << 1,
  rdwr = read | write,
  create = 1u << 2,
  excl = 1u << 3,
  trunc = 1u << 4,
  append = 1u << 5,
  directory = 1u << 6,
  nofollow = 1u << 7,
  cloexec = 1u << 8,
};

// Requested access kinds, used by DAC checks and LSM hooks.
enum class AccessMask : std::uint32_t {
  none = 0,
  read = 1u << 0,
  write = 1u << 1,
  exec = 1u << 2,
  append = 1u << 3,
};

enum class Whence : std::uint8_t { set, cur, end };

// stat(2) result.
struct Stat {
  InodeNo ino;
  InodeType type{};
  FileMode mode{};
  Uid uid = 0;
  Gid gid = 0;
  std::uint64_t size = 0;
  std::uint32_t nlink = 0;
  SimTime atime = 0;
  SimTime mtime = 0;
  SimTime ctime = 0;
};

// Socket address families / types (loopback-only simulation).
enum class SockFamily : std::uint8_t { unix_, inet };
enum class SockType : std::uint8_t { stream, dgram };

}  // namespace sack::kernel

namespace sack {
template <>
struct EnableBitmask<kernel::OpenFlags> : std::true_type {};
template <>
struct EnableBitmask<kernel::AccessMask> : std::true_type {};
}  // namespace sack
