#include "kernel/file.h"

namespace sack::kernel {

File::~File() {
  if (pipe_) {
    if (pipe_end_ == PipeEnd::read) {
      pipe_->reader_open = false;
    } else {
      pipe_->writer_open = false;
    }
  }
  if (socket_) socket_->shutdown();
}

bool File::mac_verdict_current(std::string_view module,
                               std::uint64_t generation,
                               std::string_view subject) const {
  util::MutexLock lock(mac_mu_);
  auto it = mac_revalidate_.find(module);
  return it != mac_revalidate_.end() &&
         it->second.generation == generation && it->second.subject == subject;
}

bool File::mac_verdict_current(std::string_view module,
                               std::uint64_t generation, std::string_view exe,
                               std::string_view profile) const {
  util::MutexLock lock(mac_mu_);
  auto it = mac_revalidate_.find(module);
  if (it == mac_revalidate_.end() || it->second.generation != generation)
    return false;
  const std::string& subject = it->second.subject;
  return subject.size() == exe.size() + 1 + profile.size() &&
         subject.compare(0, exe.size(), exe) == 0 &&
         subject[exe.size()] == '\0' &&
         subject.compare(exe.size() + 1, std::string_view::npos, profile) == 0;
}

void File::mac_verdict_store(std::string_view module,
                             std::uint64_t generation,
                             std::string subject) const {
  util::MutexLock lock(mac_mu_);
  auto it = mac_revalidate_.find(module);
  if (it == mac_revalidate_.end())
    it = mac_revalidate_.emplace(std::string(module), MacCacheEntry{}).first;
  it->second.generation = generation;
  it->second.subject = std::move(subject);
}

Result<Fd> FdTable::install(FilePtr file) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].file) {
      slots_[i] = {std::move(file), false};
      return Fd(static_cast<Fd::rep_type>(i));
    }
  }
  if (slots_.size() >= kMaxFds) return Errno::emfile;
  slots_.push_back({std::move(file), false});
  return Fd(static_cast<Fd::rep_type>(slots_.size() - 1));
}

Result<FilePtr> FdTable::get(Fd fd) const {
  if (!fd.valid() || static_cast<std::size_t>(fd.get()) >= slots_.size())
    return Errno::ebadf;
  const auto& slot = slots_[static_cast<std::size_t>(fd.get())];
  if (!slot.file) return Errno::ebadf;
  return slot.file;
}

Result<void> FdTable::remove(Fd fd) {
  if (!fd.valid() || static_cast<std::size_t>(fd.get()) >= slots_.size())
    return Errno::ebadf;
  auto& slot = slots_[static_cast<std::size_t>(fd.get())];
  if (!slot.file) return Errno::ebadf;
  slot = {};
  return {};
}

std::size_t FdTable::open_count() const {
  std::size_t n = 0;
  for (const auto& s : slots_)
    if (s.file) ++n;
  return n;
}

void FdTable::set_cloexec(Fd fd, bool on) {
  if (fd.valid() && static_cast<std::size_t>(fd.get()) < slots_.size())
    slots_[static_cast<std::size_t>(fd.get())].cloexec = on;
}

void FdTable::drop_cloexec() {
  for (auto& s : slots_) {
    if (s.file && s.cloexec) s = {};
  }
}

}  // namespace sack::kernel
