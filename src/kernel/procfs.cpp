#include "kernel/procfs.h"

#include "kernel/inode.h"
#include "kernel/kernel.h"
#include "kernel/vfs.h"

namespace sack::kernel {

// Reads as "module: attribute" lines, one per module with something to say,
// plus the task's executable for orientation.
class ProcFs::AttrFile final : public VirtualFileOps {
 public:
  AttrFile(Kernel* kernel, Pid pid) : kernel_(kernel), pid_(pid) {}

  Result<std::string> read_content(Task&) override {
    auto task = kernel_->task(pid_);
    if (!task.ok()) return Errno::esrch;
    const Task& t = task.value();
    std::string out = "exe: " + (t.exe_path().empty() ? "?" : t.exe_path()) +
                      "\n";
    kernel_->lsm().notify([&](SecurityModule& m) {
      std::string attr = m.getprocattr(t);
      if (!attr.empty())
        out += std::string(m.name()) + ": " + attr + "\n";
    });
    return out;
  }

 private:
  Kernel* kernel_;
  Pid pid_;
};

ProcFs::ProcFs(Kernel* kernel, Vfs* vfs) : kernel_(kernel), vfs_(vfs) {
  proc_root_ = vfs_->mkdir_p("/proc", 0555);
}

ProcFs::~ProcFs() = default;

void ProcFs::on_task_created(const Task& task) {
  auto file = std::make_unique<AttrFile>(kernel_, task.pid());
  const std::string pid_name = std::to_string(task.pid().get());
  auto pid_dir = vfs_->make_inode(InodeType::directory, 0555, kRootUid,
                                  kRootGid);
  pid_dir->set_nlink(2);
  vfs_->link_child(proc_root_, pid_name, pid_dir);
  auto attr_dir = vfs_->make_inode(InodeType::directory, 0555, kRootUid,
                                   kRootGid);
  attr_dir->set_nlink(2);
  vfs_->link_child(pid_dir, "attr", attr_dir);
  auto node = vfs_->make_inode(InodeType::regular, 0444, kRootUid, kRootGid);
  node->vfile = file.get();
  vfs_->link_child(attr_dir, "current", node);
  files_[task.pid()] = std::move(file);
}

void ProcFs::on_task_reaped(const Task& task) {
  vfs_->unlink_child(proc_root_, std::to_string(task.pid().get()));
  files_.erase(task.pid());
}

}  // namespace sack::kernel
