#include "kernel/inode.h"

namespace sack::kernel {

std::string_view inode_type_name(InodeType t) {
  switch (t) {
    case InodeType::regular: return "regular";
    case InodeType::directory: return "directory";
    case InodeType::symlink: return "symlink";
    case InodeType::chardev: return "chardev";
    case InodeType::fifo: return "fifo";
    case InodeType::socket: return "socket";
  }
  return "?";
}

std::uint64_t Inode::size() const {
  switch (type_) {
    case InodeType::regular: return data_.size();
    case InodeType::symlink: return symlink_target_.size();
    case InodeType::directory: return children_.size();
    default: return 0;
  }
}

InodePtr Inode::lookup_child(const std::string& name) const {
  auto it = children_.find(name);
  return it == children_.end() ? nullptr : it->second;
}

void Inode::add_child(const std::string& name, InodePtr child) {
  children_[name] = std::move(child);
}

void Inode::remove_child(const std::string& name) { children_.erase(name); }

const std::string* Inode::get_security(const std::string& lsm) const {
  auto it = security_.find(lsm);
  return it == security_.end() ? nullptr : &it->second;
}

void Inode::set_security(const std::string& lsm, std::string value) {
  security_[lsm] = std::move(value);
}

std::shared_ptr<const void> Inode::mac_label(std::string_view module,
                                             std::uint64_t generation,
                                             std::string_view path) const {
  util::MutexLock lock(label_mu_);
  auto it = mac_labels_.find(module);
  if (it == mac_labels_.end() || it->second.generation != generation ||
      it->second.path != path)
    return nullptr;
  return it->second.label;
}

void Inode::mac_label_store(std::string_view module, std::uint64_t generation,
                            std::string_view path,
                            std::shared_ptr<const void> label) const {
  util::MutexLock lock(label_mu_);
  auto it = mac_labels_.find(module);
  if (it == mac_labels_.end())
    it = mac_labels_.emplace(std::string(module), MacLabelEntry{}).first;
  it->second.generation = generation;
  it->second.path.assign(path.data(), path.size());
  it->second.label = std::move(label);
}

}  // namespace sack::kernel
