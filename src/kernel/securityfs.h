// securityfs: the kernel-provided filesystem for security modules, mounted
// at /sys/kernel/security. Modules register virtual files whose read/write
// handlers run synchronously inside the write(2)/read(2) path — the property
// SACK exploits for low-latency situation-event transmission (SACKfs).
#pragma once

#include <string>
#include <string_view>

#include "kernel/vfs.h"

namespace sack::kernel {

class SecurityFs {
 public:
  static constexpr std::string_view kMountPoint = "/sys/kernel/security";

  explicit SecurityFs(Vfs* vfs);

  // Registers a virtual file at kMountPoint/<rel_path>, creating intermediate
  // directories. `ops` is non-owning: the registering module keeps ownership,
  // like the real securityfs_create_file(data, fops) contract.
  // Default mode 0600: root-only, the securityfs convention.
  Result<InodePtr> register_file(std::string_view rel_path,
                                 VirtualFileOps* ops, FileMode mode = 0600);

  Result<InodePtr> register_dir(std::string_view rel_path);

  // Removes a previously registered entry.
  Result<void> unregister(std::string_view rel_path);

  const InodePtr& mount_root() const { return mount_root_; }

 private:
  Vfs* vfs_;
  InodePtr mount_root_;
};

}  // namespace sack::kernel
