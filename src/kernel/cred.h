// Credentials and POSIX capabilities.
//
// SACK's threat model leans on capabilities: policy loading requires
// CAP_MAC_ADMIN and only CAP_MAC_OVERRIDE (which attackers are assumed not to
// hold) can bypass MAC decisions, mirroring the paper's §III-A.
#pragma once

#include <cstdint>
#include <string_view>

#include "kernel/types.h"
#include "util/result.h"

namespace sack::kernel {

enum class Capability : std::uint8_t {
  chown = 0,
  dac_override,
  dac_read_search,
  fowner,
  kill,
  setuid,
  setgid,
  net_bind_service,
  net_raw,
  net_admin,
  ipc_lock,
  sys_module,
  sys_rawio,
  sys_admin,
  sys_boot,
  sys_nice,
  sys_time,
  mknod,
  audit_write,
  mac_override,  // bypass MAC policy (out of attacker reach by assumption)
  mac_admin,     // configure MAC policy (load SACK/AppArmor policies)
  count_,        // sentinel
};

std::string_view capability_name(Capability c);

// Parses "mac_admin" / "CAP_MAC_ADMIN" style names.
Result<Capability> capability_from_name(std::string_view name);

class CapSet {
 public:
  constexpr CapSet() = default;

  static CapSet full();   // everything (root's default)
  static CapSet empty() { return CapSet(); }

  bool has(Capability c) const {
    return bits_ & (1ull << static_cast<unsigned>(c));
  }
  void add(Capability c) { bits_ |= 1ull << static_cast<unsigned>(c); }
  void remove(Capability c) { bits_ &= ~(1ull << static_cast<unsigned>(c)); }
  void clear() { bits_ = 0; }
  bool none() const { return bits_ == 0; }

  friend bool operator==(CapSet a, CapSet b) = default;

 private:
  std::uint64_t bits_ = 0;
};

struct Cred {
  Uid uid = 0;
  Uid euid = 0;
  Gid gid = 0;
  Gid egid = 0;
  CapSet caps;

  bool is_root() const { return euid == kRootUid; }

  static Cred root();
  static Cred user(Uid uid, Gid gid);
};

}  // namespace sack::kernel
