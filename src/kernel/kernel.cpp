#include "kernel/kernel.h"

#include "kernel/lsm/capability_module.h"
#include "util/log.h"

namespace sack::kernel {

// securityfs view of the audit ring: read dumps the log, a (root) write
// clears it.
class Kernel::AuditLogFile final : public VirtualFileOps {
 public:
  explicit AuditLogFile(AuditLog* log) : log_(log) {}
  Result<std::string> read_content(Task&) override {
    std::string out = "capacity=" + std::to_string(log_->capacity()) +
                      " recorded=" + std::to_string(log_->total_recorded()) +
                      " dropped=" + std::to_string(log_->dropped()) + "\n";
    return out + log_->to_text();
  }
  Result<void> write_content(Task&, std::string_view) override {
    log_->clear();
    return {};
  }

 private:
  AuditLog* log_;
};

Kernel::Kernel(KernelConfig config) : vfs_(&clock_) {
  securityfs_ = std::make_unique<SecurityFs>(&vfs_);
  audit_file_ = std::make_unique<AuditLogFile>(&audit_);
  (void)securityfs_->register_file("audit/log", audit_file_.get(), 0600);
  if (config.install_capability_module) {
    lsm_.add(std::make_unique<CapabilityModule>());
  }
  boot();
}

Kernel::~Kernel() = default;

void Kernel::boot() {
  // Standard tree.
  vfs_.mkdir_p("/bin");
  vfs_.mkdir_p("/sbin");
  vfs_.mkdir_p("/usr/bin");
  vfs_.mkdir_p("/etc");
  vfs_.mkdir_p("/dev/vehicle");
  vfs_.mkdir_p("/tmp", 01777);
  vfs_.mkdir_p("/var/log");
  vfs_.mkdir_p("/home");
  vfs_.mkdir_p("/proc");
  vfs_.mkdir_p("/sys/kernel/security");

  // init (pid 1).
  auto init = std::make_shared<Task>(Pid(next_pid_++), Pid(0), "init",
                                     Cred::root());
  init->set_exe_path("/sbin/init");
  tasks_[init->pid()] = init;

  procfs_ = std::make_unique<ProcFs>(this, &vfs_);
  procfs_->on_task_created(*init);
}

SecurityModule* Kernel::add_lsm(std::unique_ptr<SecurityModule> module) {
  SecurityModule* m = lsm_.add(std::move(module));
  m->initialize(*this);
  return m;
}

SecurityModule* Kernel::add_lsm_front(std::unique_ptr<SecurityModule> module) {
  SecurityModule* m = lsm_.add_front(std::move(module));
  m->initialize(*this);
  return m;
}

Result<InodePtr> Kernel::register_chardev(std::string_view path,
                                          DeviceOps* ops, FileMode mode) {
  if (!ops) return Errno::einval;
  auto r = vfs_.resolve_parent(Cred::root(), path, "/");
  if (!r.ok()) return r.error();
  if (r->inode) return Errno::eexist;
  auto inode = vfs_.make_inode(InodeType::chardev, mode, kRootUid, kRootGid);
  inode->device = ops;
  vfs_.link_child(r->parent, r->leaf, inode);
  return inode;
}

Result<std::reference_wrapper<Task>> Kernel::task(Pid pid) {
  auto it = tasks_.find(pid);
  if (it == tasks_.end()) return Errno::esrch;
  return std::ref(*it->second);
}

std::size_t Kernel::live_task_count() const {
  std::size_t n = 0;
  for (const auto& [pid, t] : tasks_)
    if (t->state == TaskState::running) ++n;
  return n;
}

Task& Kernel::spawn_task(std::string comm, Cred cred, std::string exe_path) {
  auto t = std::make_shared<Task>(Pid(next_pid_++), Pid(1), std::move(comm),
                                  std::move(cred));
  t->set_exe_path(std::move(exe_path));
  tasks_[t->pid()] = t;
  procfs_->on_task_created(*t);
  // Give LSMs a chance to set up blobs, inheriting from init.
  lsm_.notify([&](SecurityModule& m) { (void)m.task_alloc(init_task(), *t); });
  // A directly spawned task "executed" its binary: run the domain-transition
  // notification so path-attached profiles apply.
  if (!t->exe_path().empty()) {
    lsm_.notify(
        [&](SecurityModule& m) { m.bprm_committed_creds(*t, t->exe_path()); });
  }
  return *t;
}

void Kernel::advance_clock_ms(SimTime ms) {
  clock_.advance_ms(ms);
  const SimTime now = clock_.now();
  lsm_.notify([&](SecurityModule& m) { m.clock_tick(now); });
}

Errno Kernel::capable(const Task& task, Capability cap) {
  return lsm_.check([&](SecurityModule& m) { return m.capable(task, cap); });
}

// --- process syscalls ---

Result<Pid> Kernel::sys_fork(Task& parent) {
  SyscallScope scope(*this, "sys_fork");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(parent, "sys_fork"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto child = std::make_shared<Task>(Pid(next_pid_++), parent.pid(),
                                      parent.comm(), parent.cred());
  child->set_exe_path(parent.exe_path());
  child->set_cwd(parent.cwd());
  child->fds() = parent.fds().clone();

  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_alloc(parent, *child); });
  if (rc != Errno::ok) return rc;

  note_mutation("task_create");
  tasks_[child->pid()] = child;
  procfs_->on_task_created(*child);
  return child->pid();
}

Result<void> Kernel::sys_execve(Task& task, std::string_view path) {
  SyscallScope scope(*this, "sys_execve");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_execve"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto r = vfs_.resolve(task.cred(), path, task.cwd());
  if (!r.ok()) return r.error();
  const InodePtr& inode = r->inode;
  if (inode->is_dir()) return Errno::eisdir;
  if (!inode->is_regular()) return Errno::eacces;
  if (Errno rc = dac_check(task.cred(), *inode, AccessMask::exec);
      rc != Errno::ok)
    return rc;
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.bprm_check_security(task, r->path); });
  if (rc != Errno::ok) return rc;

  // "Load" the image: walk the binary once (this is where exec's cost lives).
  std::uint64_t checksum = 0;
  for (unsigned char c : inode->data()) checksum = checksum * 31 + c;
  (void)checksum;

  note_mutation("task_exec");
  task.fds().drop_cloexec();
  task.mmaps().clear();
  task.set_exe_path(r->path);
  auto slash = r->path.find_last_of('/');
  task.set_comm(slash == std::string::npos ? r->path
                                           : r->path.substr(slash + 1));
  lsm_.notify(
      [&](SecurityModule& m) { m.bprm_committed_creds(task, r->path); });
  return {};
}

void Kernel::sys_exit(Task& task, int code) {
  SyscallScope scope(*this, "sys_exit");
  note_mutation("task_exit");
  task.fds().close_all();
  task.mmaps().clear();
  task.exit_code = code;
  task.state = TaskState::zombie;
  // Reparent children to init.
  for (auto& [pid, t] : tasks_) {
    if (t->ppid() == task.pid()) t->set_ppid(Pid(1));
  }
}

void Kernel::reap(Task& child) {
  lsm_.notify([&](SecurityModule& m) { m.task_free(child); });
  note_mutation("task_reap");
  procfs_->on_task_reaped(child);
  child.state = TaskState::dead;
  tasks_.erase(child.pid());
}

Result<int> Kernel::sys_waitpid(Task& task, Pid child_pid) {
  SyscallScope scope(*this, "sys_waitpid");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_waitpid"); });
  if (flow_rc != Errno::ok) return flow_rc;
  auto it = tasks_.find(child_pid);
  if (it == tasks_.end()) return Errno::echild;
  Task& child = *it->second;
  if (child.ppid() != task.pid()) return Errno::echild;
  if (child.state != TaskState::zombie) return Errno::eagain;
  int code = child.exit_code;
  reap(child);
  return code;
}

long Kernel::sys_getpid(Task& task) {
  SyscallScope scope(*this, "sys_getpid");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_getpid"); });
  if (flow_rc != Errno::ok) return -static_cast<long>(flow_rc);
  return task.pid().get();
}

long Kernel::sys_nop(Task& task) {
  (void)task;
  SyscallScope scope(*this, "sys_nop");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_nop"); });
  if (flow_rc != Errno::ok) return -static_cast<long>(flow_rc);
  return 0;
}

Result<void> Kernel::sys_capset_drop(Task& task, Capability cap) {
  SyscallScope scope(*this, "sys_capset_drop");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_capset_drop"); });
  if (flow_rc != Errno::ok) return flow_rc;
  note_mutation("cred_change");
  task.cred().caps.remove(cap);
  return {};
}

Result<void> Kernel::sys_kill(Task& task, Pid target_pid, int sig) {
  SyscallScope scope(*this, "sys_kill");
  Errno flow_rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_syscall(task, "sys_kill"); });
  if (flow_rc != Errno::ok) return flow_rc;
  if (sig < 0 || sig > 64) return Errno::einval;
  auto it = tasks_.find(target_pid);
  if (it == tasks_.end() || it->second->state == TaskState::dead)
    return Errno::esrch;
  Task& target = *it->second;
  // DAC: same effective uid, or CAP_KILL.
  if (task.cred().euid != target.cred().euid &&
      capable(task, Capability::kill) != Errno::ok)
    return Errno::eperm;
  Errno rc = lsm_.check(
      [&](SecurityModule& m) { return m.task_kill(task, target, sig); });
  if (rc != Errno::ok) return rc;
  if (sig == 0) return {};  // permission probe only
  if (target.state == TaskState::running) {
    sys_exit(target, 128 + sig);
  }
  return {};
}

}  // namespace sack::kernel
