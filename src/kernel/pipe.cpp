#include "kernel/pipe.h"

#include <algorithm>
#include <cstring>

namespace sack::kernel {

Result<std::size_t> PipeBuffer::write(std::string_view data) {
  if (!reader_open) return Errno::epipe;
  if (data.empty()) return std::size_t{0};
  if (space() == 0) return Errno::eagain;
  std::size_t to_write = std::min(data.size(), space());
  if (buf_.size() < capacity_) buf_.resize(capacity_);
  std::size_t tail = (head_ + size_) % capacity_;
  std::size_t first = std::min(to_write, capacity_ - tail);
  std::memcpy(buf_.data() + tail, data.data(), first);
  if (first < to_write)
    std::memcpy(buf_.data(), data.data() + first, to_write - first);
  size_ += to_write;
  return to_write;
}

Result<std::size_t> PipeBuffer::read(std::string& out, std::size_t n) {
  out.clear();
  if (empty()) {
    if (!writer_open) return std::size_t{0};  // EOF
    return Errno::eagain;
  }
  std::size_t to_read = std::min(n, size_);
  out.resize(to_read);
  std::size_t first = std::min(to_read, capacity_ - head_);
  std::memcpy(out.data(), buf_.data() + head_, first);
  if (first < to_read)
    std::memcpy(out.data() + first, buf_.data(), to_read - first);
  head_ = (head_ + to_read) % capacity_;
  size_ -= to_read;
  return to_read;
}

}  // namespace sack::kernel
