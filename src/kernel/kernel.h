// Kernel: the simulated Linux kernel.
//
// Owns the task table, the VFS, the device registry, securityfs, and the LSM
// stack, and exposes the syscall surface the benchmarks, tests, and example
// applications drive. Every syscall places its LSM hooks at the same points
// the real kernel does, so a security module ported into this simulator sees
// the same sequence of mediation opportunities.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kernel/audit.h"
#include "kernel/cred.h"
#include "kernel/file.h"
#include "kernel/lsm/stack.h"
#include "kernel/procfs.h"
#include "kernel/securityfs.h"
#include "kernel/task.h"
#include "kernel/types.h"
#include "kernel/vfs.h"
#include "util/clock.h"
#include "util/result.h"

namespace sack::kernel {

struct KernelConfig {
  // LSM module order is fixed by the order of add_lsm() calls, mirroring
  // CONFIG_LSM="...". The capability module is always implicitly first.
  bool install_capability_module = true;
};

class Kernel {
 public:
  explicit Kernel(KernelConfig config = {});
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- subsystems ---
  Vfs& vfs() { return vfs_; }
  SecurityFs& securityfs() { return *securityfs_; }
  LsmStack& lsm() { return lsm_; }
  VirtualClock& clock() { return clock_; }
  AuditLog& audit() { return audit_; }

  // Registers an LSM (after the ones already present). Calls initialize().
  SecurityModule* add_lsm(std::unique_ptr<SecurityModule> module);

  // Registers an observation module ahead of the whole stack (including the
  // capability module). Used by the mediation fuzzer's sentinel; enforcing
  // modules must go through add_lsm.
  SecurityModule* add_lsm_front(std::unique_ptr<SecurityModule> module);

  // Installs (or clears, with nullptr) the runtime mediation witness. The
  // witness receives syscall_enter/exit markers, per-chain verdicts, and
  // mutation-site events; with none installed every observation point is a
  // single untaken null-pointer branch.
  void set_mediation_witness(MediationWitness* witness) {
    witness_ = witness;
    lsm_.set_witness(witness);
  }

  // Registers a char device; creates /dev-style node at `path`.
  Result<InodePtr> register_chardev(std::string_view path, DeviceOps* ops,
                                    FileMode mode = 0600);

  // --- task management ---
  Task& init_task() { return *tasks_.at(Pid(1)); }
  Result<std::reference_wrapper<Task>> task(Pid pid);
  std::size_t live_task_count() const;

  // Creates a task directly (a "kernel-spawned" process for tests/apps that
  // don't want to script fork+exec). Inherits nothing.
  Task& spawn_task(std::string comm, Cred cred, std::string exe_path = "");

  // --- process syscalls ---
  Result<Pid> sys_fork(Task& parent);
  Result<void> sys_execve(Task& task, std::string_view path);
  void sys_exit(Task& task, int code);
  Result<int> sys_waitpid(Task& task, Pid child);
  long sys_getpid(Task& task);
  // The LMBench "null syscall": full entry/exit, no work.
  long sys_nop(Task& task);
  Result<void> sys_capset_drop(Task& task, Capability cap);
  // Delivers a (terminating) signal: DAC requires same-euid or CAP_KILL;
  // the LSM task_kill hook mediates on top. SIGTERM/SIGKILL end the target;
  // signal 0 only probes permission, as in POSIX.
  Result<void> sys_kill(Task& task, Pid target, int sig);

  // --- file syscalls ---
  Result<Fd> sys_open(Task& task, std::string_view path, OpenFlags flags,
                      FileMode mode = kModeDefaultFile);
  Result<void> sys_close(Task& task, Fd fd);
  Result<std::size_t> sys_read(Task& task, Fd fd, std::string& out,
                               std::size_t n);
  Result<std::size_t> sys_write(Task& task, Fd fd, std::string_view data);
  Result<std::uint64_t> sys_lseek(Task& task, Fd fd, std::int64_t offset,
                                  Whence whence);
  Result<Stat> sys_stat(Task& task, std::string_view path);
  Result<Stat> sys_fstat(Task& task, Fd fd);
  Result<void> sys_mkdir(Task& task, std::string_view path,
                         FileMode mode = kModeDefaultDir);
  Result<void> sys_rmdir(Task& task, std::string_view path);
  Result<void> sys_unlink(Task& task, std::string_view path);
  Result<void> sys_rename(Task& task, std::string_view from,
                          std::string_view to);
  Result<void> sys_symlink(Task& task, std::string_view target,
                           std::string_view linkpath);
  Result<void> sys_link(Task& task, std::string_view existing,
                        std::string_view newpath);
  Result<std::string> sys_readlink(Task& task, std::string_view path);
  Result<void> sys_chmod(Task& task, std::string_view path, FileMode mode);
  Result<void> sys_chown(Task& task, std::string_view path, Uid uid, Gid gid);
  Result<void> sys_truncate(Task& task, std::string_view path,
                            std::uint64_t length);
  Result<long> sys_ioctl(Task& task, Fd fd, std::uint32_t cmd, long arg);
  // Extended attributes. "security.<module>" names read/write the per-LSM
  // inode labels (setting those additionally needs CAP_MAC_ADMIN);
  // "user.*" names are free-form metadata gated by DAC.
  Result<std::string> sys_getxattr(Task& task, std::string_view path,
                                   std::string_view name);
  Result<void> sys_setxattr(Task& task, std::string_view path,
                            std::string_view name, std::string_view value);
  Result<std::vector<std::string>> sys_listxattr(Task& task,
                                                 std::string_view path);
  Result<Fd> sys_dup(Task& task, Fd fd);
  Result<std::vector<std::string>> sys_readdir(Task& task,
                                               std::string_view path);
  Result<void> sys_chdir(Task& task, std::string_view path);

  // --- mmap ---
  Result<int> sys_mmap(Task& task, Fd fd, std::size_t length, AccessMask prot);
  Result<int> sys_mmap_anon(Task& task, std::size_t length, AccessMask prot);
  Result<void> sys_munmap(Task& task, int mmap_id);
  // Reads from a mapping (the simulator's substitute for dereferencing it).
  Result<std::size_t> mmap_read(Task& task, int mmap_id, std::string& out,
                                std::size_t offset, std::size_t n);

  // --- pipes & sockets ---
  Result<std::pair<Fd, Fd>> sys_pipe(Task& task);
  Result<Fd> sys_socket(Task& task, SockFamily family, SockType type);
  Result<std::pair<Fd, Fd>> sys_socketpair(Task& task, SockFamily family);
  Result<void> sys_bind(Task& task, Fd fd, const SockAddr& addr);
  Result<void> sys_listen(Task& task, Fd fd, int backlog);
  Result<void> sys_connect(Task& task, Fd fd, const SockAddr& addr);
  Result<Fd> sys_accept(Task& task, Fd fd);
  Result<std::size_t> sys_send(Task& task, Fd fd, std::string_view data);
  Result<std::size_t> sys_recv(Task& task, Fd fd, std::string& out,
                               std::size_t n);

  // Advances the virtual clock and runs the modules' clock_tick hooks (the
  // timer-interrupt analogue; timed SACK transitions fire here).
  void advance_clock_ms(SimTime ms);

  // --- capability check used by modules and in-kernel services ---
  Errno capable(const Task& task, Capability cap);

  // Statistics (used by tests to assert hook traffic happened).
  std::uint64_t syscall_count() const { return syscall_count_; }

 private:
  // Syscall prologue/epilogue: counts the call, advances the virtual clock
  // one tick, and brackets the body with witness enter/exit markers so a
  // runtime oracle can attribute hook chains and mutations to the syscall
  // that issued them. Scopes nest for kernel-internal syscalls (sys_exit
  // inside sys_kill).
  class SyscallScope {
   public:
    SyscallScope(Kernel& kernel, std::string_view name)
        : kernel_(kernel), name_(name) {
      ++kernel_.syscall_count_;
      kernel_.clock_.advance_ns(1);
      if (kernel_.witness_) kernel_.witness_->syscall_enter(name_);
    }
    ~SyscallScope() {
      if (kernel_.witness_) kernel_.witness_->syscall_exit(name_);
    }
    SyscallScope(const SyscallScope&) = delete;
    SyscallScope& operator=(const SyscallScope&) = delete;

   private:
    Kernel& kernel_;
    std::string_view name_;
  };

  // Mutation observation point: called right before a named state-mutation
  // site executes. Site names are listed in docs/FUZZER.md and consumed by
  // the runtime mediation oracle.
  void note_mutation(std::string_view site) {
    if (witness_) witness_->mutation(site);
  }

  void boot();
  void reap(Task& child);

  // Hook helpers; each bundles the DAC + LSM sequence for one operation.
  Errno check_open(Task& task, const Vfs::Resolved& r, OpenFlags flags,
                   AccessMask access);

  VirtualClock clock_;
  Vfs vfs_;
  std::unique_ptr<SecurityFs> securityfs_;
  LsmStack lsm_;
  AuditLog audit_;
  class AuditLogFile;
  std::unique_ptr<AuditLogFile> audit_file_;
  std::unique_ptr<ProcFs> procfs_;

  std::map<Pid, TaskPtr> tasks_;
  Pid::rep_type next_pid_ = 1;

  // weak_ptr: the fd table owns the listening socket; a fully-closed
  // listener releases its address automatically.
  std::unordered_map<std::uint16_t, std::weak_ptr<File>> inet_listeners_;
  std::unordered_map<std::string, std::weak_ptr<File>> unix_listeners_;

  std::uint64_t syscall_count_ = 0;
  MediationWitness* witness_ = nullptr;
};

}  // namespace sack::kernel
