#include "apparmor/apparmor.h"

#include "kernel/process.h"
#include "util/log.h"
#include "util/strings.h"

namespace sack::apparmor {

using kernel::AccessMask;
using kernel::Capability;
using kernel::Task;

namespace {
// Task blob: the confining profile name. A shared_ptr<const string> so fork
// can share it copy-free until a transition replaces it.
using ProfileRef = std::shared_ptr<std::string>;
}  // namespace

// --- securityfs plumbing ---

class AppArmorModule::LoadFile final : public kernel::VirtualFileOps {
 public:
  explicit LoadFile(AppArmorModule* mod) : mod_(mod) {}
  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    std::vector<ParseError> errors;
    auto rc = mod_->load_policy_text(data, &errors);
    if (!rc.ok()) {
      for (const auto& e : errors)
        log_warn("apparmor: policy load error: ", e.to_string());
      return Errno::einval;
    }
    return {};
  }

 private:
  AppArmorModule* mod_;
};

class AppArmorModule::RemoveFile final : public kernel::VirtualFileOps {
 public:
  explicit RemoveFile(AppArmorModule* mod) : mod_(mod) {}
  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    std::string name(trim(data));
    return mod_->remove_profile(name);
  }

 private:
  AppArmorModule* mod_;
};

class AppArmorModule::ProfilesFile final : public kernel::VirtualFileOps {
 public:
  explicit ProfilesFile(AppArmorModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    std::string out;
    for (const auto& [name, entry] : mod_->profiles_) {
      out += name;
      out += entry.profile.mode == ProfileMode::enforce ? " (enforce)\n"
                                                        : " (complain)\n";
    }
    return out;
  }

 private:
  AppArmorModule* mod_;
};

AppArmorModule::AppArmorModule() = default;
AppArmorModule::~AppArmorModule() = default;

void AppArmorModule::initialize(kernel::Kernel& kernel) {
  kernel_ = &kernel;
  load_file_ = std::make_unique<LoadFile>(this);
  remove_file_ = std::make_unique<RemoveFile>(this);
  profiles_file_ = std::make_unique<ProfilesFile>(this);
  auto& fs = kernel.securityfs();
  (void)fs.register_file("apparmor/.load", load_file_.get(), 0200);
  (void)fs.register_file("apparmor/.remove", remove_file_.get(), 0200);
  (void)fs.register_file("apparmor/profiles", profiles_file_.get(), 0444);
}

// --- policy management ---

Result<void> AppArmorModule::load_policy_text(std::string_view text,
                                              std::vector<ParseError>* errors) {
  ParseResult parsed = parse_profiles(text);
  if (errors) *errors = parsed.errors;
  if (!parsed.ok()) return Errno::einval;
  for (auto& profile : parsed.profiles) {
    SACK_TRY(replace_profile(std::move(profile)));
  }
  return {};
}

Result<void> AppArmorModule::replace_profile(Profile profile) {
  if (profile.name.empty()) return Errno::einval;
  Entry entry;
  entry.matcher.rebuild(profile);
  entry.profile = std::move(profile);
  profiles_[entry.profile.name] = std::move(entry);
  bump_generation();
  return {};
}

Result<void> AppArmorModule::remove_profile(std::string_view name) {
  auto it = profiles_.find(name);
  if (it == profiles_.end()) return Errno::enoent;
  profiles_.erase(it);
  bump_generation();
  return {};
}

const Profile* AppArmorModule::find_profile(std::string_view name) const {
  auto it = profiles_.find(name);
  return it == profiles_.end() ? nullptr : &it->second.profile;
}

std::vector<std::string> AppArmorModule::profile_names() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& [name, entry] : profiles_) out.push_back(name);
  return out;
}

Result<void> AppArmorModule::inject_rules(std::string_view profile_name,
                                          std::vector<FileRule> rules) {
  auto it = profiles_.find(profile_name);
  if (it == profiles_.end()) return Errno::enoent;
  auto& entry = it->second;
  for (auto& rule : rules) entry.profile.rules.push_back(std::move(rule));
  entry.matcher.rebuild(entry.profile);
  bump_generation();
  return {};
}

std::size_t AppArmorModule::remove_rules_by_origin(std::string_view origin) {
  std::size_t removed = 0;
  for (auto& [name, entry] : profiles_) {
    auto& rules = entry.profile.rules;
    std::size_t before = rules.size();
    std::erase_if(rules,
                  [&](const FileRule& r) { return r.origin == origin; });
    if (rules.size() != before) {
      removed += before - rules.size();
      entry.matcher.rebuild(entry.profile);
    }
  }
  if (removed) bump_generation();
  return removed;
}

// --- confinement ---

std::string AppArmorModule::profile_of(const Task& task) const {
  auto ref = task.security_blob<std::string>(std::string(kName));
  return ref ? *ref : std::string{};
}

void AppArmorModule::confine(Task& task, std::string profile_name) {
  task.set_security_blob(std::string(kName),
                         std::make_shared<std::string>(
                             std::move(profile_name)));
}

const AppArmorModule::Entry* AppArmorModule::entry_of(const Task& task) const {
  auto ref = task.security_blob<std::string>(std::string(kName));
  if (!ref || ref->empty()) return nullptr;  // unconfined
  auto it = profiles_.find(*ref);
  return it == profiles_.end() ? nullptr : &it->second;
}

// --- checks ---

FilePerm AppArmorModule::perms_from_access(AccessMask access) {
  FilePerm p = FilePerm::none;
  if (has_any(access, AccessMask::read)) p |= FilePerm::read;
  if (has_any(access, AccessMask::write)) p |= FilePerm::write;
  if (has_any(access, AccessMask::append)) p |= FilePerm::append;
  if (has_any(access, AccessMask::exec)) p |= FilePerm::exec;
  return p;
}

Errno AppArmorModule::check_path(const Task& task, std::string_view path,
                                 FilePerm wanted) {
  const Entry* entry = entry_of(task);
  if (!entry) return Errno::ok;  // unconfined
  Errno rc = entry->matcher.check(path, wanted);
  if (rc != Errno::ok) {
    ++denials_;
    bool complain = entry->profile.mode == ProfileMode::complain;
    if (kernel_) {
      kernel::AuditRecord record;
      record.time = kernel_->clock().now();
      record.module = std::string(kName);
      record.pid = task.pid();
      record.subject = entry->profile.name;
      record.object = std::string(path);
      record.operation = format_perms(wanted);
      record.verdict = complain ? kernel::AuditVerdict::allowed
                                : kernel::AuditVerdict::denied;
      record.context = complain ? "complain" : "enforce";
      kernel_->audit().record(std::move(record));
    }
    if (complain) {
      log_info("apparmor: ALLOWED (complain) ", entry->profile.name, " ",
               path, " ", format_perms(wanted));
      return Errno::ok;
    }
    log_debug("apparmor: DENIED ", entry->profile.name, " ", path, " ",
              format_perms(wanted));
  }
  return rc;
}

Errno AppArmorModule::file_open(Task& task, const std::string& path,
                                const kernel::Inode&, AccessMask access) {
  return check_path(task, path, perms_from_access(access));
}

Errno AppArmorModule::file_permission(Task& task, const kernel::File& file,
                                      AccessMask access) {
  if (file.path().starts_with("pipe:") || file.is_socket())
    return Errno::ok;  // no path to mediate
  // Revalidation cache: a successful check is valid until the policy OR the
  // task's confinement changes (an exec can swap the profile under a kept
  // fd, so the subject is part of the cache key).
  std::string subject = profile_of(task);
  if (file.mac_verdict_current(kName, generation_, subject)) return Errno::ok;
  Errno rc = check_path(task, file.path(), perms_from_access(access));
  if (rc == Errno::ok)
    file.mac_verdict_store(kName, generation_, std::move(subject));
  return rc;
}

Errno AppArmorModule::file_ioctl(Task& task, const kernel::File& file,
                                 std::uint32_t) {
  return check_path(task, file.path(), FilePerm::ioctl);
}

Errno AppArmorModule::mmap_file(Task& task, const kernel::File& file,
                                AccessMask prot) {
  return check_path(task, file.path(),
                    FilePerm::mmap | perms_from_access(prot));
}

Errno AppArmorModule::path_mknod(Task& task, const std::string& path,
                                 kernel::InodeType) {
  return check_path(task, path, FilePerm::write);
}
Errno AppArmorModule::path_unlink(Task& task, const std::string& path) {
  return check_path(task, path, FilePerm::write);
}
Errno AppArmorModule::path_mkdir(Task& task, const std::string& path) {
  return check_path(task, path, FilePerm::write);
}
Errno AppArmorModule::path_rmdir(Task& task, const std::string& path) {
  return check_path(task, path, FilePerm::write);
}
Errno AppArmorModule::path_rename(Task& task, const std::string& old_path,
                                  const std::string& new_path) {
  if (Errno rc = check_path(task, old_path, FilePerm::write); rc != Errno::ok)
    return rc;
  return check_path(task, new_path, FilePerm::write);
}
Errno AppArmorModule::path_symlink(Task& task, const std::string& path,
                                   const std::string&) {
  return check_path(task, path, FilePerm::write);
}
Errno AppArmorModule::path_link(Task& task, const std::string& old_path,
                                const std::string& new_path) {
  // AppArmor semantics: the new name needs the 'l' permission; the rule set
  // must also let the subject read the target (a link is a new way to reach
  // the same object).
  if (Errno rc = check_path(task, old_path, FilePerm::read); rc != Errno::ok)
    return rc;
  return check_path(task, new_path, FilePerm::link);
}

Errno AppArmorModule::path_truncate(Task& task, const std::string& path) {
  return check_path(task, path, FilePerm::write);
}
Errno AppArmorModule::path_chmod(Task& task, const std::string& path,
                                 kernel::FileMode) {
  return check_path(task, path, FilePerm::write);
}
Errno AppArmorModule::path_chown(Task& task, const std::string& path,
                                 kernel::Uid, kernel::Gid) {
  return check_path(task, path, FilePerm::write);
}
Errno AppArmorModule::inode_getattr(Task& task, const std::string& path) {
  return check_path(task, path, FilePerm::read);
}

Errno AppArmorModule::bprm_check_security(Task& task,
                                          const std::string& path) {
  if (Errno rc = check_path(task, path, FilePerm::exec); rc != Errno::ok)
    return rc;
  // An explicit exec transition whose target profile is not loaded fails
  // the exec (AppArmor refuses rather than running unconfined).
  const Entry* entry = entry_of(task);
  if (entry) {
    for (const auto& t : entry->profile.exec_transitions) {
      if (t.pattern.matches(path) && !profiles_.contains(t.target)) {
        ++denials_;
        log_warn("apparmor: exec transition target '", t.target,
                 "' not loaded for ", path);
        return Errno::eacces;
      }
    }
  }
  return Errno::ok;
}

void AppArmorModule::bprm_committed_creds(Task& task,
                                          const std::string& path) {
  // Explicit transitions of the current profile take precedence...
  const Entry* entry = entry_of(task);
  if (entry) {
    for (const auto& t : entry->profile.exec_transitions) {
      if (t.pattern.matches(path)) {
        confine(task, t.target);
        return;
      }
    }
  }
  // ...then global attachment: the first profile whose attachment matches
  // wins (profiles_ is name-ordered, giving deterministic precedence).
  for (const auto& [name, e] : profiles_) {
    if (e.profile.attachment && e.profile.attachment->matches(path)) {
      confine(task, name);
      return;
    }
  }
  confine(task, "");  // unconfined
}

Errno AppArmorModule::task_alloc(Task& parent, Task& child) {
  // fork: the child inherits the parent's confinement (shared ref).
  auto ref = parent.security_blob<std::string>(std::string(kName));
  if (ref) child.set_security_blob(std::string(kName), ref);
  return Errno::ok;
}

Errno AppArmorModule::task_kill(Task& sender, Task& target, int) {
  // Simplified signal mediation: a confined task may signal peers under the
  // same profile; anything else needs the 'kill' capability in its profile.
  const Entry* entry = entry_of(sender);
  if (!entry) return Errno::ok;  // unconfined sender
  if (profile_of(sender) == profile_of(target)) return Errno::ok;
  if (entry->profile.caps.has(Capability::kill)) return Errno::ok;
  if (entry->profile.mode == ProfileMode::complain) return Errno::ok;
  ++denials_;
  return Errno::eperm;
}

std::string AppArmorModule::getprocattr(const Task& task) {
  const Entry* entry = entry_of(task);
  if (!entry) return "unconfined";
  return entry->profile.name +
         (entry->profile.mode == ProfileMode::enforce ? " (enforce)"
                                                      : " (complain)");
}

Errno AppArmorModule::capable(const Task& task, Capability cap) {
  const Entry* entry = entry_of(task);
  if (!entry) return Errno::ok;
  if (entry->profile.caps.has(cap)) return Errno::ok;
  if (entry->profile.mode == ProfileMode::complain) return Errno::ok;
  ++denials_;
  return Errno::eperm;
}

Errno AppArmorModule::socket_create(Task& task, kernel::SockFamily family,
                                    kernel::SockType) {
  const Entry* entry = entry_of(task);
  if (!entry) return Errno::ok;
  if (entry->profile.net_families.contains(family)) return Errno::ok;
  if (entry->profile.mode == ProfileMode::complain) return Errno::ok;
  ++denials_;
  return Errno::eacces;
}

}  // namespace sack::apparmor
