#include "apparmor/profile.h"

namespace sack::apparmor {

std::string Profile::to_text() const {
  std::string out = "profile " + name;
  if (attachment && attachment->pattern() != name)
    out += " " + attachment->pattern();
  if (mode == ProfileMode::complain) out += " flags=(complain)";
  out += " {\n";
  for (const auto& rule : rules) {
    out += "  ";
    if (rule.deny) out += "deny ";
    out += rule.pattern.pattern() + " " + format_perms(rule.perms);
    for (const auto& t : exec_transitions) {
      if (t.pattern.pattern() == rule.pattern.pattern() && !rule.deny &&
          has_any(rule.perms, FilePerm::exec)) {
        out += " -> " + t.target;
        break;
      }
    }
    if (!rule.origin.empty()) out += "  # origin: " + rule.origin;
    out += ",\n";
  }
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(kernel::Capability::count_); ++i) {
    auto cap = static_cast<kernel::Capability>(i);
    if (caps.has(cap))
      out += "  capability " + std::string(kernel::capability_name(cap)) +
             ",\n";
  }
  for (auto fam : net_families) {
    out += std::string("  network ") +
           (fam == kernel::SockFamily::inet ? "inet" : "unix") + ",\n";
  }
  out += "}\n";
  return out;
}

}  // namespace sack::apparmor
