// Profile model: what a loaded AppArmor-like profile looks like in memory.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "apparmor/perms.h"
#include "kernel/cred.h"
#include "kernel/types.h"
#include "util/glob.h"

namespace sack::apparmor {

struct FileRule {
  Glob pattern;
  FilePerm perms = FilePerm::none;
  bool deny = false;
  // Origin tag: empty for rules from the loaded profile text; SACK-injected
  // rules carry "sack:<PERMISSION>" so the APE can retract exactly what it
  // added when the situation state changes.
  std::string origin;
};

enum class ProfileMode : std::uint8_t {
  enforce,   // denials fail the operation
  complain,  // denials are logged but allowed
};

// An explicit exec transition (AppArmor's "px -> target" form):
//   /usr/bin/child rx -> child_profile,
// When a confined task execs a matching path it enters `target` instead of
// going through global attachment matching.
struct ExecTransition {
  Glob pattern;
  std::string target;
};

struct Profile {
  std::string name;
  // Exec paths matching this attach the profile (domain transition). When a
  // profile is declared with a path name, the name doubles as attachment.
  std::optional<Glob> attachment;
  std::vector<FileRule> rules;
  std::vector<ExecTransition> exec_transitions;
  kernel::CapSet caps;
  std::set<kernel::SockFamily> net_families;
  ProfileMode mode = ProfileMode::enforce;

  // Serializes back to profile-language text (canonical form).
  std::string to_text() const;
};

}  // namespace sack::apparmor
