// AppArmor-style file permission masks.
//
// Follows apparmor.d(5): r (read), w (write), a (append), x (execute),
// m (memory-map), k (lock), l (link). We add one divergence needed by the
// paper's case study: 'i' gates ioctl on device nodes, which mainline
// AppArmor folds into write access; SACK needs ioctl-granular control over
// /dev/vehicle/* so both MAC engines here treat it as its own bit.
#pragma once

#include <string>
#include <string_view>

#include "util/bitmask.h"
#include "util/result.h"

namespace sack::apparmor {

enum class FilePerm : std::uint32_t {
  none = 0,
  read = 1u << 0,    // r
  write = 1u << 1,   // w
  append = 1u << 2,  // a
  exec = 1u << 3,    // x
  mmap = 1u << 4,    // m
  lock = 1u << 5,    // k
  link = 1u << 6,    // l
  ioctl = 1u << 7,   // i (divergence, see above)
};

// Parses "rwx", "rix", ... Fails with EINVAL on unknown letters or 'w'+'a'
// in one rule (AppArmor rejects that combination).
Result<FilePerm> parse_perms(std::string_view s);

// Canonical letter form, e.g. "rw".
std::string format_perms(FilePerm p);

}  // namespace sack::apparmor

namespace sack {
template <>
struct EnableBitmask<apparmor::FilePerm> : std::true_type {};
}  // namespace sack
