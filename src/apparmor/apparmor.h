// AppArmorModule: the AppArmor-like path-based MAC security module.
//
// Semantics follow AppArmor where the simulator can express them:
//   - tasks are unconfined until an exec path matches a profile attachment
//     (domain transition in bprm_committed_creds);
//   - confined tasks are deny-by-default: every mediated operation needs a
//     matching allow rule, deny rules take precedence;
//   - complain-mode profiles log instead of denying;
//   - capability and network (socket-family) rules gate capable()/socket
//     hooks;
//   - policy loads through securityfs (/sys/kernel/security/apparmor/.load),
//     guarded by CAP_MAC_ADMIN.
//
// Divergence from mainline AppArmor, required by SACK-enhanced mode: the
// rule set of a loaded profile can be patched at runtime (inject_rules /
// remove_rules_by_origin) and a policy-generation counter invalidates
// open-file permission caches so in-flight fds feel the change immediately.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apparmor/matcher.h"
#include "apparmor/parser.h"
#include "apparmor/profile.h"
#include "kernel/kernel.h"
#include "kernel/lsm/module.h"

namespace sack::apparmor {

class AppArmorModule final : public kernel::SecurityModule {
 public:
  static constexpr std::string_view kName = "apparmor";

  AppArmorModule();
  ~AppArmorModule() override;

  std::string_view name() const override { return kName; }
  void initialize(kernel::Kernel& kernel) override;

  // --- policy management (kernel-side API; securityfs routes here) ---

  // Parses and loads/replaces every profile in `text`.
  Result<void> load_policy_text(std::string_view text,
                                std::vector<ParseError>* errors = nullptr);
  Result<void> replace_profile(Profile profile);
  Result<void> remove_profile(std::string_view name);
  const Profile* find_profile(std::string_view name) const;
  std::vector<std::string> profile_names() const;

  // --- runtime patching (used by SACK-enhanced mode) ---
  Result<void> inject_rules(std::string_view profile_name,
                            std::vector<FileRule> rules);
  // Removes every rule whose origin matches, across all profiles. Returns
  // the number of rules removed.
  std::size_t remove_rules_by_origin(std::string_view origin);

  // Bumped on every policy change; file permission caches key off it.
  std::uint64_t policy_generation() const { return generation_; }

  // --- confinement ---
  // Profile name confining `task`, or "" when unconfined.
  std::string profile_of(const kernel::Task& task) const;
  void confine(kernel::Task& task, std::string profile_name);

  std::uint64_t denial_count() const { return denials_; }

  // --- LSM hooks ---
  Errno file_open(kernel::Task& task, const std::string& path,
                  const kernel::Inode& inode,
                  kernel::AccessMask access) override;
  Errno file_permission(kernel::Task& task, const kernel::File& file,
                        kernel::AccessMask access) override;
  Errno file_ioctl(kernel::Task& task, const kernel::File& file,
                   std::uint32_t cmd) override;
  Errno mmap_file(kernel::Task& task, const kernel::File& file,
                  kernel::AccessMask prot) override;
  Errno path_mknod(kernel::Task& task, const std::string& path,
                   kernel::InodeType type) override;
  Errno path_unlink(kernel::Task& task, const std::string& path) override;
  Errno path_mkdir(kernel::Task& task, const std::string& path) override;
  Errno path_rmdir(kernel::Task& task, const std::string& path) override;
  Errno path_rename(kernel::Task& task, const std::string& old_path,
                    const std::string& new_path) override;
  Errno path_symlink(kernel::Task& task, const std::string& path,
                     const std::string& target) override;
  Errno path_link(kernel::Task& task, const std::string& old_path,
                  const std::string& new_path) override;
  Errno path_truncate(kernel::Task& task, const std::string& path) override;
  Errno path_chmod(kernel::Task& task, const std::string& path,
                   kernel::FileMode mode) override;
  Errno path_chown(kernel::Task& task, const std::string& path,
                   kernel::Uid uid, kernel::Gid gid) override;
  Errno inode_getattr(kernel::Task& task, const std::string& path) override;
  Errno bprm_check_security(kernel::Task& task,
                            const std::string& path) override;
  void bprm_committed_creds(kernel::Task& task,
                            const std::string& path) override;
  Errno task_alloc(kernel::Task& parent, kernel::Task& child) override;
  Errno task_kill(kernel::Task& sender, kernel::Task& target,
                  int sig) override;
  std::string getprocattr(const kernel::Task& task) override;
  Errno capable(const kernel::Task& task, kernel::Capability cap) override;
  Errno socket_create(kernel::Task& task, kernel::SockFamily family,
                      kernel::SockType type) override;

 private:
  struct Entry {
    Profile profile;
    ProfileMatcher matcher;
  };

  // Returns the entry confining `task`, or nullptr when unconfined.
  const Entry* entry_of(const kernel::Task& task) const;
  Errno check_path(const kernel::Task& task, std::string_view path,
                   FilePerm wanted);
  static FilePerm perms_from_access(kernel::AccessMask access);
  void bump_generation() { ++generation_; }

  std::map<std::string, Entry, std::less<>> profiles_;
  std::uint64_t generation_ = 1;
  std::uint64_t denials_ = 0;

  class LoadFile;
  class RemoveFile;
  class ProfilesFile;
  std::unique_ptr<LoadFile> load_file_;
  std::unique_ptr<RemoveFile> remove_file_;
  std::unique_ptr<ProfilesFile> profiles_file_;
  kernel::Kernel* kernel_ = nullptr;
};

}  // namespace sack::apparmor
