#include "apparmor/perms.h"

namespace sack::apparmor {

Result<FilePerm> parse_perms(std::string_view s) {
  FilePerm p = FilePerm::none;
  for (char c : s) {
    switch (c) {
      case 'r': p |= FilePerm::read; break;
      case 'w': p |= FilePerm::write; break;
      case 'a': p |= FilePerm::append; break;
      case 'x': p |= FilePerm::exec; break;
      case 'm': p |= FilePerm::mmap; break;
      case 'k': p |= FilePerm::lock; break;
      case 'l': p |= FilePerm::link; break;
      case 'i': p |= FilePerm::ioctl; break;
      default: return Errno::einval;
    }
  }
  if (has_all(p, FilePerm::write | FilePerm::append)) return Errno::einval;
  if (is_empty(p)) return Errno::einval;
  return p;
}

std::string format_perms(FilePerm p) {
  std::string out;
  if (has_any(p, FilePerm::read)) out += 'r';
  if (has_any(p, FilePerm::write)) out += 'w';
  if (has_any(p, FilePerm::append)) out += 'a';
  if (has_any(p, FilePerm::exec)) out += 'x';
  if (has_any(p, FilePerm::mmap)) out += 'm';
  if (has_any(p, FilePerm::lock)) out += 'k';
  if (has_any(p, FilePerm::link)) out += 'l';
  if (has_any(p, FilePerm::ioctl)) out += 'i';
  return out;
}

}  // namespace sack::apparmor
