// Parser for the simplified AppArmor profile language.
//
// Grammar (subset of apparmor.d(5), one or more profiles per document):
//
//   profile NAME [ATTACHMENT-PATH] [flags=(complain)] {
//     [deny] PATH-GLOB PERMS ,
//     capability CAP-NAME ,
//     network FAMILY ,
//   }
//
//   /attachment/path { ... }        # path form: name == attachment
//
// '#' starts a comment. Errors carry line/column and the parse continues
// where possible so a document reports all its problems at once.
#pragma once

#include <string_view>
#include <vector>

#include "apparmor/profile.h"
#include "util/tokenizer.h"

namespace sack::apparmor {

struct ParseResult {
  std::vector<Profile> profiles;
  std::vector<ParseError> errors;

  bool ok() const { return errors.empty(); }
};

ParseResult parse_profiles(std::string_view text);

}  // namespace sack::apparmor
