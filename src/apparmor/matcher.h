// ProfileMatcher: the compiled lookup structure for one profile.
//
// Real AppArmor compiles profiles to a DFA so rule count barely affects
// match cost; we approximate that with a literal-path hash index (the common
// case in large generated policies) plus a linear scan over the remaining
// glob rules. This is what keeps Table III's overhead flat in rule count.
#pragma once

#include <string_view>
#include <vector>

#include "apparmor/profile.h"
#include "util/transparent_hash.h"

namespace sack::apparmor {

class ProfileMatcher {
 public:
  ProfileMatcher() = default;
  explicit ProfileMatcher(const Profile& profile) { rebuild(profile); }

  // Rebuilds the index after the profile's rules changed.
  void rebuild(const Profile& profile);

  // Permissions granted for `path`: union of matching allow rules minus any
  // matching deny rule bit (deny has precedence, as in AppArmor).
  FilePerm allowed(std::string_view path) const;

  // EACCES unless all bits of `wanted` are granted.
  Errno check(std::string_view path, FilePerm wanted) const;

 private:
  struct Masks {
    FilePerm allow = FilePerm::none;
    FilePerm deny = FilePerm::none;
  };
  StringMap<Masks> literal_;
  struct GlobRule {
    Glob pattern;
    FilePerm perms;
    bool deny;
  };
  std::vector<GlobRule> globs_;
};

}  // namespace sack::apparmor
