#include "apparmor/matcher.h"

namespace sack::apparmor {

void ProfileMatcher::rebuild(const Profile& profile) {
  literal_.clear();
  globs_.clear();
  for (const auto& rule : profile.rules) {
    if (rule.pattern.is_literal()) {
      Masks& m = literal_[rule.pattern.literal()];
      if (rule.deny) {
        m.deny |= rule.perms;
      } else {
        m.allow |= rule.perms;
      }
    } else {
      globs_.push_back({rule.pattern, rule.perms, rule.deny});
    }
  }
}

FilePerm ProfileMatcher::allowed(std::string_view path) const {
  FilePerm allow = FilePerm::none;
  FilePerm deny = FilePerm::none;
  if (!literal_.empty()) {
    auto it = literal_.find(path);
    if (it != literal_.end()) {
      allow |= it->second.allow;
      deny |= it->second.deny;
    }
  }
  for (const auto& g : globs_) {
    if (g.pattern.matches(path)) {
      if (g.deny) {
        deny |= g.perms;
      } else {
        allow |= g.perms;
      }
    }
  }
  // 'w' implies 'a': a rule granting write also covers append-only opens.
  if (has_any(allow, FilePerm::write)) allow |= FilePerm::append;
  if (has_any(deny, FilePerm::write)) deny |= FilePerm::append;
  return allow & ~deny;
}

Errno ProfileMatcher::check(std::string_view path, FilePerm wanted) const {
  return has_all(allowed(path), wanted) ? Errno::ok : Errno::eacces;
}

}  // namespace sack::apparmor
