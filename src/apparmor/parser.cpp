#include "apparmor/parser.h"

#include "apparmor/perms.h"
#include "util/strings.h"

namespace sack::apparmor {

namespace {

// Skips to the next statement boundary after an error so one bad rule
// doesn't cascade.
void synchronize(TokenStream& ts) {
  while (!ts.at_end()) {
    const Token& t = ts.peek();
    if (t.is_punct(',') || t.is_punct(';')) {
      ts.next();
      return;
    }
    if (t.is_punct('}')) return;
    ts.next();
  }
}

bool parse_rule(TokenStream& ts, Profile& profile) {
  bool deny = ts.accept_ident("deny");
  bool allow = !deny && ts.accept_ident("allow");  // optional keyword
  (void)allow;

  const Token& t = ts.peek();

  if (t.is_ident("capability")) {
    ts.next();
    auto cap_tok = ts.expect_ident();
    if (!cap_tok.ok()) return false;
    auto cap = kernel::capability_from_name(cap_tok->text);
    if (!cap.ok()) {
      ts.record_error("unknown capability '" + cap_tok->text + "'");
      return false;
    }
    if (deny) {
      profile.caps.remove(cap.value());
    } else {
      profile.caps.add(cap.value());
    }
    return ts.expect_punct(',').ok();
  }

  if (t.is_ident("network")) {
    ts.next();
    // Optional family; bare "network," allows both.
    if (ts.peek().kind == TokenKind::identifier) {
      const std::string fam = ts.next().text;
      if (fam == "inet" || fam == "tcp") {
        profile.net_families.insert(kernel::SockFamily::inet);
      } else if (fam == "unix" || fam == "local") {
        profile.net_families.insert(kernel::SockFamily::unix_);
      } else {
        ts.record_error("unknown network family '" + fam + "'");
        return false;
      }
      // Skip an optional socket type word ("stream"/"dgram").
      if (ts.peek().kind == TokenKind::identifier) ts.next();
    } else {
      profile.net_families.insert(kernel::SockFamily::inet);
      profile.net_families.insert(kernel::SockFamily::unix_);
    }
    return ts.expect_punct(',').ok();
  }

  if (t.kind == TokenKind::path) {
    std::string pattern = ts.next().text;
    auto perm_tok = ts.expect_ident();
    if (!perm_tok.ok()) return false;
    auto perms = parse_perms(perm_tok->text);
    if (!perms.ok()) {
      ts.record_error("bad permission string '" + perm_tok->text + "'");
      return false;
    }
    auto glob = Glob::compile(pattern);
    if (!glob.ok()) {
      ts.record_error("bad path pattern '" + pattern + "'");
      return false;
    }
    FileRule rule;
    rule.pattern = std::move(glob).value();
    rule.perms = perms.value();
    rule.deny = deny;

    // Optional exec transition: "<path> rx -> target_profile,".
    if (ts.peek().kind == TokenKind::arrow) {
      ts.next();
      auto target = ts.expect_ident();
      if (!target.ok()) return false;
      if (deny || !has_any(rule.perms, FilePerm::exec)) {
        ts.record_error(
            "exec transition requires an allow rule with 'x' permission");
        return false;
      }
      ExecTransition transition;
      auto tglob = Glob::compile(pattern);
      transition.pattern = std::move(tglob).value();
      transition.target = target->text;
      profile.exec_transitions.push_back(std::move(transition));
    }

    profile.rules.push_back(std::move(rule));
    return ts.expect_punct(',').ok();
  }

  ts.record_error("expected a rule, got '" + t.text + "'");
  return false;
}

bool parse_profile(TokenStream& ts, ParseResult& result) {
  Profile profile;

  if (ts.accept_ident("profile")) {
    const Token& name_tok = ts.peek();
    if (name_tok.kind == TokenKind::identifier ||
        name_tok.kind == TokenKind::path) {
      profile.name = ts.next().text;
    } else {
      ts.record_error("expected profile name");
      return false;
    }
    if (ts.peek().kind == TokenKind::path) {
      auto glob = Glob::compile(ts.next().text);
      if (!glob.ok()) {
        ts.record_error("bad attachment pattern");
        return false;
      }
      profile.attachment = std::move(glob).value();
    }
  } else if (ts.peek().kind == TokenKind::path) {
    profile.name = ts.next().text;
  } else {
    ts.record_error("expected 'profile' or an attachment path, got '" +
                    ts.peek().text + "'");
    ts.next();
    return false;
  }

  // Path-named profiles attach by their own name.
  if (!profile.attachment && !profile.name.empty() &&
      profile.name[0] == '/') {
    auto glob = Glob::compile(profile.name);
    if (!glob.ok()) {
      ts.record_error("profile name is not a valid attachment pattern");
      return false;
    }
    profile.attachment = std::move(glob).value();
  }

  // Optional flags=(complain).
  if (ts.accept_ident("flags")) {
    if (!ts.expect_punct('=').ok() || !ts.expect_punct('(').ok()) return false;
    auto flag = ts.expect_ident();
    if (!flag.ok()) return false;
    if (flag->text == "complain") {
      profile.mode = ProfileMode::complain;
    } else if (flag->text != "enforce") {
      ts.record_error("unknown profile flag '" + flag->text + "'");
    }
    if (!ts.expect_punct(')').ok()) return false;
  }

  if (!ts.expect_punct('{').ok()) return false;
  while (!ts.at_end() && !ts.peek().is_punct('}')) {
    if (!parse_rule(ts, profile)) synchronize(ts);
  }
  if (!ts.expect_punct('}').ok()) return false;

  result.profiles.push_back(std::move(profile));
  return true;
}

}  // namespace

ParseResult parse_profiles(std::string_view text) {
  ParseResult result;
  Tokenizer tokenizer(text);
  auto tokens = tokenizer.run();
  if (!tokens.ok()) {
    result.errors.push_back(tokenizer.last_error());
    return result;
  }
  TokenStream ts(std::move(tokens).value());
  while (!ts.at_end()) {
    parse_profile(ts, result);
  }
  result.errors = ts.take_errors();
  return result;
}

}  // namespace sack::apparmor
