// Situation-event detectors.
//
// Each detector watches the frame stream for one class of situation change
// and emits named situation events — the only thing that crosses into the
// kernel. Detectors are stateful (hysteresis, debouncing) so a noisy signal
// doesn't flood SACKfs with spurious events.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sds/sensors.h"

namespace sack::sds {

class Detector {
 public:
  virtual ~Detector() = default;
  virtual std::string_view detector_name() const = 0;
  // Zero or more situation events triggered by this frame.
  virtual std::vector<std::string> on_frame(const SensorFrame& frame) = 0;
  virtual void reset() {}
};

// Crash: fires "crash_detected" on the dedicated crash signal or an
// acceleration spike above `threshold_g`; fires "emergency_cleared" once the
// vehicle has been quiet (no crash indication, standstill) for `clear_ms`.
class CrashDetector final : public Detector {
 public:
  explicit CrashDetector(double threshold_g = 4.0,
                         std::int64_t clear_ms = 30'000)
      : threshold_g_(threshold_g), clear_ms_(clear_ms) {}

  std::string_view detector_name() const override { return "crash"; }
  std::vector<std::string> on_frame(const SensorFrame& frame) override;
  void reset() override;

  bool in_emergency() const { return in_emergency_; }

 private:
  double threshold_g_;
  std::int64_t clear_ms_;
  bool in_emergency_ = false;
  std::optional<std::int64_t> quiet_since_;
};

// Driving state: "start_driving" when speed exceeds `start_kmh` in a driving
// gear, "stop_driving" when the vehicle parks (gear park + standstill).
// Hysteresis between the two thresholds prevents chatter at walking pace.
class DrivingDetector final : public Detector {
 public:
  DrivingDetector(double start_kmh = 5.0, double stop_kmh = 1.0)
      : start_kmh_(start_kmh), stop_kmh_(stop_kmh) {}

  std::string_view detector_name() const override { return "driving"; }
  std::vector<std::string> on_frame(const SensorFrame& frame) override;
  void reset() override;

  bool driving() const { return driving_; }

 private:
  double start_kmh_;
  double stop_kmh_;
  bool driving_ = false;
};

// Speed band: "high_speed_entered"/"low_speed_entered" around a boundary
// with hysteresis — the Fig 3(b) experiment's two situations.
class SpeedBandDetector final : public Detector {
 public:
  explicit SpeedBandDetector(double boundary_kmh = 60.0,
                             double hysteresis_kmh = 5.0)
      : boundary_(boundary_kmh), hysteresis_(hysteresis_kmh) {}

  std::string_view detector_name() const override { return "speed_band"; }
  std::vector<std::string> on_frame(const SensorFrame& frame) override;
  void reset() override;

 private:
  double boundary_;
  double hysteresis_;
  bool high_ = false;
};

// Geofence: enters/leaves a named circular zone (depot, restricted area,
// school zone, ...). Location is one of the environmental attributes the
// paper calls out (§II-A3); a geofence turns raw coordinates into the
// situation events "entered_<zone>" / "left_<zone>".
class GeofenceDetector final : public Detector {
 public:
  GeofenceDetector(std::string zone_name, double center_lat,
                   double center_lon, double radius_deg)
      : zone_(std::move(zone_name)),
        lat_(center_lat),
        lon_(center_lon),
        radius_deg_(radius_deg) {}

  std::string_view detector_name() const override { return "geofence"; }
  std::vector<std::string> on_frame(const SensorFrame& frame) override;
  void reset() override;

  bool inside() const { return inside_; }

 private:
  std::string zone_;
  double lat_;
  double lon_;
  double radius_deg_;  // simple planar radius in degrees
  bool inside_ = false;
};

// Parking occupancy: when parked, distinguishes "parked_with_driver" and
// "parked_without_driver" (two of the paper's Fig 2 states).
class ParkingDetector final : public Detector {
 public:
  std::string_view detector_name() const override { return "parking"; }
  std::vector<std::string> on_frame(const SensorFrame& frame) override;
  void reset() override;

 private:
  enum class State : std::uint8_t { unknown, with_driver, without_driver, moving };
  State state_ = State::unknown;
};

}  // namespace sack::sds
