// Situation-event detectors.
//
// Each detector watches the frame stream for one class of situation change
// and emits named situation events — the only thing that crosses into the
// kernel. Detectors are stateful (hysteresis, debouncing) so a noisy signal
// doesn't flood SACKfs with spurious events.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sds/sensors.h"

namespace sack::sds {

class Detector {
 public:
  virtual ~Detector() = default;
  virtual std::string_view detector_name() const = 0;
  // Zero or more situation events triggered by this frame.
  virtual std::vector<std::string> on_frame(const SensorFrame& frame) = 0;
  virtual void reset() {}
  // Recovery resync: the events that reconstruct this detector's current
  // belief from the policy's initial state (replayed to the kernel after a
  // watchdog trip so the SSM re-converges). Empty means "initial state is
  // correct" — stateless or currently-neutral detectors return nothing.
  virtual std::vector<std::string> consensus() const { return {}; }
};

// Crash: fires "crash_detected" on the dedicated crash signal or an
// acceleration spike above `threshold_g`; fires "emergency_cleared" once the
// vehicle has been quiet (no crash indication, standstill) for `clear_ms`.
class CrashDetector final : public Detector {
 public:
  explicit CrashDetector(double threshold_g = 4.0,
                         std::int64_t clear_ms = 30'000)
      : threshold_g_(threshold_g), clear_ms_(clear_ms) {}

  std::string_view detector_name() const override { return "crash"; }
  std::vector<std::string> on_frame(const SensorFrame& frame) override;
  void reset() override;
  std::vector<std::string> consensus() const override;

  bool in_emergency() const { return in_emergency_; }

 private:
  double threshold_g_;
  std::int64_t clear_ms_;
  bool in_emergency_ = false;
  std::optional<std::int64_t> quiet_since_;
};

// Driving state: "start_driving" when speed exceeds `start_kmh` in a driving
// gear, "stop_driving" when the vehicle parks (gear park + standstill).
// Hysteresis between the two thresholds prevents chatter at walking pace.
class DrivingDetector final : public Detector {
 public:
  DrivingDetector(double start_kmh = 5.0, double stop_kmh = 1.0)
      : start_kmh_(start_kmh), stop_kmh_(stop_kmh) {}

  std::string_view detector_name() const override { return "driving"; }
  std::vector<std::string> on_frame(const SensorFrame& frame) override;
  void reset() override;
  std::vector<std::string> consensus() const override;

  bool driving() const { return driving_; }

 private:
  double start_kmh_;
  double stop_kmh_;
  bool driving_ = false;
};

// Speed band: "high_speed_entered"/"low_speed_entered" around a boundary
// with hysteresis — the Fig 3(b) experiment's two situations.
class SpeedBandDetector final : public Detector {
 public:
  explicit SpeedBandDetector(double boundary_kmh = 60.0,
                             double hysteresis_kmh = 5.0)
      : boundary_(boundary_kmh), hysteresis_(hysteresis_kmh) {}

  std::string_view detector_name() const override { return "speed_band"; }
  std::vector<std::string> on_frame(const SensorFrame& frame) override;
  void reset() override;
  std::vector<std::string> consensus() const override;

 private:
  double boundary_;
  double hysteresis_;
  bool high_ = false;
};

// Geofence: enters/leaves a named circular zone (depot, restricted area,
// school zone, ...). Location is one of the environmental attributes the
// paper calls out (§II-A3); a geofence turns raw coordinates into the
// situation events "entered_<zone>" / "left_<zone>".
class GeofenceDetector final : public Detector {
 public:
  GeofenceDetector(std::string zone_name, double center_lat,
                   double center_lon, double radius_deg)
      : zone_(std::move(zone_name)),
        lat_(center_lat),
        lon_(center_lon),
        radius_deg_(radius_deg) {}

  std::string_view detector_name() const override { return "geofence"; }
  std::vector<std::string> on_frame(const SensorFrame& frame) override;
  void reset() override;
  std::vector<std::string> consensus() const override;

  bool inside() const { return inside_; }

 private:
  std::string zone_;
  double lat_;
  double lon_;
  double radius_deg_;  // simple planar radius in degrees
  bool inside_ = false;
};

// Parking occupancy: when parked, distinguishes "parked_with_driver" and
// "parked_without_driver" (two of the paper's Fig 2 states).
class ParkingDetector final : public Detector {
 public:
  std::string_view detector_name() const override { return "parking"; }
  std::vector<std::string> on_frame(const SensorFrame& frame) override;
  void reset() override;
  std::vector<std::string> consensus() const override;

 private:
  enum class State : std::uint8_t { unknown, with_driver, without_driver, moving };
  State state_ = State::unknown;
};

// Sensor-health monitor: turns implausible telemetry into the situation
// events "sensor_fault" / "sensor_recovered" so a policy can react to a
// degraded perception layer (e.g. drop into a conservative state). Checks:
//   * out-of-range — speed/acceleration/coordinates beyond physical bounds
//   * dropout     — a gap in frame timestamps longer than `dropout_gap_ms`
//   * stuck value — a nonzero speed reading frozen bit-for-bit for
//                   `stuck_frames` consecutive frames (real sensors jitter)
// The fault is latched; recovery needs `recover_frames` consecutive healthy
// frames so a marginal sensor doesn't flap. Not part of the default set —
// policies must declare the events to use it.
class SensorHealthMonitor final : public Detector {
 public:
  explicit SensorHealthMonitor(std::int64_t dropout_gap_ms = 5'000,
                               int stuck_frames = 25, int recover_frames = 3)
      : dropout_gap_ms_(dropout_gap_ms),
        stuck_frames_(stuck_frames),
        recover_frames_(recover_frames) {}

  std::string_view detector_name() const override { return "sensor_health"; }
  std::vector<std::string> on_frame(const SensorFrame& frame) override;
  void reset() override;
  std::vector<std::string> consensus() const override;

  bool faulted() const { return faulted_; }

 private:
  std::int64_t dropout_gap_ms_;
  int stuck_frames_;
  int recover_frames_;
  bool faulted_ = false;
  bool have_prev_ = false;
  std::int64_t prev_time_ms_ = 0;
  double prev_speed_ = 0.0;
  double prev_accel_ = 0.0;
  int stuck_run_ = 0;
  int healthy_run_ = 0;
};

}  // namespace sack::sds
