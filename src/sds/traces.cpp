#include "sds/traces.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace sack::sds {

namespace {

// Small jitter so traces are not suspiciously smooth, but deterministic.
double jitter(Rng& rng, double magnitude) {
  return (rng.unit() - 0.5) * 2.0 * magnitude;
}

}  // namespace

Trace city_drive_trace(int duration_s, TraceOptions options) {
  Rng rng(options.seed);
  Trace trace;
  const std::int64_t total_ms = static_cast<std::int64_t>(duration_s) * 1000;
  double speed = 0.0;
  for (std::int64_t t = 0; t <= total_ms; t += options.frame_interval_ms) {
    SensorFrame f;
    f.time_ms = t;
    f.driver_present = true;
    double phase = static_cast<double>(t) / total_ms;
    if (phase < 0.05) {
      // Still parked.
      f.gear = Gear::park;
      speed = 0.0;
    } else if (phase > 0.95) {
      // Parking at the end.
      f.gear = Gear::park;
      speed = std::max(0.0, speed - 3.0);
    } else {
      f.gear = Gear::drive;
      // Stop-and-go: sinusoidal target speed with red-light stops.
      double target =
          30.0 + 25.0 * std::sin(phase * 20.0) + jitter(rng, 3.0);
      bool red_light = std::fmod(phase * 10.0, 1.0) < 0.12;
      if (red_light) target = 0.0;
      target = std::clamp(target, 0.0, 60.0);
      speed += std::clamp(target - speed, -4.0, 3.0);
    }
    f.speed_kmh = std::max(0.0, speed);
    f.accel_g = std::abs(jitter(rng, 0.15));
    f.latitude = 48.77 + phase * 0.01;
    f.longitude = 9.18 + phase * 0.02;
    trace.push_back(f);
  }
  return trace;
}

Trace highway_crash_trace(int crash_at_s, TraceOptions options) {
  Rng rng(options.seed);
  Trace trace;
  const std::int64_t crash_ms = static_cast<std::int64_t>(crash_at_s) * 1000;
  // Run long enough after the crash for the 30 s emergency-clear window.
  const std::int64_t total_ms = crash_ms + 45'000;
  double speed = 0.0;
  for (std::int64_t t = 0; t <= total_ms; t += options.frame_interval_ms) {
    SensorFrame f;
    f.time_ms = t;
    f.driver_present = true;
    if (t < crash_ms) {
      f.gear = Gear::drive;
      speed = std::min(120.0, speed + 2.0);
      f.speed_kmh = speed + jitter(rng, 1.5);
      f.accel_g = std::abs(jitter(rng, 0.1));
    } else if (t < crash_ms + 1000) {
      // The crash second: huge deceleration, crash signal latched.
      f.gear = Gear::drive;
      speed = std::max(0.0, speed - 40.0);
      f.speed_kmh = speed;
      f.accel_g = 8.0 + jitter(rng, 1.0);
      f.crash_signal = true;
    } else {
      // At rest after the crash.
      f.gear = Gear::park;
      speed = 0.0;
      f.speed_kmh = 0.0;
      f.accel_g = std::abs(jitter(rng, 0.05));
    }
    trace.push_back(f);
  }
  return trace;
}

Trace parking_handoff_trace(TraceOptions options) {
  Rng rng(options.seed);
  Trace trace;
  auto emit = [&](std::int64_t from_ms, std::int64_t to_ms, Gear gear,
                  double speed, bool driver) {
    for (std::int64_t t = from_ms; t < to_ms; t += options.frame_interval_ms) {
      SensorFrame f;
      f.time_ms = t;
      f.gear = gear;
      f.speed_kmh = speed + (speed > 0 ? jitter(rng, 1.0) : 0.0);
      f.accel_g = std::abs(jitter(rng, 0.05));
      f.driver_present = driver;
      trace.push_back(f);
    }
  };
  emit(0, 10'000, Gear::park, 0.0, true);        // parked, driver inside
  emit(10'000, 40'000, Gear::park, 0.0, false);  // driver leaves
  emit(40'000, 50'000, Gear::park, 0.0, true);   // driver returns
  emit(50'000, 80'000, Gear::drive, 30.0, true); // drives away
  emit(80'000, 90'000, Gear::park, 0.0, true);   // parks again
  return trace;
}

Trace speed_oscillation_trace(std::int64_t period_ms, int cycles,
                              TraceOptions options) {
  Trace trace;
  std::int64_t t = 0;
  for (int c = 0; c < cycles; ++c) {
    for (int half = 0; half < 2; ++half) {
      double speed = half == 0 ? 90.0 : 30.0;  // above / below the band
      for (std::int64_t el = 0; el < period_ms;
           el += options.frame_interval_ms) {
        SensorFrame f;
        f.time_ms = t;
        f.gear = Gear::drive;
        f.speed_kmh = speed;
        f.driver_present = true;
        trace.push_back(f);
        t += options.frame_interval_ms;
      }
    }
  }
  return trace;
}

}  // namespace sack::sds
