#include "sds/detectors.h"

namespace sack::sds {

std::vector<std::string> CrashDetector::on_frame(const SensorFrame& frame) {
  std::vector<std::string> events;
  bool crash_now = frame.crash_signal || frame.accel_g >= threshold_g_;
  if (!in_emergency_) {
    if (crash_now) {
      in_emergency_ = true;
      quiet_since_.reset();
      events.emplace_back("crash_detected");
    }
    return events;
  }
  // In emergency: wait for a sustained quiet period before clearing.
  bool quiet = !crash_now && frame.speed_kmh < 0.5;
  if (!quiet) {
    quiet_since_.reset();
    return events;
  }
  if (!quiet_since_) quiet_since_ = frame.time_ms;
  if (frame.time_ms - *quiet_since_ >= clear_ms_) {
    in_emergency_ = false;
    quiet_since_.reset();
    events.emplace_back("emergency_cleared");
  }
  return events;
}

void CrashDetector::reset() {
  in_emergency_ = false;
  quiet_since_.reset();
}

std::vector<std::string> CrashDetector::consensus() const {
  if (in_emergency_) return {"crash_detected"};
  return {};
}

std::vector<std::string> DrivingDetector::on_frame(const SensorFrame& frame) {
  std::vector<std::string> events;
  if (!driving_) {
    if (frame.speed_kmh >= start_kmh_ &&
        (frame.gear == Gear::drive || frame.gear == Gear::reverse)) {
      driving_ = true;
      events.emplace_back("start_driving");
    }
  } else {
    if (frame.speed_kmh <= stop_kmh_ && frame.gear == Gear::park) {
      driving_ = false;
      events.emplace_back("stop_driving");
    }
  }
  return events;
}

void DrivingDetector::reset() { driving_ = false; }

std::vector<std::string> DrivingDetector::consensus() const {
  if (driving_) return {"start_driving"};
  return {};
}

std::vector<std::string> SpeedBandDetector::on_frame(
    const SensorFrame& frame) {
  std::vector<std::string> events;
  if (!high_) {
    if (frame.speed_kmh >= boundary_ + hysteresis_) {
      high_ = true;
      events.emplace_back("high_speed_entered");
    }
  } else {
    if (frame.speed_kmh <= boundary_ - hysteresis_) {
      high_ = false;
      events.emplace_back("low_speed_entered");
    }
  }
  return events;
}

void SpeedBandDetector::reset() { high_ = false; }

std::vector<std::string> SpeedBandDetector::consensus() const {
  if (high_) return {"high_speed_entered"};
  return {};
}

std::vector<std::string> GeofenceDetector::on_frame(const SensorFrame& frame) {
  std::vector<std::string> events;
  double dlat = frame.latitude - lat_;
  double dlon = frame.longitude - lon_;
  bool now_inside = dlat * dlat + dlon * dlon <= radius_deg_ * radius_deg_;
  if (now_inside != inside_) {
    inside_ = now_inside;
    events.emplace_back((now_inside ? "entered_" : "left_") + zone_);
  }
  return events;
}

void GeofenceDetector::reset() { inside_ = false; }

std::vector<std::string> GeofenceDetector::consensus() const {
  if (inside_) return {"entered_" + zone_};
  return {};
}

std::vector<std::string> ParkingDetector::on_frame(const SensorFrame& frame) {
  std::vector<std::string> events;
  State next;
  if (frame.gear == Gear::park && frame.speed_kmh < 0.5) {
    next = frame.driver_present ? State::with_driver : State::without_driver;
  } else {
    next = State::moving;
  }
  if (next != state_) {
    if (next == State::with_driver) events.emplace_back("parked_with_driver");
    if (next == State::without_driver)
      events.emplace_back("parked_without_driver");
    state_ = next;
  }
  return events;
}

void ParkingDetector::reset() { state_ = State::unknown; }

std::vector<std::string> ParkingDetector::consensus() const {
  if (state_ == State::with_driver) return {"parked_with_driver"};
  if (state_ == State::without_driver) return {"parked_without_driver"};
  return {};  // moving is the driving detector's consensus to restate
}

std::vector<std::string> SensorHealthMonitor::on_frame(
    const SensorFrame& frame) {
  std::vector<std::string> events;

  bool out_of_range = frame.speed_kmh < 0.0 || frame.speed_kmh > 400.0 ||
                      frame.accel_g < 0.0 || frame.accel_g > 50.0 ||
                      frame.latitude < -90.0 || frame.latitude > 90.0 ||
                      frame.longitude < -180.0 || frame.longitude > 180.0;

  bool dropout = have_prev_ && frame.time_ms - prev_time_ms_ > dropout_gap_ms_;

  bool stuck = false;
  if (have_prev_ && frame.speed_kmh > 0.0 &&
      frame.speed_kmh == prev_speed_ && frame.accel_g == prev_accel_) {
    if (++stuck_run_ >= stuck_frames_) stuck = true;
  } else {
    stuck_run_ = 0;
  }

  have_prev_ = true;
  prev_time_ms_ = frame.time_ms;
  prev_speed_ = frame.speed_kmh;
  prev_accel_ = frame.accel_g;

  if (out_of_range || dropout || stuck) {
    healthy_run_ = 0;
    if (!faulted_) {
      faulted_ = true;
      events.emplace_back("sensor_fault");
    }
    return events;
  }
  if (faulted_ && ++healthy_run_ >= recover_frames_) {
    faulted_ = false;
    healthy_run_ = 0;
    stuck_run_ = 0;
    events.emplace_back("sensor_recovered");
  }
  return events;
}

void SensorHealthMonitor::reset() {
  faulted_ = false;
  have_prev_ = false;
  stuck_run_ = 0;
  healthy_run_ = 0;
}

std::vector<std::string> SensorHealthMonitor::consensus() const {
  if (faulted_) return {"sensor_fault"};
  return {};
}

}  // namespace sack::sds
