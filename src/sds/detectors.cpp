#include "sds/detectors.h"

namespace sack::sds {

std::vector<std::string> CrashDetector::on_frame(const SensorFrame& frame) {
  std::vector<std::string> events;
  bool crash_now = frame.crash_signal || frame.accel_g >= threshold_g_;
  if (!in_emergency_) {
    if (crash_now) {
      in_emergency_ = true;
      quiet_since_.reset();
      events.emplace_back("crash_detected");
    }
    return events;
  }
  // In emergency: wait for a sustained quiet period before clearing.
  bool quiet = !crash_now && frame.speed_kmh < 0.5;
  if (!quiet) {
    quiet_since_.reset();
    return events;
  }
  if (!quiet_since_) quiet_since_ = frame.time_ms;
  if (frame.time_ms - *quiet_since_ >= clear_ms_) {
    in_emergency_ = false;
    quiet_since_.reset();
    events.emplace_back("emergency_cleared");
  }
  return events;
}

void CrashDetector::reset() {
  in_emergency_ = false;
  quiet_since_.reset();
}

std::vector<std::string> DrivingDetector::on_frame(const SensorFrame& frame) {
  std::vector<std::string> events;
  if (!driving_) {
    if (frame.speed_kmh >= start_kmh_ &&
        (frame.gear == Gear::drive || frame.gear == Gear::reverse)) {
      driving_ = true;
      events.emplace_back("start_driving");
    }
  } else {
    if (frame.speed_kmh <= stop_kmh_ && frame.gear == Gear::park) {
      driving_ = false;
      events.emplace_back("stop_driving");
    }
  }
  return events;
}

void DrivingDetector::reset() { driving_ = false; }

std::vector<std::string> SpeedBandDetector::on_frame(
    const SensorFrame& frame) {
  std::vector<std::string> events;
  if (!high_) {
    if (frame.speed_kmh >= boundary_ + hysteresis_) {
      high_ = true;
      events.emplace_back("high_speed_entered");
    }
  } else {
    if (frame.speed_kmh <= boundary_ - hysteresis_) {
      high_ = false;
      events.emplace_back("low_speed_entered");
    }
  }
  return events;
}

void SpeedBandDetector::reset() { high_ = false; }

std::vector<std::string> GeofenceDetector::on_frame(const SensorFrame& frame) {
  std::vector<std::string> events;
  double dlat = frame.latitude - lat_;
  double dlon = frame.longitude - lon_;
  bool now_inside = dlat * dlat + dlon * dlon <= radius_deg_ * radius_deg_;
  if (now_inside != inside_) {
    inside_ = now_inside;
    events.emplace_back((now_inside ? "entered_" : "left_") + zone_);
  }
  return events;
}

void GeofenceDetector::reset() { inside_ = false; }

std::vector<std::string> ParkingDetector::on_frame(const SensorFrame& frame) {
  std::vector<std::string> events;
  State next;
  if (frame.gear == Gear::park && frame.speed_kmh < 0.5) {
    next = frame.driver_present ? State::with_driver : State::without_driver;
  } else {
    next = State::moving;
  }
  if (next != state_) {
    if (next == State::with_driver) events.emplace_back("parked_with_driver");
    if (next == State::without_driver)
      events.emplace_back("parked_without_driver");
    state_ = next;
  }
  return events;
}

void ParkingDetector::reset() { state_ = State::unknown; }

}  // namespace sack::sds
