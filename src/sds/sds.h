// SituationDetectionService (SDS): the user-space half of SACK (§III-B).
//
// Monitors environment information (sensor frames), detects situation events,
// and transmits *only events* — not raw telemetry — to the kernel by writing
// /sys/kernel/security/SACK/events. This is the paper's separation of
// situation tracking (user space) from access-control enforcement (kernel).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/process.h"
#include "sds/detectors.h"
#include "sds/sensors.h"
#include "util/metrics.h"

namespace sack::sds {

class SituationDetectionService {
 public:
  // `process` must be privileged enough to write the SACKfs events file
  // (the SDS is a root daemon in the paper's deployment).
  explicit SituationDetectionService(kernel::Process process);

  void add_detector(std::unique_ptr<Detector> detector);

  // Convenience: the standard CAV detector set (crash, driving, speed band,
  // parking).
  void add_default_detectors();

  // Feeds one frame through every detector and transmits resulting events.
  // Returns the events emitted for this frame.
  std::vector<std::string> feed(const SensorFrame& frame);

  // Plays a whole trace; returns all events in order.
  std::vector<std::string> play(const Trace& trace);

  // Sends one event directly (used to emulate events in the case studies,
  // matching the paper's pseudo-file interface methodology).
  Result<void> send_event(std::string_view event);

  void reset_detectors();

  // Flood protection: suppress a repeat of the *same* event name within
  // `ms` of scenario time (0 = off). A flapping detector (or a compromised
  // sensor trying to thrash the kernel SSM) is throttled here, before the
  // kernel ever sees the traffic.
  void set_min_event_interval_ms(std::int64_t ms) { min_interval_ms_ = ms; }

  std::uint64_t events_sent() const { return events_sent_; }
  std::uint64_t send_failures() const { return send_failures_; }
  std::uint64_t events_suppressed() const { return events_suppressed_; }

  // Transmit latency (the write(2) into SACKfs, i.e. the paper's
  // low-latency channel) and the counters above, as JSON — the user-space
  // half of the pipeline's observability.
  const util::LatencyHistogram& send_latency() const { return send_ns_; }
  std::string metrics_json() const;

  static constexpr std::string_view kEventsPath =
      "/sys/kernel/security/SACK/events";

 private:
  kernel::Process process_;
  std::vector<std::unique_ptr<Detector>> detectors_;
  std::int64_t min_interval_ms_ = 0;
  std::map<std::string, std::int64_t, std::less<>> last_sent_ms_;
  std::uint64_t events_sent_ = 0;
  std::uint64_t send_failures_ = 0;
  std::uint64_t events_suppressed_ = 0;
  util::LatencyHistogram send_ns_;
};

}  // namespace sack::sds
