// SituationDetectionService (SDS): the user-space half of SACK (§III-B).
//
// Monitors environment information (sensor frames), detects situation events,
// and transmits *only events* — not raw telemetry — to the kernel by writing
// /sys/kernel/security/SACK/events. This is the paper's separation of
// situation tracking (user space) from access-control enforcement (kernel).
//
// Resilience layer (beyond the paper):
//   * Every frame also writes a liveness beacon to SACKfs/heartbeat and
//     polls it for the kernel watchdog's resync_pending flag; when set, the
//     SDS performs the recovery handshake ("resync" + detector consensus
//     replay) so the SSM re-converges after a watchdog trip.
//   * Event writes carry monotonic sequence stamps ("seq=<n> <event>") so a
//     retried write whose success report was lost can never
//     double-transition the kernel SSM.
//   * Transient transmit errors (ENOSPC/EAGAIN/EIO/...) land in a bounded
//     retry queue with exponential backoff + deterministic jitter; permanent
//     errors (EACCES/EINVAL/ENOENT) are not retried. Nothing leaves the
//     queue unaccounted: delivered, coalesced, evicted, or exhausted.
//   * A throwing detector is isolated (the frame continues through the
//     others) and quarantined after repeated consecutive faults.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kernel/process.h"
#include "sds/detectors.h"
#include "sds/sensors.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace sack::sds {

// Delivery-aware outcome of one frame. `emitted` is what the detectors
// produced (post rate-limit); `delivered` is the subset (plus any drained
// retries) confirmed written into SACKfs — a failed transmit is visible as
// the difference, not silently reported as sent.
struct FeedResult {
  std::vector<std::string> emitted;
  std::vector<std::string> delivered;
  std::size_t queued_for_retry = 0;
};

class SituationDetectionService {
 public:
  // `process` must be privileged enough to write the SACKfs events file
  // (the SDS is a root daemon in the paper's deployment).
  explicit SituationDetectionService(kernel::Process process);

  void add_detector(std::unique_ptr<Detector> detector);

  // Convenience: the standard CAV detector set (crash, driving, speed band,
  // parking). SensorHealthMonitor is deliberately not included — its events
  // are only useful to policies that declare them.
  void add_default_detectors();

  // Feeds one frame through every detector and transmits resulting events.
  FeedResult feed(const SensorFrame& frame);

  // Batched transport: runs every frame through the detector pipeline but
  // coalesces all emitted events into ONE seq-stamped multi-line SACKfs
  // write (plus one heartbeat, at the last frame's time) instead of a write
  // per event per frame. The kernel's events file already parses multi-line
  // payloads with per-line seq replay protection, so delivery semantics
  // match the unbatched path; on a transient write failure every event in
  // the payload lands in the retry queue individually. This is the fleet
  // layer's hot path — 10k vehicles at 10 Hz cannot afford a syscall per
  // event.
  FeedResult feed_batch(std::span<const SensorFrame> frames);

  // Plays a whole trace; returns all *delivered* events in order.
  std::vector<std::string> play(const Trace& trace);

  // Sends one event directly (used to emulate events in the case studies,
  // matching the paper's pseudo-file interface methodology). Raw channel:
  // no sequence stamp, no retry.
  Result<void> send_event(std::string_view event);

  // Resets detector state AND the transport state keyed to it: rate-limiter
  // stamps, the retry queue (evictions accounted), delayed frames, and
  // detector quarantine — the "SDS restart" hook. The heartbeat beacon is
  // re-armed too.
  void reset_detectors();

  // Flood protection: suppress a repeat of the *same* event name within
  // `ms` of scenario time (0 = off). A flapping detector (or a compromised
  // sensor trying to thrash the kernel SSM) is throttled here, before the
  // kernel ever sees the traffic.
  void set_min_event_interval_ms(std::int64_t ms) { min_interval_ms_ = ms; }

  // Retry tuning: first retry after `base_ms` (doubling each attempt, plus
  // jitter in [0, base_ms/2]); an event is abandoned after `max_attempts`.
  void set_retry_policy(std::int64_t base_ms, int max_attempts) {
    retry_base_ms_ = base_ms;
    retry_max_attempts_ = max_attempts;
  }
  void set_heartbeat_enabled(bool on) { heartbeat_enabled_ = on; }

  std::uint64_t events_sent() const { return events_sent_; }
  std::uint64_t batch_writes() const { return batch_writes_; }
  std::uint64_t events_batched() const { return events_batched_; }
  std::uint64_t send_failures() const { return send_failures_; }
  std::uint64_t events_suppressed() const { return events_suppressed_; }
  std::uint64_t warns_suppressed() const { return warns_suppressed_; }

  std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }
  std::uint64_t heartbeat_failures() const { return heartbeat_failures_; }
  std::uint64_t resyncs_sent() const { return resyncs_sent_; }

  std::size_t retry_depth() const {
    util::MutexLock lock(retry_mu_);
    return retry_queue_.size();
  }
  std::uint64_t retry_enqueued() const { return retry_enqueued_; }
  std::uint64_t retry_succeeded() const { return retry_succeeded_; }
  std::uint64_t retry_coalesced() const { return retry_coalesced_; }
  std::uint64_t retry_dropped() const { return retry_dropped_; }
  std::uint64_t retry_exhausted() const { return retry_exhausted_; }

  std::uint64_t detector_faults() const { return detector_faults_; }
  std::uint64_t detectors_quarantined() const {
    return detectors_quarantined_;
  }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_delayed() const { return frames_delayed_; }

  // Transmit latency (the write(2) into SACKfs, i.e. the paper's
  // low-latency channel) and the counters above, as JSON — the user-space
  // half of the pipeline's observability.
  const util::LatencyHistogram& send_latency() const { return send_ns_; }
  std::string metrics_json() const;

  static constexpr std::string_view kEventsPath =
      "/sys/kernel/security/SACK/events";
  static constexpr std::string_view kHeartbeatPath =
      "/sys/kernel/security/SACK/heartbeat";

  // A detector is quarantined after this many consecutive faults.
  static constexpr int kQuarantineAfter = 3;
  // Bounds: oldest entries are evicted (with accounting) beyond these.
  static constexpr std::size_t kMaxRetryQueue = 64;
  static constexpr std::size_t kMaxRateLimitEntries = 512;

 private:
  struct PendingEvent {
    std::string name;
    std::uint64_t seq = 0;
    int attempts = 0;
    std::int64_t not_before_ms = 0;
  };

  void process_frame(const SensorFrame& frame, FeedResult& result);
  // Detector half of process_frame: runs the frame through every live
  // detector, applies the rate limiter, assigns sequence stamps, and
  // collects the events into `out` without transmitting.
  void detect_events(const SensorFrame& frame, FeedResult& result,
                     std::vector<PendingEvent>& out);
  // Transmits a collected batch as one multi-line write; on transient
  // failure every event is queued for retry individually.
  void flush_batch(std::vector<PendingEvent>& batch, std::int64_t now_ms,
                   FeedResult& result);
  void heartbeat_and_poll(std::int64_t frame_ms);
  void resync(std::int64_t frame_ms);
  void drain_retries(std::int64_t now_ms, FeedResult& result);
  void enqueue_retry(std::string name, std::uint64_t seq, int attempts,
                     std::int64_t now_ms);
  void stamp_rate_limiter(const std::string& event, std::int64_t frame_ms);
  // Shared transmit path: one SACKfs write + latency + counters + throttled
  // failure logging. `line` must end in '\n'.
  Result<void> transmit_line(const std::string& line, std::string_view label);
  Result<void> transmit(const std::string& event, std::uint64_t seq);
  static bool transient_error(Errno e);
  std::int64_t backoff_ms(int attempts);

  kernel::Process process_;
  std::vector<std::unique_ptr<Detector>> detectors_;
  std::vector<int> consecutive_faults_;
  std::vector<bool> quarantined_;
  std::int64_t min_interval_ms_ = 0;
  std::map<std::string, std::int64_t, std::less<>> last_sent_ms_;

  std::uint64_t next_seq_ = 1;
  // The retry queue is the one piece of SDS state a supervising control
  // thread may touch concurrently with the feed path (reset_detectors() /
  // retry_depth() / metrics_json() from a monitoring thread), so it is
  // lock-protected and capability-annotated; the rest of the service is
  // single-threaded by contract.
  mutable util::Mutex retry_mu_;
  std::deque<PendingEvent> retry_queue_ SACK_GUARDED_BY(retry_mu_);
  std::int64_t retry_base_ms_ = 50;
  int retry_max_attempts_ = 5;
  Rng rng_{0x5d5'fa11'baccULL};  // deterministic backoff jitter

  bool heartbeat_enabled_ = true;
  std::vector<SensorFrame> delayed_frames_;

  std::uint64_t events_sent_ = 0;
  std::uint64_t batch_writes_ = 0;
  std::uint64_t events_batched_ = 0;
  std::uint64_t send_failures_ = 0;
  std::uint64_t events_suppressed_ = 0;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t heartbeat_failures_ = 0;
  std::uint64_t resyncs_sent_ = 0;
  std::uint64_t retry_enqueued_ = 0;
  std::uint64_t retry_succeeded_ = 0;
  std::uint64_t retry_coalesced_ = 0;
  std::uint64_t retry_dropped_ = 0;
  std::uint64_t retry_exhausted_ = 0;
  std::uint64_t detector_faults_ = 0;
  std::uint64_t detectors_quarantined_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_delayed_ = 0;
  // Log hygiene: only the first transmit failure of a streak is logged; the
  // rest are counted and summarized when a transmit succeeds again.
  std::uint64_t failure_streak_ = 0;
  std::uint64_t warns_suppressed_run_ = 0;
  std::uint64_t warns_suppressed_ = 0;
  util::LatencyHistogram send_ns_;
};

}  // namespace sack::sds
