#include "sds/sds.h"

#include <algorithm>
#include <stdexcept>

#include "util/fault.h"
#include "util/log.h"

namespace sack::sds {

SituationDetectionService::SituationDetectionService(kernel::Process process)
    : process_(process) {}

void SituationDetectionService::add_detector(
    std::unique_ptr<Detector> detector) {
  detectors_.push_back(std::move(detector));
  consecutive_faults_.push_back(0);
  quarantined_.push_back(false);
}

void SituationDetectionService::add_default_detectors() {
  add_detector(std::make_unique<CrashDetector>());
  add_detector(std::make_unique<DrivingDetector>());
  add_detector(std::make_unique<SpeedBandDetector>());
  add_detector(std::make_unique<ParkingDetector>());
}

bool SituationDetectionService::transient_error(Errno e) {
  // Retry only conditions that can clear on their own. EACCES/EINVAL/ENOENT
  // are configuration problems — retrying them would just repeat the
  // failure (and, for EINVAL, possibly replay an event the kernel already
  // rejected for cause).
  switch (e) {
    case Errno::enospc:
    case Errno::eagain:
    case Errno::eio:
    case Errno::eintr:
    case Errno::ebusy:
    case Errno::enomem:
      return true;
    default:
      return false;
  }
}

std::int64_t SituationDetectionService::backoff_ms(int attempts) {
  // base * 2^(attempts-1) plus deterministic jitter in [0, base/2] so a
  // fleet of queued events doesn't retry in lockstep.
  std::int64_t delay = retry_base_ms_;
  for (int i = 1; i < attempts && delay < 60'000; ++i) delay *= 2;
  return delay + static_cast<std::int64_t>(
                     rng_.below(static_cast<std::uint64_t>(retry_base_ms_) / 2 +
                                1));
}

Result<void> SituationDetectionService::transmit_line(const std::string& line,
                                                      std::string_view label) {
  const std::uint64_t t_start = monotonic_ns();
  auto rc = process_.write_existing(kEventsPath, line);
  send_ns_.record(monotonic_ns() - t_start);
  if (rc.ok()) {
    ++events_sent_;
    if (warns_suppressed_run_ > 0) {
      log_warn("sds: transmit recovered; suppressed ", warns_suppressed_run_,
               " repeated failure warnings");
      warns_suppressed_run_ = 0;
    }
    failure_streak_ = 0;
  } else {
    ++send_failures_;
    // Only the first failure of a streak is worth a log line: a dead SACKfs
    // at a 10 Hz frame rate would otherwise flood the log at exactly the
    // moment an operator needs to read it.
    if (++failure_streak_ == 1) {
      log_warn("sds: failed to transmit event '", label, "': ",
               errno_name(rc.error()));
    } else {
      ++warns_suppressed_run_;
      ++warns_suppressed_;
    }
  }
  return rc;
}

Result<void> SituationDetectionService::transmit(const std::string& event,
                                                 std::uint64_t seq) {
  return transmit_line("seq=" + std::to_string(seq) + " " + event + "\n",
                       event);
}

Result<void> SituationDetectionService::send_event(std::string_view event) {
  return transmit_line(std::string(event) + "\n", event);
}

void SituationDetectionService::stamp_rate_limiter(const std::string& event,
                                                   std::int64_t frame_ms) {
  if (min_interval_ms_ <= 0) return;
  if (last_sent_ms_.size() >= kMaxRateLimitEntries &&
      !last_sent_ms_.contains(event)) {
    // Bounded: evict the stalest stamp. An unbounded map keyed by event
    // names is an amplification target for a compromised detector.
    auto oldest = std::min_element(
        last_sent_ms_.begin(), last_sent_ms_.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    last_sent_ms_.erase(oldest);
  }
  last_sent_ms_[event] = frame_ms;
}

void SituationDetectionService::enqueue_retry(std::string name,
                                              std::uint64_t seq, int attempts,
                                              std::int64_t now_ms) {
  util::MutexLock lock(retry_mu_);
  // Coalesce by name: a newer emission supersedes the queued one (the
  // sequence stamp advances so the kernel treats the retry as current).
  for (auto& p : retry_queue_) {
    if (p.name == name) {
      p.seq = std::max(p.seq, seq);
      ++retry_coalesced_;
      return;
    }
  }
  if (retry_queue_.size() >= kMaxRetryQueue) {
    log_warn("sds: retry queue full; dropping oldest queued event '",
             retry_queue_.front().name, "'");
    retry_queue_.pop_front();
    ++retry_dropped_;
  }
  PendingEvent p;
  p.name = std::move(name);
  p.seq = seq;
  p.attempts = attempts;
  p.not_before_ms = now_ms + backoff_ms(attempts);
  retry_queue_.push_back(std::move(p));
  ++retry_enqueued_;
}

void SituationDetectionService::drain_retries(std::int64_t now_ms,
                                              FeedResult& result) {
  util::MutexLock lock(retry_mu_);
  if (retry_queue_.empty()) return;
  std::deque<PendingEvent> keep;
  while (!retry_queue_.empty()) {
    PendingEvent p = std::move(retry_queue_.front());
    retry_queue_.pop_front();
    if (p.not_before_ms > now_ms) {
      keep.push_back(std::move(p));
      continue;
    }
    auto rc = transmit(p.name, p.seq);
    if (rc.ok()) {
      ++retry_succeeded_;
      result.delivered.push_back(std::move(p.name));
      continue;
    }
    if (!transient_error(rc.error()) || ++p.attempts > retry_max_attempts_) {
      ++retry_exhausted_;
      log_warn("sds: giving up on queued event '", p.name, "' after ",
               p.attempts, " attempts (", errno_name(rc.error()), ")");
      continue;
    }
    p.not_before_ms = now_ms + backoff_ms(p.attempts);
    keep.push_back(std::move(p));
  }
  retry_queue_ = std::move(keep);
}

void SituationDetectionService::heartbeat_and_poll(std::int64_t frame_ms) {
  if (!heartbeat_enabled_) return;
  auto& fault = util::FaultInjector::instance();
  // Fault site "sds.heartbeat.drop": the beacon write is skipped as if the
  // daemon missed its frame deadline — the kernel watchdog sees silence.
  if (!fault.fire("sds.heartbeat.drop")) {
    auto rc = process_.write_existing(kHeartbeatPath, "alive\n");
    if (rc.ok()) {
      ++heartbeats_sent_;
    } else {
      ++heartbeat_failures_;
      if (rc.error() == Errno::enoent || rc.error() == Errno::eacces) {
        // No SACK in this kernel (or we lack the privilege): beaconing can
        // never succeed, so stop hammering the path. reset_detectors()
        // (the restart hook) re-arms it.
        heartbeat_enabled_ = false;
        log_info("sds: heartbeat disabled (", errno_name(rc.error()), ")");
        return;
      }
    }
  }
  // Recovery handshake: the kernel latches resync_pending after a watchdog
  // trip; reading the heartbeat file is how the SDS learns it must replay.
  auto status = process_.read_file(kHeartbeatPath);
  if (status.ok() && status->find("resync_pending=1") != std::string::npos)
    resync(frame_ms);
}

void SituationDetectionService::resync(std::int64_t frame_ms) {
  auto rc = process_.write_existing(kHeartbeatPath, "resync\n");
  if (!rc.ok()) {
    ++heartbeat_failures_;
    return;
  }
  ++resyncs_sent_;
  {
    // Queued retries predate the trip; the consensus replay below supersedes
    // them (account them as dropped, not lost silently).
    util::MutexLock lock(retry_mu_);
    retry_dropped_ += retry_queue_.size();
    retry_queue_.clear();
  }
  std::size_t replayed = 0;
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    if (quarantined_[i]) continue;
    for (const auto& event : detectors_[i]->consensus()) {
      const std::uint64_t seq = next_seq_++;
      auto sent = transmit(event, seq);
      if (sent.ok())
        ++replayed;
      else if (transient_error(sent.error()))
        enqueue_retry(event, seq, 1, frame_ms);
    }
  }
  log_info("sds: resynced with kernel (replayed ", replayed,
           " consensus events)");
}

FeedResult SituationDetectionService::feed_batch(
    std::span<const SensorFrame> frames) {
  FeedResult result;
  if (frames.empty()) return result;
  auto& fault = util::FaultInjector::instance();
  const std::int64_t now_ms = frames.back().time_ms;
  std::vector<PendingEvent> batch;
  for (const auto& frame : frames) {
    // Frame-level fault sites keep their per-frame semantics in a batch.
    if (fault.fire("sds.frame.drop")) {
      ++frames_dropped_;
      continue;
    }
    if (fault.fire("sds.frame.delay")) {
      ++frames_delayed_;
      delayed_frames_.push_back(frame);
      continue;
    }
    if (!delayed_frames_.empty()) {
      auto backlog = std::move(delayed_frames_);
      delayed_frames_.clear();
      for (const auto& f : backlog) detect_events(f, result, batch);
    }
    detect_events(frame, result, batch);
  }
  // One beacon and one retry sweep per batch, at batch-end time: the
  // whole point is a bounded number of SACKfs writes per fleet tick.
  heartbeat_and_poll(now_ms);
  drain_retries(now_ms, result);
  flush_batch(batch, now_ms, result);
  return result;
}

void SituationDetectionService::flush_batch(std::vector<PendingEvent>& batch,
                                            std::int64_t now_ms,
                                            FeedResult& result) {
  if (batch.empty()) return;
  std::string payload;
  for (const auto& p : batch)
    payload += "seq=" + std::to_string(p.seq) + " " + p.name + "\n";
  auto rc = transmit_line(payload,
                          "batch(" + std::to_string(batch.size()) + ")");
  if (rc.ok()) {
    // transmit_line counted one write; keep events_sent_ meaning "events
    // delivered" as in the unbatched path.
    events_sent_ += batch.size() - 1;
    ++batch_writes_;
    events_batched_ += batch.size();
    for (auto& p : batch) {
      stamp_rate_limiter(p.name, now_ms);
      result.delivered.push_back(std::move(p.name));
    }
  } else if (transient_error(rc.error())) {
    // The payload is atomic from user space but the events are not: each
    // re-enters the retry queue on its own (coalescing by name as usual).
    for (auto& p : batch) {
      enqueue_retry(std::move(p.name), p.seq, 1, now_ms);
      ++result.queued_for_retry;
    }
  }
  batch.clear();
}

FeedResult SituationDetectionService::feed(const SensorFrame& frame) {
  FeedResult result;
  auto& fault = util::FaultInjector::instance();
  // Frame-level fault sites: the SDS process was starved this frame. A
  // dropped frame vanishes; a delayed frame is processed (in order) at the
  // start of the next feed — either way no heartbeat goes out, which is
  // exactly what the kernel watchdog is for.
  if (fault.fire("sds.frame.drop")) {
    ++frames_dropped_;
    return result;
  }
  if (fault.fire("sds.frame.delay")) {
    ++frames_delayed_;
    delayed_frames_.push_back(frame);
    return result;
  }
  if (!delayed_frames_.empty()) {
    auto backlog = std::move(delayed_frames_);
    delayed_frames_.clear();
    for (const auto& f : backlog) process_frame(f, result);
  }
  process_frame(frame, result);
  return result;
}

void SituationDetectionService::process_frame(const SensorFrame& frame,
                                              FeedResult& result) {
  heartbeat_and_poll(frame.time_ms);
  drain_retries(frame.time_ms, result);
  std::vector<PendingEvent> events;
  detect_events(frame, result, events);
  for (auto& p : events) {
    auto rc = transmit(p.name, p.seq);
    if (rc.ok()) {
      // Stamp the rate limiter only after a *successful* transmit: a
      // failed write must leave the window open so the event is retried
      // on the next frame instead of being silently lost for
      // min_interval_ms_.
      stamp_rate_limiter(p.name, frame.time_ms);
      result.delivered.push_back(std::move(p.name));
    } else if (transient_error(rc.error())) {
      enqueue_retry(std::move(p.name), p.seq, 1, frame.time_ms);
      ++result.queued_for_retry;
    }
  }
}

void SituationDetectionService::detect_events(const SensorFrame& frame,
                                              FeedResult& result,
                                              std::vector<PendingEvent>& out) {
  auto& fault = util::FaultInjector::instance();
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    if (quarantined_[i]) continue;
    Detector& detector = *detectors_[i];
    std::vector<std::string> events;
    // Per-detector fault isolation: one buggy (or injected-faulty) detector
    // must not take down the frame for the others.
    try {
      if (fault.fire("sds.detector.throw", detector.detector_name()))
        throw std::runtime_error("injected detector fault");
      events = detector.on_frame(frame);
      consecutive_faults_[i] = 0;
    } catch (const std::exception& e) {
      ++detector_faults_;
      if (++consecutive_faults_[i] >= kQuarantineAfter) {
        quarantined_[i] = true;
        ++detectors_quarantined_;
        log_warn("sds: detector '", detector.detector_name(),
                 "' quarantined after ", consecutive_faults_[i],
                 " consecutive faults (", e.what(), ")");
      } else {
        log_warn("sds: detector '", detector.detector_name(),
                 "' failed: ", e.what());
      }
      continue;
    }
    for (auto& event : events) {
      if (min_interval_ms_ > 0) {
        auto it = last_sent_ms_.find(event);
        if (it != last_sent_ms_.end() &&
            frame.time_ms - it->second < min_interval_ms_) {
          ++events_suppressed_;
          continue;
        }
      }
      result.emitted.push_back(event);
      PendingEvent p;
      p.name = std::move(event);
      p.seq = next_seq_++;
      out.push_back(std::move(p));
    }
  }
}

std::string SituationDetectionService::metrics_json() const {
  return "{\"events_sent\": " + std::to_string(events_sent_) +
         ", \"batch_writes\": " + std::to_string(batch_writes_) +
         ", \"events_batched\": " + std::to_string(events_batched_) +
         ", \"send_failures\": " + std::to_string(send_failures_) +
         ", \"events_suppressed\": " + std::to_string(events_suppressed_) +
         ", \"warns_suppressed\": " + std::to_string(warns_suppressed_) +
         ", \"heartbeats_sent\": " + std::to_string(heartbeats_sent_) +
         ", \"heartbeat_failures\": " + std::to_string(heartbeat_failures_) +
         ", \"resyncs_sent\": " + std::to_string(resyncs_sent_) +
         ", \"retry\": {\"depth\": " + std::to_string(retry_depth()) +
         ", \"enqueued\": " + std::to_string(retry_enqueued_) +
         ", \"succeeded\": " + std::to_string(retry_succeeded_) +
         ", \"coalesced\": " + std::to_string(retry_coalesced_) +
         ", \"dropped\": " + std::to_string(retry_dropped_) +
         ", \"exhausted\": " + std::to_string(retry_exhausted_) + "}" +
         ", \"detector_faults\": " + std::to_string(detector_faults_) +
         ", \"detectors_quarantined\": " +
         std::to_string(detectors_quarantined_) +
         ", \"frames_dropped\": " + std::to_string(frames_dropped_) +
         ", \"frames_delayed\": " + std::to_string(frames_delayed_) +
         ", \"send_ns\": " + send_ns_.json() + "}";
}

std::vector<std::string> SituationDetectionService::play(const Trace& trace) {
  std::vector<std::string> all;
  for (const auto& frame : trace) {
    auto result = feed(frame);
    all.insert(all.end(), result.delivered.begin(), result.delivered.end());
  }
  return all;
}

void SituationDetectionService::reset_detectors() {
  for (auto& d : detectors_) d->reset();
  // Regression fix: the rate limiter must forget pre-reset timestamps —
  // after a reset the detectors re-derive their state from scratch, and a
  // stale stamp would silently swallow the re-emitted events for up to
  // min_interval_ms_ of scenario time.
  last_sent_ms_.clear();
  {
    util::MutexLock lock(retry_mu_);
    retry_dropped_ += retry_queue_.size();
    retry_queue_.clear();
  }
  delayed_frames_.clear();
  std::fill(consecutive_faults_.begin(), consecutive_faults_.end(), 0);
  std::fill(quarantined_.begin(), quarantined_.end(), false);
  heartbeat_enabled_ = true;
}

}  // namespace sack::sds
