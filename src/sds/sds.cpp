#include "sds/sds.h"

#include "util/log.h"

namespace sack::sds {

SituationDetectionService::SituationDetectionService(kernel::Process process)
    : process_(process) {}

void SituationDetectionService::add_detector(
    std::unique_ptr<Detector> detector) {
  detectors_.push_back(std::move(detector));
}

void SituationDetectionService::add_default_detectors() {
  add_detector(std::make_unique<CrashDetector>());
  add_detector(std::make_unique<DrivingDetector>());
  add_detector(std::make_unique<SpeedBandDetector>());
  add_detector(std::make_unique<ParkingDetector>());
}

Result<void> SituationDetectionService::send_event(std::string_view event) {
  std::string line(event);
  line += '\n';
  const std::uint64_t t_start = monotonic_ns();
  auto rc = process_.write_existing(kEventsPath, line);
  send_ns_.record(monotonic_ns() - t_start);
  if (rc.ok()) {
    ++events_sent_;
  } else {
    ++send_failures_;
    log_warn("sds: failed to transmit event '", event, "': ",
             errno_name(rc.error()));
  }
  return rc;
}

std::vector<std::string> SituationDetectionService::feed(
    const SensorFrame& frame) {
  std::vector<std::string> emitted;
  for (auto& detector : detectors_) {
    for (auto& event : detector->on_frame(frame)) {
      if (min_interval_ms_ > 0) {
        auto it = last_sent_ms_.find(event);
        if (it != last_sent_ms_.end() &&
            frame.time_ms - it->second < min_interval_ms_) {
          ++events_suppressed_;
          continue;
        }
      }
      // Stamp the rate limiter only after a *successful* transmit: a failed
      // write must leave the window open so the event is retried on the
      // next frame instead of being silently lost for min_interval_ms_.
      if (send_event(event).ok() && min_interval_ms_ > 0)
        last_sent_ms_[event] = frame.time_ms;
      emitted.push_back(std::move(event));
    }
  }
  return emitted;
}

std::string SituationDetectionService::metrics_json() const {
  return "{\"events_sent\": " + std::to_string(events_sent_) +
         ", \"send_failures\": " + std::to_string(send_failures_) +
         ", \"events_suppressed\": " + std::to_string(events_suppressed_) +
         ", \"send_ns\": " + send_ns_.json() + "}";
}

std::vector<std::string> SituationDetectionService::play(const Trace& trace) {
  std::vector<std::string> all;
  for (const auto& frame : trace) {
    auto events = feed(frame);
    all.insert(all.end(), events.begin(), events.end());
  }
  return all;
}

void SituationDetectionService::reset_detectors() {
  for (auto& d : detectors_) d->reset();
}

}  // namespace sack::sds
