// Deterministic synthetic driving traces.
//
// Substitutes for the production telemetry we cannot have: each generator
// produces a frame stream whose shape triggers the detector/SSM paths the
// paper's scenarios need (city driving, a highway crash, parking hand-offs).
#pragma once

#include <cstdint>

#include "sds/sensors.h"

namespace sack::sds {

struct TraceOptions {
  std::uint64_t seed = 42;
  std::int64_t frame_interval_ms = 100;  // 10 Hz sensor rate
};

// Pull away from parking, drive through town with speed variation
// (0..60 km/h), stop at lights, park again. ~`duration_s` long.
Trace city_drive_trace(int duration_s = 120, TraceOptions options = {});

// Accelerate to highway speed, cruise, then crash at `crash_at_s`:
// acceleration spike + crash signal, vehicle comes to rest, stays quiet
// long enough for the emergency to clear.
Trace highway_crash_trace(int crash_at_s = 60, TraceOptions options = {});

// Park with driver, driver leaves, driver returns, drive off: exercises the
// parked_with/without_driver states.
Trace parking_handoff_trace(TraceOptions options = {});

// Repeatedly crosses the high/low speed boundary every `period_ms` — the
// transition-frequency workload of Fig 3(b).
Trace speed_oscillation_trace(std::int64_t period_ms, int cycles,
                              TraceOptions options = {});

}  // namespace sack::sds
