// Sensor frames: the synthetic stand-in for the vehicle's environment
// perception (CAN speed, IMU, seat occupancy, crash sensor).
//
// The paper assumes "environmental information perception is trusted"
// (§III-A) and evaluates with emulated events; we generate frames from
// deterministic scenario traces (see traces.h) and let the detectors turn
// them into situation events — exercising the same SDS → SACKfs path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sack::sds {

enum class Gear : std::uint8_t { park, reverse, neutral, drive };

struct SensorFrame {
  std::int64_t time_ms = 0;     // scenario time
  double speed_kmh = 0.0;
  double accel_g = 0.0;         // magnitude of acceleration
  Gear gear = Gear::park;
  bool driver_present = false;  // seat occupancy
  bool crash_signal = false;    // dedicated crash sensor (airbag controller)
  double latitude = 0.0;
  double longitude = 0.0;
};

using Trace = std::vector<SensorFrame>;

}  // namespace sack::sds
