#include "analysis/extractor.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace sack::analysis {
namespace {

const std::unordered_set<std::string>& control_keywords() {
  static const std::unordered_set<std::string> kw = {
      "if",     "else",   "for",      "while",  "do",       "switch",
      "case",   "return", "break",    "continue", "sizeof", "alignof",
      "new",    "delete", "throw",    "catch",  "true",     "false",
      "nullptr", "goto",  "default",  "operator",
  };
  return kw;
}

bool is_control_kw(const Token& t) {
  return t.kind == TokKind::ident && control_keywords().count(t.text) > 0;
}

// Matching close paren for the '(' at `open`; npos if unterminated.
std::size_t match_paren(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].is("(")) ++depth;
    else if (t[i].is(")") && --depth == 0) return i;
  }
  return std::string::npos;
}

std::size_t match_brace(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].is("{")) ++depth;
    else if (t[i].is("}") && --depth == 0) return i;
  }
  return std::string::npos;
}

// Backward matching open paren for the ')' at `close`; npos if none.
std::size_t match_paren_back(const std::vector<Token>& t, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (t[i].is(")")) ++depth;
    else if (t[i].is("(") && --depth == 0) return i;
  }
  return std::string::npos;
}

// For `name<` with the `<` at `open`, returns the index of a `(` immediately
// after the matching `>` — i.e. the argument list of a template call
// `f<T...>(args)` — or npos when this is not one (a comparison, a declaration
// like `std::vector<int> v(8)`, ...). Conservative: only type-ish tokens may
// appear between the angles, and the search is bounded so a stray `<` in an
// expression can never swallow the rest of the body.
std::size_t template_call_paren(const std::vector<Token>& t, std::size_t open,
                                std::size_t end) {
  int depth = 0;
  const std::size_t bound = std::min(end, open + 64);
  for (std::size_t k = open; k < bound; ++k) {
    const Token& x = t[k];
    if (x.is("<")) { ++depth; continue; }
    if (x.is(">") || x.is(">>")) {
      depth -= x.is(">>") ? 2 : 1;
      if (depth <= 0)
        return (depth == 0 && k + 1 < end && t[k + 1].is("("))
                   ? k + 1
                   : std::string::npos;
      continue;
    }
    if (x.kind == TokKind::ident || x.kind == TokKind::number ||
        x.is("::") || x.is(",") || x.is("*") || x.is("&"))
      continue;
    return std::string::npos;  // expression-like token: treat `<` as less-than
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Body scanning
// ---------------------------------------------------------------------------

// One control-header paren extent, e.g. the (...) of `if (...)`.
struct HeaderExtent {
  std::size_t open = 0;
  std::size_t close = 0;
  bool is_for = false;
  // First top-level `;` (for-init boundary) and first top-level `&&`/`||`
  // (short-circuit boundary); npos when absent.
  std::size_t first_semi = std::string::npos;
  std::size_t first_shortcircuit = std::string::npos;

  // Does a call at token index i inside this extent run conditionally?
  bool conditional_at(std::size_t i) const {
    if (is_for && first_semi != std::string::npos && i > first_semi)
      return true;  // for-loop condition/step may run zero times
    return first_shortcircuit != std::string::npos && i > first_shortcircuit;
  }
};

struct DispatchExtent {
  std::size_t close = 0;
  bool via_notify = false;
  bool conditional = false;
  Guard guard = Guard::notify;
  std::string hardcoded_errno;
  std::size_t pos = 0;
  int line = 0;
  bool saw_table_ident = false;
  bool attributed = false;  // at least one hook call recorded
};

struct GuardResult {
  Guard guard = Guard::unguarded;
  std::string errno_text;
};

// Classifies how the statement(s) after a `Errno NAME = lsm_.check(...);`
// consume the verdict. `k` points at the token right after the `;`.
GuardResult analyze_guard(const std::vector<Token>& t, std::size_t k,
                          const std::string& var, bool if_init_form) {
  GuardResult r;
  std::size_t g;  // token after the guard's `)`
  if (if_init_form) {
    // `if (Errno NAME = lsm_.check(...); NAME != Errno::ok) stmt`
    // k points right after the `;` inside the if-parens.
    if (k + 5 >= t.size() || !t[k].ident_is(var) || !t[k + 1].is("!=") ||
        !t[k + 2].ident_is("Errno") || !t[k + 3].is("::") ||
        !t[k + 4].ident_is("ok") || !t[k + 5].is(")"))
      return r;
    g = k + 6;
  } else {
    // `if (NAME != Errno::ok)` or `if (Errno::ok != NAME)` must be the very
    // next statement; anything in between counts as unguarded.
    if (k + 1 >= t.size() || !t[k].ident_is("if") || !t[k + 1].is("("))
      return r;
    std::size_t c = k + 2;
    if (c + 5 < t.size() && t[c].ident_is(var) && t[c + 1].is("!=") &&
        t[c + 2].ident_is("Errno") && t[c + 3].is("::") &&
        t[c + 4].ident_is("ok") && t[c + 5].is(")")) {
      g = c + 6;
    } else if (c + 5 < t.size() && t[c].ident_is("Errno") && t[c + 1].is("::") &&
               t[c + 2].ident_is("ok") && t[c + 3].is("!=") &&
               t[c + 4].ident_is(var) && t[c + 5].is(")")) {
      g = c + 6;
    } else {
      return r;
    }
  }
  // Find the denial-path `return` statement.
  std::size_t ret = std::string::npos;
  std::size_t stop = t.size();
  if (g < t.size() && t[g].is("{")) {
    stop = match_brace(t, g);
    if (stop == std::string::npos) stop = t.size();
    for (std::size_t i = g + 1; i < stop; ++i) {
      if (t[i].ident_is("return")) { ret = i; break; }
    }
  } else if (g < t.size() && t[g].ident_is("return")) {
    ret = g;
  }
  if (ret == std::string::npos) {
    r.guard = Guard::swallowed;
    return r;
  }
  // Classify the returned expression.
  std::size_t semi = ret;
  while (semi < t.size() && !t[semi].is(";")) ++semi;
  std::size_t len = semi - (ret + 1);
  if (len == 1 && t[ret + 1].ident_is(var)) {
    r.guard = Guard::propagated;
  } else if (len == 8 && t[ret + 1].is("-") &&
             t[ret + 2].ident_is("static_cast") && t[ret + 3].is("<") &&
             t[ret + 4].ident_is("long") && t[ret + 5].is(">") &&
             t[ret + 6].is("(") && t[ret + 7].ident_is(var) &&
             t[ret + 8].is(")")) {
    // `return -static_cast<long>(NAME);` — the Linux ABI convention for
    // long-returning syscalls: the verdict is propagated as a negated errno,
    // so modules still control the error code.
    r.guard = Guard::propagated;
  } else if (len >= 3 && t[ret + 1].ident_is("Errno") && t[ret + 2].is("::")) {
    r.guard = Guard::hardcoded;
    r.errno_text = "Errno::" + t[ret + 3].text;
  } else {
    r.guard = Guard::hardcoded;
    for (std::size_t i = ret + 1; i < semi; ++i) {
      if (!r.errno_text.empty()) r.errno_text += ' ';
      r.errno_text += t[i].text;
    }
  }
  return r;
}

// Finds the first token of the receiver chain ending in the `.`/`->` at
// `dot`, e.g. `kernel_->lsm().notify` -> index of `kernel_`.
std::size_t chain_start(const std::vector<Token>& t, std::size_t dot) {
  std::size_t s = dot;
  std::size_t k = dot;
  while (k > 0 && (t[k].is(".") || t[k].is("->"))) {
    std::size_t prev = k - 1;
    if (t[prev].is(")")) {
      std::size_t open = match_paren_back(t, prev);
      if (open == std::string::npos || open == 0) return s;
      prev = open - 1;
      if (prev == 0 || t[prev].kind != TokKind::ident) return s;
    } else if (t[prev].kind != TokKind::ident) {
      return s;
    }
    s = prev;
    if (prev == 0) return s;
    k = prev - 1;
    if (!(t[k].is(".") || t[k].is("->"))) return s;
  }
  return s;
}

class BodyScanner {
 public:
  BodyScanner(const std::vector<Token>& toks, const HookTable& table,
              FunctionDef& fn)
      : t_(toks), table_(table), fn_(fn) {}

  void scan() {
    std::size_t i = fn_.body_begin;
    const std::size_t end = fn_.body_end;
    bool pending_cond_brace = false;
    bool pending_control_stmt = false;  // header closed, next token decides
    while (i < end) {
      const Token& tok = t_[i];
      expire(i);

      if (pending_control_stmt) {
        pending_control_stmt = false;
        if (tok.is("{")) {
          pending_cond_brace = true;
        } else {
          unbraced_cond_ = true;
          unbraced_depth_ = braces_.size();
        }
      }

      if (tok.is("{")) {
        braces_.push_back(pending_cond_brace || pending_brace_is_cond_ ||
                          effective_cond(i));
        pending_cond_brace = false;
        pending_brace_is_cond_ = false;
        ++i;
        continue;
      }
      if (tok.is("}")) {
        if (!braces_.empty()) braces_.pop_back();
        if (unbraced_cond_ && braces_.size() < unbraced_depth_)
          unbraced_cond_ = false;
        ++i;
        continue;
      }
      if (tok.is(";")) {
        if (unbraced_cond_ && braces_.size() <= unbraced_depth_ &&
            !inside_header(i))
          unbraced_cond_ = false;
        ++i;
        continue;
      }

      if (tok.kind == TokKind::ident) {
        const std::string& s = tok.text;
        if (s == "if" || s == "for" || s == "while" || s == "switch") {
          // `if constexpr (...)` — the header paren sits one token later.
          // Without this skip, `constexpr` would be recorded as a call site
          // and the whole branch would lose its conditional context.
          std::size_t h = i + 1;
          if (s == "if" && h < end && t_[h].ident_is("constexpr")) ++h;
          if (h < end && t_[h].is("(")) {
            push_header(h, s == "for");
            // `do { } while (...)` ends in `;`, never opens a statement.
            bool do_while = s == "while" && i > fn_.body_begin &&
                            t_[i - 1].is("}");
            if (!do_while) {
              std::size_t close = headers_.back().close;
              // Mark that after the header a statement/brace follows.
              pending_after_header_.push_back(close);
            }
            i = h;
            continue;
          }
        }
        if (s == "else") {
          if (!(i + 1 < end && t_[i + 1].ident_is("if")))
            pending_control_stmt = true;
          ++i;
          continue;
        }
        if (s == "do") {
          pending_control_stmt = true;
          ++i;
          continue;
        }

        // LSM dispatch site?
        if ((s == "check" || s == "notify") && i + 1 < end &&
            t_[i + 1].is("(") && i > 0 &&
            (t_[i - 1].is(".") || t_[i - 1].is("->"))) {
          std::size_t cs = chain_start(t_, i - 1);
          bool is_lsm = false;
          for (std::size_t k = cs; k <= i; ++k) {
            if (t_[k].kind == TokKind::ident &&
                t_[k].text.rfind("lsm", 0) == 0) {
              is_lsm = true;
              break;
            }
          }
          if (is_lsm) {
            open_dispatch(i, cs, s == "notify");
            ++i;
            continue;
          }
        }

        // Member / free call site, including template calls `f<T>(x)` whose
        // argument list sits past the close angle.
        std::size_t paren = std::string::npos;
        if (i + 1 < end && t_[i + 1].is("(")) paren = i + 1;
        else if (i + 1 < end && t_[i + 1].is("<"))
          paren = template_call_paren(t_, i + 1, end);
        if (paren != std::string::npos && !is_control_kw(tok)) {
          bool member = i > 0 && (t_[i - 1].is(".") || t_[i - 1].is("->"));
          // `Type var(args)` declarations: previous token is an identifier
          // (or `>`/`&`/`*` closing a type) — not a call. Control keywords
          // (`return foo()`, `else bar()`) are never type names.
          bool prev_type_ident = i > 0 && t_[i - 1].kind == TokKind::ident &&
                                 !is_control_kw(t_[i - 1]);
          bool decl_like =
              !member && i > 0 &&
              (prev_type_ident || t_[i - 1].is(">") || t_[i - 1].is("&") ||
               t_[i - 1].is("*"));
          if (!decl_like) {
            if (member && table_.contains(s)) {
              DispatchExtent* d = active_dispatch(i);
              if (d) {
                d->saw_table_ident = true;
                if (table_.kind(s) != HookKind::other) {
                  HookCall hc;
                  hc.hook = s;
                  hc.via_notify = d->via_notify;
                  hc.conditional = d->conditional;
                  hc.guard = d->via_notify ? Guard::notify : d->guard;
                  hc.hardcoded_errno = d->hardcoded_errno;
                  hc.pos = d->pos;
                  hc.line = d->line;
                  fn_.hooks.push_back(hc);
                  d->attributed = true;
                }
                ++i;
                continue;
              }
            }
            CallSite c;
            c.callee = s;
            c.member = member;
            if (member && i >= 2 && t_[i - 2].kind == TokKind::ident)
              c.receiver = t_[i - 2].text;
            c.conditional = effective_cond(i);
            c.pos = i;
            c.line = tok.line;
            fn_.calls.push_back(c);
          }
        }
      }
      ++i;
    }
    // Close any still-open dispatch bookkeeping.
    expire(end + 1);
  }

 private:
  bool inside_header(std::size_t i) const {
    for (const auto& h : headers_)
      if (i > h.open && i < h.close) return true;
    return false;
  }

  bool effective_cond(std::size_t i) const {
    for (bool b : braces_)
      if (b) return true;
    if (unbraced_cond_) return true;
    for (const auto& h : headers_)
      if (i > h.open && i < h.close && h.conditional_at(i)) return true;
    return false;
  }

  void expire(std::size_t i) {
    while (!headers_.empty() && i > headers_.back().close)
      headers_.pop_back();
    while (!pending_after_header_.empty() &&
           i == pending_after_header_.back() + 1) {
      pending_after_header_.pop_back();
      // Token at close+1 decides braced vs unbraced conditional statement.
      if (i < fn_.body_end) {
        if (t_[i].is("{")) {
          // handled by the caller pushing a conditional brace
          pending_brace_is_cond_ = true;
        } else if (!t_[i].is(";")) {
          unbraced_cond_ = true;
          unbraced_depth_ = braces_.size();
        }
      }
    }
    while (!dispatches_.empty() && i > dispatches_.back().close) {
      if (!dispatches_.back().saw_table_ident)
        fn_.opaque_dispatch_lines.push_back(
            static_cast<std::size_t>(dispatches_.back().line));
      dispatches_.pop_back();
    }
  }

  void push_header(std::size_t open, bool is_for) {
    HeaderExtent h;
    h.open = open;
    h.close = match_paren(t_, open);
    if (h.close == std::string::npos) h.close = fn_.body_end;
    h.is_for = is_for;
    int depth = 0;
    for (std::size_t k = open; k <= h.close && k < t_.size(); ++k) {
      if (t_[k].is("(")) ++depth;
      else if (t_[k].is(")")) --depth;
      else if (depth == 1 && t_[k].is(";") &&
               h.first_semi == std::string::npos)
        h.first_semi = k;
      else if (depth == 1 && (t_[k].is("&&") || t_[k].is("||")) &&
               h.first_shortcircuit == std::string::npos)
        h.first_shortcircuit = k;
    }
    headers_.push_back(h);
  }

  DispatchExtent* active_dispatch(std::size_t i) {
    for (auto it = dispatches_.rbegin(); it != dispatches_.rend(); ++it)
      if (i < it->close) return &*it;
    return nullptr;
  }

  // `i` is the `check`/`notify` token; `cs` the chain start (e.g. `lsm_`).
  void open_dispatch(std::size_t i, std::size_t cs, bool via_notify) {
    DispatchExtent d;
    d.pos = i;
    d.line = t_[i].line;
    d.via_notify = via_notify;
    d.close = match_paren(t_, i + 1);
    if (d.close == std::string::npos) d.close = fn_.body_end;
    d.conditional = effective_cond(cs);

    if (!via_notify) {
      d.guard = Guard::unguarded;
      if (cs > 0 && t_[cs - 1].ident_is("return")) {
        d.guard = Guard::propagated;
      } else if (cs >= 2 && t_[cs - 1].is("=") &&
                 t_[cs - 2].kind == TokKind::ident) {
        std::string var = t_[cs - 2].text;
        bool if_init = cs >= 5 && t_[cs - 3].ident_is("Errno") &&
                       t_[cs - 4].is("(") && t_[cs - 5].ident_is("if");
        std::size_t after = d.close + 1;
        if (after < t_.size() && t_[after].is(";")) {
          GuardResult g = analyze_guard(t_, after + 1, var, if_init);
          d.guard = g.guard;
          d.hardcoded_errno = g.errno_text;
          if (if_init) d.conditional = effective_cond(cs - 5);
        }
      }
    }
    dispatches_.push_back(d);
  }

  const std::vector<Token>& t_;
  const HookTable& table_;
  FunctionDef& fn_;
  std::vector<bool> braces_;
  std::vector<HeaderExtent> headers_;
  std::vector<std::size_t> pending_after_header_;
  std::vector<DispatchExtent> dispatches_;
  bool unbraced_cond_ = false;
  std::size_t unbraced_depth_ = 0;
  bool pending_brace_is_cond_ = false;

  friend class ScannerTestPeer;
};

}  // namespace

// ---------------------------------------------------------------------------
// Hook table
// ---------------------------------------------------------------------------

HookTable parse_hook_table(const std::vector<Token>& t) {
  HookTable table;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!t[i].ident_is("virtual")) continue;
    // Walk forward to `name (`; collect the return-type tokens in between.
    std::size_t j = i + 1;
    std::vector<const Token*> ret;
    bool dtor = false;
    while (j + 1 < t.size()) {
      if (t[j].is("~")) dtor = true;
      if (t[j].kind == TokKind::ident && t[j + 1].is("(")) break;
      ret.push_back(&t[j]);
      ++j;
    }
    if (j + 1 >= t.size() || dtor) continue;
    HookKind kind = HookKind::other;
    if (ret.size() == 1 && ret[0]->ident_is("Errno"))
      kind = HookKind::mediation;
    else if (ret.size() == 1 && ret[0]->ident_is("void"))
      kind = HookKind::notify;
    table.hooks.emplace(t[j].text, kind);
    table.lines.emplace(t[j].text, t[j].line);
  }
  return table;
}

// ---------------------------------------------------------------------------
// Pattern search
// ---------------------------------------------------------------------------

namespace {
std::string_view norm(const Token& t) {
  return t.text == "->" ? std::string_view(".") : std::string_view(t.text);
}
}  // namespace

std::size_t find_pattern(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end, const std::vector<Token>& pattern) {
  if (pattern.empty() || end > toks.size()) return std::string::npos;
  const std::size_t m = pattern.size();
  if (end < m) return std::string::npos;
  for (std::size_t i = begin; i + m <= end; ++i) {
    bool ok = true;
    for (std::size_t k = 0; k < m; ++k) {
      if (norm(toks[i + k]) != norm(pattern[k])) {
        ok = false;
        break;
      }
    }
    if (ok) return i;
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Top-level extraction
// ---------------------------------------------------------------------------

namespace {

// Context kinds while walking namespace/class scope.
enum class Ctx : std::uint8_t { ns, type, opaque };

struct CtxFrame {
  Ctx kind;
  std::string type_name;  // for Ctx::type
};

// Consumes a constructor init list starting at the `:` (index `colon`).
// Returns the index of the body `{`, or npos if this is not an init list.
std::size_t skip_init_list(const std::vector<Token>& t, std::size_t colon) {
  std::size_t i = colon + 1;
  while (i < t.size()) {
    // Entry name: identifier chain (possibly with template args).
    if (t[i].kind != TokKind::ident) return std::string::npos;
    ++i;
    while (i < t.size() && (t[i].is("::") || t[i].kind == TokKind::ident)) ++i;
    if (i < t.size() && t[i].is("<")) {
      int depth = 0;
      while (i < t.size()) {
        if (t[i].is("<")) ++depth;
        else if (t[i].is(">") && --depth == 0) { ++i; break; }
        ++i;
      }
    }
    if (i >= t.size()) return std::string::npos;
    if (t[i].is("(")) {
      std::size_t c = match_paren(t, i);
      if (c == std::string::npos) return std::string::npos;
      i = c + 1;
    } else if (t[i].is("{")) {
      std::size_t c = match_brace(t, i);
      if (c == std::string::npos) return std::string::npos;
      i = c + 1;
    } else {
      return std::string::npos;
    }
    if (i < t.size() && t[i].is(",")) {
      ++i;
      continue;
    }
    if (i < t.size() && t[i].is("{")) return i;
    return std::string::npos;
  }
  return std::string::npos;
}

// After the parameter list's `)` at index `close`, finds the body `{`.
// Returns npos when this is a declaration (or something we don't model).
std::size_t find_body_open(const std::vector<Token>& t, std::size_t close) {
  std::size_t i = close + 1;
  while (i < t.size()) {
    const Token& tok = t[i];
    if (tok.is("{")) return i;
    if (tok.is(";") || tok.is("=") || tok.is(",") || tok.is(")"))
      return std::string::npos;
    if (tok.is(":")) return skip_init_list(t, i);
    if (tok.ident_is("const") || tok.ident_is("override") ||
        tok.ident_is("final") || tok.ident_is("mutable")) {
      ++i;
      continue;
    }
    if (tok.ident_is("noexcept")) {
      ++i;
      if (i < t.size() && t[i].is("(")) {
        std::size_t c = match_paren(t, i);
        if (c == std::string::npos) return std::string::npos;
        i = c + 1;
      }
      continue;
    }
    if (tok.is("->")) {
      // Trailing return type: consume type tokens up to `{` or `;`.
      ++i;
      int angle = 0;
      while (i < t.size()) {
        if (t[i].is("<")) ++angle;
        else if (t[i].is(">")) --angle;
        else if (angle == 0 && (t[i].is("{") || t[i].is(";"))) break;
        ++i;
      }
      continue;
    }
    if (tok.is("[") && i + 1 < t.size() && t[i + 1].is("[")) {
      // [[attribute]]
      while (i < t.size() && !(t[i].is("]") && i + 1 < t.size() &&
                               t[i + 1].is("]")))
        ++i;
      i += 2;
      continue;
    }
    if (tok.kind == TokKind::ident) {
      // Annotation-style macro, e.g. `SACK_ACQUIRE()`.
      ++i;
      if (i < t.size() && t[i].is("(")) {
        std::size_t c = match_paren(t, i);
        if (c == std::string::npos) return std::string::npos;
        i = c + 1;
      }
      continue;
    }
    if (tok.is("&") || tok.is("&&")) {
      ++i;
      continue;
    }
    return std::string::npos;
  }
  return std::string::npos;
}

}  // namespace

SourceFile extract(std::string path, const std::vector<Token>& t,
                   const HookTable& table) {
  SourceFile sf;
  sf.path = std::move(path);
  sf.tokens = t;
  std::vector<CtxFrame> ctx;

  auto in_extractable_scope = [&]() {
    return ctx.empty() || ctx.back().kind == Ctx::ns ||
           ctx.back().kind == Ctx::type;
  };

  std::size_t i = 0;
  while (i < t.size()) {
    const Token& tok = t[i];

    if (tok.is("{")) {
      ctx.push_back({Ctx::opaque, ""});
      ++i;
      continue;
    }
    if (tok.is("}")) {
      if (!ctx.empty()) ctx.pop_back();
      ++i;
      continue;
    }

    if (tok.ident_is("namespace") && in_extractable_scope()) {
      std::size_t j = i + 1;
      while (j < t.size() && !t[j].is("{") && !t[j].is(";") && !t[j].is("="))
        ++j;
      if (j < t.size() && t[j].is("{")) {
        ctx.push_back({Ctx::ns, ""});
        i = j + 1;
        continue;
      }
      i = j + 1;  // alias or malformed; skip
      continue;
    }

    if ((tok.ident_is("class") || tok.ident_is("struct") ||
         tok.ident_is("union")) &&
        in_extractable_scope() &&
        !(i > 0 && t[i - 1].ident_is("enum"))) {
      // Name = identifier chain right after the keyword.
      std::string name;
      std::size_t j = i + 1;
      while (j < t.size() &&
             (t[j].kind == TokKind::ident || t[j].is("::"))) {
        if (t[j].ident_is("final")) break;
        if (!name.empty() || t[j].is("::")) name += t[j].text;
        else name = t[j].text;
        ++j;
      }
      // Find `{` (definition) or `;` (forward decl) next.
      while (j < t.size() && !t[j].is("{") && !t[j].is(";")) ++j;
      if (j < t.size() && t[j].is("{")) {
        ctx.push_back({Ctx::type, name});
        i = j + 1;
        continue;
      }
      i = j + 1;
      continue;
    }

    if (tok.ident_is("enum") && in_extractable_scope()) {
      std::size_t j = i + 1;
      while (j < t.size() && !t[j].is("{") && !t[j].is(";")) ++j;
      if (j < t.size() && t[j].is("{")) {
        std::size_t c = match_brace(t, j);
        i = (c == std::string::npos) ? t.size() : c + 1;
        continue;
      }
      i = j + 1;
      continue;
    }

    // Candidate function: `ident (` at namespace/class scope — or an explicit
    // specialization `ident<...> (`, whose parameter list sits past the
    // close angle.
    std::size_t cand_paren = std::string::npos;
    if (tok.kind == TokKind::ident && in_extractable_scope() &&
        !is_control_kw(tok) && i + 1 < t.size()) {
      if (t[i + 1].is("("))
        cand_paren = i + 1;
      else if (t[i + 1].is("<"))
        cand_paren = template_call_paren(t, i + 1, t.size());
    }
    if (cand_paren != std::string::npos) {
      // Gather qualifiers: (ident ::)* [~] name
      std::vector<std::string> quals;
      std::string name = tok.text;
      std::size_t k = i;
      if (k > 0 && t[k - 1].is("~")) {
        name = "~" + name;
        --k;
      }
      while (k >= 2 && t[k - 1].is("::")) {
        std::size_t q = k - 2;
        if (t[q].kind == TokKind::ident) {
          quals.insert(quals.begin(), t[q].text);
          k = q;
          continue;
        }
        // `Foo<T>::bar` — walk back over the template argument list so the
        // definition still registers as a member of `Foo`, not a free `bar`.
        if (t[q].is(">") || t[q].is(">>")) {
          int depth = 0;
          std::size_t j = q + 1;
          bool found = false;
          while (j-- > 0 && q - j < 64) {
            if (t[j].is(">")) ++depth;
            else if (t[j].is(">>")) depth += 2;
            else if (t[j].is("<") && --depth == 0) { found = true; break; }
          }
          if (found && j >= 1 && t[j - 1].kind == TokKind::ident) {
            quals.insert(quals.begin(), t[j - 1].text);
            k = j - 1;
            continue;
          }
        }
        break;
      }
      std::size_t close = match_paren(t, cand_paren);
      if (close == std::string::npos) {
        ++i;
        continue;
      }
      std::size_t body = find_body_open(t, close);
      if (body == std::string::npos) {
        i = close + 1;  // declaration / macro / initializer — skip params
        continue;
      }
      std::size_t body_close = match_brace(t, body);
      if (body_close == std::string::npos) body_close = t.size();

      FunctionDef fn;
      fn.name = name;
      if (!quals.empty()) {
        std::string q;
        for (const auto& s : quals) q += s + "::";
        fn.qualified = q + name;
      } else if (!ctx.empty() && ctx.back().kind == Ctx::type &&
                 !ctx.back().type_name.empty()) {
        fn.qualified = ctx.back().type_name + "::" + name;
      } else {
        fn.qualified = name;
      }
      fn.file = sf.path;
      fn.line = tok.line;
      fn.body_begin = body + 1;
      fn.body_end = body_close;
      BodyScanner(t, table, fn).scan();
      sf.functions.push_back(std::move(fn));
      i = body_close + 1;
      continue;
    }

    ++i;
  }
  return sf;
}

}  // namespace sack::analysis
