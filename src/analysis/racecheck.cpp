#include "analysis/racecheck.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

#include "analysis/checks.h"
#include "analysis/extractor.h"
#include "analysis/lexer.h"
#include "analysis/typescan.h"

namespace sack::analysis {
namespace {

namespace fs = std::filesystem;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::vector<std::string> split_qual(const std::string& s) {
  std::vector<std::string> out;
  std::size_t b = 0;
  while (true) {
    std::size_t e = s.find("::", b);
    if (e == std::string::npos) {
      out.push_back(s.substr(b));
      return out;
    }
    out.push_back(s.substr(b, e - b));
    b = e + 2;
  }
}

Finding make(Severity sev, std::string cls, std::string file, int line,
             std::string message, std::string entry = "",
             std::string hook = "") {
  Finding f;
  f.severity = sev;
  f.cls = std::move(cls);
  f.file = std::move(file);
  f.line = line;
  f.message = std::move(message);
  f.entry = std::move(entry);
  f.hook = std::move(hook);
  return f;
}

const std::unordered_set<std::string>& mutator_methods() {
  static const std::unordered_set<std::string> m = {
      "push_back", "pop_back", "insert",  "erase", "clear",
      "resize",    "emplace",  "emplace_back", "assign", "store"};
  return m;
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

struct Checker {
  const ConcurrencyManifest& m;
  const std::string& manifest_path;
  const Corpus& corpus;
  const std::vector<ClassDecl>& classes;
  const std::vector<std::pair<std::string, std::string>>& sources;
  std::vector<Finding>& findings;
  RacecheckStats& stats;

  // Reverse call index: unqualified callee name -> callers.
  std::map<std::string, std::vector<const FunctionDef*>> callers;
  // Memoized "which unlocked root reaches this function" per (fn, mutex).
  std::map<std::pair<const FunctionDef*, std::string>, std::string> root_cache;

  void run() {
    build_caller_index();
    for (const auto& spec : m.guarded) check_guarded(spec);
    for (const auto& spec : m.rcu) check_rcu(spec);
    check_atomics();
    check_fault_sites();
  }

  // --- shared plumbing ----------------------------------------------------

  void build_caller_index() {
    for (const auto& sf : corpus.files)
      for (const auto& fn : sf.functions)
        for (const auto& c : fn.calls) callers[c.callee].push_back(&fn);
  }

  const ClassDecl* find_class(const std::string& name) const {
    for (const auto& cd : classes)
      if (cd.name == name) return &cd;
    return nullptr;
  }

  bool is_lockfree_type(const std::string& type) const {
    for (const auto& t : m.lockfree_types)
      if (type.find(t) != std::string::npos) return true;
    return false;
  }

  bool is_exempt_context(const FunctionDef& fn) const {
    for (const auto& p : m.exempt_contexts)
      if (starts_with(fn.qualified, p) || starts_with(fn.name, p)) return true;
    return false;
  }

  static bool is_ctor_of(const FunctionDef& fn,
                         const std::vector<std::string>& components) {
    for (const auto& c : components)
      if (fn.name == c || fn.name == "~" + c) return true;
    return false;
  }

  // Does `fn` hold `mutex` — via an RAII lock naming it, a direct .lock(),
  // or a SACK_REQUIRES/SACK_ACQUIRE annotation between `)` and `{`?
  bool holds_lock(const FunctionDef& fn, const std::string& mutex) const {
    const std::vector<Token>* tp = corpus.tokens_of(&fn);
    if (!tp) return false;
    const std::vector<Token>& t = *tp;

    std::size_t lo = fn.body_begin >= 24 ? fn.body_begin - 24 : 0;
    for (std::size_t k = lo; k + 1 < fn.body_begin; ++k) {
      if (t[k].kind != TokKind::ident) continue;
      const std::string& s = t[k].text;
      if (s != "SACK_REQUIRES" && s != "SACK_REQUIRES_SHARED" &&
          s != "SACK_ACQUIRE" && s != "SACK_ACQUIRE_SHARED")
        continue;
      if (!t[k + 1].is("(")) continue;
      for (std::size_t j = k + 2; j < fn.body_begin && !t[j].is(")"); ++j)
        if (t[j].ident_is(mutex)) return true;
    }

    for (std::size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
      if (t[i].kind != TokKind::ident) continue;
      // Direct acquisition: `mu_.lock()` / `mu_.lock_shared()`.
      if (t[i].text == mutex && i + 3 < fn.body_end &&
          (t[i + 1].is(".") || t[i + 1].is("->")) &&
          (t[i + 2].ident_is("lock") || t[i + 2].ident_is("lock_shared")) &&
          t[i + 3].is("("))
        return true;
      // RAII guard: `util::MutexLock l(s.mu)` — lock type, then a `(` within
      // a few tokens (template args + variable name), naming the mutex.
      bool is_lock_type = false;
      for (const auto& lt : m.lock_types)
        if (t[i].text == lt) is_lock_type = true;
      if (!is_lock_type) continue;
      for (std::size_t j = i + 1; j < fn.body_end && j <= i + 8; ++j) {
        if (!t[j].is("(")) continue;
        for (std::size_t a = j + 1; a < fn.body_end && !t[a].is(")"); ++a)
          if (t[a].ident_is(mutex)) return true;
        break;
      }
    }
    return false;
  }

  // Returns the qualified name of an unlocked, non-exempt call-graph root
  // that reaches `fn`, or "" when every chain bottoms out in a lock-holding
  // or exempt context. Cycles and over-depth resolve safe (no false alarms).
  std::string offending_root(const FunctionDef& fn, const std::string& mutex,
                             const std::vector<std::string>& ctor_components,
                             std::set<const FunctionDef*>& visiting,
                             int depth) {
    if (depth > 48) return "";
    auto key = std::make_pair(&fn, mutex);
    auto it = root_cache.find(key);
    if (it != root_cache.end()) return it->second;
    if (!visiting.insert(&fn).second) return "";

    std::string result;
    auto cit = callers.find(fn.name);
    if (cit == callers.end() || cit->second.empty()) {
      if (!is_exempt_context(fn) && !is_ctor_of(fn, ctor_components))
        result = fn.qualified;
    } else {
      std::set<const FunctionDef*> seen;
      for (const FunctionDef* g : cit->second) {
        if (g == &fn || !seen.insert(g).second) continue;
        if (holds_lock(*g, mutex)) continue;
        if (is_exempt_context(*g) || is_ctor_of(*g, ctor_components)) continue;
        std::string r =
            offending_root(*g, mutex, ctor_components, visiting, depth + 1);
        if (!r.empty()) {
          result = r;
          break;
        }
      }
    }
    visiting.erase(&fn);
    root_cache[key] = result;
    return result;
  }

  // --- pass 1: lockset / annotation drift ---------------------------------

  void check_guarded(const GuardedSpec& spec) {
    const ClassDecl* cd = find_class(spec.class_name);
    if (!cd) {
      findings.push_back(make(
          Severity::error, "manifest-error", manifest_path, spec.decl_line,
          "[guarded." + spec.tag + "] references unknown class '" +
              spec.class_name + "'"));
      return;
    }
    for (const auto& mu : spec.mutexes) {
      bool found = false;
      for (const auto& f : cd->fields)
        if (f.name == mu && f.is_mutex) found = true;
      if (!found)
        findings.push_back(make(
            Severity::error, "manifest-error", manifest_path, spec.decl_line,
            "class '" + spec.class_name + "' has no lock field '" + mu + "'"));
    }
    for (const auto& ex : spec.exempt) {
      bool found = false;
      for (const auto& f : cd->fields)
        if (f.name == ex.name) found = true;
      if (!found)
        findings.push_back(make(
            Severity::error, "manifest-error", manifest_path, ex.line,
            "exemption references unknown field '" + ex.name + "' of '" +
                spec.class_name + "'"));
    }

    std::vector<std::pair<const FieldDecl*, std::string>> guarded;  // f, mutex
    for (const auto& f : cd->fields) {
      if (f.is_static || f.is_mutex) continue;
      if (f.is_const && !f.is_mutable) continue;
      if (!f.guarded_by.empty()) {
        // The annotation names the lock; drift if it isn't a declared one.
        std::string lock = f.guarded_by;
        std::size_t last = lock.rfind(' ');
        if (last != std::string::npos) lock = lock.substr(last + 1);
        if (!spec.mutexes.empty() &&
            std::find(spec.mutexes.begin(), spec.mutexes.end(), lock) ==
                spec.mutexes.end()) {
          findings.push_back(make(
              Severity::error, "annotation-drift", cd->file, f.line,
              "field '" + f.name + "' of '" + spec.class_name +
                  "' is guarded by '" + lock +
                  "', which the manifest does not declare as a lock of this "
                  "class",
              "", f.name));
          continue;
        }
        guarded.emplace_back(&f, lock);
        ++stats.guarded_fields;
        continue;
      }
      if (is_lockfree_type(f.type)) continue;
      bool exempted = !spec.exempt_rest.empty();
      for (const auto& ex : spec.exempt)
        if (ex.name == f.name) exempted = true;
      if (exempted) continue;
      findings.push_back(make(
          Severity::error, "unannotated-field", cd->file, f.line,
          "mutable field '" + f.name + "' of '" + spec.class_name +
              "' has no SACK_GUARDED_BY annotation and no recorded exemption",
          "", f.name));
    }

    check_unlocked_access(spec, *cd, guarded);
  }

  bool is_accessor(const GuardedSpec& spec, const std::string& tail,
                   const FunctionDef& fn) const {
    for (const auto& p : spec.accessors) {
      if (p == "*") return true;
      if (starts_with(fn.qualified, p)) return true;
    }
    if (starts_with(fn.qualified, spec.class_name + "::")) return true;
    if (starts_with(fn.qualified, tail + "::")) return true;
    for (const auto& h : spec.helpers)
      if (fn.name == h || fn.qualified == h) return true;
    return false;
  }

  void check_unlocked_access(
      const GuardedSpec& spec, const ClassDecl& cd,
      const std::vector<std::pair<const FieldDecl*, std::string>>& guarded) {
    if (guarded.empty()) return;
    std::vector<std::string> components = split_qual(spec.class_name);
    std::string tail = components.back();

    for (const auto& sf : corpus.files) {
      for (const auto& fn : sf.functions) {
        if (!is_accessor(spec, tail, fn)) continue;
        for (const auto& [field, mutex] : guarded) {
          int line = mention_line(sf, fn, field->name);
          if (line == 0) continue;
          if (holds_lock(fn, mutex)) continue;
          if (is_ctor_of(fn, components) || is_exempt_context(fn)) continue;
          std::set<const FunctionDef*> visiting;
          std::string root =
              offending_root(fn, mutex, components, visiting, 0);
          if (root.empty()) continue;
          findings.push_back(make(
              Severity::error, "unlocked-access", sf.path, line,
              "field '" + field->name + "' of '" + spec.class_name +
                  "' (guarded by '" + mutex + "') is accessed in '" +
                  fn.qualified + "' without holding '" + mutex +
                  "', reachable from unlocked root '" + root + "'",
              fn.qualified, field->name));
        }
      }
    }
  }

  // First line in fn's body where `field` is mentioned as a member access.
  // `_`-suffixed names (the tree's member convention) match bare; others
  // must follow `.`/`->` so locals and type names don't alias.
  int mention_line(const SourceFile& sf, const FunctionDef& fn,
                   const std::string& field) const {
    const std::vector<Token>& t = sf.tokens;
    bool bare_ok = !field.empty() && field.back() == '_';
    for (std::size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
      if (t[i].kind != TokKind::ident || t[i].text != field) continue;
      bool after_member = i > 0 && (t[i - 1].is(".") || t[i - 1].is("->"));
      if (i > 0 && t[i - 1].is("::")) continue;
      if (!after_member && !bare_ok) continue;
      if (i + 1 < t.size() && t[i + 1].is("(")) continue;  // method call
      return t[i].line;
    }
    return 0;
  }

  // --- pass 2: RCU snapshot discipline ------------------------------------

  void check_rcu(const RcuSpec& spec) {
    const ClassDecl* cd = find_class(spec.owner);
    if (!cd) {
      findings.push_back(make(
          Severity::error, "manifest-error", manifest_path, spec.decl_line,
          "[rcu." + spec.tag + "] references unknown class '" + spec.owner +
              "'"));
      return;
    }
    bool cell_found = false;
    for (const auto& f : cd->fields)
      if (f.name == spec.cell) {
        cell_found = true;
        if (f.type.find("RcuPtr") == std::string::npos)
          findings.push_back(make(
              Severity::error, "manifest-error", manifest_path,
              spec.decl_line,
              "[rcu." + spec.tag + "] cell '" + spec.cell + "' of '" +
                  spec.owner + "' is not an RcuPtr (type: " + f.type + ")"));
      }
    if (!cell_found) {
      findings.push_back(make(
          Severity::error, "manifest-error", manifest_path, spec.decl_line,
          "[rcu." + spec.tag + "] references unknown cell '" + spec.cell +
              "' of '" + spec.owner + "'"));
      return;
    }
    ++stats.rcu_cells;

    for (const auto& sf : corpus.files)
      for (const auto& fn : sf.functions) check_rcu_in(spec, sf, fn);
  }

  static bool name_listed(const std::vector<ReasonedName>& list,
                          const FunctionDef& fn) {
    for (const auto& rn : list)
      if (rn.name == fn.name || rn.name == fn.qualified) return true;
    return false;
  }

  void check_rcu_in(const RcuSpec& spec, const SourceFile& sf,
                    const FunctionDef& fn) {
    const std::vector<Token>& t = sf.tokens;
    // key -> lines of snapshot acquisitions in this body
    std::map<std::string, std::vector<int>> loads;
    std::set<std::string> locals;   // shared_ptr snapshot locals
    std::set<std::string> derived;  // raw pointers derived from a snapshot

    auto chain_begin = [&](std::size_t i) {
      // First token of the receiver chain ending at ident index i.
      std::size_t s = i;
      while (s >= 2 && (t[s - 1].is(".") || t[s - 1].is("->")) &&
             t[s - 2].kind == TokKind::ident)
        s -= 2;
      return s;
    };
    auto bind_target = [&](std::size_t cs) -> std::string {
      // `V = <chain>...` — V must be a simple local, not a member chain.
      if (cs >= 2 && t[cs - 1].is("=") && t[cs - 2].kind == TokKind::ident &&
          !(cs >= 3 && (t[cs - 3].is(".") || t[cs - 3].is("->"))))
        return t[cs - 2].text;
      return "";
    };

    // Scan for cell.load() sites and loader calls.
    for (std::size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
      if (t[i].kind != TokKind::ident || t[i].text != spec.cell) continue;
      if (i > 0 && t[i - 1].is("::")) continue;
      if (i + 3 >= t.size() || !(t[i + 1].is(".") || t[i + 1].is("->")) ||
          !t[i + 2].ident_is("load") || !t[i + 3].is("("))
        continue;
      std::string key = "this";
      if (i > 0 && (t[i - 1].is(".") || t[i - 1].is("->")) && i >= 2 &&
          t[i - 2].kind == TokKind::ident)
        key = t[i - 2].text;
      loads[key].push_back(t[i].line);

      std::size_t cs = chain_begin(i);
      std::string v = bind_target(cs);
      if (!v.empty()) locals.insert(v);

      // Direct chained mutation: `cell.load()->items.push_back(...)` etc.
      std::size_t close = i + 3;
      int depth = 0;
      for (; close < fn.body_end && close < t.size(); ++close) {
        if (t[close].is("(")) ++depth;
        else if (t[close].is(")") && --depth == 0) break;
      }
      if (spec.immutable && close + 1 < t.size() && t[close + 1].is("->"))
        flag_chain_mutation(sf, fn, close + 1, spec);
    }
    for (const auto& c : fn.calls) {
      bool is_loader = false;
      for (const auto& l : spec.loaders)
        if (c.callee == l) is_loader = true;
      if (!is_loader) continue;
      loads["ldr:" + c.receiver + ":" + c.callee].push_back(c.line);
      std::size_t cs = chain_begin(c.pos);
      std::string v = bind_target(cs);
      if (!v.empty()) locals.insert(v);
    }

    if (!name_listed(spec.exempt_double_load, fn)) {
      for (const auto& [key, lines] : loads) {
        if (lines.size() < 2) continue;
        findings.push_back(make(
            Severity::error, "rcu-double-load", sf.path, lines[1],
            "'" + fn.qualified + "' takes " + std::to_string(lines.size()) +
                " snapshots of RcuPtr '" + spec.cell + "' (first at line " +
                std::to_string(lines[0]) +
                ") in one decision scope — the verdict can mix generations",
            fn.qualified, spec.cell));
      }
    }

    if (locals.empty()) return;
    bool escape_exempt = name_listed(spec.exempt_escape, fn);

    // Second sweep: escapes and mutations through the snapshot locals.
    for (std::size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
      // `return <expr>;`
      if (t[i].ident_is("return") && !escape_exempt) {
        std::size_t semi = i + 1;
        while (semi < fn.body_end && !t[semi].is(";")) ++semi;
        if (expr_derives_raw(t, i + 1, semi, locals, derived)) {
          findings.push_back(make(
              Severity::error, "rcu-escape", sf.path, t[i].line,
              "'" + fn.qualified + "' returns a raw pointer derived from a '" +
                  spec.cell +
                  "' snapshot — it dangles once the snapshot retires",
              fn.qualified, spec.cell));
        }
        i = semi;
        continue;
      }
      // `LHS = RHS;`
      if (t[i].is("=") && i > fn.body_begin &&
          t[i - 1].kind == TokKind::ident) {
        std::size_t semi = i + 1;
        while (semi < fn.body_end && !t[semi].is(";")) ++semi;
        bool member_lhs =
            (!t[i - 1].text.empty() && t[i - 1].text.back() == '_') ||
            (i >= 2 && (t[i - 2].is(".") || t[i - 2].is("->")));
        if (member_lhs) {
          if (!escape_exempt &&
              expr_derives_raw(t, i + 1, semi, locals, derived)) {
            findings.push_back(make(
                Severity::error, "rcu-escape", sf.path, t[i].line,
                "'" + fn.qualified + "' stores a raw pointer derived from a '" +
                    spec.cell +
                    "' snapshot into '" + t[i - 1].text +
                    "' — it outlives the snapshot",
                fn.qualified, spec.cell));
          }
        } else if (expr_derives_raw(t, i + 1, semi, locals, derived)) {
          derived.insert(t[i - 1].text);  // one-level raw-local tracking
        }
        i = semi;
        continue;
      }
      // Statement-initial mutation through a snapshot: `V->x = ...`,
      // `V->items.push_back(...)`, `*V = ...`.
      if (!spec.immutable) continue;
      bool stmt_start = i == fn.body_begin || t[i - 1].is(";") ||
                        t[i - 1].is("{") || t[i - 1].is("}");
      if (!stmt_start) continue;
      std::size_t v = i;
      bool deref = false;
      if (t[v].is("*") && v + 1 < fn.body_end) {
        deref = true;
        ++v;
      }
      if (t[v].kind != TokKind::ident) continue;
      if (!locals.count(t[v].text) && !derived.count(t[v].text)) continue;
      bool through = derived.count(t[v].text) > 0 || deref;
      if (v + 1 < fn.body_end && t[v + 1].is("->")) through = true;
      if (!through) continue;
      if (flag_chain_mutation(sf, fn, v + 1, spec)) i = v + 1;
      if (deref && v + 1 < fn.body_end && t[v + 1].is("=")) {
        findings.push_back(make(
            Severity::error, "rcu-mutation", sf.path, t[v].line,
            "'" + fn.qualified + "' writes through a '" + spec.cell +
                "' snapshot declared immutable",
            fn.qualified, spec.cell));
      }
    }
  }

  // Starting at a `->` token, walks the member chain; flags an assignment or
  // mutator-method call at its end. Returns true if a finding was emitted.
  bool flag_chain_mutation(const SourceFile& sf, const FunctionDef& fn,
                           std::size_t arrow, const RcuSpec& spec) {
    const std::vector<Token>& t = sf.tokens;
    std::size_t j = arrow;
    std::string last_ident;
    while (j < fn.body_end && (t[j].is("->") || t[j].is(".")) &&
           j + 1 < fn.body_end && t[j + 1].kind == TokKind::ident) {
      last_ident = t[j + 1].text;
      j += 2;
    }
    if (last_ident.empty()) return false;
    static const std::unordered_set<std::string> compound = {
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
        "++", "--"};
    bool mutation = false;
    if (j < fn.body_end && compound.count(t[j].text) &&
        t[j].kind == TokKind::punct)
      mutation = true;
    if (j < fn.body_end && t[j].is("(") && mutator_methods().count(last_ident))
      mutation = true;
    if (!mutation) return false;
    findings.push_back(make(
        Severity::error, "rcu-mutation", sf.path, t[arrow].line,
        "'" + fn.qualified + "' mutates ('" + last_ident +
            "') through a '" + spec.cell + "' snapshot declared immutable",
        fn.qualified, spec.cell));
    return true;
  }

  // Does [b, e) contain a raw-pointer derivation from a snapshot local —
  // `V.get()`, `V->...data()/c_str()`, `&V->field`, or a tracked raw local?
  static bool expr_derives_raw(const std::vector<Token>& t, std::size_t b,
                               std::size_t e, const std::set<std::string>& locals,
                               const std::set<std::string>& derived) {
    if (e <= b) return false;
    // Bare `return p;` / `x_ = p;` of an already-derived raw local.
    if (e - b == 1 && t[b].kind == TokKind::ident && derived.count(t[b].text))
      return true;
    bool amp = t[b].is("&");
    for (std::size_t i = b; i < e; ++i) {
      if (t[i].kind != TokKind::ident) continue;
      if (!locals.count(t[i].text)) continue;
      if (amp) return true;  // &V->field — address into the snapshot
      for (std::size_t j = i + 1; j + 2 < e; ++j) {
        if (!(t[j].is(".") || t[j].is("->"))) break;
        const std::string& mname = t[j + 1].text;
        if ((mname == "get" || mname == "data" || mname == "c_str") &&
            t[j + 2].is("("))
          return true;
        j += 1;  // step over the member ident; loop ++ steps over `.`
      }
    }
    return false;
  }

  // --- pass 3: atomics lint ----------------------------------------------

  void check_atomics() {
    for (const auto& sf : corpus.files) {
      for (const auto& fn : sf.functions) {
        const std::vector<Token>& t = sf.tokens;
        for (std::size_t i = fn.body_begin; i < fn.body_end && i < t.size();
             ++i) {
          if (t[i].kind != TokKind::ident ||
              (t[i].text != "store" && t[i].text != "exchange"))
            continue;
          if (i < 2 || !(t[i - 1].is(".") || t[i - 1].is("->"))) continue;
          if (i + 1 >= t.size() || !t[i + 1].is("(")) continue;
          if (t[i - 2].kind != TokKind::ident) continue;
          const std::string& recv = t[i - 2].text;
          bool relaxed = false;
          int depth = 0;
          for (std::size_t j = i + 1; j < fn.body_end && j < t.size(); ++j) {
            if (t[j].is("(")) ++depth;
            else if (t[j].is(")") && --depth == 0) break;
            // Only the store's own ordering argument counts — a nested
            // call's relaxed load (depth > 1) is someone else's ordering.
            if (depth == 1 && t[j].ident_is("memory_order_relaxed"))
              relaxed = true;
          }
          if (!relaxed) continue;
          bool allowed = false;
          for (const auto& rn : m.relaxed_ok)
            if (rn.name == recv) allowed = true;
          if (allowed) continue;
          findings.push_back(make(
              Severity::error, "relaxed-publication", sf.path, t[i].line,
              "relaxed-ordering " + t[i].text + " to '" + recv + "' in '" +
                  fn.qualified +
                  "' is not on the [atomics] allowlist — a publication flag "
                  "needs release/acquire",
              fn.qualified, recv));
        }
      }
    }
  }

  // --- pass 4: fault-site registry ---------------------------------------

  void check_fault_sites() {
    if (m.fault_registry.empty()) return;
    const std::string* registry_text = nullptr;
    for (const auto& [path, text] : sources)
      if (path == m.fault_registry || ends_with(path, m.fault_registry))
        registry_text = &text;
    if (!registry_text) {
      findings.push_back(make(
          Severity::error, "manifest-error", manifest_path, 0,
          "fault-site registry '" + m.fault_registry +
              "' is not among the scanned sources"));
      return;
    }
    std::vector<FaultProbe> registered = scan_fault_registry(*registry_text);
    if (registered.empty()) {
      findings.push_back(make(
          Severity::error, "manifest-error", manifest_path, 0,
          "fault-site registry '" + m.fault_registry +
              "' contains no kBuiltinSites catalogue"));
      return;
    }
    stats.fault_sites_registered = registered.size();

    std::set<std::string> known;
    for (const auto& r : registered) known.insert(r.site);
    auto external = [&](const std::string& s) {
      for (const auto& rn : m.fault_external)
        if (rn.name == s) return true;
      return false;
    };

    std::set<std::string> probed;
    for (const auto& [path, text] : sources) {
      for (const auto& p : scan_fault_probes(text)) {
        ++stats.fault_probes;
        probed.insert(p.site);
        if (!known.count(p.site) && !external(p.site))
          findings.push_back(make(
              Severity::error, "unknown-fault-site", path, p.line,
              "fault site '" + p.site +
                  "' is not in the central registry (" + m.fault_registry +
                  ") and not declared external",
              "", p.site));
      }
    }
    for (const auto& r : registered) {
      if (probed.count(r.site) || external(r.site)) continue;
      findings.push_back(make(
          Severity::error, "unprobed-fault-site", m.fault_registry, r.line,
          "registered fault site '" + r.site +
              "' is never probed in the scanned sources — registry drift",
          "", r.site));
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Raw-text fault scanning
// ---------------------------------------------------------------------------

namespace {

// Comment-aware cursor over raw source text.
struct RawCursor {
  const std::string& s;
  std::size_t i = 0;
  int line = 1;

  bool at_end() const { return i >= s.size(); }
  char cur() const { return s[i]; }

  void advance() {
    if (s[i] == '\n') ++line;
    ++i;
  }

  // Skips comments and whitespace; leaves the cursor on code.
  void skip_noncode() {
    while (i < s.size()) {
      char c = s[i];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
        continue;
      }
      if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
        while (i < s.size() && s[i] != '\n') ++i;
        continue;
      }
      if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
        i += 2;
        while (i + 1 < s.size() && !(s[i] == '*' && s[i + 1] == '/')) advance();
        i = i + 1 < s.size() ? i + 2 : s.size();
        continue;
      }
      return;
    }
  }
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Reads the "..." at the cursor (which must be on the opening quote).
bool read_string(RawCursor& rc, std::string& out) {
  if (rc.at_end() || rc.cur() != '"') return false;
  rc.advance();
  out.clear();
  while (!rc.at_end() && rc.cur() != '"') {
    if (rc.cur() == '\\') rc.advance();
    if (!rc.at_end()) {
      out.push_back(rc.cur());
      rc.advance();
    }
  }
  if (!rc.at_end()) rc.advance();
  return true;
}

}  // namespace

std::vector<FaultProbe> scan_fault_probes(const std::string& text) {
  std::vector<FaultProbe> out;
  RawCursor rc{text};
  while (!rc.at_end()) {
    rc.skip_noncode();
    if (rc.at_end()) break;
    char c = rc.cur();
    if (c == '"') {  // stray string literal: consume so quotes stay paired
      std::string dummy;
      read_string(rc, dummy);
      continue;
    }
    if (!ident_char(c) || std::isdigit(static_cast<unsigned char>(c))) {
      rc.advance();
      continue;
    }
    std::size_t start = rc.i;
    while (!rc.at_end() && ident_char(rc.cur())) rc.advance();
    std::string word = text.substr(start, rc.i - start);
    if (word != "fire" && word != "fail_errno" && word != "register_site")
      continue;
    int call_line = rc.line;
    rc.skip_noncode();
    if (rc.at_end() || rc.cur() != '(') continue;
    rc.advance();
    rc.skip_noncode();  // the probe string may sit on the next line
    std::string site;
    if (!rc.at_end() && rc.cur() == '"' && read_string(rc, site) &&
        !site.empty())
      out.push_back({site, call_line});
  }
  return out;
}

std::vector<FaultProbe> scan_fault_registry(const std::string& text) {
  std::vector<FaultProbe> out;
  std::size_t anchor = text.find("kBuiltinSites");
  if (anchor == std::string::npos) return out;
  RawCursor rc{text};
  // Position the cursor (with an accurate line count) at the catalogue.
  while (rc.i < anchor) rc.advance();
  // Entries are `{"name", "description"}` — the first string of each brace
  // group is the site name. The catalogue ends at the closing `};`.
  int depth = 0;
  bool seen_open = false;
  while (!rc.at_end()) {
    rc.skip_noncode();
    if (rc.at_end()) break;
    char c = rc.cur();
    if (c == '{') {
      ++depth;
      seen_open = true;
      rc.advance();
      rc.skip_noncode();
      if (depth >= 2 && !rc.at_end() && rc.cur() == '"') {
        FaultProbe p;
        p.line = rc.line;
        if (read_string(rc, p.site) && !p.site.empty()) out.push_back(p);
      }
      continue;
    }
    if (c == '"') {
      std::string dummy;
      read_string(rc, dummy);
      continue;
    }
    if (c == '}') {
      rc.advance();
      if (seen_open && --depth <= 0) break;
      continue;
    }
    rc.advance();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

RacecheckResult run_racecheck_on_sources(
    const std::string& manifest_text, const std::string& manifest_path,
    const std::vector<std::pair<std::string, std::string>>& sources) {
  RacecheckResult result;
  auto t0 = std::chrono::steady_clock::now();

  ConcurrencyParse cp = parse_concurrency_manifest(manifest_text);
  if (!cp.ok()) {
    // Diagnostics, not crashes: each parse problem is a finding with
    // manifest file:line provenance, and the checks don't run on a
    // half-parsed contract.
    for (const auto& d : cp.diags)
      result.findings.push_back(make(Severity::error, "manifest-error",
                                     manifest_path, d.line, d.message));
    result.stats.parse_ms = ms_since(t0);
    return result;
  }

  HookTable empty_table;
  std::vector<SourceFile> files;
  std::vector<ClassDecl> classes;
  files.reserve(sources.size());
  for (const auto& [path, text] : sources) {
    std::vector<Token> toks = lex(text);
    for (const auto& cd : scan_types(path, toks)) classes.push_back(cd);
    files.push_back(extract(path, toks, empty_table));
  }
  Corpus corpus = build_corpus(std::move(empty_table), std::move(files));
  result.stats.files = sources.size();
  result.stats.classes = classes.size();
  for (const auto& sf : corpus.files)
    result.stats.functions += sf.functions.size();
  result.stats.parse_ms = ms_since(t0);

  auto t1 = std::chrono::steady_clock::now();
  Checker checker{cp.manifest, manifest_path, corpus,
                  classes,     sources,       result.findings,
                  result.stats};
  checker.run();

  // Two [rcu.*] specs may share a cell name (snap_ appears in two ruleset
  // classes); passes over all functions then report the same site twice.
  std::set<std::string> seen;
  std::vector<Finding> unique;
  unique.reserve(result.findings.size());
  for (auto& f : result.findings) {
    std::string key = f.cls + '\x1f' + f.file + '\x1f' +
                      std::to_string(f.line) + '\x1f' + f.message;
    if (seen.insert(key).second) unique.push_back(std::move(f));
  }
  result.findings = std::move(unique);
  result.stats.check_ms = ms_since(t1);
  return result;
}

RacecheckResult run_racecheck(const std::string& root,
                              const std::string& manifest_path) {
  RacecheckResult result;

  auto read_file = [](const fs::path& p, std::string& out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
  };

  std::string manifest_text;
  if (!read_file(manifest_path, manifest_text)) {
    result.fatal = "cannot read manifest '" + manifest_path + "'";
    return result;
  }
  ConcurrencyParse cp = parse_concurrency_manifest(manifest_text);
  if (cp.manifest.sources.empty() && cp.ok()) {
    result.fatal = "manifest lists no sources";
    return result;
  }

  std::vector<std::pair<std::string, std::string>> sources;
  std::error_code ec;
  for (const auto& dir : cp.manifest.sources) {
    fs::path base = fs::path(root) / dir;
    if (!fs::is_directory(base, ec)) {
      result.fatal =
          "source directory '" + base.generic_string() + "' does not exist";
      return result;
    }
    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator(base, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file(ec)) continue;
      std::string name = it->path().generic_string();
      if (ends_with(name, ".h") || ends_with(name, ".cpp") ||
          ends_with(name, ".cc") || ends_with(name, ".hpp"))
        paths.push_back(it->path());
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& p : paths) {
      std::string text;
      if (!read_file(p, text)) continue;
      std::string rel = fs::relative(p, root, ec).generic_string();
      if (ec || rel.rfind("..", 0) == 0) rel = p.generic_string();
      sources.emplace_back(std::move(rel), std::move(text));
    }
  }
  return run_racecheck_on_sources(manifest_text, manifest_path, sources);
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::vector<const Finding*> sorted(const std::vector<Finding>& findings) {
  std::vector<const Finding*> v;
  v.reserve(findings.size());
  for (const auto& f : findings) v.push_back(&f);
  std::stable_sort(v.begin(), v.end(), [](const Finding* a, const Finding* b) {
    if (a->severity != b->severity) return a->severity == Severity::error;
    if (a->file != b->file) return a->file < b->file;
    return a->line < b->line;
  });
  return v;
}

}  // namespace

std::string render_racecheck_text(const RacecheckResult& r) {
  std::ostringstream out;
  for (const Finding* f : sorted(r.findings)) {
    out << f->file << ':' << f->line << ": "
        << (f->severity == Severity::error ? "error" : "warning") << ": ["
        << f->cls << "] " << f->message << '\n';
  }
  out << "racecheck: " << count_errors(r.findings) << " error(s), "
      << count_warnings(r.findings) << " warning(s) — " << r.stats.files
      << " files, " << r.stats.functions << " functions, " << r.stats.classes
      << " classes, " << r.stats.guarded_fields << " guarded fields, "
      << r.stats.rcu_cells << " rcu cells, "
      << r.stats.fault_sites_registered << " fault sites\n";
  return out.str();
}

std::string render_racecheck_json(const RacecheckResult& r) {
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding* f : sorted(r.findings)) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"severity\": \""
        << (f->severity == Severity::error ? "error" : "warning")
        << "\", \"class\": \"" << json_escape(f->cls) << "\", \"file\": \""
        << json_escape(f->file) << "\", \"line\": " << f->line
        << ", \"function\": \"" << json_escape(f->entry)
        << "\", \"subject\": \"" << json_escape(f->hook)
        << "\", \"message\": \"" << json_escape(f->message) << "\"}";
  }
  out << (first ? "]" : "\n  ]") << ",\n  \"stats\": {\"files\": "
      << r.stats.files << ", \"functions\": " << r.stats.functions
      << ", \"classes\": " << r.stats.classes
      << ", \"guarded_fields\": " << r.stats.guarded_fields
      << ", \"rcu_cells\": " << r.stats.rcu_cells
      << ", \"fault_sites_registered\": " << r.stats.fault_sites_registered
      << ", \"fault_probes\": " << r.stats.fault_probes
      << ", \"errors\": " << count_errors(r.findings)
      << ", \"warnings\": " << count_warnings(r.findings)
      << ", \"parse_ms\": " << r.stats.parse_ms
      << ", \"check_ms\": " << r.stats.check_ms << "}\n}\n";
  return out.str();
}

}  // namespace sack::analysis
