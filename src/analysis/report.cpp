#include "analysis/report.h"

#include <algorithm>
#include <sstream>

namespace sack::analysis {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::vector<const Finding*> sorted(const std::vector<Finding>& findings) {
  std::vector<const Finding*> v;
  v.reserve(findings.size());
  for (const auto& f : findings) v.push_back(&f);
  std::stable_sort(v.begin(), v.end(), [](const Finding* a, const Finding* b) {
    if (a->severity != b->severity)
      return a->severity == Severity::error;
    if (a->file != b->file) return a->file < b->file;
    return a->line < b->line;
  });
  return v;
}

}  // namespace

std::size_t count_errors(const std::vector<Finding>& findings) {
  std::size_t n = 0;
  for (const auto& f : findings)
    if (f.severity == Severity::error) ++n;
  return n;
}

std::size_t count_warnings(const std::vector<Finding>& findings) {
  return findings.size() - count_errors(findings);
}

std::string render_text(const std::vector<Finding>& findings,
                        const RunStats& stats) {
  std::ostringstream out;
  for (const Finding* f : sorted(findings)) {
    out << f->file << ':' << f->line << ": "
        << (f->severity == Severity::error ? "error" : "warning") << ": ["
        << f->cls << "] " << f->message;
    bool paren = false;
    if (!f->entry.empty()) {
      out << " (entry=" << f->entry;
      paren = true;
    }
    if (!f->hook.empty()) {
      out << (paren ? ", " : " (") << "hook=" << f->hook;
      paren = true;
    }
    if (paren) out << ')';
    out << '\n';
  }
  out << "hookcheck: " << count_errors(findings) << " error(s), "
      << count_warnings(findings) << " warning(s) — " << stats.files
      << " files, " << stats.functions << " functions, "
      << stats.dispatch_sites << " dispatch sites, " << stats.entries_checked
      << " entries checked, " << stats.hooks_in_table << " hooks in table\n";
  return out.str();
}

std::string render_json(const std::vector<Finding>& findings,
                        const RunStats& stats) {
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding* f : sorted(findings)) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"severity\": \""
        << (f->severity == Severity::error ? "error" : "warning")
        << "\", \"class\": \"" << json_escape(f->cls) << "\", \"file\": \""
        << json_escape(f->file) << "\", \"line\": " << f->line
        << ", \"entry\": \"" << json_escape(f->entry) << "\", \"hook\": \""
        << json_escape(f->hook) << "\", \"message\": \""
        << json_escape(f->message) << "\"}";
  }
  out << (first ? "]" : "\n  ]") << ",\n  \"stats\": {\"files\": "
      << stats.files << ", \"functions\": " << stats.functions
      << ", \"dispatch_sites\": " << stats.dispatch_sites
      << ", \"entries_checked\": " << stats.entries_checked
      << ", \"hooks_in_table\": " << stats.hooks_in_table
      << ", \"errors\": " << count_errors(findings)
      << ", \"warnings\": " << count_warnings(findings)
      << ", \"parse_ms\": " << stats.parse_ms
      << ", \"check_ms\": " << stats.check_ms << "}\n}\n";
  return out.str();
}

}  // namespace sack::analysis
