// Function-definition and hook-call extraction for sack-hookcheck.
//
// Works on the token stream from lexer.h. The extractor understands just
// enough C++ structure for mediation analysis:
//
//   * function definitions at namespace/class scope (incl. out-of-class
//     `Kernel::sys_open`, constructor init lists, trailing return types);
//   * call sites inside bodies, with receiver and conditional-context
//     tracking (a call under `if`/`for`/`while`/`&&` may not execute);
//   * LSM dispatch sites: `lsm_.check([&](SecurityModule& m) { m.hook(...) })`
//     and `lsm_.notify(...)`, including which hook(s) the closure invokes and
//     how the verdict is consumed (propagated / hardcoded / swallowed /
//     unguarded).
//
// The hook vocabulary comes from parsing the SecurityModule interface header
// (module.h): `virtual Errno name(` declares a mediation hook, `virtual void
// name(` a notification hook. Anything else (e.g. `getprocattr` returning a
// string) is "other" — recognized so a dispatch over it is not flagged as
// unknown, but never treated as mediation.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/lexer.h"

namespace sack::analysis {

enum class HookKind : std::uint8_t {
  mediation,  // virtual Errno ...
  notify,     // virtual void ...
  other,      // virtual <anything else> ... — introspection, ignored
};

struct HookTable {
  std::map<std::string, HookKind> hooks;
  std::map<std::string, int> lines;  // declaration line in the hook header

  bool contains(const std::string& name) const { return hooks.count(name); }
  HookKind kind(const std::string& name) const { return hooks.at(name); }
  int line(const std::string& name) const {
    auto it = lines.find(name);
    return it == lines.end() ? 0 : it->second;
  }
};

// How a dispatch site consumes the stack verdict.
enum class Guard : std::uint8_t {
  propagated,  // `return lsm_.check(...)` or `if (rc != ok) return rc;`
  hardcoded,   // denial path returns a literal Errno, not the verdict
  swallowed,   // verdict checked but denial path does not return
  unguarded,   // verdict assigned (or discarded) and never checked
  notify,      // void dispatch — nothing to guard
};

struct HookCall {
  std::string hook;         // e.g. "file_open"
  bool via_notify = false;  // dispatched through lsm_.notify()
  bool conditional = false; // under if/loop/&&/|| at the dispatch site
  Guard guard = Guard::notify;
  std::string hardcoded_errno;  // set when guard == hardcoded
  std::size_t pos = 0;          // token index of the dispatch, for ordering
  int line = 0;
};

struct CallSite {
  std::string callee;    // unqualified name
  std::string receiver;  // identifier before `.`/`->`, if any
  bool member = false;
  bool conditional = false;
  std::size_t pos = 0;
  int line = 0;
};

struct FunctionDef {
  std::string qualified;  // "Kernel::sys_open" or "name" at namespace scope
  std::string name;       // unqualified
  std::string file;
  int line = 0;
  std::size_t body_begin = 0;  // token index just after '{'
  std::size_t body_end = 0;    // token index of matching '}'
  std::vector<CallSite> calls;
  std::vector<HookCall> hooks;
  // True if any lsm dispatch extent in the body contained no identifier from
  // the hook table at all (likely a renamed/mistyped hook).
  std::vector<std::size_t> opaque_dispatch_lines;
};

struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<FunctionDef> functions;
};

// Parses the SecurityModule interface header into the hook vocabulary.
HookTable parse_hook_table(const std::vector<Token>& toks);

// Extracts all function definitions (with call/hook info) from one file.
SourceFile extract(std::string path, const std::vector<Token>& toks,
                   const HookTable& table);

// Token-subsequence search used for ordering anchors. `pattern` is lexed
// with the same lexer; `->` is normalized to `.` on both sides; a trailing
// `=` in the pattern must match a literal `=` token (assignment), never a
// comparison (the lexer keeps `!=`/`==` whole, so this is sound). Returns
// the token index of the first match in [begin, end), or npos.
std::size_t find_pattern(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end, const std::vector<Token>& pattern);

}  // namespace sack::analysis
