// Mediation checks: coverage, ordering, consistency, drift.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/extractor.h"
#include "analysis/manifest.h"
#include "analysis/report.h"

namespace sack::analysis {

// The fully-extracted source tree plus name-resolution indexes.
struct Corpus {
  HookTable table;
  std::vector<SourceFile> files;
  std::map<std::string, std::vector<const FunctionDef*>> by_name;
  std::map<std::string, const FunctionDef*> by_qualified;

  const FunctionDef* find_entry(const std::string& qualified) const;
  const std::vector<Token>* tokens_of(const FunctionDef* fn) const;
};

Corpus build_corpus(HookTable table, std::vector<SourceFile> files);

// How a hook is reachable from one entry point.
struct HookReach {
  bool unconditional = false;
  bool via_notify = false;
  const HookCall* site = nullptr;   // representative dispatch site
  const FunctionDef* in = nullptr;  // function containing that site
};

struct Reachability {
  std::map<std::string, HookReach> hooks;
  std::set<const FunctionDef*> functions;  // everything reachable
};

// Depth-bounded call-graph walk from `entry`. Conditional call edges and
// conditional dispatch sites taint reachability: a hook is `unconditional`
// only if some chain of unconditional edges leads to an unconditional
// dispatch. Functions whose qualified name starts with one of `exclude`
// never resolve as call targets.
Reachability compute_reachability(const Corpus& corpus,
                                  const FunctionDef* entry,
                                  const std::vector<std::string>& exclude);

// Runs every check; `manifest_path` is used for provenance on
// manifest-level findings.
std::vector<Finding> run_checks(const Corpus& corpus, const Manifest& manifest,
                                const std::string& manifest_path,
                                RunStats& stats);

}  // namespace sack::analysis
