// sack-hookcheck driver: ties manifest + extraction + checks together.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/checks.h"
#include "analysis/manifest.h"
#include "analysis/report.h"

namespace sack::analysis {

struct HookcheckResult {
  std::string fatal;  // non-empty: could not run (bad manifest / IO error)
  std::vector<Finding> findings;
  RunStats stats;

  bool ok() const { return fatal.empty(); }
  std::size_t errors() const { return count_errors(findings); }
};

// In-memory run: `sources` are (path, content) pairs; the hook header is
// looked up among them by the manifest's hook_header (suffix match). Used by
// the unit tests and the benchmark, and by run_hookcheck below.
HookcheckResult run_hookcheck_on_sources(
    const std::string& manifest_text, const std::string& manifest_path,
    const std::vector<std::pair<std::string, std::string>>& sources);

// Filesystem run: reads the manifest at `manifest_path`, then scans the
// manifest's `sources` directories (plus the hook header) relative to
// `root` for .h/.cpp files.
HookcheckResult run_hookcheck(const std::string& root,
                              const std::string& manifest_path);

}  // namespace sack::analysis
