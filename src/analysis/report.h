// Finding model and rendering (text + JSON) for sack-hookcheck.
#pragma once

#include <string>
#include <vector>

namespace sack::analysis {

enum class Severity : std::uint8_t { error, warning };

// Stable finding classes; scripts key off these, so renames are breaking.
//   missing-hook         required/conditional hook not reachable from entry
//   conditional-hook     required hook reachable only on some paths
//   hook-after-mutation  hook runs after the state change it guards
//   stale-order-pattern  ordering anchor no longer matches the source
//   unguarded-hook       verdict assigned but never checked
//   hardcoded-denial     denial path returns a literal, not the verdict
//   swallowed-denial     verdict checked but denial path doesn't return
//   notify-discards-verdict  Errno hook dispatched through notify()
//   double-hook          same hook fires twice unconditionally on one path
//   dead-hook            hook declared in SecurityModule but never dispatched
//   opaque-dispatch      lsm dispatch whose closure names no known hook
//   unlisted-syscall     sys_* entry point absent from the manifest
//   manifest-error       manifest references unknown hooks/entries
//   undeclared-hook      (warn) reachable hook the manifest doesn't list
struct Finding {
  Severity severity = Severity::error;
  std::string cls;
  std::string file;
  int line = 0;
  std::string entry;  // syscall entry the finding belongs to, if any
  std::string hook;   // hook involved, if any
  std::string message;
};

struct RunStats {
  std::size_t files = 0;
  std::size_t functions = 0;
  std::size_t dispatch_sites = 0;
  std::size_t entries_checked = 0;
  std::size_t hooks_in_table = 0;
  double parse_ms = 0.0;
  double check_ms = 0.0;
};

std::size_t count_errors(const std::vector<Finding>& findings);
std::size_t count_warnings(const std::vector<Finding>& findings);

// `file:line: severity: [class] message (entry=..., hook=...)` lines,
// errors first, then warnings, each group sorted by file/line.
std::string render_text(const std::vector<Finding>& findings,
                        const RunStats& stats);

// Machine-readable report: {"findings": [...], "stats": {...}}.
std::string render_json(const std::vector<Finding>& findings,
                        const RunStats& stats);

}  // namespace sack::analysis
