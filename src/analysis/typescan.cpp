#include "analysis/typescan.h"

#include <cstddef>

namespace sack::analysis {
namespace {

std::size_t match_paren(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].is("(")) ++depth;
    else if (t[i].is(")") && --depth == 0) return i;
  }
  return std::string::npos;
}

std::size_t match_brace(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].is("{")) ++depth;
    else if (t[i].is("}") && --depth == 0) return i;
  }
  return std::string::npos;
}

// After a member function's parameter `)`, consumes qualifiers, annotation
// macros, `= default/0`, the constructor init list, and the body. Returns the
// index just past the function (after its `}` or `;`).
std::size_t skip_function_tail(const std::vector<Token>& t, std::size_t i,
                               std::size_t end) {
  while (i < end) {
    if (t[i].is(";")) return i + 1;
    if (t[i].is("{")) {
      std::size_t c = match_brace(t, i);
      if (c == std::string::npos || c >= end) return end;
      i = c + 1;
      // A `,` after the group means it was a brace-init entry of a ctor
      // init list, not the body — keep going.
      if (i < end && t[i].is(",")) { ++i; continue; }
      return i;
    }
    ++i;
  }
  return end;
}

bool type_is_mutex(const std::string& type) {
  return type.find("Mutex") != std::string::npos ||
         type.find("mutex") != std::string::npos;
}

struct Scanner {
  const std::vector<Token>& t;
  std::string file;
  std::vector<ClassDecl> out;

  // Walks a namespace-level scope [begin, end): descends into namespaces and
  // class definitions, skips everything else (function bodies, enums, ...).
  void scan_namespace(std::size_t begin, std::size_t end) {
    std::size_t i = begin;
    while (i < end) {
      const Token& tok = t[i];
      if (tok.ident_is("namespace")) {
        std::size_t j = i + 1;
        while (j < end && !t[j].is("{") && !t[j].is(";") && !t[j].is("="))
          ++j;
        if (j < end && t[j].is("{")) {
          std::size_t c = match_brace(t, j);
          if (c == std::string::npos || c > end) c = end;
          scan_namespace(j + 1, c);
          i = c + 1;
          continue;
        }
        i = j + 1;
        continue;
      }
      if (is_class_kw(i)) {
        i = scan_class_def(i, end, "");
        continue;
      }
      if (tok.ident_is("enum")) {
        i = skip_enum(i, end);
        continue;
      }
      if (tok.is("{")) {  // stray block (e.g. a free function body we missed)
        std::size_t c = match_brace(t, i);
        i = (c == std::string::npos || c > end) ? end : c + 1;
        continue;
      }
      ++i;
    }
  }

 private:
  bool is_class_kw(std::size_t i) const {
    return (t[i].ident_is("class") || t[i].ident_is("struct") ||
            t[i].ident_is("union")) &&
           !(i > 0 && t[i - 1].ident_is("enum"));
  }

  std::size_t skip_enum(std::size_t i, std::size_t end) const {
    std::size_t j = i + 1;
    while (j < end && !t[j].is("{") && !t[j].is(";")) ++j;
    if (j < end && t[j].is("{")) {
      std::size_t c = match_brace(t, j);
      return (c == std::string::npos || c > end) ? end : c + 1;
    }
    return j + 1;
  }

  // `i` points at class/struct/union. Returns the index past the definition.
  std::size_t scan_class_def(std::size_t i, std::size_t end,
                             const std::string& outer) {
    std::string name;
    std::size_t j = i + 1;
    while (j < end && t[j].kind == TokKind::ident && !t[j].ident_is("final")) {
      name = t[j].text;  // last ident before `{`/`:`/`;` (skips attributes)
      ++j;
      // Out-of-line nested definition: `class Outer::Inner : ... {`.
      while (j + 1 < end && t[j].is("::") && t[j + 1].kind == TokKind::ident) {
        name += "::" + t[j + 1].text;
        j += 2;
      }
      break;
    }
    // Base clause / final / template-args in the name are walked over; a `;`
    // first means forward declaration.
    while (j < end && !t[j].is("{") && !t[j].is(";")) ++j;
    if (j >= end || t[j].is(";")) return j + 1;
    std::size_t close = match_brace(t, j);
    if (close == std::string::npos || close > end) close = end;
    if (!name.empty()) {
      std::string qual = outer.empty() ? name : outer + "::" + name;
      scan_class_body(j + 1, close, qual, t[i].line);
    }
    return close + 1;
  }

  void scan_class_body(std::size_t begin, std::size_t end,
                       const std::string& qual, int line) {
    ClassDecl cd;
    cd.name = qual;
    cd.file = file;
    cd.line = line;

    std::vector<std::size_t> decl;  // token indexes of the pending declaration
    std::string guarded_by;
    bool saw_eq = false;

    auto reset = [&] {
      decl.clear();
      guarded_by.clear();
      saw_eq = false;
    };

    std::size_t i = begin;
    while (i < end) {
      const Token& tok = t[i];

      // Access specifiers.
      if ((tok.ident_is("public") || tok.ident_is("private") ||
           tok.ident_is("protected")) &&
          i + 1 < end && t[i + 1].is(":")) {
        reset();
        i += 2;
        continue;
      }
      if (tok.ident_is("using") || tok.ident_is("typedef") ||
          tok.ident_is("friend") || tok.ident_is("static_assert")) {
        while (i < end && !t[i].is(";")) ++i;
        reset();
        ++i;
        continue;
      }
      if (is_class_kw(i)) {
        i = scan_class_def(i, end, qual);
        reset();
        continue;
      }
      if (tok.ident_is("enum")) {
        i = skip_enum(i, end);
        reset();
        continue;
      }

      if (tok.is(";")) {
        finalize(cd, decl, guarded_by);
        reset();
        ++i;
        continue;
      }

      if (!saw_eq && tok.is("(")) {
        // `name SACK_GUARDED_BY(mu)` — annotation attaches to the decl.
        if (!decl.empty() && t[decl.back()].ident_is("SACK_GUARDED_BY")) {
          std::size_t c = match_paren(t, i);
          if (c == std::string::npos || c > end) break;
          for (std::size_t k = i + 1; k < c; ++k) {
            if (!guarded_by.empty()) guarded_by += ' ';
            guarded_by += t[k].text;
          }
          decl.pop_back();  // drop the macro name from the declaration
          i = c + 1;
          continue;
        }
        // Anything else with a paren at class scope is a member function
        // (or an `operator...` whose paren follows punctuation): skip its
        // parameter list and tail/body wholesale.
        bool preceded_by_ident =
            !decl.empty() && t[decl.back()].kind == TokKind::ident;
        bool is_operator = false;
        for (std::size_t k : decl)
          if (t[k].ident_is("operator")) is_operator = true;
        if (preceded_by_ident || is_operator) {
          std::size_t c = match_paren(t, i);
          if (c == std::string::npos || c > end) break;
          i = skip_function_tail(t, c + 1, end);
          reset();
          continue;
        }
        // Unmodeled (function-pointer field, macro): skip to `;`.
        while (i < end && !t[i].is(";")) ++i;
        reset();
        ++i;
        continue;
      }

      if (tok.is("{")) {
        // Brace initializer of a field (`hits_{0}`) when a decl is pending,
        // otherwise a stray block — skip either way.
        std::size_t c = match_brace(t, i);
        if (c == std::string::npos || c > end) break;
        if (decl.empty()) reset();
        i = c + 1;
        continue;
      }

      if (tok.is("=")) saw_eq = true;
      if (!saw_eq) decl.push_back(i);
      ++i;
      continue;
    }
    finalize(cd, decl, guarded_by);

    for (const auto& f : cd.fields)
      if (f.is_mutex) cd.mutexes.push_back(f.name);
    out.push_back(std::move(cd));
  }

  void finalize(ClassDecl& cd, const std::vector<std::size_t>& decl,
                const std::string& guarded_by) {
    if (decl.empty()) return;
    FieldDecl f;
    f.guarded_by = guarded_by;
    int angle = 0;
    std::size_t name_at = std::string::npos;
    for (std::size_t k : decl) {
      const Token& x = t[k];
      if (x.is("<")) ++angle;
      else if (x.is(">")) --angle;
      else if (x.is(">>")) angle -= 2;
      if (angle == 0 && x.kind == TokKind::ident) {
        if (x.ident_is("mutable")) { f.is_mutable = true; continue; }
        if (x.ident_is("static")) { f.is_static = true; continue; }
        if (x.ident_is("const")) { f.is_const = true; continue; }
        if (x.ident_is("constexpr") || x.ident_is("inline") ||
            x.ident_is("volatile") || x.ident_is("virtual") ||
            x.ident_is("explicit") || x.ident_is("template") ||
            x.ident_is("typename"))
          continue;
        name_at = k;  // last plain identifier wins: that's the field name
      }
    }
    if (name_at == std::string::npos) return;
    f.name = t[name_at].text;
    f.line = t[name_at].line;
    for (std::size_t k : decl) {
      if (k == name_at) break;
      if (!f.type.empty()) f.type += ' ';
      f.type += t[k].text;
    }
    if (f.type.empty()) return;  // lone identifier: not a declaration
    f.is_mutex = type_is_mutex(f.type);
    cd.fields.push_back(std::move(f));
  }
};

}  // namespace

std::vector<ClassDecl> scan_types(const std::string& path,
                                  const std::vector<Token>& t) {
  Scanner s{t, path, {}};
  s.scan_namespace(0, t.size());
  return std::move(s.out);
}

}  // namespace sack::analysis
