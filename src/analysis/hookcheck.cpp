#include "analysis/hookcheck.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sack::analysis {
namespace {

namespace fs = std::filesystem;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

HookcheckResult run_hookcheck_on_sources(
    const std::string& manifest_text, const std::string& manifest_path,
    const std::vector<std::pair<std::string, std::string>>& sources) {
  HookcheckResult result;
  auto t0 = std::chrono::steady_clock::now();

  ManifestParse mp = parse_manifest(manifest_text);
  if (!mp.error.empty()) {
    result.fatal = mp.error;
    return result;
  }
  const Manifest& manifest = mp.manifest;
  if (manifest.hook_header.empty()) {
    result.fatal = "manifest is missing hook_header";
    return result;
  }

  // The hook vocabulary comes from the SecurityModule interface header.
  const std::string* header_text = nullptr;
  for (const auto& [path, text] : sources) {
    if (ends_with(path, manifest.hook_header) ||
        ends_with(manifest.hook_header, path)) {
      header_text = &text;
      break;
    }
  }
  if (!header_text) {
    result.fatal = "hook header '" + manifest.hook_header +
                   "' not among the scanned sources";
    return result;
  }
  HookTable table = parse_hook_table(lex(*header_text));
  if (table.hooks.empty()) {
    result.fatal = "no hooks found in '" + manifest.hook_header +
                   "' — wrong header?";
    return result;
  }

  std::vector<SourceFile> files;
  files.reserve(sources.size());
  for (const auto& [path, text] : sources)
    files.push_back(extract(path, lex(text), table));
  Corpus corpus = build_corpus(std::move(table), std::move(files));
  result.stats.parse_ms = ms_since(t0);

  auto t1 = std::chrono::steady_clock::now();
  result.findings =
      run_checks(corpus, manifest, manifest_path, result.stats);
  result.stats.check_ms = ms_since(t1);
  return result;
}

HookcheckResult run_hookcheck(const std::string& root,
                              const std::string& manifest_path) {
  HookcheckResult result;

  auto read_file = [](const fs::path& p, std::string& out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
  };

  std::string manifest_text;
  if (!read_file(manifest_path, manifest_text)) {
    result.fatal = "cannot read manifest '" + manifest_path + "'";
    return result;
  }
  ManifestParse mp = parse_manifest(manifest_text);
  if (!mp.error.empty()) {
    result.fatal = mp.error;
    return result;
  }

  std::vector<std::pair<std::string, std::string>> sources;
  std::error_code ec;
  auto add_file = [&](const fs::path& p) {
    std::string text;
    if (!read_file(p, text)) return;
    // Report repo-relative paths when the file lives under `root`.
    std::string rel = fs::relative(p, root, ec).generic_string();
    if (ec || rel.rfind("..", 0) == 0) rel = p.generic_string();
    sources.emplace_back(std::move(rel), std::move(text));
  };

  for (const auto& dir : mp.manifest.sources) {
    fs::path base = fs::path(root) / dir;
    if (!fs::is_directory(base, ec)) {
      result.fatal = "source directory '" + base.generic_string() +
                     "' does not exist";
      return result;
    }
    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator(base, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file(ec)) continue;
      std::string name = it->path().generic_string();
      if (ends_with(name, ".h") || ends_with(name, ".cpp") ||
          ends_with(name, ".cc") || ends_with(name, ".hpp"))
        paths.push_back(it->path());
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& p : paths) add_file(p);
  }
  // Make sure the hook header itself is present even if it lives outside
  // the listed source dirs.
  if (!mp.manifest.hook_header.empty()) {
    bool have = false;
    for (const auto& [path, text] : sources) {
      (void)text;
      if (ends_with(path, mp.manifest.hook_header)) {
        have = true;
        break;
      }
    }
    if (!have) add_file(fs::path(root) / mp.manifest.hook_header);
  }

  return run_hookcheck_on_sources(manifest_text, manifest_path, sources);
}

}  // namespace sack::analysis
