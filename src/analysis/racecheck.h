// sack-racecheck driver: the static concurrency-discipline analyzer.
//
// Three pass families over the token/type/call-graph corpus, checked against
// the declared contract in docs/concurrency_manifest.toml:
//
//   lockset / annotation drift
//     every mutable field of a [guarded.*] class must be SACK_GUARDED_BY a
//     declared lock, a lock itself, a lock-free type, or exempted with a
//     reason; accesses to guarded fields must hold the lock locally, be
//     annotated SACK_REQUIRES, or be reachable only from lock-holding /
//     exempt call-graph roots (clang's per-function -Wthread-safety waves
//     unannotated cross-TU helpers through; the call graph does not);
//
//   RCU snapshot discipline
//     inside one decision scope an [rcu.*] cell may be load()ed once —
//     a second snapshot is a TOCTOU across generations; snapshot-derived
//     raw pointers (.get()/.data()/&-of) must not be returned or stored
//     into fields (lifetime escape past the snapshot's retire point); and
//     snapshots declared immutable must never be written through;
//
//   atomics & fault-site registry lint
//     relaxed-ordering store()/exchange() is allowed only for receivers on
//     the [atomics] allowlist (counters, never publication flags), and every
//     fault-probe string in source must exist in the central registry while
//     every registered site must still be probed somewhere (drift check).
//
// Finding classes (stable; scripts key off these):
//   unannotated-field, annotation-drift, unlocked-access,
//   rcu-double-load, rcu-escape, rcu-mutation,
//   relaxed-publication, unknown-fault-site, unprobed-fault-site,
//   manifest-error
//
// Exit contract mirrors sack-verify/sack-hookcheck: 0 clean, 1 error
// findings, 2 fatal (unreadable manifest / IO).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/concurrency.h"
#include "analysis/report.h"

namespace sack::analysis {

struct RacecheckStats {
  std::size_t files = 0;
  std::size_t functions = 0;
  std::size_t classes = 0;
  std::size_t guarded_fields = 0;
  std::size_t rcu_cells = 0;
  std::size_t fault_sites_registered = 0;
  std::size_t fault_probes = 0;
  double parse_ms = 0.0;
  double check_ms = 0.0;
};

struct RacecheckResult {
  std::string fatal;  // non-empty: could not run at all (IO error)
  std::vector<Finding> findings;
  RacecheckStats stats;

  bool ok() const { return fatal.empty(); }
  std::size_t errors() const { return count_errors(findings); }
};

// In-memory run over (path, content) pairs; manifest parse diagnostics
// surface as manifest-error findings (file:line), never as crashes.
RacecheckResult run_racecheck_on_sources(
    const std::string& manifest_text, const std::string& manifest_path,
    const std::vector<std::pair<std::string, std::string>>& sources);

// Filesystem run: reads the manifest, scans its `sources` dirs under `root`
// for .h/.cpp/.cc/.hpp files (repo-relative paths, sorted).
RacecheckResult run_racecheck(const std::string& root,
                              const std::string& manifest_path);

std::string render_racecheck_text(const RacecheckResult& r);
std::string render_racecheck_json(const RacecheckResult& r);

// --- raw-text fault-site scanning (exposed for unit tests) ----------------
// The lexer deliberately drops string contents, so the fault pass re-scans
// the raw text, comment-aware, tolerating newlines between `(` and the site
// string (several probes in the tree wrap).

struct FaultProbe {
  std::string site;
  int line = 0;
};

// fire("x") / fail_errno("x") / register_site("x") occurrences.
std::vector<FaultProbe> scan_fault_probes(const std::string& text);

// The `kBuiltinSites[] = { {"name", "desc"}, ... }` catalogue.
std::vector<FaultProbe> scan_fault_registry(const std::string& text);

}  // namespace sack::analysis
