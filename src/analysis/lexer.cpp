#include "analysis/lexer.h"

#include <array>
#include <cctype>

namespace sack::analysis {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Longest-match punctuator table. Three-char first, then two-char.
// Keeping `!=` / `==` / `+=` as single tokens is load-bearing: the
// mutation-anchor matcher treats a bare `=` token as "assignment", and that
// only works if comparisons never split into `!` `=`.
constexpr std::array<std::string_view, 5> kPunct3 = {
    "<<=", ">>=", "...", "->*", "<=>",
};
constexpr std::array<std::string_view, 19> kPunct2 = {
    "->", "::", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++",
};

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  out.reserve(src.size() / 4);
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;

  auto bump = [&](char c) {
    if (c == '\n') ++line;
  };

  while (i < n) {
    char c = src[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      bump(c);
      ++i;
      continue;
    }
    // Preprocessor directive: drop the whole (possibly continued) line.
    // Only fires at a point where the previous char on this line was
    // whitespace-only, which is true whenever we meet '#' as a token start —
    // '#' is not a valid C++ operator outside the preprocessor.
    if (c == '#') {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        bump(src[i]);
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Raw string literal R"delim( ... )delim", including encoding-prefixed
    // forms (u8R, uR, UR, LR). Without the prefix check those lex as an
    // identifier followed by a normal string, which leaks the raw string's
    // *contents* into the token stream — inside-out for an analyzer that
    // deliberately drops literal text.
    std::size_t raw_at = std::string_view::npos;
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      raw_at = i;
    } else if ((c == 'u' || c == 'U' || c == 'L') &&
               !(i > 0 && ident_cont(src[i - 1]))) {
      std::size_t r = i + 1;
      if (c == 'u' && r < n && src[r] == '8') ++r;
      if (r + 1 < n && src[r] == 'R' && src[r + 1] == '"') raw_at = i;
    }
    if (raw_at != std::string_view::npos) {
      i = raw_at;
      while (src[i] != 'R') ++i;  // skip the encoding prefix
      std::size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      std::string close = ")";
      close.append(src.substr(i + 2, d - (i + 2)));
      close.push_back('"');
      std::size_t end = src.find(close, d);
      for (std::size_t k = i; k < (end == std::string_view::npos ? n : end);
           ++k)
        bump(src[k]);
      out.push_back({TokKind::str, "\"\"", line});
      i = (end == std::string_view::npos) ? n : end + close.size();
      continue;
    }
    // String / char literal (contents dropped).
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t start_line = line;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          bump(src[i + 1]);
          i += 2;
          continue;
        }
        bump(src[i]);
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.push_back({quote == '"' ? TokKind::str : TokKind::chr,
                     quote == '"' ? "\"\"" : "''",
                     static_cast<int>(start_line)});
      continue;
    }
    // Number (incl. hex/float/suffixes — verbatim, we never interpret them).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t start = i;
      ++i;
      while (i < n && (ident_cont(src[i]) || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P'))))
        ++i;
      out.push_back({TokKind::number, std::string(src.substr(start, i - start)),
                     line});
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_cont(src[i])) ++i;
      out.push_back({TokKind::ident, std::string(src.substr(start, i - start)),
                     line});
      continue;
    }
    // Punctuator, longest match first.
    bool matched = false;
    if (i + 2 < n) {
      std::string_view three = src.substr(i, 3);
      for (auto p : kPunct3) {
        if (three == p) {
          out.push_back({TokKind::punct, std::string(p), line});
          i += 3;
          matched = true;
          break;
        }
      }
    }
    if (!matched && i + 1 < n) {
      std::string_view two = src.substr(i, 2);
      // `--` is deliberately absent from kPunct2 so that `operator--` still
      // lexes; add it here where it cannot collide with anything we match on.
      if (two == "--") {
        out.push_back({TokKind::punct, "--", line});
        i += 2;
        matched = true;
      } else {
        for (auto p : kPunct2) {
          if (two == p) {
            out.push_back({TokKind::punct, std::string(p), line});
            i += 2;
            matched = true;
            break;
          }
        }
      }
    }
    if (!matched) {
      out.push_back({TokKind::punct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace sack::analysis
