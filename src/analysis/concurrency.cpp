#include "analysis/concurrency.h"

#include <cctype>
#include <sstream>

namespace sack::analysis {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string strip_comment(const std::string& s) {
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"' && (i == 0 || s[i - 1] != '\\')) in_str = !in_str;
    if (s[i] == '#' && !in_str) return s.substr(0, i);
  }
  return s;
}

struct Parser {
  std::istringstream in;
  int line_no = 0;
  std::vector<ConcDiag>* diags = nullptr;

  // Unlike the hookcheck manifest parser, `fail` records and keeps going:
  // a contract review wants the whole list of problems at once.
  void fail(const std::string& msg) { diags->push_back({line_no, msg}); }

  bool parse_string(const std::string& s, std::size_t& i, std::string& out) {
    if (i >= s.size() || s[i] != '"') {
      fail("expected string");
      return false;
    }
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out.push_back(s[i]);
      ++i;
    }
    if (i >= s.size()) {
      fail("unterminated string");
      return false;
    }
    ++i;
    return true;
  }

  bool parse_array(const std::string& s, std::size_t& i,
                   std::vector<std::string>& out) {
    if (i >= s.size() || s[i] != '[') {
      fail("expected array");
      return false;
    }
    ++i;
    while (true) {
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      std::string v;
      if (!parse_string(s, i, v)) return false;
      out.push_back(v);
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  // Splits "name: reason"; a missing or empty reason is a diagnostic, not a
  // silently-tolerated exemption.
  bool parse_reasoned(const std::string& raw, const char* what,
                      ReasonedName& out) {
    std::size_t colon = raw.find(':');
    out.line = line_no;
    if (colon == std::string::npos) {
      fail(std::string(what) + " '" + raw +
           "' is missing a ': reason' justification");
      return false;
    }
    out.name = trim(raw.substr(0, colon));
    out.reason = trim(raw.substr(colon + 1));
    if (out.name.empty() || out.reason.empty()) {
      fail(std::string(what) + " '" + raw +
           "' is missing a ': reason' justification");
      return false;
    }
    return true;
  }

  bool parse_reasoned_array(const std::string& val, const char* what,
                            std::vector<ReasonedName>& out) {
    std::size_t i = 0;
    std::vector<std::string> raws;
    if (!parse_array(val, i, raws)) return false;
    bool ok = true;
    for (const auto& r : raws) {
      ReasonedName rn;
      if (parse_reasoned(r, what, rn)) out.push_back(rn);
      else ok = false;
    }
    return ok;
  }
};

}  // namespace

ConcurrencyParse parse_concurrency_manifest(const std::string& text) {
  ConcurrencyParse result;
  ConcurrencyManifest& m = result.manifest;
  Parser p;
  p.in.str(text);
  p.diags = &result.diags;

  enum class Section { none, racecheck, guarded, rcu, atomics, fault_sites };
  Section section = Section::none;
  GuardedSpec* g = nullptr;
  RcuSpec* r = nullptr;

  std::string raw_line;
  while (std::getline(p.in, raw_line)) {
    ++p.line_no;
    std::string line = trim(strip_comment(raw_line));
    if (line.empty()) continue;

    if (line.front() == '[') {
      g = nullptr;
      r = nullptr;
      section = Section::none;
      if (line.back() != ']') {
        p.fail("unterminated section header");
        continue;
      }
      std::string name = trim(line.substr(1, line.size() - 2));
      if (name == "racecheck") {
        section = Section::racecheck;
      } else if (name == "atomics") {
        section = Section::atomics;
      } else if (name == "fault_sites") {
        section = Section::fault_sites;
      } else if (name.rfind("guarded.", 0) == 0) {
        std::string tag = name.substr(8);
        for (const auto& prev : m.guarded)
          if (prev.tag == tag)
            p.fail("duplicate lock class section [guarded." + tag + "]");
        section = Section::guarded;
        m.guarded.push_back({});
        g = &m.guarded.back();
        g->tag = tag;
        g->decl_line = p.line_no;
      } else if (name.rfind("rcu.", 0) == 0) {
        std::string tag = name.substr(4);
        for (const auto& prev : m.rcu)
          if (prev.tag == tag)
            p.fail("duplicate rcu section [rcu." + tag + "]");
        section = Section::rcu;
        m.rcu.push_back({});
        r = &m.rcu.back();
        r->tag = tag;
        r->decl_line = p.line_no;
      } else {
        p.fail("unknown section [" + name + "]");
      }
      continue;
    }

    std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      p.fail("expected key = value");
      continue;
    }
    std::string key = trim(line.substr(0, eq));
    std::string val = trim(line.substr(eq + 1));
    // Multi-line arrays: keep appending lines until the bracket closes.
    if (!val.empty() && val.front() == '[') {
      auto closed = [](const std::string& s) {
        bool in_str = false;
        int depth = 0;
        for (std::size_t k = 0; k < s.size(); ++k) {
          if (s[k] == '"' && (k == 0 || s[k - 1] != '\\')) in_str = !in_str;
          if (in_str) continue;
          if (s[k] == '[') ++depth;
          if (s[k] == ']') --depth;
        }
        return depth <= 0;
      };
      std::string more;
      while (!closed(val) && std::getline(p.in, more)) {
        ++p.line_no;
        val += ' ' + trim(strip_comment(more));
      }
    }
    std::size_t i = 0;

    switch (section) {
      case Section::racecheck:
        if (key == "sources") p.parse_array(val, i, m.sources);
        else if (key == "lockfree_types") p.parse_array(val, i, m.lockfree_types);
        else if (key == "exempt_contexts")
          p.parse_array(val, i, m.exempt_contexts);
        else if (key == "lock_types") p.parse_array(val, i, m.lock_types);
        else p.fail("unknown key '" + key + "' in [racecheck]");
        break;
      case Section::guarded:
        if (key == "class") p.parse_string(val, i, g->class_name);
        else if (key == "mutexes") {
          p.parse_array(val, i, g->mutexes);
          for (std::size_t a = 0; a < g->mutexes.size(); ++a)
            for (std::size_t b = a + 1; b < g->mutexes.size(); ++b)
              if (g->mutexes[a] == g->mutexes[b])
                p.fail("duplicate lock '" + g->mutexes[a] + "' in [guarded." +
                       g->tag + "]");
        } else if (key == "accessors") p.parse_array(val, i, g->accessors);
        else if (key == "helpers") p.parse_array(val, i, g->helpers);
        else if (key == "exempt")
          p.parse_reasoned_array(val, "field exemption", g->exempt);
        else if (key == "exempt_rest") {
          p.parse_string(val, i, g->exempt_rest);
          if (g->exempt_rest.empty())
            p.fail("exempt_rest in [guarded." + g->tag +
                   "] needs a non-empty reason");
        } else p.fail("unknown key '" + key + "' in [guarded." + g->tag + "]");
        break;
      case Section::rcu:
        if (key == "cell") p.parse_string(val, i, r->cell);
        else if (key == "class") p.parse_string(val, i, r->owner);
        else if (key == "loaders") p.parse_array(val, i, r->loaders);
        else if (key == "immutable") {
          if (val == "true") r->immutable = true;
          else if (val == "false") r->immutable = false;
          else p.fail("immutable must be true or false");
        } else if (key == "exempt_double_load")
          p.parse_reasoned_array(val, "double-load exemption",
                                 r->exempt_double_load);
        else if (key == "exempt_escape")
          p.parse_reasoned_array(val, "escape exemption", r->exempt_escape);
        else p.fail("unknown key '" + key + "' in [rcu." + r->tag + "]");
        break;
      case Section::atomics:
        if (key == "relaxed_ok")
          p.parse_reasoned_array(val, "relaxed-store allowance", m.relaxed_ok);
        else p.fail("unknown key '" + key + "' in [atomics]");
        break;
      case Section::fault_sites:
        if (key == "registry") p.parse_string(val, i, m.fault_registry);
        else if (key == "external")
          p.parse_reasoned_array(val, "external site", m.fault_external);
        else p.fail("unknown key '" + key + "' in [fault_sites]");
        break;
      case Section::none:
        p.fail("key outside any section");
        break;
    }
  }

  // Structural cross-checks that don't need the source tree.
  for (std::size_t a = 0; a < m.guarded.size(); ++a) {
    if (m.guarded[a].class_name.empty()) {
      result.diags.push_back(
          {m.guarded[a].decl_line,
           "[guarded." + m.guarded[a].tag + "] is missing class"});
      continue;
    }
    for (std::size_t b = a + 1; b < m.guarded.size(); ++b)
      if (m.guarded[a].class_name == m.guarded[b].class_name)
        result.diags.push_back(
            {m.guarded[b].decl_line, "duplicate lock class '" +
                                         m.guarded[b].class_name +
                                         "' (also [guarded." +
                                         m.guarded[a].tag + "])"});
  }
  for (const auto& spec : m.rcu) {
    if (spec.cell.empty())
      result.diags.push_back(
          {spec.decl_line, "[rcu." + spec.tag + "] is missing cell"});
    if (spec.owner.empty())
      result.diags.push_back(
          {spec.decl_line, "[rcu." + spec.tag + "] is missing class"});
  }

  // Defaults mirroring the tree's idiom.
  if (m.lock_types.empty())
    m.lock_types = {"MutexLock",    "WriteLock",   "SharedReadLock",
                    "lock_guard",   "scoped_lock", "unique_lock",
                    "shared_lock"};
  return result;
}

}  // namespace sack::analysis
