// Class/field extraction for sack-racecheck.
//
// Works on the token stream from lexer.h, like extractor.h, but answers a
// different question: not "what does this function call", but "what state
// does this class own and how is it annotated". The scanner understands
// just enough C++ structure for lockset analysis:
//
//   * class/struct/union definitions at namespace scope and nested inside
//     other classes (nested names are qualified: `AccessVectorCache::Shard`);
//   * field declarations with their type tokens, `SACK_GUARDED_BY(...)`
//     annotation argument, and const/mutable/static storage flags;
//   * member function bodies are skipped (locals are not fields), including
//     constructor init lists, `= default`, and trailing annotation macros.
//
// Anonymous aggregates and function-pointer fields are out of model — the
// tree has neither at class scope, and the fixtures pin the supported shape.
#pragma once

#include <string>
#include <vector>

#include "analysis/lexer.h"

namespace sack::analysis {

struct FieldDecl {
  std::string name;
  int line = 0;
  std::string type;        // declaration tokens joined with single spaces
  std::string guarded_by;  // SACK_GUARDED_BY argument text, "" when absent
  bool is_mutable = false;
  bool is_const = false;   // top-level const (not const inside template args)
  bool is_static = false;
  bool is_mutex = false;   // type names a Mutex/mutex flavor
};

struct ClassDecl {
  std::string name;  // nested classes qualified with "::", namespaces dropped
  std::string file;
  int line = 0;
  std::vector<FieldDecl> fields;
  std::vector<std::string> mutexes;  // names of mutex-typed fields
};

// Scans one file's tokens for class definitions and their fields.
std::vector<ClassDecl> scan_types(const std::string& path,
                                  const std::vector<Token>& t);

}  // namespace sack::analysis
