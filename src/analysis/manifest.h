// The mediation manifest: which syscall entry points must reach which LSM
// hooks, and in what order relative to the state they guard.
//
// The manifest is a checked-in TOML file (docs/hook_manifest.toml). Only the
// TOML subset the manifest needs is implemented — sections, string / bool /
// integer values, and arrays of strings — because the container ships no
// TOML library and the analyzer must stay dependency-free.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace sack::analysis {

struct OrderRule {
  std::string hook;     // hook that must dominate...
  std::string pattern;  // ...this token pattern (the guarded mutation)
  std::string raw;      // original "hook < pattern" text, for messages
};

struct SyscallSpec {
  std::string name;                    // "sys_open"
  std::string entry;                   // "Kernel::sys_open"
  std::vector<std::string> require;    // hooks on every non-error path
  std::vector<std::string> conditional;  // hooks on some paths
  std::vector<std::string> notify;     // void hooks expected to fire
  std::vector<OrderRule> order;
  int decl_line = 0;  // manifest line, for provenance in findings
};

struct Manifest {
  std::vector<std::string> sources;   // directories to scan, repo-relative
  std::string hook_header;            // SecurityModule interface header
  std::vector<std::string> ignore_hooks;   // exempt from drift checks
  std::vector<std::string> extra_entries;  // non-sys_* entry points
  // Qualified-name prefixes excluded from call-graph resolution (e.g. the
  // user-space `Process::` wrapper: kernel code never calls into it, but
  // name-based resolution would otherwise route `buf.read()` through it).
  std::vector<std::string> exclude;
  // Universal hooks: required unconditionally reachable from *every*
  // `Kernel::sys_*` entry in the corpus — including [unmediated] ones, which
  // the per-spec pass skips. This is how a per-syscall-granularity hook
  // (task_syscall, the SFI gate) is reconciled without demoting the
  // unmediated list. Entries in universal_exempt (e.g. sys_exit, which
  // cannot be vetoed) are skipped.
  std::vector<std::string> universal_require;
  std::vector<std::string> universal_exempt;
  std::map<std::string, std::string> unmediated;  // syscall -> reason
  std::vector<SyscallSpec> syscalls;
};

// Parses manifest text. On failure the error message includes a line number.
struct ManifestParse {
  Manifest manifest;
  std::string error;  // empty on success
};
ManifestParse parse_manifest(const std::string& text);

}  // namespace sack::analysis
