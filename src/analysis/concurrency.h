// The declared concurrency contract for sack-racecheck.
//
// docs/concurrency_manifest.toml names, in one reviewable file, every piece
// of shared mutable state in the tree and the discipline that protects it:
//
//   [racecheck]            scan roots, lock-free types, exempt root contexts
//   [guarded.<tag>]        a class with a locking discipline: its lock
//                          fields, which functions may touch its state, and
//                          per-field exemptions (each with a reason)
//   [rcu.<tag>]            an RcuPtr publication cell: who may load it and
//                          which decision scopes are allowed to re-load
//   [atomics]              relaxed-ordering stores allowed as non-publication
//                          (counter reset etc.), each with a reason
//   [fault_sites]          where the central fault-site registry lives and
//                          which sites are intentionally external to it
//
// The parser is the same dependency-free TOML subset as manifest.cpp, but
// collects *multiple* line-numbered diagnostics instead of stopping at the
// first — a malformed contract should read as a review list, not a crash.
#pragma once

#include <string>
#include <vector>

namespace sack::analysis {

struct ConcDiag {
  int line = 0;
  std::string message;
};

// "name: reason" pair; the reason is mandatory wherever this appears —
// an exemption without a recorded justification is itself drift.
struct ReasonedName {
  std::string name;
  std::string reason;
  int line = 0;
};

struct GuardedSpec {
  std::string tag;
  int decl_line = 0;
  std::string class_name;              // as typescan qualifies it
  std::vector<std::string> mutexes;    // declared lock fields of the class
  std::vector<std::string> accessors;  // qualified-name prefixes; "*" = all
  std::vector<std::string> helpers;    // extra unqualified accessor functions
  std::vector<ReasonedName> exempt;    // per-field exemptions
  std::string exempt_rest;             // reason covering all unlisted fields
};

struct RcuSpec {
  std::string tag;
  int decl_line = 0;
  std::string cell;    // field name of the RcuPtr publication cell
  std::string owner;   // owning class, for provenance + existence check
  std::vector<std::string> loaders;  // accessor functions returning snapshots
  bool immutable = true;             // snapshots may never be mutated through
  std::vector<ReasonedName> exempt_double_load;  // function names
  std::vector<ReasonedName> exempt_escape;       // function names
};

struct ConcurrencyManifest {
  std::vector<std::string> sources;
  std::vector<std::string> lockfree_types;   // type substrings needing no lock
  std::vector<std::string> exempt_contexts;  // safe call-graph root prefixes
  std::vector<std::string> lock_types;       // lock-acquisition RAII types
  std::vector<GuardedSpec> guarded;
  std::vector<RcuSpec> rcu;
  std::vector<ReasonedName> relaxed_ok;      // allowed relaxed-store receivers
  std::string fault_registry;                // TU holding kBuiltinSites
  std::vector<ReasonedName> fault_external;  // sites outside the registry
};

struct ConcurrencyParse {
  ConcurrencyManifest manifest;
  std::vector<ConcDiag> diags;
  bool ok() const { return diags.empty(); }
};

ConcurrencyParse parse_concurrency_manifest(const std::string& text);

}  // namespace sack::analysis
