#include "analysis/checks.h"

#include <algorithm>

namespace sack::analysis {
namespace {

constexpr int kMaxDepth = 48;

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

bool excluded(const std::vector<std::string>& exclude,
              const std::string& qualified) {
  for (const auto& prefix : exclude)
    if (qualified.rfind(prefix, 0) == 0) return true;
  return false;
}

void dfs(const Corpus& corpus, const FunctionDef* fn, bool uncond,
         const std::vector<std::string>& exclude, Reachability& out,
         std::set<std::pair<const FunctionDef*, bool>>& visited, int depth) {
  if (depth > kMaxDepth) return;
  if (!visited.insert({fn, uncond}).second) return;
  out.functions.insert(fn);

  for (const HookCall& hc : fn->hooks) {
    bool u = uncond && !hc.conditional;
    auto [it, inserted] = out.hooks.emplace(hc.hook, HookReach{});
    HookReach& r = it->second;
    if (inserted || (u && !r.unconditional)) {
      r.unconditional = r.unconditional || u;
      r.via_notify = hc.via_notify;
      r.site = &hc;
      r.in = fn;
    }
    r.unconditional = r.unconditional || u;
  }

  for (const CallSite& c : fn->calls) {
    auto it = corpus.by_name.find(c.callee);
    if (it == corpus.by_name.end()) continue;
    for (const FunctionDef* target : it->second) {
      if (target == fn) continue;
      if (excluded(exclude, target->qualified)) continue;
      dfs(corpus, target, uncond && !c.conditional, exclude, out, visited,
          depth + 1);
    }
  }
}

Finding make(Severity sev, std::string cls, std::string file, int line,
             std::string entry, std::string hook, std::string msg) {
  Finding f;
  f.severity = sev;
  f.cls = std::move(cls);
  f.file = std::move(file);
  f.line = line;
  f.entry = std::move(entry);
  f.hook = std::move(hook);
  f.message = std::move(msg);
  return f;
}

}  // namespace

const FunctionDef* Corpus::find_entry(const std::string& qualified) const {
  auto it = by_qualified.find(qualified);
  if (it != by_qualified.end()) return it->second;
  // Fall back to an unambiguous unqualified match.
  std::string tail = qualified;
  std::size_t sep = tail.rfind("::");
  if (sep != std::string::npos) tail = tail.substr(sep + 2);
  auto nit = by_name.find(tail);
  if (nit != by_name.end() && nit->second.size() == 1)
    return nit->second.front();
  return nullptr;
}

const std::vector<Token>* Corpus::tokens_of(const FunctionDef* fn) const {
  for (const auto& f : files)
    if (f.path == fn->file) return &f.tokens;
  return nullptr;
}

Corpus build_corpus(HookTable table, std::vector<SourceFile> files) {
  Corpus c;
  c.table = std::move(table);
  c.files = std::move(files);
  for (const auto& f : c.files) {
    for (const auto& fn : f.functions) {
      c.by_name[fn.name].push_back(&fn);
      c.by_qualified.emplace(fn.qualified, &fn);
    }
  }
  return c;
}

Reachability compute_reachability(const Corpus& corpus,
                                  const FunctionDef* entry,
                                  const std::vector<std::string>& exclude) {
  Reachability out;
  std::set<std::pair<const FunctionDef*, bool>> visited;
  dfs(corpus, entry, /*uncond=*/true, exclude, out, visited, 0);
  return out;
}

std::vector<Finding> run_checks(const Corpus& corpus, const Manifest& manifest,
                                const std::string& manifest_path,
                                RunStats& stats) {
  std::vector<Finding> findings;
  const HookTable& table = corpus.table;
  stats.hooks_in_table = table.hooks.size();

  // --- manifest sanity -----------------------------------------------------
  auto check_hook_ref = [&](const SyscallSpec& spec, const std::string& hook,
                            HookKind want, const char* what) {
    auto it = table.hooks.find(hook);
    if (it == table.hooks.end()) {
      findings.push_back(make(
          Severity::error, "manifest-error", manifest_path, spec.decl_line,
          spec.name, hook,
          "manifest references unknown hook '" + hook + "' in " + what));
      return false;
    }
    if (it->second != want) {
      findings.push_back(make(
          Severity::error, "manifest-error", manifest_path, spec.decl_line,
          spec.name, hook,
          std::string("hook '") + hook + "' has the wrong kind for " + what +
              (want == HookKind::mediation ? " (need an Errno hook)"
                                           : " (need a void hook)")));
      return false;
    }
    return true;
  };

  for (const auto& spec : manifest.syscalls) {
    for (const auto& h : spec.require)
      check_hook_ref(spec, h, HookKind::mediation, "require");
    for (const auto& h : spec.conditional)
      check_hook_ref(spec, h, HookKind::mediation, "conditional");
    for (const auto& h : spec.notify)
      check_hook_ref(spec, h, HookKind::notify, "notify");
    for (const auto& r : spec.order)
      check_hook_ref(spec, r.hook, HookKind::mediation, "order");
    if (manifest.unmediated.count(spec.name)) {
      findings.push_back(make(Severity::error, "manifest-error", manifest_path,
                              spec.decl_line, spec.name, "",
                              "'" + spec.name +
                                  "' is listed both as a syscall spec and as "
                                  "unmediated"));
    }
  }
  for (const auto& h : manifest.ignore_hooks) {
    if (!table.contains(h))
      findings.push_back(make(Severity::error, "manifest-error", manifest_path,
                              0, "", h,
                              "ignore_hooks references unknown hook '" + h +
                                  "'"));
  }

  // --- unlisted syscalls ---------------------------------------------------
  std::set<std::string> spec_names;
  for (const auto& spec : manifest.syscalls) spec_names.insert(spec.name);
  for (const auto& f : corpus.files) {
    for (const auto& fn : f.functions) {
      if (fn.qualified.rfind("Kernel::sys_", 0) != 0) continue;
      const std::string name = fn.qualified.substr(8);
      if (spec_names.count(name) || manifest.unmediated.count(name)) continue;
      findings.push_back(
          make(Severity::error, "unlisted-syscall", fn.file, fn.line, name, "",
               "syscall entry point '" + fn.qualified +
                   "' is neither specified in the manifest nor listed as "
                   "unmediated — new syscalls must declare their mediation"));
    }
  }

  // --- per-entry coverage / ordering ---------------------------------------
  std::set<std::string> reached_hooks_global;
  std::set<const FunctionDef*> reachable_global;
  // Reachability is the expensive step; the universal pass below revisits
  // every entry the spec pass already walked, so cache per entry function.
  std::map<const FunctionDef*, Reachability> reach_cache;
  auto reach_of = [&](const FunctionDef* fn) -> const Reachability& {
    auto [it, inserted] = reach_cache.try_emplace(fn);
    if (inserted)
      it->second = compute_reachability(corpus, fn, manifest.exclude);
    return it->second;
  };

  auto analyze_entry = [&](const std::string& entry_name,
                           const SyscallSpec* spec) {
    const FunctionDef* fn = corpus.find_entry(entry_name);
    if (!fn) {
      findings.push_back(make(
          Severity::error, "manifest-error", manifest_path,
          spec ? spec->decl_line : 0, entry_name, "",
          "entry point '" + entry_name + "' not found in the scanned tree"));
      return;
    }
    ++stats.entries_checked;
    const Reachability& reach = reach_of(fn);
    for (const auto& [hook, r] : reach.hooks) reached_hooks_global.insert(hook);
    reachable_global.insert(reach.functions.begin(), reach.functions.end());
    if (!spec) return;

    for (const auto& h : spec->require) {
      auto it = reach.hooks.find(h);
      if (it == reach.hooks.end()) {
        findings.push_back(make(
            Severity::error, "missing-hook", fn->file, fn->line, spec->name, h,
            "required hook '" + h + "' is not reachable from '" +
                fn->qualified + "' — the operation proceeds without LSM "
                "mediation"));
      } else if (!it->second.unconditional) {
        findings.push_back(make(
            Severity::error, "conditional-hook", it->second.in->file,
            it->second.site->line, spec->name, h,
            "required hook '" + h + "' only fires on some paths through '" +
                fn->qualified + "' — every non-error path must consult it"));
      }
    }
    for (const auto& h : spec->conditional) {
      if (!reach.hooks.count(h)) {
        findings.push_back(make(
            Severity::error, "missing-hook", fn->file, fn->line, spec->name, h,
            "hook '" + h + "' is declared conditional for '" + fn->qualified +
                "' but is not reachable at all"));
      }
    }
    for (const auto& h : spec->notify) {
      auto it = reach.hooks.find(h);
      if (it == reach.hooks.end()) {
        findings.push_back(make(
            Severity::error, "missing-hook", fn->file, fn->line, spec->name, h,
            "notification hook '" + h + "' never fires from '" +
                fn->qualified + "'"));
      }
    }
    for (const auto& [hook, r] : reach.hooks) {
      if (table.kind(hook) == HookKind::other) continue;
      if (contains(spec->require, hook) || contains(spec->conditional, hook) ||
          contains(spec->notify, hook))
        continue;
      // Universal hooks are declared once for the whole corpus, not per
      // syscall — reaching one from a spec'd entry is the contract working.
      if (contains(manifest.universal_require, hook)) continue;
      findings.push_back(make(
          Severity::warning, "undeclared-hook", r.in->file,
          r.site ? r.site->line : r.in->line, spec->name, hook,
          "hook '" + hook + "' is reachable from '" + fn->qualified +
              "' but the manifest does not declare it — add it to require/"
              "conditional/notify or restructure the call path"));
    }

    // Ordering: the hook must dominate the mutation it guards.
    const std::vector<Token>* toks = corpus.tokens_of(fn);
    for (const auto& rule : spec->order) {
      const HookCall* site = nullptr;
      for (const auto& hc : fn->hooks) {
        if (hc.hook == rule.hook) {
          site = &hc;
          break;
        }
      }
      if (!site || !toks) continue;  // missing-hook already reported
      std::vector<Token> pattern = lex(rule.pattern);
      std::size_t at =
          find_pattern(*toks, fn->body_begin, fn->body_end, pattern);
      if (at == std::string::npos) {
        findings.push_back(make(
            Severity::error, "stale-order-pattern", fn->file, fn->line,
            spec->name, rule.hook,
            "ordering anchor '" + rule.pattern + "' no longer matches the "
                "body of '" + fn->qualified +
                "' — update the manifest so the ordering guarantee stays "
                "checkable"));
        continue;
      }
      if (at < site->pos) {
        findings.push_back(make(
            Severity::error, "hook-after-mutation", fn->file,
            (*toks)[at].line, spec->name, rule.hook,
            "state mutation '" + rule.pattern + "' happens before hook '" +
                rule.hook + "' in '" + fn->qualified +
                "' — a denial would leave the mutation in place"));
      }
    }

    // Double dispatch of the same hook on one unconditional path.
    std::map<std::string, int> uncond_count;
    for (const auto& hc : fn->hooks)
      if (!hc.conditional && !hc.via_notify) ++uncond_count[hc.hook];
    for (const auto& [hook, n] : uncond_count) {
      if (n > 1) {
        findings.push_back(make(
            Severity::error, "double-hook", fn->file, fn->line, spec->name,
            hook,
            "hook '" + hook + "' is dispatched " + std::to_string(n) +
                " times unconditionally in '" + fn->qualified +
                "' — duplicate mediation distorts audit and AVC statistics"));
      }
    }
  };

  for (const auto& spec : manifest.syscalls) analyze_entry(spec.entry, &spec);
  for (const auto& extra : manifest.extra_entries)
    analyze_entry(extra, nullptr);

  // --- universal hooks: the per-syscall gate --------------------------------
  // universal_require hooks must be unconditionally reachable from *every*
  // Kernel::sys_* entry in the corpus — including [unmediated] ones, which
  // carry no per-object hooks but still must pass the flow gate. Only the
  // entries in universal_exempt (sys_exit: a void return cannot carry a
  // veto) are excused. This pass also feeds the reachability globals, so
  // the verdict-consistency and dead-hook passes cover gate dispatches in
  // otherwise-unmediated syscalls.
  if (!manifest.universal_require.empty()) {
    for (const auto& h : manifest.universal_require) {
      auto it = table.hooks.find(h);
      if (it == table.hooks.end() || it->second != HookKind::mediation) {
        findings.push_back(make(
            Severity::error, "manifest-error", manifest_path, 0, "", h,
            "universal_require references " +
                std::string(it == table.hooks.end() ? "unknown" : "non-Errno") +
                " hook '" + h + "'"));
      }
    }
    for (const auto& f : corpus.files) {
      for (const auto& fn : f.functions) {
        if (fn.qualified.rfind("Kernel::sys_", 0) != 0) continue;
        const std::string name = fn.qualified.substr(8);
        if (contains(manifest.universal_exempt, name)) continue;
        const Reachability& reach = reach_of(&fn);
        for (const auto& [hook, r] : reach.hooks)
          reached_hooks_global.insert(hook);
        reachable_global.insert(reach.functions.begin(),
                                reach.functions.end());
        for (const auto& h : manifest.universal_require) {
          if (!table.contains(h)) continue;  // manifest-error above
          auto it = reach.hooks.find(h);
          if (it == reach.hooks.end()) {
            findings.push_back(make(
                Severity::error, "missing-hook", fn.file, fn.line, name, h,
                "universal hook '" + h + "' is not reachable from '" +
                    fn.qualified +
                    "' — every syscall entry must pass the gate (or be "
                    "listed in universal_exempt)"));
          } else if (!it->second.unconditional) {
            findings.push_back(make(
                Severity::error, "conditional-hook", it->second.in->file,
                it->second.site->line, name, h,
                "universal hook '" + h + "' only fires on some paths "
                    "through '" + fn.qualified +
                    "' — the gate must dominate every non-error path"));
          }
        }
      }
    }
  }

  // --- consistency: verdict handling at every reachable dispatch ----------
  for (const FunctionDef* fn : reachable_global) {
    for (const auto& hc : fn->hooks) {
      if (hc.via_notify) {
        if (table.kind(hc.hook) == HookKind::mediation) {
          findings.push_back(make(
              Severity::error, "notify-discards-verdict", fn->file, hc.line,
              "", hc.hook,
              "Errno hook '" + hc.hook + "' is dispatched through notify() "
                  "in '" + fn->qualified +
                  "' — its verdict is silently discarded"));
        }
        continue;
      }
      switch (hc.guard) {
        case Guard::propagated:
          break;
        case Guard::hardcoded:
          findings.push_back(make(
              Severity::error, "hardcoded-denial", fn->file, hc.line, "",
              hc.hook,
              "denial path for hook '" + hc.hook + "' in '" + fn->qualified +
                  "' returns '" + hc.hardcoded_errno +
                  "' instead of the stack verdict — modules lose control of "
                  "the error code"));
          break;
        case Guard::swallowed:
          findings.push_back(make(
              Severity::error, "swallowed-denial", fn->file, hc.line, "",
              hc.hook,
              "verdict of hook '" + hc.hook + "' in '" + fn->qualified +
                  "' is checked but the denial path does not return — the "
                  "operation proceeds despite the denial"));
          break;
        case Guard::unguarded:
          findings.push_back(make(
              Severity::error, "unguarded-hook", fn->file, hc.line, "",
              hc.hook,
              "verdict of hook '" + hc.hook + "' in '" + fn->qualified +
                  "' is never checked against Errno::ok"));
          break;
        case Guard::notify:
          break;
      }
    }
    for (std::size_t line : fn->opaque_dispatch_lines) {
      findings.push_back(make(
          Severity::error, "opaque-dispatch", fn->file,
          static_cast<int>(line), "", "",
          "LSM dispatch in '" + fn->qualified +
              "' invokes no hook known to SecurityModule — renamed or "
              "mistyped hook?"));
    }
  }

  // --- drift: declared hooks that never fire -------------------------------
  for (const auto& [hook, kind] : table.hooks) {
    if (kind == HookKind::other) continue;
    if (contains(manifest.ignore_hooks, hook)) continue;
    if (reached_hooks_global.count(hook)) continue;
    findings.push_back(make(
        Severity::error, "dead-hook", manifest.hook_header, table.line(hook),
        "", hook,
        std::string(kind == HookKind::mediation ? "mediation" : "notification") +
            " hook '" + hook + "' is declared in SecurityModule but no entry "
            "point ever dispatches it — dead hooks hide coverage regressions"));
  }

  // Stats: dispatch sites across the whole corpus.
  for (const auto& f : corpus.files) {
    stats.functions += f.functions.size();
    for (const auto& fn : f.functions)
      stats.dispatch_sites += fn.hooks.size();
  }
  stats.files = corpus.files.size();

  return findings;
}

}  // namespace sack::analysis
