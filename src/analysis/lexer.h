// Lightweight C++ lexer for sack-hookcheck.
//
// This is not a compiler front end: it produces exactly the token stream the
// mediation analyzer needs — identifiers, literals, and punctuators with
// line numbers — and throws away everything that could confuse a textual
// scan (comments, string/char literal *contents*, preprocessor lines,
// line continuations). That is the whole trick that makes the downstream
// call-graph extraction robust: a hook name mentioned in a comment or a log
// string can never be mistaken for a call.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sack::analysis {

enum class TokKind : std::uint8_t {
  ident,   // identifiers and keywords (keyword classification is the
           // extractor's business)
  number,  // numeric literal, verbatim text
  str,     // string literal; text is "" (contents dropped on purpose)
  chr,     // char literal; text is ''
  punct,   // operator / punctuator, longest-match (e.g. "->", "::", "!=")
};

struct Token {
  TokKind kind = TokKind::punct;
  std::string text;
  int line = 1;

  bool is(std::string_view t) const { return text == t; }
  bool ident_is(std::string_view t) const {
    return kind == TokKind::ident && text == t;
  }
};

// Tokenizes `source`. Never fails: unterminated constructs lex to the end
// of file (the analyzer reports on what it could see).
std::vector<Token> lex(std::string_view source);

}  // namespace sack::analysis
