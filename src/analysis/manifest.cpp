#include "analysis/manifest.h"

#include <cctype>
#include <sstream>

namespace sack::analysis {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Strips a trailing comment that is not inside a quoted string.
std::string strip_comment(const std::string& s) {
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"' && (i == 0 || s[i - 1] != '\\')) in_str = !in_str;
    if (s[i] == '#' && !in_str) return s.substr(0, i);
  }
  return s;
}

struct Parser {
  std::istringstream in;
  int line_no = 0;
  std::string error;

  void fail(const std::string& msg) {
    if (error.empty())
      error = "manifest line " + std::to_string(line_no) + ": " + msg;
  }

  // Parses `"..."` at position i; advances i past the close quote.
  bool parse_string(const std::string& s, std::size_t& i, std::string& out) {
    if (i >= s.size() || s[i] != '"') {
      fail("expected string");
      return false;
    }
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out.push_back(s[i]);
      ++i;
    }
    if (i >= s.size()) {
      fail("unterminated string");
      return false;
    }
    ++i;
    return true;
  }

  bool parse_array(const std::string& s, std::size_t& i,
                   std::vector<std::string>& out) {
    if (i >= s.size() || s[i] != '[') {
      fail("expected array");
      return false;
    }
    ++i;
    while (true) {
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      std::string v;
      if (!parse_string(s, i, v)) return false;
      out.push_back(v);
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      fail("expected ',' or ']' in array");
      return false;
    }
  }
};

// Splits "hook < pattern" into an OrderRule.
bool parse_order_rule(const std::string& raw, OrderRule& out,
                      std::string& err) {
  std::size_t lt = raw.find('<');
  if (lt == std::string::npos) {
    err = "order rule '" + raw + "' has no '<'";
    return false;
  }
  out.hook = trim(raw.substr(0, lt));
  out.pattern = trim(raw.substr(lt + 1));
  out.raw = raw;
  if (out.hook.empty() || out.pattern.empty()) {
    err = "order rule '" + raw + "' is missing a side";
    return false;
  }
  return true;
}

}  // namespace

ManifestParse parse_manifest(const std::string& text) {
  ManifestParse result;
  Manifest& m = result.manifest;
  Parser p;
  p.in.str(text);

  enum class Section { none, hookcheck, unmediated, syscall };
  Section section = Section::none;
  SyscallSpec* current = nullptr;

  std::string raw_line;
  while (std::getline(p.in, raw_line)) {
    ++p.line_no;
    std::string line = trim(strip_comment(raw_line));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        p.fail("unterminated section header");
        break;
      }
      std::string name = trim(line.substr(1, line.size() - 2));
      if (name == "hookcheck") {
        section = Section::hookcheck;
      } else if (name == "unmediated") {
        section = Section::unmediated;
      } else if (name.rfind("syscall.", 0) == 0 ||
                 name.rfind("entry.", 0) == 0) {
        // [entry.X] declares a non-syscall entry point (e.g. the clock tick)
        // with the same spec shape as a syscall.
        section = Section::syscall;
        m.syscalls.push_back({});
        current = &m.syscalls.back();
        current->name = name.substr(name.find('.') + 1);
        current->decl_line = p.line_no;
      } else {
        p.fail("unknown section [" + name + "]");
        break;
      }
      continue;
    }

    std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      p.fail("expected key = value");
      break;
    }
    std::string key = trim(line.substr(0, eq));
    std::string val = trim(line.substr(eq + 1));
    // Multi-line arrays: keep appending lines until the bracket closes.
    if (!val.empty() && val.front() == '[') {
      auto closed = [](const std::string& s) {
        bool in_str = false;
        int depth = 0;
        for (std::size_t k = 0; k < s.size(); ++k) {
          if (s[k] == '"' && (k == 0 || s[k - 1] != '\\')) in_str = !in_str;
          if (in_str) continue;
          if (s[k] == '[') ++depth;
          if (s[k] == ']') --depth;
        }
        return depth <= 0;
      };
      std::string more;
      while (!closed(val) && std::getline(p.in, more)) {
        ++p.line_no;
        val += ' ' + trim(strip_comment(more));
      }
    }
    std::size_t i = 0;

    if (section == Section::hookcheck) {
      if (key == "sources") {
        if (!p.parse_array(val, i, m.sources)) break;
      } else if (key == "hook_header") {
        if (!p.parse_string(val, i, m.hook_header)) break;
      } else if (key == "ignore_hooks") {
        if (!p.parse_array(val, i, m.ignore_hooks)) break;
      } else if (key == "extra_entries") {
        if (!p.parse_array(val, i, m.extra_entries)) break;
      } else if (key == "exclude") {
        if (!p.parse_array(val, i, m.exclude)) break;
      } else if (key == "universal_require") {
        if (!p.parse_array(val, i, m.universal_require)) break;
      } else if (key == "universal_exempt") {
        if (!p.parse_array(val, i, m.universal_exempt)) break;
      } else {
        p.fail("unknown key '" + key + "' in [hookcheck]");
        break;
      }
    } else if (section == Section::unmediated) {
      std::string reason;
      if (!p.parse_string(val, i, reason)) break;
      if (m.unmediated.count(key)) {
        p.fail("duplicate unmediated entry '" + key + "'");
        break;
      }
      m.unmediated.emplace(key, reason);
    } else if (section == Section::syscall) {
      if (key == "entry") {
        if (!p.parse_string(val, i, current->entry)) break;
      } else if (key == "require") {
        if (!p.parse_array(val, i, current->require)) break;
      } else if (key == "conditional") {
        if (!p.parse_array(val, i, current->conditional)) break;
      } else if (key == "notify") {
        if (!p.parse_array(val, i, current->notify)) break;
      } else if (key == "order") {
        std::vector<std::string> raws;
        if (!p.parse_array(val, i, raws)) break;
        for (const auto& r : raws) {
          OrderRule rule;
          std::string err;
          if (!parse_order_rule(r, rule, err)) {
            p.fail(err);
            break;
          }
          current->order.push_back(rule);
        }
        if (!p.error.empty()) break;
      } else {
        p.fail("unknown key '" + key + "' in [syscall." + current->name + "]");
        break;
      }
    } else {
      p.fail("key outside any section");
      break;
    }
  }

  // Defaults mirroring the shipped tree layout.
  if (p.error.empty()) {
    for (auto& spec : m.syscalls) {
      if (spec.entry.empty()) spec.entry = "Kernel::" + spec.name;
    }
  }
  result.error = p.error;
  return result;
}

}  // namespace sack::analysis
