#include "fleet/rollout.h"

#include <algorithm>
#include <cmath>

#include "util/clock.h"
#include "util/fault.h"
#include "util/log.h"
#include "verify/verifier.h"

namespace sack::fleet {

using util::FaultInjector;

namespace {

double denial_rate(const Vehicle::WorkloadStats& stats) {
  if (stats.checks == 0) return 0.0;
  return static_cast<double>(stats.denials) /
         static_cast<double>(stats.checks);
}

// The active-rule count the policy predicts for `state` — what the live
// rule set must report, or the activation drifted from the verified text.
std::size_t expected_active_rules(const core::SackPolicy& policy,
                                  const std::string& state) {
  std::size_t expected = 0;
  for (const auto& perm : policy.permissions_of(state)) {
    auto it = policy.per_rules.find(perm);
    if (it != policy.per_rules.end()) expected += it->second.size();
  }
  return expected;
}

}  // namespace

std::string_view to_string(RolloutOutcome outcome) {
  switch (outcome) {
    case RolloutOutcome::committed:
      return "committed";
    case RolloutOutcome::rejected:
      return "rejected";
    case RolloutOutcome::rolled_back:
      return "rolled_back";
  }
  return "?";
}

std::string RolloutReport::to_json() const {
  std::string json = "{";
  auto num = [&](std::string_view key, auto value) {
    json += "\"";
    json += key;
    json += "\":" + std::to_string(value) + ",";
  };
  json += "\"outcome\":\"";
  json += to_string(outcome);
  json += "\",";
  num("from_version", from_version);
  num("target_version", target_version);
  num("fleet_size", fleet_size);
  num("canary_size", canary_size);
  num("stages_completed", stages_completed);
  num("pushes", pushes);
  num("push_drops", push_drops);
  num("push_delays", push_delays);
  num("activation_failures", activation_failures);
  num("crashes", crashes);
  num("forced_reboots", forced_reboots);
  num("worst_denial_delta", worst_denial_delta);
  num("new_watchdog_trips", new_watchdog_trips);
  num("verifier_drift", verifier_drift);
  num("equivalence_mismatches", equivalence_mismatches);
  num("equivalence_checked", equivalence_checked);
  num("mixed_version_vehicles", mixed_version_vehicles);
  num("convergence_ns", convergence_ns);
  num("rollback_ns", rollback_ns);
  json += "\"fully_converged\":";
  json += fully_converged ? "true" : "false";
  json += "}";
  return json;
}

RolloutController::RolloutController(Fleet& fleet, RolloutConfig config)
    : fleet_(fleet), config_(std::move(config)) {
  current_.store(
      std::make_shared<const PolicyVersion>(fleet_.initial_version()));
}

bool RolloutController::push_version(Vehicle& vehicle,
                                     const PolicyVersion& version,
                                     RolloutReport& report) {
  auto& fi = FaultInjector::instance();
  const std::string id = std::to_string(vehicle.id());
  for (int attempt = 0; attempt < std::max(config_.push_attempts, 1);
       ++attempt) {
    ++report.pushes;
    if (fi.fire("fleet.push.drop", id)) {
      ++report.push_drops;
      continue;  // the push never reached the vehicle; retry next round
    }
    if (fi.fire("fleet.push.delay", id)) {
      ++report.push_delays;
      vehicle.tick(50);  // the push sat in transit; it still arrives
    }
    if (fi.fire("fleet.vehicle.crash", id)) {
      ++report.crashes;
      vehicle.reboot();  // back on committed flash; the staged push is lost
      continue;
    }
    if (auto err = fi.fail_errno("fleet.activate.fail", id)) {
      ++report.activation_failures;
      (void)*err;
      continue;
    }
    auto rc = vehicle.apply_policy(version);
    if (rc.ok()) return true;
    ++report.activation_failures;
  }
  return false;
}

bool RolloutController::vehicle_healthy(Vehicle& vehicle,
                                        const PolicyVersion& target,
                                        const Baseline& baseline,
                                        RolloutReport& report) {
  const auto stats = vehicle.run_workload(config_.health_rounds);
  const double delta = denial_rate(stats) - baseline.denial_rate;
  report.worst_denial_delta = std::max(report.worst_denial_delta, delta);
  if (delta > config_.max_denial_delta) {
    report.reason = "vehicle " + std::to_string(vehicle.id()) +
                    ": denial rate delta " + std::to_string(delta) +
                    " over budget";
    return false;
  }

  const std::uint64_t trips =
      vehicle.module().watchdog_trips() - baseline.watchdog_trips;
  report.new_watchdog_trips += trips;
  if (trips > config_.max_new_watchdog_trips) {
    report.reason = "vehicle " + std::to_string(vehicle.id()) + ": " +
                    std::to_string(trips) + " new watchdog failsafe entries";
    return false;
  }

  const std::string state = vehicle.module().current_state_name();
  const std::size_t expected = expected_active_rules(target.policy, state);
  const std::size_t live = vehicle.module().ruleset().active_rule_count();
  if (live != expected) {
    ++report.verifier_drift;
    report.reason = "vehicle " + std::to_string(vehicle.id()) +
                    ": verifier drift in state '" + state + "' (live " +
                    std::to_string(live) + " rules, policy predicts " +
                    std::to_string(expected) + ")";
    return false;
  }
  return true;
}

void RolloutController::roll_back(const PolicyVersion& previous,
                                  RolloutReport& report) {
  const std::uint64_t t0 = monotonic_ns();
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    Vehicle& vehicle = fleet_.vehicle(i);
    if (vehicle.live_version() == previous.version) continue;
    if (!push_version(vehicle, previous, report)) {
      // Unreachable by pushes — power-cycle it. Flash still holds the
      // previous (committed) version, so the reboot restores it by
      // construction; rollback cannot strand a vehicle.
      vehicle.reboot();
      ++report.forced_reboots;
    }
  }
  report.rollback_ns = monotonic_ns() - t0;
}

RolloutReport RolloutController::roll_out(PolicyVersion candidate) {
  RolloutReport report;
  const std::uint64_t t0 = monotonic_ns();
  const std::shared_ptr<const PolicyVersion> from = current_.load();
  report.from_version = from->version;
  report.target_version = candidate.version;
  report.fleet_size = fleet_.size();

  // Phase 1: the verify gate. Errors reject before any vehicle is touched.
  if (config_.verify_gate) {
    verify::VerifyOptions options;
    options.run_oracle = config_.run_oracle;
    auto verdict =
        verify::verify_policy(candidate.policy, options,
                              "fleet-v" + std::to_string(candidate.version));
    if (verdict.has_errors()) {
      report.outcome = RolloutOutcome::rejected;
      report.reason = "verify gate: " +
                      std::to_string(verdict.count(
                          verify::FindingSeverity::error)) +
                      " error finding(s)";
      report.mixed_version_vehicles = fleet_.count_not_on(from->version);
      report.fully_converged = fleet_.converged_on(from->version);
      report.convergence_ns = monotonic_ns() - t0;
      return report;
    }
  }

  const auto target = std::make_shared<const PolicyVersion>(
      std::move(candidate));

  // Pre-rollout fingerprints for the rollback-equivalence oracle. Captured
  // against the *current* policy, before any vehicle is mutated.
  const std::size_t sample =
      std::min(config_.equivalence_sample, fleet_.size());
  std::vector<DecisionFingerprint> pre_fp;
  std::vector<std::string> pre_state;
  pre_fp.reserve(sample);
  for (std::size_t i = 0; i < sample; ++i) {
    pre_fp.push_back(capture_fingerprint(fleet_.vehicle(i), from->policy));
    pre_state.push_back(fleet_.vehicle(i).module().current_state_name());
  }

  // Cohort boundaries: canary, then cumulative staging waves, always ending
  // at the full fleet.
  const std::size_t n = fleet_.size();
  std::vector<std::size_t> cohort_ends;
  const auto canary = static_cast<std::size_t>(
      std::ceil(config_.canary_fraction * static_cast<double>(n)));
  cohort_ends.push_back(std::clamp<std::size_t>(canary, 1, n));
  report.canary_size = cohort_ends[0];
  for (double fraction : config_.stage_fractions) {
    auto end = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(n)));
    end = std::clamp<std::size_t>(end, cohort_ends.back(), n);
    if (end > cohort_ends.back()) cohort_ends.push_back(end);
  }
  if (cohort_ends.back() < n) cohort_ends.push_back(n);

  // Phases 2+3: canary, then staged waves. Per vehicle: baseline → push →
  // health. The loop is serial so fault draws replay deterministically.
  bool regression = false;
  std::size_t begin = 0;
  for (std::size_t end : cohort_ends) {
    for (std::size_t i = begin; i < end && !regression; ++i) {
      Vehicle& vehicle = fleet_.vehicle(i);
      Baseline baseline{denial_rate(vehicle.run_workload(config_.health_rounds)),
                        vehicle.module().watchdog_trips()};
      if (!push_version(vehicle, *target, report)) {
        report.reason = "vehicle " + std::to_string(vehicle.id()) +
                        ": activation failed after " +
                        std::to_string(config_.push_attempts) + " attempts";
        regression = true;
      } else if (!vehicle_healthy(vehicle, *target, baseline, report)) {
        regression = true;
      }
    }
    if (regression) break;
    ++report.stages_completed;
    begin = end;
  }

  if (regression) {
    report.outcome = RolloutOutcome::rolled_back;
    log_warn("fleet: rolling back v", target->version, " -> v",
             from->version, ": ", report.reason);
    roll_back(*from, report);

    // Rollback-equivalence oracle: the restored decision function must be
    // bit-exact against the pre-rollout capture. A vehicle whose situation
    // state changed mid-trial is skipped — its decision function legitimately
    // differs — so every counted mismatch is a stale-cache bug.
    for (std::size_t i = 0; i < sample; ++i) {
      Vehicle& vehicle = fleet_.vehicle(i);
      if (vehicle.module().current_state_name() != pre_state[i]) continue;
      ++report.equivalence_checked;
      auto post = capture_fingerprint(vehicle, from->policy);
      report.equivalence_mismatches += fingerprint_diffs(pre_fp[i], post);
    }
    report.mixed_version_vehicles = fleet_.count_not_on(from->version);
    report.fully_converged = fleet_.converged_on(from->version);
  } else {
    // Phase 4: commit. Flash first, then publish: a crash between the two
    // leaves a vehicle committed on the new version, which reboot handles.
    for (std::size_t i = 0; i < n; ++i)
      fleet_.vehicle(i).commit_policy(*target);
    previous_.store(from);
    current_.store(target);
    report.outcome = RolloutOutcome::committed;
    report.mixed_version_vehicles = fleet_.count_not_on(target->version);
    report.fully_converged = fleet_.converged_on(target->version);
  }
  report.convergence_ns = monotonic_ns() - t0;
  return report;
}

}  // namespace sack::fleet
