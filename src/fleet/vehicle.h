// Vehicle: one tenant of the fleet layer.
//
// A Vehicle is a complete SACK deployment in miniature — simulated kernel,
// SACK module (independent mode, DFA rule set), SDS daemon, a small IVI-like
// file set, and one task per application subject — cheap enough that one
// process hosts thousands of them. The control plane (fleet/rollout.h)
// treats a Vehicle the way an OTA backend treats a car: policy is applied
// through the SACKfs policy/load file as an administrator write, the last
// *committed* policy version lives in simulated flash, and a crash
// (fleet.vehicle.crash) reboots the instance back onto flash — an uncommitted
// staged policy never survives a power cycle. That persistence rule is what
// makes rollback convergence deterministic: a vehicle that cannot be reached
// by pushes can always be rebooted onto the committed version.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "core/sack_module.h"
#include "kernel/kernel.h"
#include "sds/sds.h"

namespace sack::fleet {

// A versioned policy as the control plane ships it. `policy` is the parsed
// form (kept so universe generation and drift checks never reparse).
struct PolicyVersion {
  std::uint64_t version = 0;
  std::string text;
  core::SackPolicy policy;
};

struct VehicleConfig {
  std::uint32_t id = 0;
  // Attach an SDS daemon (heartbeat + detectors). Benches hosting 10k
  // instances can turn it off to isolate enforcement throughput.
  bool start_sds = true;
  // Give the SDS the standard CAV detector set.
  bool default_detectors = true;
};

// The standard three-state fleet policy (version 1) and two canned updates:
// a benign revision that should roll out, and a "bad" revision that passes
// the verifier (it is internally consistent) but regresses the media
// denial rate, so only the health gate can catch it.
std::string fleet_policy_v1();
std::string fleet_policy_v2();
std::string fleet_policy_bad();

// Parses `text` and wraps it as a PolicyVersion; fails with the parser's
// error if the text is not a loadable policy.
Result<PolicyVersion> make_policy_version(std::uint64_t version,
                                          std::string text);

class Vehicle {
 public:
  // Boots the instance and applies `initial` as the committed (flash)
  // policy. `initial.policy` must be the parsed form of `initial.text`.
  Vehicle(const VehicleConfig& config, PolicyVersion initial);

  std::uint32_t id() const { return config_.id; }
  kernel::Kernel& kernel() { return *kernel_; }
  core::SackModule& module() { return *mod_; }
  sds::SituationDetectionService* sds() { return sds_.get(); }

  // --- control-plane surface ---
  // Applies a policy version through the SACKfs policy/load file (the same
  // write an administrator would issue). On success the vehicle's *live*
  // version advances; flash is untouched until commit_policy().
  Result<void> apply_policy(const PolicyVersion& version);
  // Commits a version to flash: this is what reboot() restores.
  void commit_policy(const PolicyVersion& version);
  // Crash + power cycle: the whole kernel stack is rebuilt and the committed
  // flash policy re-applied. Volatile state (AVC, inode labels, SSM state,
  // an uncommitted staged policy) is lost by construction.
  void reboot();

  std::uint64_t live_version() const { return live_version_; }
  std::uint64_t committed_version() const { return flash_.version; }
  std::uint64_t activation_failures() const { return activation_failures_; }
  std::uint64_t reboots() const { return reboots_; }

  // --- workload / health surface ---
  // Deterministic mixed check workload through the batch API: media reads,
  // OTA writes, and a sensitive-file probe per round. Returns totals so the
  // health monitor can compute a denial rate.
  struct WorkloadStats {
    std::uint64_t checks = 0;
    std::uint64_t denials = 0;
  };
  WorkloadStats run_workload(std::size_t rounds);

  // Feeds sensor frames through the SDS batched transport (one coalesced
  // SACKfs write per call). No-op without an SDS.
  sds::FeedResult feed_frames(std::span<const sds::SensorFrame> frames);

  void tick(std::int64_t ms) { kernel_->advance_clock_ms(ms); }

  // A task whose executable is `exe` (spawned on demand, cached until the
  // next reboot). The equivalence oracle sweeps universe subjects this way.
  kernel::Task& task_for_exe(const std::string& exe);

  // Well-known subject executables of the fleet policies.
  static constexpr std::string_view kMediaExe = "/usr/bin/media";
  static constexpr std::string_view kOtaExe = "/usr/bin/ota";
  static constexpr std::string_view kRescueExe = "/usr/bin/rescue";

  // Concrete objects that exist as real files on every vehicle, so probes
  // can go through actual open(2) (file_open hook + per-inode label cache),
  // not just the bare check API.
  static constexpr std::array<std::string_view, 4> kDataFiles = {
      "/var/media/track01.pcm",
      "/var/media/track02.pcm",
      "/etc/vehicle/vin",
      "/var/ota/firmware.bin",
  };

 private:
  void boot();

  VehicleConfig config_;
  PolicyVersion flash_;  // committed: survives reboot()
  std::uint64_t live_version_ = 0;
  std::uint64_t activation_failures_ = 0;
  std::uint64_t reboots_ = 0;

  std::unique_ptr<kernel::Kernel> kernel_;
  core::SackModule* mod_ = nullptr;  // owned by the kernel's LSM stack
  std::unique_ptr<sds::SituationDetectionService> sds_;
  kernel::Task* media_task_ = nullptr;
  kernel::Task* ota_task_ = nullptr;
  kernel::Task* rescue_task_ = nullptr;
  std::map<std::string, kernel::Task*> tasks_by_exe_;
};

}  // namespace sack::fleet
