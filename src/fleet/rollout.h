// RolloutController: verify-gated, health-gated, crash-safe policy rollout.
//
// A candidate policy version moves through four phases:
//
//   1. Gate     — the full sack-verify pipeline (model checker, lints,
//                 differential oracle) runs on the candidate. An error-level
//                 finding rejects the rollout before any vehicle is touched.
//   2. Canary   — a small cohort activates the candidate; each vehicle's
//                 health is measured against its own pre-push baseline.
//   3. Staging  — successive percentage cohorts activate, health-checked the
//                 same way, until the whole fleet is live.
//   4. Commit or rollback — full success commits the version to every
//                 vehicle's flash and publishes it as `current()` (the
//                 retained previous version moves to `previous()`, both in
//                 RcuPtr cells). ANY regression — denial-rate delta over
//                 budget, a new watchdog failsafe entry, permanent activation
//                 failure, verifier drift — rolls the whole fleet back to the
//                 retained previous snapshot.
//
// Health signals per vehicle: denial-rate delta of the standard workload vs
// that vehicle's own baseline (catches "verifies clean but denies the fleet"
// regressions), new watchdog failsafe trips, activation errors, and verifier
// drift (live active-rule count vs the count the candidate policy predicts
// for the vehicle's situation state).
//
// Crash safety: pushes go through fault sites fleet.push.drop / .delay /
// .activate.fail / .vehicle.crash. A crashed vehicle reboots onto its
// committed flash — an uncommitted candidate never survives a power cycle —
// and a vehicle whose rollback pushes keep failing is forcibly rebooted,
// which restores flash by construction. Rollback therefore always converges:
// every trial ends with the fleet single-version, live == committed.
//
// Rollback is bit-exact, and provably so: before staging, a sample of
// vehicles is fingerprinted (fleet/equivalence.h) against the current
// policy; after a rollback the fingerprints are recaptured and compared.
// A stale AVC entry or stale inode label surviving the swap is a counted
// equivalence mismatch, not a silent wrong verdict.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fleet/equivalence.h"
#include "fleet/fleet.h"
#include "util/rcu_ptr.h"

namespace sack::fleet {

struct RolloutConfig {
  // Canary cohort: ceil(fraction * fleet), at least one vehicle.
  double canary_fraction = 0.05;
  // Cumulative fleet fractions for the staging waves after the canary.
  std::vector<double> stage_fractions = {0.25, 0.50, 1.0};
  // Workload rounds per baseline / health probe.
  std::size_t health_rounds = 8;
  // Rollback when (post denial rate - baseline) exceeds this.
  double max_denial_delta = 0.10;
  // Rollback when a vehicle records more than this many new failsafe trips.
  std::uint64_t max_new_watchdog_trips = 0;
  // Push attempts per vehicle before the push counts as a permanent failure.
  int push_attempts = 4;
  // Vehicles fingerprinted for the rollback-equivalence check (0 = off).
  std::size_t equivalence_sample = 4;
  // Run the sack-verify gate (with or without the differential oracle).
  bool verify_gate = true;
  bool run_oracle = true;
};

enum class RolloutOutcome {
  committed,    // all stages healthy; fleet live+committed on the candidate
  rejected,     // verify gate failed; no vehicle was touched
  rolled_back,  // regression mid-rollout; fleet restored to previous
};
std::string_view to_string(RolloutOutcome outcome);

struct RolloutReport {
  RolloutOutcome outcome = RolloutOutcome::committed;
  std::string reason;  // human-readable cause for reject/rollback
  std::uint64_t from_version = 0;
  std::uint64_t target_version = 0;

  std::size_t fleet_size = 0;
  std::size_t canary_size = 0;
  std::size_t stages_completed = 0;  // canary counts as stage 1

  std::uint64_t pushes = 0;
  std::uint64_t push_drops = 0;
  std::uint64_t push_delays = 0;
  std::uint64_t activation_failures = 0;
  std::uint64_t crashes = 0;
  std::uint64_t forced_reboots = 0;  // rollback gave up pushing and rebooted

  double worst_denial_delta = 0.0;
  std::uint64_t new_watchdog_trips = 0;
  std::uint64_t verifier_drift = 0;

  // Rollback-equivalence oracle: verdict positions differing between the
  // pre-rollout and post-rollback fingerprints (must be 0).
  std::size_t equivalence_mismatches = 0;
  std::size_t equivalence_checked = 0;

  // Exit invariant: vehicles NOT on the final version (must be 0).
  std::size_t mixed_version_vehicles = 0;
  bool fully_converged = false;

  std::uint64_t convergence_ns = 0;  // roll_out() entry → single-version
  std::uint64_t rollback_ns = 0;     // regression detected → fleet restored

  std::string to_json() const;
};

class RolloutController {
 public:
  explicit RolloutController(Fleet& fleet, RolloutConfig config = {});

  // The published (committed) version and the retained previous snapshot.
  // RcuPtr reads: safe from any thread, stable while the reference is held.
  std::shared_ptr<const PolicyVersion> current() const {
    return current_.load();
  }
  std::shared_ptr<const PolicyVersion> previous() const {
    return previous_.load();
  }

  // Pushes `candidate` through gate → canary → stages → commit/rollback.
  // Serial over vehicles by design: fault draws happen in one deterministic
  // order, so chaos trials replay from their seed.
  RolloutReport roll_out(PolicyVersion candidate);

 private:
  struct Baseline {
    double denial_rate = 0.0;
    std::uint64_t watchdog_trips = 0;
  };

  bool push_version(Vehicle& vehicle, const PolicyVersion& version,
                    RolloutReport& report);
  bool vehicle_healthy(Vehicle& vehicle, const PolicyVersion& target,
                       const Baseline& baseline, RolloutReport& report);
  void roll_back(const PolicyVersion& previous, RolloutReport& report);

  Fleet& fleet_;
  RolloutConfig config_;
  RcuPtr<const PolicyVersion> current_;
  RcuPtr<const PolicyVersion> previous_;
};

}  // namespace sack::fleet
