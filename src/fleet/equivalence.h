// Rollback equivalence oracle: "bit-exact" as a checkable artifact.
//
// A DecisionFingerprint is the observable decision function of one vehicle,
// enumerated over the policy-derived witness universe (verify/universe.h):
// every (subject, object, op) tuple is checked twice back-to-back — a cold
// pass that misses the AVC and inserts, then a warm pass served from the
// cache — so the fingerprint covers the probe→insert→probe round-trip, not
// just the matcher. On top of that, the vehicle's concrete data files are
// opened through real open(2) calls per subject, dragging the file_open hook
// and the per-inode label cache into the capture.
//
// The rollout controller captures a fingerprint before staging a new version
// and compares after a rollback: any stale AVC entry or stale inode label
// surviving the version swap shows up as a verdict diff.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/vehicle.h"
#include "util/errno.h"

namespace sack::fleet {

struct DecisionFingerprint {
  // Cold-pass then warm-pass verdicts, tuple-major in universe order.
  std::vector<Errno> verdicts;
  // errno of a real read-open per (subject task, data file).
  std::vector<Errno> open_probes;

  bool operator==(const DecisionFingerprint&) const = default;
  // FNV-1a over both vectors: cheap to store per vehicle at fleet scale.
  std::uint64_t hash() const;
};

// Sweeps `vehicle` with the witness universe of `policy` (normally the
// vehicle's committed policy). Deterministic for a fixed (vehicle state,
// policy) pair.
DecisionFingerprint capture_fingerprint(Vehicle& vehicle,
                                        const core::SackPolicy& policy);

// Number of positions where the two fingerprints disagree (0 = bit-exact).
std::size_t fingerprint_diffs(const DecisionFingerprint& a,
                              const DecisionFingerprint& b);

}  // namespace sack::fleet
