#include "fleet/vehicle.h"

#include <array>

#include "core/policy_parser.h"
#include "kernel/process.h"
#include "util/log.h"

namespace sack::fleet {

using kernel::Cred;

namespace {

constexpr std::string_view kPolicyLoadPath =
    "/sys/kernel/security/SACK/policy/load";

}  // namespace

std::string fleet_policy_v1() {
  return R"(# Fleet policy v1: three states, media/OTA/diagnostics permissions.
states { parked = 0; driving = 1; emergency = 2; }
initial parked;
transitions {
  parked -> driving on start_driving;
  driving -> parked on stop_driving;
  parked -> emergency on crash_detected;
  driving -> emergency on crash_detected;
  emergency -> parked on emergency_cleared;
}
# Declared so the default SDS detector set can always transmit them.
events { high_speed_entered; low_speed_entered;
         parked_with_driver; parked_without_driver; }
permissions { MEDIA_READ; OTA_WRITE; DIAG_READ; }
state_per {
  parked: MEDIA_READ, OTA_WRITE;
  driving: MEDIA_READ;
  emergency: MEDIA_READ, DIAG_READ;
}
per_rules {
  MEDIA_READ { allow * /var/media/** read getattr; }
  OTA_WRITE { allow /usr/bin/ota /var/ota/** read write; }
  DIAG_READ { allow /usr/bin/rescue /etc/vehicle/vin read; }
}
)";
}

std::string fleet_policy_v2() {
  // Benign revision: media apps additionally get the cache tree. Verifies
  // clean and changes no verdict the v1 workload exercises.
  return R"(# Fleet policy v2: v1 plus a media cache grant.
states { parked = 0; driving = 1; emergency = 2; }
initial parked;
transitions {
  parked -> driving on start_driving;
  driving -> parked on stop_driving;
  parked -> emergency on crash_detected;
  driving -> emergency on crash_detected;
  emergency -> parked on emergency_cleared;
}
events { high_speed_entered; low_speed_entered;
         parked_with_driver; parked_without_driver; }
permissions { MEDIA_READ; OTA_WRITE; DIAG_READ; }
state_per {
  parked: MEDIA_READ, OTA_WRITE;
  driving: MEDIA_READ;
  emergency: MEDIA_READ, DIAG_READ;
}
per_rules {
  MEDIA_READ {
    allow * /var/media/** read getattr;
    allow * /var/cache/media/** read getattr;
  }
  OTA_WRITE { allow /usr/bin/ota /var/ota/** read write; }
  DIAG_READ { allow /usr/bin/rescue /etc/vehicle/vin read; }
}
)";
}

std::string fleet_policy_bad() {
  // Internally consistent — every static engine passes it — but the media
  // grant is narrowed to the rescue daemon, so every media app in the fleet
  // starts eating EACCES the moment it activates. Only the health gate
  // (denial-rate delta vs baseline) can catch this class of regression.
  return R"(# Fleet policy vX: media grant accidentally narrowed.
states { parked = 0; driving = 1; emergency = 2; }
initial parked;
transitions {
  parked -> driving on start_driving;
  driving -> parked on stop_driving;
  parked -> emergency on crash_detected;
  driving -> emergency on crash_detected;
  emergency -> parked on emergency_cleared;
}
events { high_speed_entered; low_speed_entered;
         parked_with_driver; parked_without_driver; }
permissions { MEDIA_READ; OTA_WRITE; DIAG_READ; }
state_per {
  parked: MEDIA_READ, OTA_WRITE;
  driving: MEDIA_READ;
  emergency: MEDIA_READ, DIAG_READ;
}
per_rules {
  MEDIA_READ { allow /usr/bin/rescue /var/media/** read getattr; }
  OTA_WRITE { allow /usr/bin/ota /var/ota/** read write; }
  DIAG_READ { allow /usr/bin/rescue /etc/vehicle/vin read; }
}
)";
}

Result<PolicyVersion> make_policy_version(std::uint64_t version,
                                          std::string text) {
  auto parsed = core::parse_policy(text);
  if (!parsed.ok()) return Errno::einval;
  return PolicyVersion{version, std::move(text), std::move(parsed.policy)};
}

Vehicle::Vehicle(const VehicleConfig& config, PolicyVersion initial)
    : config_(config), flash_(std::move(initial)) {
  boot();
}

void Vehicle::boot() {
  tasks_by_exe_.clear();
  sds_.reset();
  kernel_ = std::make_unique<kernel::Kernel>();
  mod_ = static_cast<core::SackModule*>(kernel_->add_lsm(
      std::make_unique<core::SackModule>(core::SackMode::independent)));

  kernel::Process admin(*kernel_, kernel_->init_task());
  auto& vfs = kernel_->vfs();
  vfs.mkdir_p("/var/media");
  vfs.mkdir_p("/var/ota");
  vfs.mkdir_p("/etc/vehicle");
  for (std::string_view path : Vehicle::kDataFiles) (void)admin.write_file(path, "x");

  media_task_ =
      &kernel_->spawn_task("media", Cred::root(), std::string(kMediaExe));
  ota_task_ = &kernel_->spawn_task("ota", Cred::root(), std::string(kOtaExe));
  rescue_task_ =
      &kernel_->spawn_task("rescue", Cred::root(), std::string(kRescueExe));
  tasks_by_exe_[std::string(kMediaExe)] = media_task_;
  tasks_by_exe_[std::string(kOtaExe)] = ota_task_;
  tasks_by_exe_[std::string(kRescueExe)] = rescue_task_;

  if (config_.start_sds) {
    auto& sds_task = kernel_->spawn_task("sds", Cred::root(), "/usr/bin/sds");
    sds_ = std::make_unique<sds::SituationDetectionService>(
        kernel::Process(*kernel_, sds_task));
    if (config_.default_detectors) sds_->add_default_detectors();
  }

  // Flash is always a committed (verified) version; failing to boot it is a
  // vehicle-integrity bug, not a rollout condition.
  auto rc = kernel::Process(*kernel_, kernel_->init_task())
                .write_existing(kPolicyLoadPath, flash_.text);
  if (!rc.ok()) {
    log_error("fleet: vehicle ", config_.id, ": flash policy v",
              flash_.version, " failed to boot: ", errno_name(rc.error()));
  }
  live_version_ = flash_.version;
}

Result<void> Vehicle::apply_policy(const PolicyVersion& version) {
  kernel::Process admin(*kernel_, kernel_->init_task());
  auto rc = admin.write_existing(kPolicyLoadPath, version.text);
  if (!rc.ok()) {
    ++activation_failures_;
    return rc.error();
  }
  live_version_ = version.version;
  return {};
}

void Vehicle::commit_policy(const PolicyVersion& version) {
  flash_ = version;
}

void Vehicle::reboot() {
  ++reboots_;
  boot();
}

kernel::Task& Vehicle::task_for_exe(const std::string& exe) {
  auto it = tasks_by_exe_.find(exe);
  if (it != tasks_by_exe_.end()) return *it->second;
  std::string comm = exe.substr(exe.find_last_of('/') + 1);
  if (comm.empty()) comm = "subject";
  auto& task = kernel_->spawn_task(std::move(comm), Cred::root(), exe);
  tasks_by_exe_[exe] = &task;
  return task;
}

Vehicle::WorkloadStats Vehicle::run_workload(std::size_t rounds) {
  using core::AccessQuery;
  using core::MacOp;
  WorkloadStats stats;
  // The fixed mix: media streams, OTA stages an update, OTA pokes at the
  // VIN (never allowed), rescue reads diagnostics (emergency only).
  std::array<AccessQuery, 3> media_q{
      AccessQuery{{}, {}, Vehicle::kDataFiles[0], MacOp::read},
      AccessQuery{{}, {}, Vehicle::kDataFiles[1], MacOp::read},
      AccessQuery{{}, {}, Vehicle::kDataFiles[0], MacOp::getattr},
  };
  std::array<AccessQuery, 2> ota_q{
      AccessQuery{{}, {}, Vehicle::kDataFiles[3], MacOp::write},
      AccessQuery{{}, {}, Vehicle::kDataFiles[2], MacOp::read},
  };
  std::array<AccessQuery, 1> rescue_q{
      AccessQuery{{}, {}, Vehicle::kDataFiles[2], MacOp::read},
  };
  std::array<Errno, 3> verdicts{};
  auto run = [&](kernel::Task& task, std::span<AccessQuery> queries) {
    mod_->check_ops(task, queries,
                    std::span<Errno>(verdicts.data(), queries.size()));
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ++stats.checks;
      if (verdicts[i] != Errno::ok) ++stats.denials;
    }
  };
  for (std::size_t r = 0; r < rounds; ++r) {
    run(*media_task_, media_q);
    run(*ota_task_, ota_q);
    run(*rescue_task_, rescue_q);
  }
  return stats;
}

sds::FeedResult Vehicle::feed_frames(
    std::span<const sds::SensorFrame> frames) {
  if (!sds_) return {};
  return sds_->feed_batch(frames);
}

}  // namespace sack::fleet
