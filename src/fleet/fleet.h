// Fleet: the multi-tenant host.
//
// Owns N independent Vehicle instances (each a full kernel + SACK module +
// SDS stack) sharded across worker threads for boot and bulk operations.
// Vehicles share nothing but the process — per-instance work needs no locks;
// for_each() simply partitions the index space across shards. Deterministic
// campaigns (chaos trials that arm fault sites) should run with shards = 1
// so control-plane fault draws happen in one reproducible order; the
// parallel path is for boot and measurement at bench scale.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fleet/vehicle.h"

namespace sack::fleet {

struct FleetConfig {
  std::size_t vehicles = 1;
  // Worker threads for boot/for_each. 0 = pick from hardware concurrency,
  // clamped to [1, vehicles].
  std::size_t shards = 0;
  bool start_sds = true;
  bool default_detectors = true;
};

class Fleet {
 public:
  // Boots every vehicle with `initial` committed to flash.
  Fleet(const FleetConfig& config, PolicyVersion initial);

  std::size_t size() const { return vehicles_.size(); }
  std::size_t shards() const { return shards_; }
  Vehicle& vehicle(std::size_t i) { return *vehicles_[i]; }
  const PolicyVersion& initial_version() const { return initial_; }

  // Runs `fn` over every vehicle, partitioned across the shard threads
  // (serial when shards == 1). `fn` must not touch shared mutable state.
  void for_each(const std::function<void(Vehicle&)>& fn);

  // Vehicles whose live version is not `version`.
  std::size_t count_not_on(std::uint64_t version) const;
  // Every vehicle live AND committed on `version` — the single-version
  // invariant a finished rollout or rollback must restore.
  bool converged_on(std::uint64_t version) const;

 private:
  FleetConfig config_;
  PolicyVersion initial_;
  std::size_t shards_ = 1;
  std::vector<std::unique_ptr<Vehicle>> vehicles_;
};

}  // namespace sack::fleet
