#include "fleet/fleet.h"

#include <algorithm>
#include <thread>

namespace sack::fleet {

namespace {

std::size_t resolve_shards(std::size_t requested, std::size_t vehicles) {
  std::size_t shards = requested;
  if (shards == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    shards = hw ? hw : 4;
    shards = std::min<std::size_t>(shards, 16);
  }
  return std::clamp<std::size_t>(shards, 1, std::max<std::size_t>(vehicles, 1));
}

// Partitions [0, n) into `shards` contiguous ranges and runs `fn(begin, end)`
// on each, on worker threads when shards > 1.
void sharded(std::size_t n, std::size_t shards,
             const std::function<void(std::size_t, std::size_t)>& fn) {
  if (shards <= 1 || n <= 1) {
    fn(0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(shards);
  std::size_t chunk = (n + shards - 1) / shards;
  for (std::size_t s = 0; s < shards; ++s) {
    std::size_t begin = s * chunk;
    std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& w : workers) w.join();
}

}  // namespace

Fleet::Fleet(const FleetConfig& config, PolicyVersion initial)
    : config_(config), initial_(std::move(initial)) {
  std::size_t n = std::max<std::size_t>(config.vehicles, 1);
  shards_ = resolve_shards(config.shards, n);
  vehicles_.resize(n);
  sharded(n, shards_, [this](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      VehicleConfig vc;
      vc.id = static_cast<std::uint32_t>(i);
      vc.start_sds = config_.start_sds;
      vc.default_detectors = config_.default_detectors;
      vehicles_[i] = std::make_unique<Vehicle>(vc, initial_);
    }
  });
}

void Fleet::for_each(const std::function<void(Vehicle&)>& fn) {
  sharded(vehicles_.size(), shards_,
          [this, &fn](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) fn(*vehicles_[i]);
          });
}

std::size_t Fleet::count_not_on(std::uint64_t version) const {
  std::size_t n = 0;
  for (const auto& v : vehicles_)
    if (v->live_version() != version) ++n;
  return n;
}

bool Fleet::converged_on(std::uint64_t version) const {
  for (const auto& v : vehicles_)
    if (v->live_version() != version || v->committed_version() != version)
      return false;
  return true;
}

}  // namespace sack::fleet
