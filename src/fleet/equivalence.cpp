#include "fleet/equivalence.h"

#include "kernel/process.h"
#include "verify/universe.h"

namespace sack::fleet {

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::span<const Errno> xs) {
  for (Errno e : xs) {
    h ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(e));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t DecisionFingerprint::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, verdicts);
  return fnv1a(h, open_probes);
}

DecisionFingerprint capture_fingerprint(Vehicle& vehicle,
                                        const core::SackPolicy& policy) {
  DecisionFingerprint fp;
  verify::Universe universe = verify::build_universe(policy);

  std::vector<core::AccessQuery> queries;
  queries.reserve(universe.objects.size() * universe.ops.size());
  for (const auto& object : universe.objects)
    for (core::MacOp op : universe.ops)
      queries.push_back({{}, {}, object, op});

  std::vector<Errno> verdicts(queries.size());
  fp.verdicts.reserve(2 * universe.subjects.size() * queries.size());
  // Two identical passes per subject: pass 1 fills the AVC (probe miss →
  // insert), pass 2 must be served by it. Both land in the fingerprint, so
  // a cache answering differently from the matcher is a visible diff.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& subject : universe.subjects) {
      auto& task = vehicle.task_for_exe(subject.exe);
      vehicle.module().check_ops(task, queries, verdicts);
      fp.verdicts.insert(fp.verdicts.end(), verdicts.begin(), verdicts.end());
    }
  }

  for (const auto& subject : universe.subjects) {
    kernel::Process proc(vehicle.kernel(), vehicle.task_for_exe(subject.exe));
    for (std::string_view path : Vehicle::kDataFiles) {
      auto read = proc.read_file(path);
      fp.open_probes.push_back(read.ok() ? Errno::ok : read.error());
    }
  }
  return fp;
}

std::size_t fingerprint_diffs(const DecisionFingerprint& a,
                              const DecisionFingerprint& b) {
  std::size_t diffs = 0;
  auto count = [&](const std::vector<Errno>& x, const std::vector<Errno>& y) {
    std::size_t common = std::min(x.size(), y.size());
    for (std::size_t i = 0; i < common; ++i)
      if (x[i] != y[i]) ++diffs;
    diffs += std::max(x.size(), y.size()) - common;
  };
  count(a.verdicts, b.verdicts);
  count(a.open_probes, b.open_probes);
  return diffs;
}

}  // namespace sack::fleet
