// Clocks.
//
// The simulation itself is deterministic: everything that needs "time"
// inside the simulated kernel (inode timestamps, event timestamps, the
// transition-frequency experiment's schedule) reads a VirtualClock that only
// moves when ticked. Benchmarks measure real elapsed time with MonotonicTimer.
#pragma once

#include <chrono>
#include <cstdint>

namespace sack {

// Nanoseconds since simulation boot.
using SimTime = std::int64_t;

class VirtualClock {
 public:
  SimTime now() const { return now_ns_; }

  void advance_ns(SimTime delta) { now_ns_ += delta; }
  void advance_us(SimTime delta) { now_ns_ += delta * 1000; }
  void advance_ms(SimTime delta) { now_ns_ += delta * 1'000'000; }

 private:
  SimTime now_ns_ = 0;
};

// Raw monotonic nanoseconds, for instrumentation that must timestamp
// without constructing a timer (the observability hooks).
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Thin wrapper over steady_clock for benchmark code.
class MonotonicTimer {
 public:
  MonotonicTimer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  double elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double elapsed_us() const { return elapsed_ns() / 1e3; }
  double elapsed_ms() const { return elapsed_ns() / 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sack
