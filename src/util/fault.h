// Deterministic fault injection.
//
// Robustness claims ("the watchdog fires", "a burst of ENOSPC never loses an
// event") are only testable if failures can be produced on demand and
// *reproducibly*. This registry provides named injection points: production
// code probes a site by name, tests arm the site with a FaultSpec describing
// when it fires and what error it injects. Everything is deterministic from
// the spec (skip/max_fires counters, SplitMix64-seeded probability), so a
// failing chaos run replays exactly from its seed.
//
// Sites wired in this repo:
//   sackfs.write        Process::write_existing fails with the armed errno
//                       (detail = target path, so "events" vs "heartbeat"
//                       writes can be targeted via FaultSpec::match)
//   sds.heartbeat.drop  SDS skips this frame's heartbeat write
//   sds.frame.drop      SDS discards the incoming sensor frame
//   sds.frame.delay     SDS defers the frame to the next feed() call
//   sds.detector.throw  detector on_frame throws (detail = detector name)
//   sack.policy.reload  chaos harness triggers a policy reload at this point
//   sack.ruleset.load   rule-set snapshot build fails before publication
//   fleet.push.drop     control plane loses the push to a vehicle
//   fleet.push.delay    push to a vehicle is deferred to a later pump
//   fleet.activate.fail vehicle fails policy activation with the armed errno
//   fleet.vehicle.crash vehicle reboots mid-rollout, losing volatile state
//   sfi.profile.load    SFI program-set compile fails before publication
//                       (the previous ProgramSet must stay live)
//   sfi.transition.fail SFI per-syscall transition probe fails closed with
//                       the armed errno (detail = syscall name)
//
// Site names are validated against a central registry: arming a name nobody
// probes is a test bug (the chaos campaign silently tests nothing), so
// arm() rejects unknown sites with a warning. Production sites are built in;
// tests and out-of-tree harnesses declare theirs via register_site().
// fault_sites() enumerates the registry so campaign drivers (bench_fleet,
// sack-fuzz --list-fault-sites) can discover what is available.
//
// The disarmed fast path is one relaxed atomic load — production code can
// leave probes in unconditionally. Armed probes take a mutex (fault testing
// is not a throughput mode); the registry is safe to probe from concurrent
// threads and is TSan-clean.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/errno.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace sack::util {

// When an armed site fires, and what it injects.
struct FaultSpec {
  // Let this many matching hits pass before the site becomes eligible.
  std::uint64_t skip = 0;
  // Stop firing after this many fires (0 = unlimited).
  std::uint64_t max_fires = 0;
  // Fire an eligible hit with this probability (1.0 = always). Draws come
  // from a SplitMix64 stream seeded with `seed`, so runs are reproducible.
  double probability = 1.0;
  std::uint64_t seed = 0x5eedULL;
  // Error injected by fail_errno() sites (ignored by boolean fire() sites).
  Errno error = Errno::eio;
  // Only hits whose detail string contains this substring match ("" = all).
  std::string match;
};

struct FaultSiteStats {
  std::uint64_t hits = 0;   // matching probes observed
  std::uint64_t fires = 0;  // probes that injected the fault
};

// One row of the known-site registry, as returned by fault_sites().
struct FaultSiteInfo {
  std::string name;
  std::string description;
  bool armed = false;
};

class FaultInjector {
 public:
  // Process-wide registry, like Logger: the code under test reaches the
  // injection points through whatever layers exist, so the switchboard has
  // to be ambient. Tests arm in SetUp and reset() in TearDown.
  static FaultInjector& instance();

  // Arms a known site. Unknown names are rejected with a warning and
  // return false — a typo'd site would otherwise arm nothing and the test
  // would silently pass. Declare new sites with register_site() first.
  bool arm(std::string_view site, FaultSpec spec);
  void disarm(std::string_view site);
  // Disarms every site and clears all statistics. Registered site names
  // survive (the registry describes the code, not the current test).
  void reset();

  // Declares a probe-able site name. Idempotent; a later registration may
  // fill in a missing description but never clears one.
  void register_site(std::string_view site, std::string_view description = {});
  bool is_registered(std::string_view site) const;
  // Every known site, sorted by name, with its current armed state.
  std::vector<FaultSiteInfo> fault_sites() const;

  // Probe a boolean site: true if the armed spec fires on this hit.
  bool fire(std::string_view site, std::string_view detail = {});

  // Probe an error-injecting site: the armed errno, if it fires.
  std::optional<Errno> fail_errno(std::string_view site,
                                  std::string_view detail = {});

  FaultSiteStats stats(std::string_view site) const;
  bool any_armed() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

 private:
  FaultInjector();

  struct Site {
    FaultSpec spec;
    Rng rng{0};
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  // nullptr when the site is disarmed or the detail does not match;
  // otherwise whether this hit fires. Caller must hold mu_.
  bool probe_locked(Site& site, std::string_view detail) SACK_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Site, std::less<>> sites_ SACK_GUARDED_BY(mu_);
  // name -> description. Populated with the built-in production sites at
  // construction; register_site() adds test-local ones.
  std::map<std::string, std::string, std::less<>> registry_
      SACK_GUARDED_BY(mu_);
  std::atomic<int> armed_sites_{0};
};

}  // namespace sack::util
