// Strongly-typed integer identifiers (Pid, Fd, InodeNo, ...).
//
// A Pid and an Fd are both "small ints" but mixing them up is a classic
// simulator bug; the tag parameter makes each id its own type.
#pragma once

#include <cstdint>
#include <functional>

namespace sack {

template <typename Tag, typename Rep = std::int64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : v_(v) {}

  constexpr Rep get() const { return v_; }
  constexpr bool valid() const { return v_ >= 0; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  static constexpr StrongId invalid() { return StrongId(-1); }

 private:
  Rep v_ = -1;
};

struct PidTag {};
struct FdTag {};
struct InodeNoTag {};
struct StateIdTag {};
struct EventIdTag {};
struct PermIdTag {};

using Pid = StrongId<PidTag>;
using Fd = StrongId<FdTag>;
using InodeNo = StrongId<InodeNoTag>;
using StateId = StrongId<StateIdTag>;   // SACK situation-state encoding
using EventId = StrongId<EventIdTag>;   // SACK situation-event id
using PermId = StrongId<PermIdTag>;     // SACK permission id

}  // namespace sack

namespace std {
template <typename Tag, typename Rep>
struct hash<sack::StrongId<Tag, Rep>> {
  size_t operator()(sack::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.get());
  }
};
}  // namespace std
