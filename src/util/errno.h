// Errno: the simulated kernel's error-code vocabulary.
//
// The simulator mirrors the Linux syscall ABI: every syscall either succeeds
// with a value or fails with a negative errno. We model that with a scoped
// enum plus Result<T> (see result.h) instead of raw ints so that forgetting
// to check a failure is a compile error rather than a silent bug.
#pragma once

#include <string_view>

namespace sack {

enum class Errno {
  ok = 0,
  eperm,         // operation not permitted
  enoent,        // no such file or directory
  esrch,         // no such process
  eintr,         // interrupted
  eio,           // I/O error
  enxio,         // no such device or address
  e2big,         // argument list too long
  enoexec,       // exec format error
  ebadf,         // bad file descriptor
  echild,        // no child processes
  eagain,        // try again
  enomem,        // out of memory
  eacces,        // permission denied (DAC / MAC denial)
  efault,        // bad address
  ebusy,         // device or resource busy
  eexist,        // file exists
  exdev,         // cross-device link
  enodev,        // no such device
  enotdir,       // not a directory
  eisdir,        // is a directory
  einval,        // invalid argument
  enfile,        // file table overflow
  emfile,        // too many open files
  enotty,        // inappropriate ioctl for device
  efbig,         // file too large
  enospc,        // no space left on device
  espipe,        // illegal seek
  erofs,         // read-only file system
  emlink,        // too many links
  epipe,         // broken pipe
  erange,        // result out of range
  enametoolong,  // file name too long
  enosys,        // function not implemented
  enotempty,     // directory not empty
  eloop,         // too many symbolic links
  enodata,       // no data available
  eproto,        // protocol error
  enotsock,      // socket operation on non-socket
  eopnotsupp,    // operation not supported
  eaddrinuse,    // address already in use
  econnrefused,  // connection refused
  enotconn,      // socket is not connected
  econnreset,    // connection reset by peer
};

// Short symbolic name, e.g. "EACCES".
std::string_view errno_name(Errno e);

// Human-readable description, e.g. "permission denied".
std::string_view errno_message(Errno e);

}  // namespace sack
