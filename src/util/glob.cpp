#include "util/glob.h"

#include <optional>

namespace sack {

namespace {

// True if `pat` has no unescaped glob metacharacters.
bool is_plain_literal(std::string_view pat) {
  for (std::size_t i = 0; i < pat.size(); ++i) {
    switch (pat[i]) {
      case '*':
      case '?':
      case '[':
      case ']':
      case '{':
      case '}':
      case '\\':
        return false;
      default:
        break;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<std::string>> Glob::expand_braces(std::string_view pat) {
  // Find the first unescaped '{', locate its matching '}', split on
  // top-level ',', recurse on each expansion. Depth-first, so nested braces
  // work. Character classes shield metacharacters.
  int depth = 0;
  bool in_class = false;
  std::size_t open = std::string_view::npos;
  for (std::size_t i = 0; i < pat.size(); ++i) {
    char c = pat[i];
    if (c == '\\') {
      if (i + 1 >= pat.size()) return Errno::einval;
      ++i;
      continue;
    }
    if (in_class) {
      if (c == ']') in_class = false;
      continue;
    }
    if (c == '[') {
      in_class = true;
    } else if (c == '{') {
      if (depth == 0) open = i;
      ++depth;
    } else if (c == '}') {
      if (depth == 0) return Errno::einval;
      --depth;
      if (depth == 0) {
        // Split pat[open+1 .. i-1] on top-level commas.
        std::vector<std::string> branches;
        std::string cur;
        int inner = 0;
        bool inner_class = false;
        for (std::size_t j = open + 1; j < i; ++j) {
          char d = pat[j];
          if (d == '\\' && j + 1 < i) {
            cur += d;
            cur += pat[++j];
            continue;
          }
          if (inner_class) {
            if (d == ']') inner_class = false;
            cur += d;
            continue;
          }
          if (d == '[') inner_class = true;
          if (d == '{') ++inner;
          if (d == '}') --inner;
          if (d == ',' && inner == 0) {
            branches.push_back(cur);
            cur.clear();
          } else {
            cur += d;
          }
        }
        branches.push_back(cur);

        std::vector<std::string> out;
        for (const auto& b : branches) {
          std::string joined;
          joined.append(pat.substr(0, open));
          joined.append(b);
          joined.append(pat.substr(i + 1));
          SACK_ASSIGN_OR_RETURN(auto sub, expand_braces(joined));
          for (auto& s : sub) out.push_back(std::move(s));
        }
        return out;
      }
    }
  }
  if (depth != 0 || in_class) return Errno::einval;
  return std::vector<std::string>{std::string(pat)};
}

Result<Glob::TokenSeq> Glob::tokenize(std::string_view pat) {
  TokenSeq seq;
  for (std::size_t i = 0; i < pat.size(); ++i) {
    char c = pat[i];
    switch (c) {
      case '\\': {
        if (i + 1 >= pat.size()) return Errno::einval;
        seq.push_back({TokKind::literal, pat[++i], {}, false});
        break;
      }
      case '?':
        seq.push_back({TokKind::any_one, 0, {}, false});
        break;
      case '*': {
        if (i + 1 < pat.size() && pat[i + 1] == '*') {
          ++i;
          seq.push_back({TokKind::any_deep, 0, {}, false});
        } else {
          seq.push_back({TokKind::any_seq, 0, {}, false});
        }
        break;
      }
      case '[': {
        Token tok{TokKind::char_class, 0, {}, false};
        ++i;
        if (i < pat.size() && (pat[i] == '^' || pat[i] == '!')) {
          tok.negated = true;
          ++i;
        }
        bool closed = false;
        bool first = true;
        while (i < pat.size()) {
          char d = pat[i];
          if (d == ']' && !first) {
            closed = true;
            break;
          }
          first = false;
          if (d == '\\') {
            if (i + 1 >= pat.size()) return Errno::einval;
            d = pat[++i];
            tok.set += d;
            ++i;
            continue;
          }
          // Range a-z (the '-' must not be last-in-class).
          if (i + 2 < pat.size() && pat[i + 1] == '-' && pat[i + 2] != ']') {
            char lo = d, hi = pat[i + 2];
            if (lo > hi) return Errno::einval;
            for (char x = lo;; ++x) {
              tok.set += x;
              if (x == hi) break;
            }
            i += 3;
            continue;
          }
          tok.set += d;
          ++i;
        }
        if (!closed || tok.set.empty()) return Errno::einval;
        seq.push_back(std::move(tok));
        break;
      }
      case ']':
      case '{':
      case '}':
        // Brace expansion already removed {} pairs; stray ones are errors.
        return Errno::einval;
      default:
        seq.push_back({TokKind::literal, c, {}, false});
        break;
    }
  }
  return seq;
}

Result<Glob> Glob::compile(std::string_view pattern) {
  Glob g;
  g.pattern_ = std::string(pattern);
  SACK_ASSIGN_OR_RETURN(auto expanded, expand_braces(pattern));
  g.alternatives_.reserve(expanded.size());
  for (const auto& alt : expanded) {
    SACK_ASSIGN_OR_RETURN(auto seq, tokenize(alt));
    g.alternatives_.push_back(std::move(seq));
  }
  if (expanded.size() == 1 && is_plain_literal(pattern)) {
    g.literal_ = std::string(pattern);
  }
  return g;
}

bool Glob::match_seq(const TokenSeq& seq, std::size_t ti, std::string_view path,
                     std::size_t pi) {
  // Linear scan with backtracking only at wildcard tokens. Patterns in MAC
  // policies are short, so plain recursion is fine.
  while (ti < seq.size()) {
    const Token& t = seq[ti];
    switch (t.kind) {
      case TokKind::literal:
        if (pi >= path.size() || path[pi] != t.ch) return false;
        ++ti;
        ++pi;
        break;
      case TokKind::any_one:
        if (pi >= path.size() || path[pi] == '/') return false;
        ++ti;
        ++pi;
        break;
      case TokKind::char_class: {
        if (pi >= path.size() || path[pi] == '/') return false;
        bool in = t.set.find(path[pi]) != std::string::npos;
        if (in == t.negated) return false;
        ++ti;
        ++pi;
        break;
      }
      case TokKind::any_seq: {
        // Try the longest extension first is unnecessary; shortest-first is
        // simpler and equivalent for acceptance.
        for (std::size_t k = pi;; ++k) {
          if (match_seq(seq, ti + 1, path, k)) return true;
          if (k >= path.size() || path[k] == '/') return false;
        }
      }
      case TokKind::any_deep: {
        for (std::size_t k = pi;; ++k) {
          if (match_seq(seq, ti + 1, path, k)) return true;
          if (k >= path.size()) return false;
        }
      }
    }
  }
  return pi == path.size();
}

bool Glob::matches(std::string_view path) const {
  for (const auto& alt : alternatives_) {
    if (match_seq(alt, 0, path, 0)) return true;
  }
  return false;
}

}  // namespace sack
