#include "util/fault.h"

#include "util/log.h"

namespace sack::util {

namespace {

// Production injection points compiled into this repo. Anything not listed
// here (or registered at runtime) is a typo as far as arm() is concerned.
constexpr struct {
  const char* name;
  const char* description;
} kBuiltinSites[] = {
    {"sackfs.write", "Process::write_existing fails with the armed errno"},
    {"sds.heartbeat.drop", "SDS skips this frame's heartbeat write"},
    {"sds.frame.drop", "SDS discards the incoming sensor frame"},
    {"sds.frame.delay", "SDS defers the frame to the next feed() call"},
    {"sds.detector.throw", "detector on_frame throws (detail = detector)"},
    {"sack.policy.reload", "chaos harness reloads the policy at this point"},
    {"sack.ruleset.load", "rule-set snapshot build fails before publication"},
    {"fleet.push.drop", "control plane loses the push to a vehicle"},
    {"fleet.push.delay", "push to a vehicle is deferred to a later pump"},
    {"fleet.activate.fail", "vehicle fails policy activation (armed errno)"},
    {"fleet.vehicle.crash", "vehicle reboots mid-rollout"},
    {"sfi.profile.load", "SFI program-set compile fails before publication"},
    {"sfi.transition.fail",
     "SFI per-syscall transition probe fails closed (detail = syscall)"},
};

}  // namespace

FaultInjector::FaultInjector() {
  for (const auto& site : kBuiltinSites) registry_.emplace(site.name, site.description);
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

bool FaultInjector::arm(std::string_view site, FaultSpec spec) {
  MutexLock lock(mu_);
  if (registry_.find(site) == registry_.end()) {
    log_warn("fault: refusing to arm unknown site '", std::string(site),
             "' (register_site() it first; see fault_sites())");
    return false;
  }
  auto [it, inserted] = sites_.try_emplace(std::string(site));
  it->second.spec = std::move(spec);
  it->second.rng = Rng(it->second.spec.seed);
  it->second.hits = 0;
  it->second.fires = 0;
  if (inserted) armed_sites_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::disarm(std::string_view site) {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  sites_.erase(it);
  armed_sites_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  MutexLock lock(mu_);
  armed_sites_.fetch_sub(static_cast<int>(sites_.size()),
                         std::memory_order_relaxed);
  sites_.clear();
}

void FaultInjector::register_site(std::string_view site,
                                  std::string_view description) {
  MutexLock lock(mu_);
  auto [it, inserted] = registry_.try_emplace(std::string(site),
                                              std::string(description));
  if (!inserted && it->second.empty() && !description.empty())
    it->second = std::string(description);
}

bool FaultInjector::is_registered(std::string_view site) const {
  MutexLock lock(mu_);
  return registry_.find(site) != registry_.end();
}

std::vector<FaultSiteInfo> FaultInjector::fault_sites() const {
  MutexLock lock(mu_);
  std::vector<FaultSiteInfo> out;
  out.reserve(registry_.size());
  for (const auto& [name, description] : registry_)
    out.push_back({name, description, sites_.find(name) != sites_.end()});
  return out;
}

bool FaultInjector::probe_locked(Site& site, std::string_view detail) {
  if (!site.spec.match.empty() &&
      detail.find(site.spec.match) == std::string_view::npos)
    return false;
  const std::uint64_t hit = site.hits++;
  if (hit < site.spec.skip) return false;
  if (site.spec.max_fires != 0 && site.fires >= site.spec.max_fires)
    return false;
  if (site.spec.probability < 1.0 && !site.rng.chance(site.spec.probability))
    return false;
  ++site.fires;
  return true;
}

bool FaultInjector::fire(std::string_view site, std::string_view detail) {
  if (!any_armed()) return false;
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  return probe_locked(it->second, detail);
}

std::optional<Errno> FaultInjector::fail_errno(std::string_view site,
                                               std::string_view detail) {
  if (!any_armed()) return std::nullopt;
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return std::nullopt;
  if (!probe_locked(it->second, detail)) return std::nullopt;
  return it->second.spec.error;
}

FaultSiteStats FaultInjector::stats(std::string_view site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return {};
  return {it->second.hits, it->second.fires};
}

}  // namespace sack::util
