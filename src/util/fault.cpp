#include "util/fault.h"

namespace sack::util {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::string_view site, FaultSpec spec) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = sites_.try_emplace(std::string(site));
  it->second.spec = std::move(spec);
  it->second.rng = Rng(it->second.spec.seed);
  it->second.hits = 0;
  it->second.fires = 0;
  if (inserted) armed_sites_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::disarm(std::string_view site) {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  sites_.erase(it);
  armed_sites_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard lock(mu_);
  armed_sites_.fetch_sub(static_cast<int>(sites_.size()),
                         std::memory_order_relaxed);
  sites_.clear();
}

bool FaultInjector::probe_locked(Site& site, std::string_view detail) {
  if (!site.spec.match.empty() &&
      detail.find(site.spec.match) == std::string_view::npos)
    return false;
  const std::uint64_t hit = site.hits++;
  if (hit < site.spec.skip) return false;
  if (site.spec.max_fires != 0 && site.fires >= site.spec.max_fires)
    return false;
  if (site.spec.probability < 1.0 && !site.rng.chance(site.spec.probability))
    return false;
  ++site.fires;
  return true;
}

bool FaultInjector::fire(std::string_view site, std::string_view detail) {
  if (!any_armed()) return false;
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  return probe_locked(it->second, detail);
}

std::optional<Errno> FaultInjector::fail_errno(std::string_view site,
                                               std::string_view detail) {
  if (!any_armed()) return std::nullopt;
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return std::nullopt;
  if (!probe_locked(it->second, detail)) return std::nullopt;
  return it->second.spec.error;
}

FaultSiteStats FaultInjector::stats(std::string_view site) const {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return {};
  return {it->second.hits, it->second.fires};
}

}  // namespace sack::util
