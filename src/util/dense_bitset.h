// DenseBitset: a fixed-size dynamic bit vector over 64-bit words.
//
// The rule-mask currency of the DFA matcher: a compiled path automaton's
// accepting states carry one bit per loaded rule, and an activation is a
// pair of per-op masks (allow/deny) that check() intersects with the path's
// accept mask. All operations the hot path needs — word access, on-the-fly
// AND iteration — are allocation-free; only construction/resizing allocates.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sack {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t i) const { return words_[i]; }

  void set(std::size_t i) { words_[i / 64] |= std::uint64_t{1} << (i % 64); }
  void reset(std::size_t i) {
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  bool test(std::size_t i) const {
    return i < bits_ && (words_[i / 64] >> (i % 64)) & 1;
  }

  bool any() const {
    for (std::uint64_t w : words_)
      if (w) return true;
    return false;
  }
  bool none() const { return !any(); }

  std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  friend bool operator==(const DenseBitset& a, const DenseBitset& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

  // True if (a & b) has any bit set. Tolerates different sizes (missing
  // words are zero).
  static bool intersects(const DenseBitset& a, const DenseBitset& b) {
    const std::size_t n = a.word_count() < b.word_count() ? a.word_count()
                                                          : b.word_count();
    for (std::size_t i = 0; i < n; ++i)
      if (a.words_[i] & b.words_[i]) return true;
    return false;
  }

  // Calls `fn(index)` for every set bit of (a & b), ascending, without
  // materializing the intersection.
  template <typename Fn>
  static void for_each_and(const DenseBitset& a, const DenseBitset& b,
                           Fn&& fn) {
    const std::size_t n = a.word_count() < b.word_count() ? a.word_count()
                                                          : b.word_count();
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t w = a.words_[i] & b.words_[i];
      while (w) {
        fn(i * 64 + static_cast<std::size_t>(std::countr_zero(w)));
        w &= w - 1;
      }
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w) {
        fn(i * 64 + static_cast<std::size_t>(std::countr_zero(w)));
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace sack
