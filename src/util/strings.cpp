#include "util/strings.h"

#include <cctype>

namespace sack {

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_identifier(std::string_view name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_')
    return false;
  for (char c : name.substr(1)) {
    if (!is_word_char(c) && c != '-') return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace sack
