#include "util/glob_subsume.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

namespace sack {

namespace {

using TokKind = Glob::TokKind;
using Token = Glob::Token;
using TokenSeq = Glob::TokenSeq;

// An NFA over token positions. State ids are dense: alternative `a` of the
// glob contributes positions 0..len(a), flattened with per-alternative
// offsets. Position len(a) is the accept state of that alternative.
struct Nfa {
  struct Alt {
    const TokenSeq* seq;
    std::size_t offset;  // state id of position 0
  };
  std::vector<Alt> alts;
  std::size_t state_count = 0;

  explicit Nfa(const Glob& g) {
    for (const auto& seq : g.alternatives()) {
      alts.push_back({&seq, state_count});
      state_count += seq.size() + 1;
    }
  }

  // Epsilon closure: a star token may be skipped, so position i with an
  // any_seq/any_deep token also reaches i+1 (transitively).
  void close(std::set<std::size_t>& states) const {
    std::deque<std::size_t> work(states.begin(), states.end());
    while (!work.empty()) {
      std::size_t s = work.front();
      work.pop_front();
      for (const auto& alt : alts) {
        if (s < alt.offset || s >= alt.offset + alt.seq->size()) continue;
        const Token& t = (*alt.seq)[s - alt.offset];
        if (t.kind == TokKind::any_seq || t.kind == TokKind::any_deep) {
          if (states.insert(s + 1).second) work.push_back(s + 1);
        }
        break;  // a state id belongs to exactly one alternative
      }
    }
  }

  std::set<std::size_t> start() const {
    std::set<std::size_t> s;
    for (const auto& alt : alts) s.insert(alt.offset);
    close(s);
    return s;
  }

  bool accepts(const std::set<std::size_t>& states) const {
    for (const auto& alt : alts) {
      if (states.contains(alt.offset + alt.seq->size())) return true;
    }
    return false;
  }

  // One step on concrete character `c`.
  std::set<std::size_t> step(const std::set<std::size_t>& states,
                             char c) const {
    std::set<std::size_t> next;
    for (std::size_t s : states) {
      for (const auto& alt : alts) {
        if (s < alt.offset || s >= alt.offset + alt.seq->size()) continue;
        const Token& t = (*alt.seq)[s - alt.offset];
        switch (t.kind) {
          case TokKind::literal:
            if (t.ch == c) next.insert(s + 1);
            break;
          case TokKind::any_one:
            if (c != '/') next.insert(s + 1);
            break;
          case TokKind::char_class:
            // '/' never matches a class, negated or not (see Glob::match_seq).
            if (c != '/' &&
                (t.set.find(c) != std::string::npos) != t.negated)
              next.insert(s + 1);
            break;
          case TokKind::any_seq:
            if (c != '/') next.insert(s);  // self-loop; closure adds s+1
            break;
          case TokKind::any_deep:
            next.insert(s);
            break;
        }
        break;
      }
    }
    close(next);
    return next;
  }
};

// The symbolic alphabet: every character either pattern mentions (literals
// and class members), '/', and one representative unmentioned character.
std::string symbolic_alphabet(const Glob& a, const Glob& b) {
  std::set<char> mentioned{'/'};
  auto gather = [&mentioned](const Glob& g) {
    for (const auto& seq : g.alternatives()) {
      for (const auto& t : seq) {
        if (t.kind == TokKind::literal) mentioned.insert(t.ch);
        if (t.kind == TokKind::char_class)
          for (char c : t.set) mentioned.insert(c);
      }
    }
  };
  gather(a);
  gather(b);
  std::string alphabet(mentioned.begin(), mentioned.end());
  // All unmentioned characters behave identically in every token of both
  // patterns, so one representative stands for the whole class. Prefer a
  // readable one for witness output.
  for (char c : std::string("zqxjkvw0189_~")) {
    if (!mentioned.contains(c)) return alphabet + c;
  }
  for (int c = 33; c < 127; ++c) {
    if (!mentioned.contains(static_cast<char>(c)))
      return alphabet + static_cast<char>(c);
  }
  for (int c = 1; c < 256; ++c) {
    if (!mentioned.contains(static_cast<char>(c)))
      return alphabet + static_cast<char>(c);
  }
  return alphabet;  // every byte mentioned: no representative needed
}

}  // namespace

SubsumeVerdict glob_subsumes(const Glob& general, const Glob& specific,
                             std::size_t state_limit) {
  const Nfa gen(general);
  const Nfa spec(specific);
  const std::string alphabet = symbolic_alphabet(general, specific);

  // Product walk: (specific subset, general subset). A pair where specific
  // accepts and general does not is a containment counterexample; the BFS
  // order makes the reconstructed witness shortest.
  using Pair = std::pair<std::set<std::size_t>, std::set<std::size_t>>;
  std::map<Pair, std::pair<const Pair*, char>> parent;  // for witnesses
  std::deque<const Pair*> work;

  auto visit = [&parent, &work](Pair&& p, const Pair* from,
                                char via) -> const Pair* {
    auto [it, inserted] = parent.try_emplace(std::move(p), from, via);
    if (!inserted) return nullptr;
    work.push_back(&it->first);
    return &it->first;
  };

  auto witness_of = [&parent](const Pair* p) {
    std::string w;
    while (p != nullptr) {
      auto& [from, via] = parent.at(*p);
      if (from != nullptr) w += via;
      p = from;
    }
    std::reverse(w.begin(), w.end());
    return w;
  };

  visit({spec.start(), gen.start()}, nullptr, 0);
  while (!work.empty()) {
    const Pair* cur = work.front();
    work.pop_front();
    if (spec.accepts(cur->first) && !gen.accepts(cur->second))
      return {SubsumeVerdict::Kind::diverges, witness_of(cur)};
    for (char c : alphabet) {
      auto next_spec = spec.step(cur->first, c);
      if (next_spec.empty()) continue;  // specific is stuck: nothing to cover
      Pair next{std::move(next_spec), gen.step(cur->second, c)};
      if (const Pair* p = visit(std::move(next), cur, c)) {
        // Check acceptance eagerly so a witness surfaces even if the budget
        // runs out before the queue drains.
        if (spec.accepts(p->first) && !gen.accepts(p->second))
          return {SubsumeVerdict::Kind::diverges, witness_of(p)};
      }
      if (parent.size() > state_limit)
        return {SubsumeVerdict::Kind::undecided, {}};
    }
  }
  return {SubsumeVerdict::Kind::subsumes, {}};
}

}  // namespace sack
