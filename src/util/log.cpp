#include "util/log.h"

#include <cstdio>

namespace sack {

namespace {
const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view msg) {
    std::fprintf(stderr, "[%s] %.*s\n", level_tag(level),
                 static_cast<int>(msg.size()), msg.data());
  };
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view msg) {
      std::fprintf(stderr, "[%s] %.*s\n", level_tag(level),
                   static_cast<int>(msg.size()), msg.data());
    };
  }
}

void Logger::log(LogLevel level, std::string_view msg) {
  if (level < level_) return;
  sink_(level, msg);
}

}  // namespace sack
