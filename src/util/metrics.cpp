#include "util/metrics.h"

#include <cstdio>

namespace sack::util {

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t n = 0;
  for (int i = 0; i < kBuckets; ++i) n += bucket_count(i);
  return n;
}

double LatencyHistogram::mean_ns() const {
  const std::uint64_t n = count();
  return n ? static_cast<double>(sum_ns()) / static_cast<double>(n) : 0.0;
}

double LatencyHistogram::percentile_ns(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the target sample, 1-based; walk buckets until we pass it.
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Linear interpolation across the bucket's value range. The top
      // bucket is open-ended; report its lower bound rather than inventing
      // an upper one.
      const double lo = static_cast<double>(bucket_lower(i));
      if (i >= kBuckets - 1) return lo;
      const double hi = static_cast<double>(bucket_upper(i));
      const double into =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * (into < 0.0 ? 0.0 : into > 1.0 ? 1.0 : into);
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_bound_ns());
}

std::uint64_t LatencyHistogram::max_bound_ns() const {
  for (int i = kBuckets - 1; i >= 0; --i)
    if (bucket_count(i) > 0) return bucket_upper(i);
  return 0;
}

void LatencyHistogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

std::string LatencyHistogram::summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.0f p50=%.0f p95=%.0f p99=%.0f max<%llu",
                static_cast<unsigned long long>(count()), mean_ns(),
                percentile_ns(50), percentile_ns(95), percentile_ns(99),
                static_cast<unsigned long long>(max_bound_ns()));
  return buf;
}

std::string LatencyHistogram::json() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"mean\":%.1f,\"p50\":%.1f,\"p95\":%.1f,"
                "\"p99\":%.1f,\"max_bound\":%llu}",
                static_cast<unsigned long long>(count()), mean_ns(),
                percentile_ns(50), percentile_ns(95), percentile_ns(99),
                static_cast<unsigned long long>(max_bound_ns()));
  return buf;
}

}  // namespace sack::util
