// Small string helpers used across the parsers and the VFS path walker.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sack {

// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

// Splits on `sep`, keeping empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string_view> split_ws(std::string_view s);

// Joins with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// True for [A-Za-z0-9_].
bool is_word_char(char c);

// True if `name` is a valid identifier: [A-Za-z_][A-Za-z0-9_-]*.
bool is_identifier(std::string_view name);

// Lowercase copy (ASCII only).
std::string to_lower(std::string_view s);

}  // namespace sack
