// GlobDfa: a determinized, table-driven matcher for a *set* of globs.
//
// The subsumption machinery in util/glob_subsume.h showed that the
// apparmor.d(5) glob semantics of util/glob.h compile cleanly into an NFA
// over token positions with a finite symbolic alphabet. This module takes
// that construction the rest of the way: all patterns of a rule set are
// flattened into one combined NFA, the 256 byte values are partitioned into
// equivalence classes (bytes no pattern distinguishes behave identically in
// every token, so one transition column covers them all), and the NFA is
// determinized by subset construction into a dense transition table.
//
// The payoff is the enforcement miss path: matching a path against N rules
// costs one table walk over the path's bytes — state = table[state][class] —
// instead of N backtracking glob matches. Each accepting DFA state carries a
// DenseBitset over pattern indices ("which of the N patterns match here"),
// which is exactly the rule mask DfaRuleSet intersects with its active
// allow/deny masks, and exactly the label the per-inode cache pre-resolves.
//
// Subset construction is worst-case exponential, so build() is budgeted: a
// pathological pattern set fails with ENOMEM and the caller falls back to
// per-rule matching (DfaRuleSet keeps a scan path for that). Real policies —
// literal paths, directory-prefix globs like /var/media/**, short classes —
// determinize to a few states per pattern character.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/dense_bitset.h"
#include "util/glob.h"
#include "util/result.h"

namespace sack {

class GlobDfa {
 public:
  struct BuildLimits {
    // Cap on determinized states; blowing it fails the build (the caller
    // falls back to linear matching — correctness never depends on the DFA).
    std::size_t max_states = 1 << 16;
  };

  // Compiles `patterns` into one automaton. Pattern i owns bit i of every
  // accept mask. Pointers must stay valid for the duration of the call only
  // (the DFA copies what it needs).
  static Result<GlobDfa> build(std::span<const Glob* const> patterns,
                               const BuildLimits& limits);
  static Result<GlobDfa> build(std::span<const Glob* const> patterns) {
    return build(patterns, BuildLimits{});
  }

  // One pass over `path`, no allocation: returns the accept mask of the
  // final state, a reference into this DFA's per-state mask storage (valid
  // for the DFA's lifetime). An empty mask means no pattern matches.
  const DenseBitset& match(std::string_view path) const {
    std::uint32_t s = start_;
    for (const char c : path) {
      s = table_[s * class_count_ + class_of_[static_cast<unsigned char>(c)]];
      if (s == kDead) return accept_[kDead];  // absorbing reject state
    }
    return accept_[s];
  }

  std::size_t state_count() const { return accept_.size(); }
  std::size_t class_count() const { return class_count_; }
  std::size_t pattern_count() const { return pattern_count_; }

 private:
  static constexpr std::uint32_t kDead = 0;

  GlobDfa() = default;

  std::vector<std::uint32_t> table_;  // state*class_count_ + class -> state
  std::array<std::uint8_t, 256> class_of_{};
  std::size_t class_count_ = 1;
  std::uint32_t start_ = 0;
  std::vector<DenseBitset> accept_;  // per-state pattern mask
  std::size_t pattern_count_ = 0;
};

}  // namespace sack
