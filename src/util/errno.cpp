#include "util/errno.h"

namespace sack {

std::string_view errno_name(Errno e) {
  switch (e) {
    case Errno::ok: return "OK";
    case Errno::eperm: return "EPERM";
    case Errno::enoent: return "ENOENT";
    case Errno::esrch: return "ESRCH";
    case Errno::eintr: return "EINTR";
    case Errno::eio: return "EIO";
    case Errno::enxio: return "ENXIO";
    case Errno::e2big: return "E2BIG";
    case Errno::enoexec: return "ENOEXEC";
    case Errno::ebadf: return "EBADF";
    case Errno::echild: return "ECHILD";
    case Errno::eagain: return "EAGAIN";
    case Errno::enomem: return "ENOMEM";
    case Errno::eacces: return "EACCES";
    case Errno::efault: return "EFAULT";
    case Errno::ebusy: return "EBUSY";
    case Errno::eexist: return "EEXIST";
    case Errno::exdev: return "EXDEV";
    case Errno::enodev: return "ENODEV";
    case Errno::enotdir: return "ENOTDIR";
    case Errno::eisdir: return "EISDIR";
    case Errno::einval: return "EINVAL";
    case Errno::enfile: return "ENFILE";
    case Errno::emfile: return "EMFILE";
    case Errno::enotty: return "ENOTTY";
    case Errno::efbig: return "EFBIG";
    case Errno::enospc: return "ENOSPC";
    case Errno::espipe: return "ESPIPE";
    case Errno::erofs: return "EROFS";
    case Errno::emlink: return "EMLINK";
    case Errno::epipe: return "EPIPE";
    case Errno::erange: return "ERANGE";
    case Errno::enametoolong: return "ENAMETOOLONG";
    case Errno::enosys: return "ENOSYS";
    case Errno::enotempty: return "ENOTEMPTY";
    case Errno::eloop: return "ELOOP";
    case Errno::enodata: return "ENODATA";
    case Errno::eproto: return "EPROTO";
    case Errno::enotsock: return "ENOTSOCK";
    case Errno::eopnotsupp: return "EOPNOTSUPP";
    case Errno::eaddrinuse: return "EADDRINUSE";
    case Errno::econnrefused: return "ECONNREFUSED";
    case Errno::enotconn: return "ENOTCONN";
    case Errno::econnreset: return "ECONNRESET";
  }
  return "E???";
}

std::string_view errno_message(Errno e) {
  switch (e) {
    case Errno::ok: return "success";
    case Errno::eperm: return "operation not permitted";
    case Errno::enoent: return "no such file or directory";
    case Errno::esrch: return "no such process";
    case Errno::eintr: return "interrupted system call";
    case Errno::eio: return "input/output error";
    case Errno::enxio: return "no such device or address";
    case Errno::e2big: return "argument list too long";
    case Errno::enoexec: return "exec format error";
    case Errno::ebadf: return "bad file descriptor";
    case Errno::echild: return "no child processes";
    case Errno::eagain: return "resource temporarily unavailable";
    case Errno::enomem: return "cannot allocate memory";
    case Errno::eacces: return "permission denied";
    case Errno::efault: return "bad address";
    case Errno::ebusy: return "device or resource busy";
    case Errno::eexist: return "file exists";
    case Errno::exdev: return "invalid cross-device link";
    case Errno::enodev: return "no such device";
    case Errno::enotdir: return "not a directory";
    case Errno::eisdir: return "is a directory";
    case Errno::einval: return "invalid argument";
    case Errno::enfile: return "too many open files in system";
    case Errno::emfile: return "too many open files";
    case Errno::enotty: return "inappropriate ioctl for device";
    case Errno::efbig: return "file too large";
    case Errno::enospc: return "no space left on device";
    case Errno::espipe: return "illegal seek";
    case Errno::erofs: return "read-only file system";
    case Errno::emlink: return "too many links";
    case Errno::epipe: return "broken pipe";
    case Errno::erange: return "numerical result out of range";
    case Errno::enametoolong: return "file name too long";
    case Errno::enosys: return "function not implemented";
    case Errno::enotempty: return "directory not empty";
    case Errno::eloop: return "too many levels of symbolic links";
    case Errno::enodata: return "no data available";
    case Errno::eproto: return "protocol error";
    case Errno::enotsock: return "socket operation on non-socket";
    case Errno::eopnotsupp: return "operation not supported";
    case Errno::eaddrinuse: return "address already in use";
    case Errno::econnrefused: return "connection refused";
    case Errno::enotconn: return "transport endpoint is not connected";
    case Errno::econnreset: return "connection reset by peer";
  }
  return "unknown error";
}

}  // namespace sack
