// AppArmor-style path globs.
//
// Shared by the AppArmor-like module (profile file rules) and by SACK
// (Per_Rules MAC-rule object patterns). Semantics follow apparmor.d(5):
//
//   *        any sequence of characters, not crossing '/'
//   **       any sequence of characters, including '/'
//   ?        any single character except '/'
//   [abc]    one character from the set; [a-z] ranges; [^abc] negation
//   {a,b}    alternation (may nest)
//   \x       literal x
//
// Patterns are compiled once (brace-expansion + tokenization) and matched
// with linear backtracking; rule sets are small and paths are short, and the
// compiled form also exposes whether the pattern is a plain literal so rule
// tables can hash-index the common case.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sack {

class Glob {
 public:
  // The compiled token structure is public so analysis passes (the glob
  // subsumption decision procedure in util/glob_subsume.h, witness-path
  // generation in the policy verifier) can build automata from the exact
  // semantics the matcher executes, instead of re-parsing the pattern text.
  enum class TokKind : std::uint8_t {
    literal,    // exact character
    any_one,    // ?      (one char, not '/')
    any_seq,    // *      (zero+ chars, no '/')
    any_deep,   // **     (zero+ chars, '/' allowed)
    char_class  // [...]
  };
  struct Token {
    TokKind kind{};
    char ch = 0;             // literal
    std::string set;         // char_class members (ranges pre-expanded)
    bool negated = false;    // char_class
  };
  using TokenSeq = std::vector<Token>;

  Glob() = default;

  // Compiles `pattern`. Fails with EINVAL on malformed patterns
  // (unbalanced braces/brackets, trailing backslash).
  static Result<Glob> compile(std::string_view pattern);

  bool matches(std::string_view path) const;

  // True if the pattern contains no metacharacters: it matches exactly one
  // path. literal() is that path.
  bool is_literal() const { return literal_.has_value() ? true : false; }
  const std::string& literal() const { return *literal_; }

  const std::string& pattern() const { return pattern_; }

  // One token sequence per brace-expansion alternative; the pattern's
  // language is the union over alternatives.
  const std::vector<TokenSeq>& alternatives() const { return alternatives_; }

  friend bool operator==(const Glob& a, const Glob& b) {
    return a.pattern_ == b.pattern_;
  }

 private:
  static Result<std::vector<std::string>> expand_braces(std::string_view pat);
  static Result<TokenSeq> tokenize(std::string_view pat);
  static bool match_seq(const TokenSeq& seq, std::size_t ti,
                        std::string_view path, std::size_t pi);

  std::string pattern_;
  std::vector<TokenSeq> alternatives_;
  std::optional<std::string> literal_;
};

}  // namespace sack
