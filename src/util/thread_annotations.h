// Clang thread-safety (capability) annotations, and lock wrappers that
// carry them.
//
// The standard-library mutex types are not capability-annotated, so Clang's
// -Wthread-safety analysis cannot see through std::lock_guard /
// std::shared_lock. The wrappers below own the std type and expose the same
// shape under annotation, the same pattern Abseil and Chromium use. Under
// GCC (or any compiler without the attributes) every macro expands to
// nothing and the wrappers compile to exactly the std locks they hold, so
// the annotations are free outside the dedicated CI job that builds with
// clang++ -Werror=thread-safety.
//
// Convention: data members guarded by a lock are annotated
// SACK_GUARDED_BY(mu_); private member functions that expect the caller to
// hold the lock are annotated SACK_REQUIRES(mu_). Public entry points take
// the lock themselves via MutexLock / SharedReadLock.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SACK_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SACK_THREAD_ANNOTATION
#define SACK_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define SACK_CAPABILITY(x) SACK_THREAD_ANNOTATION(capability(x))
#define SACK_SCOPED_CAPABILITY SACK_THREAD_ANNOTATION(scoped_lockable)
#define SACK_GUARDED_BY(x) SACK_THREAD_ANNOTATION(guarded_by(x))
#define SACK_PT_GUARDED_BY(x) SACK_THREAD_ANNOTATION(pt_guarded_by(x))
#define SACK_REQUIRES(...) \
  SACK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SACK_REQUIRES_SHARED(...) \
  SACK_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define SACK_ACQUIRE(...) \
  SACK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SACK_ACQUIRE_SHARED(...) \
  SACK_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SACK_RELEASE(...) \
  SACK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SACK_RELEASE_SHARED(...) \
  SACK_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SACK_RELEASE_GENERIC(...) \
  SACK_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define SACK_TRY_ACQUIRE(...) \
  SACK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SACK_EXCLUDES(...) SACK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SACK_ASSERT_CAPABILITY(x) \
  SACK_THREAD_ANNOTATION(assert_capability(x))
#define SACK_RETURN_CAPABILITY(x) SACK_THREAD_ANNOTATION(lock_returned(x))
#define SACK_NO_THREAD_SAFETY_ANALYSIS \
  SACK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sack::util {

// Exclusive mutex carrying the "mutex" capability.
class SACK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SACK_ACQUIRE() { mu_.lock(); }
  void unlock() SACK_RELEASE() { mu_.unlock(); }
  bool try_lock() SACK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Reader/writer mutex carrying the "shared_mutex" capability.
class SACK_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SACK_ACQUIRE() { mu_.lock(); }
  void unlock() SACK_RELEASE() { mu_.unlock(); }
  void lock_shared() SACK_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() SACK_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock over Mutex or SharedMutex.
template <typename M>
class SACK_SCOPED_CAPABILITY BasicMutexLock {
 public:
  explicit BasicMutexLock(M& mu) SACK_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~BasicMutexLock() SACK_RELEASE() { mu_.unlock(); }
  BasicMutexLock(const BasicMutexLock&) = delete;
  BasicMutexLock& operator=(const BasicMutexLock&) = delete;

 private:
  M& mu_;
};

using MutexLock = BasicMutexLock<Mutex>;
using WriteLock = BasicMutexLock<SharedMutex>;

// RAII shared (reader) lock over SharedMutex.
class SACK_SCOPED_CAPABILITY SharedReadLock {
 public:
  explicit SharedReadLock(SharedMutex& mu) SACK_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  // Clang models a scoped release generically; release_generic covers the
  // shared acquisition above.
  ~SharedReadLock() SACK_RELEASE_GENERIC() { mu_.unlock_shared(); }
  SharedReadLock(const SharedReadLock&) = delete;
  SharedReadLock& operator=(const SharedReadLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace sack::util
