// Deterministic RNG (SplitMix64) for workload/trace generation.
//
// std::mt19937 would work, but SplitMix64 is tiny, seedable in one word, and
// its output sequence is stable across standard-library versions, which keeps
// generated test fixtures reproducible.
#pragma once

#include <cstdint>

namespace sack {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ac4'5ac4'5ac4'5ac4ULL) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return unit() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace sack
