// Shared lexer for the SACK policy language and the AppArmor-like profile
// language. Both are small line-oriented C-like grammars: identifiers,
// integers, quoted strings, paths (tokens starting with '/'), punctuation,
// '->' arrows, and '#' comments.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sack {

enum class TokenKind : std::uint8_t {
  identifier,  // state names, keywords, permission names
  number,      // decimal integer
  string,      // "quoted"
  path,        // starts with '/', may contain glob metacharacters
  punct,       // single character: { } ( ) = ; , : @
  arrow,       // ->
  end          // end of input
};

struct Token {
  TokenKind kind{};
  std::string text;
  int line = 0;
  int column = 0;

  bool is_punct(char c) const {
    return kind == TokenKind::punct && text.size() == 1 && text[0] == c;
  }
  bool is_ident(std::string_view s) const {
    return kind == TokenKind::identifier && text == s;
  }
};

// A parse-time diagnostic; parsers collect these instead of throwing.
struct ParseError {
  int line = 0;
  int column = 0;
  std::string message;

  std::string to_string() const;
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input);

  // Lexes the whole input. On a lexical error returns EINVAL and stores the
  // diagnostic (readable via last_error()).
  Result<std::vector<Token>> run();

  const ParseError& last_error() const { return error_; }

 private:
  std::string_view input_;
  ParseError error_;
};

// Cursor over a token vector with the usual expect/accept helpers.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens);

  const Token& peek(std::size_t ahead = 0) const;
  const Token& next();
  bool at_end() const;

  bool accept_punct(char c);
  bool accept_ident(std::string_view kw);

  // expect_* return EINVAL and record a diagnostic on mismatch.
  Result<Token> expect(TokenKind kind, std::string_view what);
  Result<void> expect_punct(char c);
  Result<Token> expect_ident();
  Result<Token> expect_number();

  void record_error(std::string message);
  const std::vector<ParseError>& errors() const { return errors_; }
  std::vector<ParseError> take_errors() { return std::move(errors_); }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<ParseError> errors_;
};

}  // namespace sack
