// RcuPtr<T>: an atomic shared_ptr publication cell for read-mostly data.
//
// The RCU pattern: writers build a fresh immutable object off the read path
// and publish it with one atomic swap; readers grab a reference and work
// entirely off that version, which stays alive until the last reader drops
// it. This is what std::atomic<std::shared_ptr<T>> is for, and libstdc++
// implements it with exactly the spinlock-around-pointer+refcount scheme
// below — but as of GCC 12 its load() releases the spinlock with
// memory_order_relaxed (bits/shared_ptr_atomic.h, _Sp_atomic::load), so
// ThreadSanitizer sees no release edge from a reader's critical section to
// the next writer's and reports a (false) race on every load/store pair.
// This cell uses a proper acquire/release pair on the lock word instead,
// which makes the happens-before explicit for both the hardware and TSan.
//
// The critical section is a pointer copy plus one refcount bump — a few
// instructions, never blocking on user code — so readers are wait-free for
// all practical purposes while remaining portable C++20.
#pragma once

#include <atomic>
#include <memory>

namespace sack {

template <typename T>
class RcuPtr {
 public:
  RcuPtr() = default;
  explicit RcuPtr(std::shared_ptr<T> initial) : ptr_(std::move(initial)) {}
  RcuPtr(const RcuPtr&) = delete;
  RcuPtr& operator=(const RcuPtr&) = delete;

  // Reader side: returns the currently published version, which stays valid
  // (and immutable, by convention) for as long as the returned reference is
  // held — even across concurrent store()s.
  std::shared_ptr<T> load() const {
    lock();
    std::shared_ptr<T> copy = ptr_;
    unlock();
    return copy;
  }

  // Writer side: publishes a new version with one atomic swap. The previous
  // version is released *outside* the critical section, so readers never
  // spin behind a destructor.
  void store(std::shared_ptr<T> next) {
    lock();
    ptr_.swap(next);
    unlock();
    // `next` (the old version) drops here; destruction runs when the last
    // in-flight reader releases its reference.
  }

 private:
  void lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // Spin; the holder is copying a pointer, not running user code.
    }
  }
  void unlock() const {
    locked_.store(false, std::memory_order_release);
  }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<T> ptr_;
};

}  // namespace sack
