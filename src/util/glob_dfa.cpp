#include "util/glob_dfa.h"

#include <algorithm>
#include <map>
#include <string>

namespace sack {

namespace {

using TokKind = Glob::TokKind;
using Token = Glob::Token;
using TokenSeq = Glob::TokenSeq;

// The combined NFA over token positions of every alternative of every
// pattern — the multi-pattern generalization of the automaton in
// util/glob_subsume.cpp, with the same token semantics as Glob::match_seq:
// position i on an any_seq/any_deep token epsilon-reaches i+1 (the star may
// match empty), and steps self-loop on the star for each consumed byte.
struct MultiNfa {
  struct Alt {
    const TokenSeq* seq;
    std::size_t offset;         // state id of token position 0
    std::size_t pattern_index;  // which input pattern this alternative is from
  };
  std::vector<Alt> alts;
  std::size_t state_count = 0;

  // alt_of[state] -> index into alts (dense; accept states included).
  std::vector<std::uint32_t> alt_of;

  explicit MultiNfa(std::span<const Glob* const> patterns) {
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      for (const auto& seq : patterns[p]->alternatives()) {
        alts.push_back({&seq, state_count, p});
        state_count += seq.size() + 1;
      }
    }
    alt_of.resize(state_count);
    for (std::size_t a = 0; a < alts.size(); ++a) {
      for (std::size_t s = alts[a].offset;
           s < alts[a].offset + alts[a].seq->size() + 1; ++s)
        alt_of[s] = static_cast<std::uint32_t>(a);
    }
  }

  const Token* token_at(std::size_t state) const {
    const Alt& alt = alts[alt_of[state]];
    const std::size_t pos = state - alt.offset;
    if (pos >= alt.seq->size()) return nullptr;  // accept position
    return &(*alt.seq)[pos];
  }

  // Epsilon closure over skippable star tokens, in place on a sorted,
  // deduplicated state vector.
  void close(std::vector<std::uint32_t>& states) const {
    for (std::size_t i = 0; i < states.size(); ++i) {
      const Token* t = token_at(states[i]);
      if (t != nullptr &&
          (t->kind == TokKind::any_seq || t->kind == TokKind::any_deep)) {
        const std::uint32_t next = states[i] + 1;
        if (std::find(states.begin(), states.end(), next) == states.end())
          states.push_back(next);
      }
    }
    std::sort(states.begin(), states.end());
    states.erase(std::unique(states.begin(), states.end()), states.end());
  }

  std::vector<std::uint32_t> start() const {
    std::vector<std::uint32_t> s;
    s.reserve(alts.size());
    for (const auto& alt : alts)
      s.push_back(static_cast<std::uint32_t>(alt.offset));
    close(s);
    return s;
  }

  bool token_accepts_byte(const Token& t, char c) const {
    switch (t.kind) {
      case TokKind::literal:
        return t.ch == c;
      case TokKind::any_one:
        return c != '/';
      case TokKind::char_class:
        // '/' never matches a class, negated or not (Glob::match_seq).
        return c != '/' && (t.set.find(c) != std::string::npos) != t.negated;
      case TokKind::any_seq:
        return c != '/';
      case TokKind::any_deep:
        return true;
    }
    return false;
  }

  // One determinized step on byte `c` from a closed state set.
  std::vector<std::uint32_t> step(const std::vector<std::uint32_t>& states,
                                  char c) const {
    std::vector<std::uint32_t> next;
    next.reserve(states.size());
    for (std::uint32_t s : states) {
      const Token* t = token_at(s);
      if (t == nullptr) continue;  // accept position consumes nothing
      if (!token_accepts_byte(*t, c)) continue;
      // Stars self-loop (closure re-adds s+1); consuming tokens advance.
      if (t->kind == TokKind::any_seq || t->kind == TokKind::any_deep)
        next.push_back(s);
      else
        next.push_back(s + 1);
    }
    close(next);
    return next;
  }

  void accept_mask(const std::vector<std::uint32_t>& states,
                   DenseBitset& mask) const {
    for (std::uint32_t s : states) {
      const Alt& alt = alts[alt_of[s]];
      if (s - alt.offset == alt.seq->size()) mask.set(alt.pattern_index);
    }
  }
};

}  // namespace

Result<GlobDfa> GlobDfa::build(std::span<const Glob* const> patterns,
                               const BuildLimits& limits) {
  GlobDfa dfa;
  dfa.pattern_count_ = patterns.size();
  const MultiNfa nfa(patterns);

  // --- byte equivalence classes ---
  // Two bytes are interchangeable iff every token of every pattern treats
  // them identically. The distinguishing predicates are: equality with each
  // mentioned literal byte (a literal byte is only distinguishable from
  // other bytes, so each mentioned literal is its own class), being '/',
  // and membership in each distinct character class.
  std::vector<const Token*> class_tokens;
  std::array<bool, 256> is_literal{};
  {
    std::vector<std::pair<const std::string*, bool>> seen_classes;
    for (const auto& alt : nfa.alts) {
      for (const Token& t : *alt.seq) {
        if (t.kind == TokKind::literal)
          is_literal[static_cast<unsigned char>(t.ch)] = true;
        if (t.kind == TokKind::char_class) {
          bool dup = false;
          for (const auto& [set, neg] : seen_classes)
            if (neg == t.negated && *set == t.set) { dup = true; break; }
          if (!dup) {
            seen_classes.emplace_back(&t.set, t.negated);
            class_tokens.push_back(&t);
          }
        }
      }
    }
  }
  {
    std::map<std::string, std::uint8_t> signature_class;
    std::size_t next_class = 0;
    for (int b = 0; b < 256; ++b) {
      const char c = static_cast<char>(b);
      std::string sig;
      // Mentioned literals are singleton classes: key by the byte itself.
      if (is_literal[b]) sig += c;
      sig += c == '/' ? 'S' : '-';
      for (const Token* t : class_tokens)
        sig += (t->set.find(c) != std::string::npos) ? '1' : '0';
      auto [it, inserted] = signature_class.try_emplace(
          std::move(sig), static_cast<std::uint8_t>(next_class));
      if (inserted) ++next_class;
      dfa.class_of_[static_cast<std::size_t>(b)] = it->second;
    }
    dfa.class_count_ = next_class;
  }
  // One representative byte per class, for stepping the NFA.
  std::vector<char> representative(dfa.class_count_, 0);
  {
    std::vector<bool> have(dfa.class_count_, false);
    for (int b = 0; b < 256; ++b) {
      const std::uint8_t cls = dfa.class_of_[static_cast<std::size_t>(b)];
      if (!have[cls]) {
        have[cls] = true;
        representative[cls] = static_cast<char>(b);
      }
    }
  }

  // --- subset construction ---
  // DFA state 0 is the absorbing dead state (empty NFA set); the start state
  // is the closure of all alternatives' position 0.
  std::map<std::vector<std::uint32_t>, std::uint32_t> state_ids;
  std::vector<std::vector<std::uint32_t>> sets;
  auto intern = [&](std::vector<std::uint32_t>&& set) -> std::uint32_t {
    auto [it, inserted] =
        state_ids.try_emplace(std::move(set),
                              static_cast<std::uint32_t>(sets.size()));
    if (inserted) sets.push_back(it->first);
    return it->second;
  };
  intern({});  // dead state = 0
  dfa.start_ = intern(nfa.start());

  for (std::size_t s = 0; s < sets.size(); ++s) {
    if (sets.size() > limits.max_states) return Errno::enomem;
    dfa.table_.resize((s + 1) * dfa.class_count_, kDead);
    // `sets` may reallocate as intern() appends: copy the current set.
    const std::vector<std::uint32_t> current = sets[s];
    for (std::size_t cls = 0; cls < dfa.class_count_; ++cls) {
      dfa.table_[s * dfa.class_count_ + cls] =
          current.empty() ? kDead
                          : intern(nfa.step(current, representative[cls]));
    }
  }

  dfa.accept_.reserve(sets.size());
  for (const auto& set : sets) {
    DenseBitset mask(patterns.size());
    nfa.accept_mask(set, mask);
    dfa.accept_.push_back(std::move(mask));
  }
  return dfa;
}

}  // namespace sack
