#include "util/tokenizer.h"

#include <cctype>

#include "util/strings.h"

namespace sack {

std::string ParseError::to_string() const {
  return "line " + std::to_string(line) + ":" + std::to_string(column) + ": " +
         message;
}

Tokenizer::Tokenizer(std::string_view input) : input_(input) {}

Result<std::vector<Token>> Tokenizer::run() {
  std::vector<Token> out;
  int line = 1, col = 1;
  std::size_t i = 0;
  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < input_.size(); ++k) {
      if (input_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  while (i < input_.size()) {
    char c = input_[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < input_.size() && input_[i] != '\n') advance();
      continue;
    }
    Token tok;
    tok.line = line;
    tok.column = col;

    if (c == '-' && i + 1 < input_.size() && input_[i + 1] == '>') {
      tok.kind = TokenKind::arrow;
      tok.text = "->";
      advance(2);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '/') {
      // Path token: runs until whitespace or statement punctuation. Glob
      // metacharacters (including braces and commas inside braces) belong to
      // the path, so track brace depth.
      tok.kind = TokenKind::path;
      int brace = 0;
      while (i < input_.size()) {
        char d = input_[i];
        if (std::isspace(static_cast<unsigned char>(d))) break;
        if (d == '{') ++brace;
        if (d == '}') {
          if (brace == 0) break;  // block close, not part of the path
          --brace;
        }
        if (brace == 0 && (d == ',' || d == ';' || d == ')')) break;
        tok.text += d;
        advance();
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      tok.kind = TokenKind::string;
      advance();
      bool closed = false;
      while (i < input_.size()) {
        char d = input_[i];
        if (d == '"') {
          closed = true;
          advance();
          break;
        }
        if (d == '\\' && i + 1 < input_.size()) {
          advance();
          d = input_[i];
          switch (d) {
            case 'n': tok.text += '\n'; break;
            case 't': tok.text += '\t'; break;
            default: tok.text += d; break;
          }
          advance();
          continue;
        }
        if (d == '\n') break;  // unterminated
        tok.text += d;
        advance();
      }
      if (!closed) {
        error_ = {tok.line, tok.column, "unterminated string literal"};
        return Errno::einval;
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tok.kind = TokenKind::number;
      while (i < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[i]))) {
        tok.text += input_[i];
        advance();
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tok.kind = TokenKind::identifier;
      while (i < input_.size() &&
             (is_word_char(input_[i]) || input_[i] == '-' ||
              input_[i] == '.')) {
        // Allow '-' and '.' inside identifiers ("parking-with-driver",
        // "usr.bin.mediaplayer"), but not a trailing "->" arrow.
        if (input_[i] == '-' && i + 1 < input_.size() && input_[i + 1] == '>')
          break;
        tok.text += input_[i];
        advance();
      }
      out.push_back(std::move(tok));
      continue;
    }
    switch (c) {
      case '{': case '}': case '(': case ')': case '=': case ';':
      case ',': case ':': case '@': case '*':
        tok.kind = TokenKind::punct;
        tok.text = std::string(1, c);
        advance();
        out.push_back(std::move(tok));
        continue;
      default:
        error_ = {line, col, std::string("unexpected character '") + c + "'"};
        return Errno::einval;
    }
  }
  Token end;
  end.kind = TokenKind::end;
  end.line = line;
  end.column = col;
  out.push_back(std::move(end));
  return out;
}

TokenStream::TokenStream(std::vector<Token> tokens)
    : tokens_(std::move(tokens)) {
  if (tokens_.empty()) tokens_.push_back(Token{TokenKind::end, "", 0, 0});
}

const Token& TokenStream::peek(std::size_t ahead) const {
  std::size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;
  return tokens_[idx];
}

const Token& TokenStream::next() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool TokenStream::at_end() const {
  return tokens_[pos_].kind == TokenKind::end;
}

bool TokenStream::accept_punct(char c) {
  if (peek().is_punct(c)) {
    next();
    return true;
  }
  return false;
}

bool TokenStream::accept_ident(std::string_view kw) {
  if (peek().is_ident(kw)) {
    next();
    return true;
  }
  return false;
}

Result<Token> TokenStream::expect(TokenKind kind, std::string_view what) {
  if (peek().kind != kind) {
    record_error("expected " + std::string(what) + ", got '" + peek().text +
                 "'");
    return Errno::einval;
  }
  return next();
}

Result<void> TokenStream::expect_punct(char c) {
  if (!accept_punct(c)) {
    record_error(std::string("expected '") + c + "', got '" + peek().text +
                 "'");
    return Errno::einval;
  }
  return {};
}

Result<Token> TokenStream::expect_ident() {
  return expect(TokenKind::identifier, "identifier");
}

Result<Token> TokenStream::expect_number() {
  return expect(TokenKind::number, "number");
}

void TokenStream::record_error(std::string message) {
  errors_.push_back({peek().line, peek().column, std::move(message)});
}

}  // namespace sack
