// Helpers for scoped-enum bit masks (permission masks, open flags, ...).
//
// Opt a flag enum in by specializing EnableBitmask; operators stay out of the
// way for ordinary enums.
#pragma once

#include <type_traits>

namespace sack {

template <typename E>
struct EnableBitmask : std::false_type {};

template <typename E>
concept BitmaskEnum = std::is_enum_v<E> && EnableBitmask<E>::value;

template <BitmaskEnum E>
constexpr E operator|(E a, E b) {
  using U = std::underlying_type_t<E>;
  return static_cast<E>(static_cast<U>(a) | static_cast<U>(b));
}

template <BitmaskEnum E>
constexpr E operator&(E a, E b) {
  using U = std::underlying_type_t<E>;
  return static_cast<E>(static_cast<U>(a) & static_cast<U>(b));
}

template <BitmaskEnum E>
constexpr E operator^(E a, E b) {
  using U = std::underlying_type_t<E>;
  return static_cast<E>(static_cast<U>(a) ^ static_cast<U>(b));
}

template <BitmaskEnum E>
constexpr E operator~(E a) {
  using U = std::underlying_type_t<E>;
  return static_cast<E>(~static_cast<U>(a));
}

template <BitmaskEnum E>
constexpr E& operator|=(E& a, E b) {
  return a = a | b;
}

template <BitmaskEnum E>
constexpr E& operator&=(E& a, E b) {
  return a = a & b;
}

// True if all bits of `wanted` are present in `mask`.
template <BitmaskEnum E>
constexpr bool has_all(E mask, E wanted) {
  return (mask & wanted) == wanted;
}

// True if any bit of `wanted` is present in `mask`.
template <BitmaskEnum E>
constexpr bool has_any(E mask, E wanted) {
  using U = std::underlying_type_t<E>;
  return static_cast<U>(mask & wanted) != 0;
}

template <BitmaskEnum E>
constexpr bool is_empty(E mask) {
  using U = std::underlying_type_t<E>;
  return static_cast<U>(mask) == 0;
}

}  // namespace sack
