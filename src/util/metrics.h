// Lock-cheap metrics primitives for the observability layer.
//
// Everything here is safe to update from concurrent enforcement threads and
// to scrape concurrently from a reader: counters and histogram buckets are
// relaxed atomics (monotonic event counts need no ordering; a scrape is a
// statistical snapshot, not a linearizable one). Nothing allocates or locks
// on the update path, so a histogram record costs two atomic adds and the
// disabled observability path in the hooks stays at one relaxed load.
//
// LatencyHistogram uses fixed log2 buckets: bucket 0 holds [0,1) ns (i.e.
// the value 0), bucket i holds [2^(i-1), 2^i). 64 buckets cover the full
// uint64 nanosecond range, so recording never clips. Percentiles are
// extracted by rank walk with linear interpolation inside the winning
// bucket — coarse (log2 resolution) but exactly what per-hook latency
// attribution needs, and immune to reservoir-sampling bias.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

namespace sack::util {

// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Instantaneous value (e.g. cache occupancy, active rule count).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t ns) {
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  double mean_ns() const;

  // Value at percentile `p` (0..100), interpolated within the log2 bucket
  // that holds the rank. Returns 0 for an empty histogram.
  double percentile_ns(double p) const;

  // Upper bound of the highest non-empty bucket (0 if empty): a cheap
  // "max observed was below this" figure.
  std::uint64_t max_bound_ns() const;

  void reset();

  // "count=N mean=X p50=X p95=X p99=X max<X" (ns, rounded).
  std::string summary() const;
  // {"count":N,"mean":X,"p50":X,"p95":X,"p99":X,"max_bound":X}
  std::string json() const;

  static int bucket_of(std::uint64_t ns) {
    if (ns == 0) return 0;
    const int b = std::bit_width(ns);
    return b < kBuckets ? b : kBuckets - 1;  // top bucket is open-ended
  }
  // [lower, upper) value range of bucket i.
  static std::uint64_t bucket_lower(int i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  static std::uint64_t bucket_upper(int i) {
    return i == 0 ? 1
                  : (i >= kBuckets - 1 ? ~std::uint64_t{0}
                                       : std::uint64_t{1} << i);
  }
  std::uint64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

}  // namespace sack::util
