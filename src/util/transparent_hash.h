// Heterogeneous string hashing for unordered containers, so hot-path lookups
// by string_view don't allocate a temporary std::string.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

namespace sack {

struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

template <typename V>
using StringMap = std::unordered_map<std::string, V, TransparentStringHash,
                                     std::equal_to<>>;

}  // namespace sack
