// Result<T>: value-or-Errno return type for all simulated syscalls.
//
// A minimal std::expected-alike (std::expected is C++23; we target C++20).
// Accessing value() on an error aborts loudly — in the simulator an unchecked
// syscall failure is a programming bug, matching the kernel's BUG_ON habit.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <variant>

#include "util/errno.h"

namespace sack {

namespace detail {
[[noreturn]] inline void result_abort(Errno e, const char* what) {
  std::fprintf(stderr, "Result: %s on error %.*s (%.*s)\n", what,
               static_cast<int>(errno_name(e).size()), errno_name(e).data(),
               static_cast<int>(errno_message(e).size()),
               errno_message(e).data());
  std::abort();
}
}  // namespace detail

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from both the value and the error so call sites read naturally:
  //   return Errno::enoent;   /   return fd;
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Errno err) : state_(err) { assert(err != Errno::ok); }  // NOLINT

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  Errno error() const { return ok() ? Errno::ok : std::get<Errno>(state_); }

  T& value() & {
    if (!ok()) detail::result_abort(error(), "value() called");
    return std::get<T>(state_);
  }
  const T& value() const& {
    if (!ok()) detail::result_abort(error(), "value() called");
    return std::get<T>(state_);
  }
  T&& value() && {
    if (!ok()) detail::result_abort(error(), "value() called");
    return std::get<T>(std::move(state_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Errno> state_;
};

// Result<void>: success/Errno with no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : err_(Errno::ok) {}
  Result(Errno err) : err_(err) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return err_ == Errno::ok; }
  explicit operator bool() const { return ok(); }
  Errno error() const { return err_; }

  void value() const {
    if (!ok()) detail::result_abort(err_, "value() called");
  }

 private:
  Errno err_;
};

using VoidResult = Result<void>;

// Propagate-on-error helper:
//   SACK_TRY(kernel.sys_close(task, fd));
#define SACK_TRY(expr)                                \
  do {                                                \
    if (auto sack_try_r_ = (expr); !sack_try_r_.ok()) \
      return sack_try_r_.error();                     \
  } while (0)

// Bind-or-propagate helper (uses a GCC/Clang statement expression would hurt
// portability, so we bind through a named temporary):
//   SACK_ASSIGN_OR_RETURN(auto fd, kernel.sys_open(task, path, flags));
#define SACK_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.error();                \
  decl = std::move(tmp).value()
#define SACK_ASSIGN_CAT2(a, b) a##b
#define SACK_ASSIGN_CAT(a, b) SACK_ASSIGN_CAT2(a, b)
#define SACK_ASSIGN_OR_RETURN(decl, expr) \
  SACK_ASSIGN_OR_RETURN_IMPL(SACK_ASSIGN_CAT(sack_r_, __LINE__), decl, expr)

}  // namespace sack
