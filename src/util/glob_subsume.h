// Glob subsumption: a pattern-implies-pattern decision procedure.
//
// `glob_subsumes(general, specific)` decides whether every path matched by
// `specific` is also matched by `general` — language containment
// L(specific) ⊆ L(general) over the apparmor.d(5) glob semantics implemented
// in util/glob.h. The policy checker uses it to find allow rules fully
// shadowed by a broader deny, and the verify subsystem reuses it for
// rule-level implication and state-level shadow analysis.
//
// Method: both patterns compile to token sequences (one per brace
// alternative); each side becomes a nondeterministic finite automaton whose
// states are token positions. The alphabet is reduced to a finite symbolic
// partition — every character mentioned literally by either pattern, '/'
// (which wildcards and classes treat specially), and one representative
// "other" character that no pattern mentions; all unmentioned characters are
// bisimilar, so one representative suffices. Containment is then a product
// walk of `specific`'s subset states against `general`'s: reaching a pair
// where `specific` accepts and `general` does not yields a concrete witness
// path (matched by `specific`, rejected by `general`).
//
// The product is exponential in the worst case, so the walk is bounded; a
// blown budget returns `undecided`, which callers must treat as "no claim"
// (for shadow warnings that means: do not warn).
#pragma once

#include <cstddef>
#include <string>

#include "util/glob.h"

namespace sack {

struct SubsumeVerdict {
  enum class Kind : std::uint8_t {
    subsumes,   // every path matched by `specific` is matched by `general`
    diverges,   // witness: a path matched by `specific` but not `general`
    undecided,  // state budget exhausted; no claim either way
  };
  Kind kind = Kind::undecided;
  // For `diverges`: one shortest witness path.
  std::string witness;

  bool subsumes() const { return kind == Kind::subsumes; }
};

// Decides L(specific) ⊆ L(general). `state_limit` bounds the number of
// distinct product states explored before giving up.
SubsumeVerdict glob_subsumes(const Glob& general, const Glob& specific,
                             std::size_t state_limit = 1 << 16);

}  // namespace sack
