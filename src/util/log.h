// Minimal leveled logger.
//
// The simulated kernel logs denials and state transitions the way the real
// one uses printk/audit; tests flip the level to capture or silence it.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace sack {

enum class LogLevel : std::uint8_t { debug = 0, info, warn, error, off };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Replaces the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::warn;
  Sink sink_;
};

namespace log_detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace log_detail

template <typename... Args>
void log_debug(Args&&... args) {
  auto& lg = Logger::instance();
  if (lg.level() <= LogLevel::debug)
    lg.log(LogLevel::debug, log_detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  auto& lg = Logger::instance();
  if (lg.level() <= LogLevel::info)
    lg.log(LogLevel::info, log_detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  auto& lg = Logger::instance();
  if (lg.level() <= LogLevel::warn)
    lg.log(LogLevel::warn, log_detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  auto& lg = Logger::instance();
  if (lg.level() <= LogLevel::error)
    lg.log(LogLevel::error, log_detail::concat(std::forward<Args>(args)...));
}

}  // namespace sack
