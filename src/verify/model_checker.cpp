#include "verify/model_checker.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace sack::verify {

std::string TraceStep::to_string() const {
  switch (kind) {
    case Kind::event:
      return from + " -[" + label + "]-> " + to;
    case Kind::timed:
      return from + " -[after " + std::to_string(after_ms) + "ms]-> " + to;
    case Kind::watchdog:
      return from + " -[watchdog timeout " + std::to_string(after_ms) +
             "ms]-> " + to;
  }
  return {};
}

std::string format_trace(const std::vector<TraceStep>& trace) {
  if (trace.empty()) return "(initial state)";
  std::string out;
  for (const auto& step : trace) {
    if (!out.empty()) out += "; ";
    out += step.to_string();
  }
  return out;
}

ModelChecker::ModelChecker(const core::SackPolicy& policy)
    : policy_(policy), reference_(policy) {
  if (!policy.has_state(policy.initial_state)) return;  // structurally broken

  // BFS over the labeled transition graph. Edges per state: the event
  // transitions, at most one timed rule, and the watchdog failsafe edge
  // (forcible from anywhere, including states with no outgoing events —
  // exactly the edge a checker ignoring the extension would miss).
  std::map<std::string, std::vector<TraceStep>> best;
  std::deque<std::string> frontier;
  best[policy.initial_state] = {};
  frontier.push_back(policy.initial_state);
  reachable_.push_back({policy.initial_state, {}});

  auto relax = [this, &best, &frontier](const std::vector<TraceStep>& via,
                                        TraceStep step) {
    if (best.contains(step.to)) return;
    auto trace = via;
    trace.push_back(step);
    reachable_.push_back({step.to, trace});
    best.emplace(step.to, std::move(trace));
    frontier.push_back(reachable_.back().state);
  };

  while (!frontier.empty()) {
    std::string cur = frontier.front();
    frontier.pop_front();
    const auto& via = best.at(cur);
    for (const auto& t : policy.transitions) {
      if (t.from != cur || !policy.has_state(t.to)) continue;
      relax(via, {TraceStep::Kind::event, t.event, 0, cur, t.to});
    }
    for (const auto& t : policy.timed_transitions) {
      if (t.from != cur || !policy.has_state(t.to)) continue;
      relax(via, {TraceStep::Kind::timed, "", t.after_ms, cur, t.to});
    }
    if (policy.watchdog && policy.has_state(policy.watchdog->failsafe_state) &&
        policy.watchdog->failsafe_state != cur) {
      relax(via, {TraceStep::Kind::watchdog, "", policy.watchdog->deadline_ms,
                  cur, policy.watchdog->failsafe_state});
    }
  }
}

std::optional<Grant> ModelChecker::find_grant(
    const AccessRequest& request) const {
  auto grants = find_all_grants(request);
  if (grants.empty()) return std::nullopt;
  return grants.front();
}

std::vector<Grant> ModelChecker::find_all_grants(
    const AccessRequest& request) const {
  std::vector<Grant> out;
  for (const auto& rs : reachable_) {
    for (std::size_t i = 0; i < core::kMacOpCount; ++i) {
      core::MacOp op = core::mac_op_from_index(i);
      if (!has_any(request.ops, op)) continue;
      core::AccessQuery q{request.subject_exe, request.subject_profile,
                          request.object, op};
      if (reference_.decide(rs.state, q) == Errno::ok) {
        out.push_back(
            {rs.state, rs.trace,
             {request.subject_exe, request.subject_profile}, request.object,
             op});
      }
    }
  }
  return out;
}

std::vector<PrivilegeDiff> ModelChecker::privilege_diffs(
    const Universe& universe, bool include_neutral,
    std::size_t max_escalations_per_state) const {
  std::vector<PrivilegeDiff> out;
  if (reachable_.empty()) return out;
  const std::string& initial = reachable_.front().state;
  auto initial_perms = policy_.permissions_of(initial);
  std::set<std::string> initial_set(initial_perms.begin(),
                                    initial_perms.end());

  // Decisions in the initial state, computed once.
  std::vector<Errno> base;
  base.reserve(universe.subjects.size() * universe.objects.size() *
               universe.ops.size());
  for (const auto& s : universe.subjects) {
    for (const auto& o : universe.objects) {
      for (core::MacOp op : universe.ops) {
        base.push_back(
            reference_.decide(initial, {s.exe, s.profile, o, op}));
      }
    }
  }

  for (std::size_t ri = 1; ri < reachable_.size(); ++ri) {
    const auto& rs = reachable_[ri];
    PrivilegeDiff diff{rs.state, rs.trace, {}, {}, {}, 0};

    auto perms = policy_.permissions_of(rs.state);
    std::set<std::string> perm_set(perms.begin(), perms.end());
    std::set_difference(perm_set.begin(), perm_set.end(), initial_set.begin(),
                        initial_set.end(),
                        std::back_inserter(diff.permissions_added));
    std::set_difference(initial_set.begin(), initial_set.end(),
                        perm_set.begin(), perm_set.end(),
                        std::back_inserter(diff.permissions_removed));

    std::size_t idx = 0;
    for (const auto& s : universe.subjects) {
      for (const auto& o : universe.objects) {
        for (core::MacOp op : universe.ops) {
          Errno here = reference_.decide(rs.state, {s.exe, s.profile, o, op});
          Errno init = base[idx++];
          if (here == Errno::ok && init != Errno::ok &&
              diff.escalations.size() < max_escalations_per_state) {
            diff.escalations.push_back({rs.state, rs.trace, s, o, op});
          } else if (here != Errno::ok && init == Errno::ok) {
            ++diff.revocations;
          }
        }
      }
    }
    if (include_neutral || !diff.permissions_added.empty() ||
        !diff.permissions_removed.empty() || !diff.escalations.empty() ||
        diff.revocations > 0) {
      out.push_back(std::move(diff));
    }
  }
  return out;
}

}  // namespace sack::verify
