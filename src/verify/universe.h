// Concrete enumeration universes for policy analysis.
//
// Globs denote infinite path languages, so exhaustive tuple enumeration is
// impossible; instead the universe generator derives a finite, deterministic
// set of *representative* concrete paths from the policy itself:
//
//   * every literal object path, verbatim;
//   * for every non-literal object pattern, several witness paths produced
//     by walking the compiled tokens (wildcards expanded to varied fillers,
//     '**' expanded both flat and across a directory boundary);
//   * boundary probes: mutations of the above (suffix/prefix extensions,
//     sibling names) that sit just outside the common patterns;
//   * a fixed unguarded probe path, exercising the guarded-set fast path.
//
// Subjects get the same treatment over subject globs and profile names, plus
// an uninvolved bystander executable. The result is the tuple space the
// differential oracle sweeps: small enough to enumerate, adversarial enough
// that a matcher/compiler regression which changes any decision boundary
// named by the policy shows up.
#pragma once

#include <string>
#include <vector>

#include "core/mac_ops.h"
#include "core/policy.h"

namespace sack::verify {

struct SubjectSample {
  std::string exe;      // task executable path
  std::string profile;  // AppArmor profile label ("" = none)
};

struct Universe {
  std::vector<SubjectSample> subjects;
  std::vector<std::string> objects;
  std::vector<core::MacOp> ops;

  std::size_t tuple_count(std::size_t state_count) const {
    return state_count * subjects.size() * objects.size() * ops.size();
  }
};

// How many witness variants to derive per non-literal pattern.
struct UniverseOptions {
  int variants_per_glob = 3;
  bool boundary_probes = true;
};

// Generates witness paths for one glob: concrete paths the pattern matches.
// Deterministic; at most `variants` entries (fewer when the pattern admits
// fewer distinct short witnesses).
std::vector<std::string> glob_witnesses(const Glob& glob, int variants);

Universe build_universe(const core::SackPolicy& policy,
                        const UniverseOptions& options = {});

}  // namespace sack::verify
