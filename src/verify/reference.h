// The reference interpreter: SACK access decisions straight from the spec.
//
// This is the differential oracle's ground truth, deliberately written as a
// naive transliteration of the paper's Algorithm 1 over the raw SackPolicy
// model — no compilation, no indexes, no caches, no activation state. Every
// decision recomputes:
//
//   guarded(o)        := some rule of some permission names o
//   active(SS)        := concat of Per_Rules[p] for p in State_Per[SS]
//   decide(SS, s,o,op): unguarded objects are OK; otherwise a matching
//                       active deny refuses, a matching active allow
//                       admits, and nothing matching refuses (POLP).
//
// If CompiledRuleSet's snapshots, per-op tables, literal indexes, or the AVC
// ever disagree with this function on any enumerated tuple, one of them is
// wrong — and this one is simple enough to audit by eye.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/policy.h"
#include "core/ruleset.h"

namespace sack::verify {

class ReferenceInterpreter {
 public:
  explicit ReferenceInterpreter(const core::SackPolicy& policy)
      : policy_(policy) {}

  // True if any rule in any permission names `object_path`.
  bool guarded(std::string_view object_path) const;

  // The full decision for `query` with the permissions of `state` active.
  Errno decide(std::string_view state, const core::AccessQuery& query) const;

  // As above, over an explicit active-permission list (used to cross-check
  // activation plumbing separately from State_Per resolution).
  Errno decide_with_permissions(const std::vector<std::string>& permissions,
                                const core::AccessQuery& query) const;

  const core::SackPolicy& policy() const { return policy_; }

 private:
  const core::SackPolicy& policy_;
};

}  // namespace sack::verify
