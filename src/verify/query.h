// The sack-verify query language: assertions checked by the model checker.
//
// A query document is a ';'-terminated statement list, '#' comments, with
// the same subject/object/op spellings as Per_Rules:
//
//   # invariant: no reachable state may grant any listed op
//   never allow /usr/bin/media_app /dev/vehicle/door* write ioctl;
//   never allow * /etc/shadow read;
//
//   # reachability query: report the first state (and trace) granting one
//   can /usr/bin/rescue_daemon /dev/vehicle/door0 write;
//
//   # state assertion: the named state must be reachable
//   reach emergency;
//
// Subjects: '*', a path glob over the task executable, or '@profile'.
// Objects are concrete paths or globs — a glob object asserts over the
// witness expansion of the pattern, not the raw text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/mac_ops.h"
#include "util/tokenizer.h"

namespace sack::verify {

struct Query {
  enum class Kind : std::uint8_t {
    never_allow,  // invariant: all listed ops denied in every reachable state
    can,          // query: is some listed op granted somewhere reachable?
    reach,        // assertion: the named state is reachable
  };
  Kind kind = Kind::never_allow;
  std::string subject;       // raw spelling: '*', glob, or '@profile'
  std::string object;        // path or glob
  core::MacOp ops = core::MacOp::none;
  std::string state;         // for `reach`
  int line = 0;

  std::string to_string() const;
};

struct QueryParseResult {
  std::vector<Query> queries;
  std::vector<ParseError> errors;

  bool ok() const { return errors.empty(); }
};

QueryParseResult parse_queries(std::string_view text);

}  // namespace sack::verify
