// Verification findings and their text/JSON rendering.
//
// Everything the verify engines produce funnels into one flat finding list
// so the CLI, the CI gate, and tests consume a single shape. Severities:
// `error` findings fail the CI gate (`sack-verify` exits nonzero), `warning`
// findings indicate likely authoring mistakes, `info` findings are evidence
// (reachability traces, escalation inventories) for human review.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sack::verify {

enum class FindingSeverity : std::uint8_t { info, warning, error };

std::string_view severity_name(FindingSeverity severity);

struct Finding {
  FindingSeverity severity = FindingSeverity::info;
  // Stable machine-readable category, dot-scoped by engine:
  //   lint.*        policy checker diagnostics
  //   invariant.*   `never allow` violations
  //   query.*       `can` / `reach` results
  //   escalation.*  privilege-diff report entries
  //   shadow.*      state-level subsumption shadows
  //   oracle.*      differential-oracle mismatches
  //   parse.*       policy/query parse failures
  std::string code;
  std::string message;
  // Event trace witnessing the finding (rendered TraceStep lines), empty
  // when the finding is not tied to a reachable state.
  std::vector<std::string> trace;
};

struct VerifyStats {
  std::size_t states_total = 0;
  std::size_t states_reachable = 0;
  std::size_t queries_checked = 0;
  std::size_t oracle_states = 0;
  std::size_t oracle_tuples = 0;
  std::size_t oracle_mismatches = 0;
  std::size_t subsumption_pairs = 0;
};

struct VerifyReport {
  std::string policy_name;
  std::vector<Finding> findings;
  VerifyStats stats;

  std::size_t count(FindingSeverity severity) const;
  bool has_errors() const { return count(FindingSeverity::error) > 0; }

  std::string to_text() const;
  std::string to_json() const;
};

std::string json_escape(std::string_view s);

}  // namespace sack::verify
