// Verifier: one entry point over the three analysis engines.
//
// `verify_policy` runs, in order:
//
//   1. the policy checker lints (core/policy_checker.h, now
//      subsumption-aware) — structural errors short-circuit the deeper
//      engines, since a policy that cannot load has no meaningful automaton;
//   2. the model checker: state reachability, `never allow` invariants and
//      `can`/`reach` queries with concrete event traces, the per-state
//      privilege-diff / escalation report;
//   3. state-level shadow analysis: allow rules dead under a subsuming deny
//      *across permissions active in the same reachable state* (the
//      per-permission case is the checker's);
//   4. the differential oracle: compiled matcher + AVC vs the reference
//      interpreter over the enumerated tuple universe.
//
// The result is a VerifyReport; `has_errors()` is the CI gate contract.
#pragma once

#include <string>
#include <vector>

#include "core/policy.h"
#include "core/policy_checker.h"
#include "verify/oracle.h"
#include "verify/query.h"
#include "verify/report.h"

namespace sack::verify {

struct VerifyOptions {
  core::CheckMode mode = core::CheckMode::any;
  bool run_oracle = true;
  bool run_escalation_report = true;
  bool run_state_shadow = true;
  std::vector<Query> queries;
  OracleOptions oracle;
};

VerifyReport verify_policy(const core::SackPolicy& policy,
                           const VerifyOptions& options = {},
                           std::string policy_name = "(policy)");

// Convenience wrapper: parse `text` first; parse errors become findings.
VerifyReport verify_policy_text(std::string_view text,
                                const VerifyOptions& options = {},
                                std::string policy_name = "(policy)");

}  // namespace sack::verify
