#include "verify/universe.h"

#include <algorithm>
#include <set>

namespace sack::verify {

namespace {

using TokKind = Glob::TokKind;
using Token = Glob::Token;

// A filler character the pattern is unlikely to constrain; varied per
// witness so two wildcards in one pattern do not always expand identically.
constexpr char kFillers[] = {'w', 'q', 'z'};

// Picks a concrete character a char_class token accepts, or 0 if the class
// is unsatisfiable in practice.
char class_member(const Token& t, int variant) {
  if (!t.negated) {
    if (t.set.empty()) return 0;
    return t.set[static_cast<std::size_t>(variant) % t.set.size()];
  }
  for (char c : std::string("mnpt4680") + kFillers[variant % 3]) {
    if (c != '/' && t.set.find(c) == std::string::npos) return c;
  }
  for (int c = 'a'; c <= 'z'; ++c) {
    if (t.set.find(static_cast<char>(c)) == std::string::npos)
      return static_cast<char>(c);
  }
  return 0;
}

}  // namespace

std::vector<std::string> glob_witnesses(const Glob& glob, int variants) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (int v = 0; v < variants; ++v) {
    for (const auto& seq : glob.alternatives()) {
      std::string path;
      bool ok = true;
      for (const Token& t : seq) {
        switch (t.kind) {
          case TokKind::literal:
            path += t.ch;
            break;
          case TokKind::any_one:
            path += kFillers[v % 3];
            break;
          case TokKind::char_class: {
            char c = class_member(t, v);
            if (c == 0)
              ok = false;
            else
              path += c;
            break;
          }
          case TokKind::any_seq:
            // Variant 0: empty expansion (the boundary case a naive
            // enumerator misses); later variants: short fillers.
            if (v == 1) path += kFillers[v % 3];
            if (v >= 2) path += {kFillers[v % 3], kFillers[(v + 1) % 3]};
            break;
          case TokKind::any_deep:
            // '**' may cross directory boundaries; make one variant do so.
            if (v == 1) path += kFillers[v % 3];
            if (v >= 2) path += {kFillers[v % 3], '/', kFillers[(v + 1) % 3]};
            break;
        }
        if (!ok) break;
      }
      if (ok && glob.matches(path) && seen.insert(path).second)
        out.push_back(std::move(path));
    }
  }
  return out;
}

Universe build_universe(const core::SackPolicy& policy,
                        const UniverseOptions& options) {
  Universe u;
  std::set<std::string> objects;
  std::set<std::pair<std::string, std::string>> subjects;
  core::MacOp mentioned_ops = core::MacOp::none;

  auto add_object_pattern = [&objects, &options](const Glob& g) {
    if (g.is_literal()) {
      objects.insert(g.literal());
      return;
    }
    for (auto& w : glob_witnesses(g, options.variants_per_glob))
      objects.insert(std::move(w));
  };

  for (const auto& [perm, rules] : policy.per_rules) {
    for (const auto& rule : rules) {
      add_object_pattern(rule.object);
      mentioned_ops = mentioned_ops | rule.ops;
      switch (rule.subject_kind) {
        case core::SubjectKind::any:
          break;
        case core::SubjectKind::path:
          if (rule.subject_glob.is_literal()) {
            subjects.insert({rule.subject_glob.literal(), ""});
          } else {
            for (auto& w :
                 glob_witnesses(rule.subject_glob, options.variants_per_glob))
              subjects.insert({std::move(w), ""});
          }
          break;
        case core::SubjectKind::profile:
          subjects.insert({"/usr/bin/profiled_app", rule.subject_text});
          break;
      }
    }
  }

  if (options.boundary_probes) {
    // Just-outside probes: tweak every generated object so near-misses of
    // literal indexes and glob tails are both exercised.
    std::vector<std::string> probes;
    for (const auto& o : objects) {
      probes.push_back(o + "x");                       // suffix extension
      probes.push_back(o + "/sub");                    // child path
      if (auto cut = o.find_last_of('/'); cut != std::string::npos)
        probes.push_back(o.substr(0, cut + 1) + "sibling_probe");
    }
    objects.insert(probes.begin(), probes.end());
  }
  objects.insert("/unguarded/probe");  // must always decide to OK

  // The bystander: matches no subject rule unless '*' applies.
  subjects.insert({"/usr/bin/uninvolved_app", ""});
  subjects.insert({"/usr/bin/uninvolved_app", "bystander_profile"});

  for (auto& [exe, profile] : subjects) u.subjects.push_back({exe, profile});
  u.objects.assign(objects.begin(), objects.end());

  // Every op the policy mentions, plus one it does not (deny-by-default on
  // guarded objects must hold for unmentioned ops too).
  for (std::size_t i = 0; i < core::kMacOpCount; ++i) {
    core::MacOp op = core::mac_op_from_index(i);
    if (has_any(mentioned_ops, op)) u.ops.push_back(op);
  }
  for (std::size_t i = 0; i < core::kMacOpCount; ++i) {
    core::MacOp op = core::mac_op_from_index(i);
    if (!has_any(mentioned_ops, op)) {
      u.ops.push_back(op);
      break;
    }
  }
  return u;
}

}  // namespace sack::verify
