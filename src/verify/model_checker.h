// Model checker over the SSM product automaton.
//
// The situation state machine is a labeled transition system: nodes are
// situation states, edges are situation events, dwell-time ("after N ms")
// expiries, and — when the policy declares a watchdog — the failsafe edge
// the kernel can force from *any* state when the SDS goes silent. Because a
// SACK access decision depends only on the current state (the SSM is global
// and memoryless), every cross-state security question reduces to labeled
// reachability plus the reference interpreter:
//
//   "can subject S ever be granted op O on object P?"
//       -> find a reachable state whose active rules admit (S, P, O) and
//          return the shortest event trace from the initial state;
//
//   "never allow ..." invariants -> the same search, where any hit is a
//          violation, reported with its concrete trace;
//
//   escalation reports -> every tuple denied initially but granted in some
//          reachable state, with the trace that gets there;
//
//   per-state privilege diffs -> permission and tuple deltas vs initial.
//
// Traces are genuine counterexamples: replaying the listed events (plus
// clock advances for timed edges and SDS silence for the watchdog edge)
// against a live SackModule reproduces the state.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/mac_ops.h"
#include "core/policy.h"
#include "verify/reference.h"
#include "verify/universe.h"

namespace sack::verify {

// One edge of a counterexample trace.
struct TraceStep {
  enum class Kind : std::uint8_t { event, timed, watchdog };
  Kind kind = Kind::event;
  std::string label;  // event name; "" for timed/watchdog
  std::int64_t after_ms = 0;  // timed: dwell, watchdog: deadline
  std::string from;
  std::string to;

  std::string to_string() const;
};

std::string format_trace(const std::vector<TraceStep>& trace);

struct ReachableState {
  std::string state;
  std::vector<TraceStep> trace;  // shortest edge path from initial
};

struct AccessRequest {
  std::string subject_exe;
  std::string subject_profile;
  std::string object;
  core::MacOp ops = core::MacOp::none;  // one or more ops, checked singly
};

// A (state, tuple) pair where the tuple is granted.
struct Grant {
  std::string state;
  std::vector<TraceStep> trace;
  SubjectSample subject;
  std::string object;
  core::MacOp op = core::MacOp::none;
};

// Tuples granted in `state` but denied in the initial state (or the
// reverse, for `revoked`).
struct PrivilegeDiff {
  std::string state;
  std::vector<TraceStep> trace;
  std::vector<std::string> permissions_added;
  std::vector<std::string> permissions_removed;
  std::vector<Grant> escalations;   // denied initially, granted here
  std::size_t revocations = 0;      // granted initially, denied here
};

class ModelChecker {
 public:
  explicit ModelChecker(const core::SackPolicy& policy);

  // Every state reachable from the initial state (BFS order; index 0 is the
  // initial state itself), each with its shortest trace.
  const std::vector<ReachableState>& reachable() const { return reachable_; }

  const ReferenceInterpreter& reference() const { return reference_; }

  // First reachable state (in BFS order) granting any op of `request`;
  // nullopt when no reachable state grants any of them.
  std::optional<Grant> find_grant(const AccessRequest& request) const;

  // All reachable states granting any op of `request` — the full violation
  // list for a `never allow` invariant.
  std::vector<Grant> find_all_grants(const AccessRequest& request) const;

  // Per-state privilege diff vs the initial state over `universe`. States
  // with no delta are omitted unless `include_neutral`.
  std::vector<PrivilegeDiff> privilege_diffs(const Universe& universe,
                                             bool include_neutral = false,
                                             std::size_t max_escalations_per_state = 16) const;

 private:
  const core::SackPolicy& policy_;
  ReferenceInterpreter reference_;
  std::vector<ReachableState> reachable_;
};

}  // namespace sack::verify
