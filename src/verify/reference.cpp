#include "verify/reference.h"

namespace sack::verify {

namespace {

bool subject_applies(const core::MacRule& rule,
                     const core::AccessQuery& query) {
  switch (rule.subject_kind) {
    case core::SubjectKind::any:
      return true;
    case core::SubjectKind::path:
      return rule.subject_glob.matches(query.subject_exe);
    case core::SubjectKind::profile:
      return !query.subject_profile.empty() &&
             rule.subject_text == query.subject_profile;
  }
  return false;
}

}  // namespace

bool ReferenceInterpreter::guarded(std::string_view object_path) const {
  for (const auto& [perm, rules] : policy_.per_rules) {
    for (const auto& rule : rules) {
      if (rule.object.matches(object_path)) return true;
    }
  }
  return false;
}

Errno ReferenceInterpreter::decide_with_permissions(
    const std::vector<std::string>& permissions,
    const core::AccessQuery& query) const {
  if (!guarded(query.object_path)) return Errno::ok;
  bool allowed = false;
  for (const auto& perm : permissions) {
    auto it = policy_.per_rules.find(perm);
    if (it == policy_.per_rules.end()) continue;
    for (const auto& rule : it->second) {
      if (!has_any(rule.ops, query.op)) continue;
      if (!rule.object.matches(query.object_path)) continue;
      if (!subject_applies(rule, query)) continue;
      if (rule.effect == core::RuleEffect::deny) return Errno::eacces;
      allowed = true;
    }
  }
  return allowed ? Errno::ok : Errno::eacces;
}

Errno ReferenceInterpreter::decide(std::string_view state,
                                   const core::AccessQuery& query) const {
  return decide_with_permissions(policy_.permissions_of(state), query);
}

}  // namespace sack::verify
