#include "verify/query.h"

#include "core/mac_ops.h"

namespace sack::verify {

std::string Query::to_string() const {
  switch (kind) {
    case Kind::never_allow:
      return "never allow " + subject + " " + object + " " +
             core::format_mac_ops(ops);
    case Kind::can:
      return "can " + subject + " " + object + " " +
             core::format_mac_ops(ops);
    case Kind::reach:
      return "reach " + state;
  }
  return {};
}

namespace {

// Subject spelling, mirroring parse_mac_rule: '*', '@profile', or a path.
bool parse_subject(TokenStream& ts, Query& q) {
  const Token& subj = ts.peek();
  if (subj.is_punct('*')) {
    ts.next();
    q.subject = "*";
    return true;
  }
  if (subj.is_punct('@')) {
    ts.next();
    auto prof = ts.expect_ident();
    if (!prof.ok()) return false;
    q.subject = "@" + prof->text;
    return true;
  }
  if (subj.kind == TokenKind::path) {
    q.subject = ts.next().text;
    return true;
  }
  ts.record_error("expected subject ('*', '@profile' or a path), got '" +
                  subj.text + "'");
  return false;
}

bool parse_access_tail(TokenStream& ts, Query& q) {
  if (!parse_subject(ts, q)) return false;
  auto obj = ts.expect(TokenKind::path, "object path pattern");
  if (!obj.ok()) return false;
  q.object = obj->text;
  bool any_op = false;
  while (ts.peek().kind == TokenKind::identifier) {
    auto op = core::mac_op_from_name(ts.peek().text);
    if (!op.ok()) {
      ts.record_error("unknown operation '" + ts.peek().text + "'");
      return false;
    }
    ts.next();
    q.ops |= op.value();
    any_op = true;
    (void)ts.accept_punct(',');
  }
  if (!any_op) {
    ts.record_error("query names no operations");
    return false;
  }
  return ts.expect_punct(';').ok();
}

void synchronize(TokenStream& ts) {
  while (!ts.at_end() && !ts.accept_punct(';')) ts.next();
}

}  // namespace

QueryParseResult parse_queries(std::string_view text) {
  QueryParseResult result;
  Tokenizer tokenizer(text);
  auto tokens = tokenizer.run();
  if (!tokens.ok()) {
    result.errors.push_back(tokenizer.last_error());
    return result;
  }
  TokenStream ts(std::move(tokens).value());
  while (!ts.at_end()) {
    Query q;
    q.line = ts.peek().line;
    if (ts.accept_ident("never")) {
      if (!ts.accept_ident("allow")) {
        ts.record_error("expected 'allow' after 'never', got '" +
                        ts.peek().text + "'");
        synchronize(ts);
        continue;
      }
      q.kind = Query::Kind::never_allow;
      if (!parse_access_tail(ts, q)) {
        synchronize(ts);
        continue;
      }
    } else if (ts.accept_ident("can")) {
      q.kind = Query::Kind::can;
      if (!parse_access_tail(ts, q)) {
        synchronize(ts);
        continue;
      }
    } else if (ts.accept_ident("reach")) {
      q.kind = Query::Kind::reach;
      auto state = ts.expect_ident();
      if (!state.ok() || !ts.expect_punct(';').ok()) {
        synchronize(ts);
        continue;
      }
      q.state = state->text;
    } else {
      ts.record_error("expected 'never', 'can' or 'reach', got '" +
                      ts.peek().text + "'");
      synchronize(ts);
      continue;
    }
    result.queries.push_back(std::move(q));
  }
  result.errors = ts.take_errors();
  return result;
}

}  // namespace sack::verify
