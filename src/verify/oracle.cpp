#include "verify/oracle.h"

#include <algorithm>

#include "core/avc.h"
#include "core/ruleset.h"
#include "verify/reference.h"

namespace sack::verify {

std::string OracleMismatch::to_string() const {
  return engine + " disagrees in state '" + state + "': (" + subject.exe +
         (subject.profile.empty() ? "" : ", @" + subject.profile) + ", " +
         object + ", " + std::string(core::mac_op_name(op)) +
         ") reference=" + std::string(errno_name(reference)) +
         " observed=" + std::string(errno_name(observed));
}

namespace {

// The multiset of active rule texts a rule set should expose for a state,
// straight from State_Per ∘ Per_Rules.
std::vector<std::string> expected_active_texts(
    const core::SackPolicy& policy, const std::vector<std::string>& perms) {
  std::vector<std::string> out;
  for (const auto& perm : perms) {
    auto it = policy.per_rules.find(perm);
    if (it == policy.per_rules.end()) continue;
    for (const auto& rule : it->second) out.push_back(rule.to_text());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> observed_active_texts(const core::RuleSetBase& rs) {
  std::vector<std::string> out;
  for (const core::MacRule* rule : rs.active_rules())
    out.push_back(rule->to_text());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

OracleReport run_differential_oracle(const core::SackPolicy& policy,
                                     const OracleOptions& options) {
  return run_differential_oracle(policy, build_universe(policy, options.universe),
                                 options);
}

OracleReport run_differential_oracle(const core::SackPolicy& policy,
                                     const Universe& universe,
                                     const OracleOptions& options) {
  OracleReport report;
  ReferenceInterpreter reference(policy);

  core::CompiledRuleSet compiled;
  compiled.load(policy);
  core::LinearRuleSet linear;
  linear.load(policy);
  core::AccessVectorCache avc;

  auto record = [&report, &options](OracleMismatch m) {
    ++report.mismatches_total;
    if (report.mismatches.size() < options.max_mismatches)
      report.mismatches.push_back(std::move(m));
  };

  // Structural cross-check: guard predicate over every generated object.
  for (const auto& o : universe.objects) {
    bool want = reference.guarded(o);
    if (compiled.guarded(o) != want) {
      record({"guard", "(any)", {}, o, core::MacOp::none,
              want ? Errno::eacces : Errno::ok,
              compiled.guarded(o) ? Errno::eacces : Errno::ok});
    }
  }

  std::uint64_t generation = 0;
  for (const auto& state : policy.states) {
    ++report.states_checked;
    ++generation;  // one AVC generation per activation, as the module does
    const auto perms = policy.permissions_of(state.name);
    compiled.activate(perms);
    if (options.check_linear) linear.activate(perms);

    // Enumeration-hook cross-check: the active rule multiset must be exactly
    // the State_Per ∘ Per_Rules expansion.
    auto expected = expected_active_texts(policy, perms);
    if (observed_active_texts(compiled) != expected) {
      record({"active-set", state.name, {}, "(rule enumeration)",
              core::MacOp::none, Errno::ok, Errno::einval});
    }
    if (options.check_linear && observed_active_texts(linear) != expected) {
      record({"active-set(linear)", state.name, {}, "(rule enumeration)",
              core::MacOp::none, Errno::ok, Errno::einval});
    }

    for (const auto& s : universe.subjects) {
      for (const auto& o : universe.objects) {
        for (core::MacOp op : universe.ops) {
          ++report.tuples_checked;
          core::AccessQuery q{s.exe, s.profile, o, op};
          Errno want = reference.decide(state.name, q);
          Errno got = compiled.check(q);
          if (got != want)
            record({"compiled", state.name, s, o, op, want, got});
          if (options.check_linear) {
            Errno lin = linear.check(q);
            if (lin != want)
              record({"linear", state.name, s, o, op, want, lin});
          }
          if (options.check_avc) {
            // The check_op sequence: probe (miss or generation-stale),
            // insert the computed verdict, re-probe — the hit must serve
            // exactly what the matcher computed.
            avc.insert(q, generation, got);
            auto hit = avc.probe(q, generation);
            if (!hit.has_value() || *hit != want) {
              record({"avc", state.name, s, o, op, want,
                      hit.value_or(Errno::einval)});
            } else {
              ++report.avc_hits_verified;
            }
          }
        }
      }
    }
  }
  return report;
}

}  // namespace sack::verify
