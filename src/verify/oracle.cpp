#include "verify/oracle.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/avc.h"
#include "core/ruleset.h"
#include "verify/reference.h"

namespace sack::verify {

std::string OracleMismatch::to_string() const {
  return engine + " disagrees in state '" + state + "': (" + subject.exe +
         (subject.profile.empty() ? "" : ", @" + subject.profile) + ", " +
         object + ", " + std::string(core::mac_op_name(op)) +
         ") reference=" + std::string(errno_name(reference)) +
         " observed=" + std::string(errno_name(observed));
}

namespace {

// The multiset of active rule texts a rule set should expose for a state,
// straight from State_Per ∘ Per_Rules.
std::vector<std::string> expected_active_texts(
    const core::SackPolicy& policy, const std::vector<std::string>& perms) {
  std::vector<std::string> out;
  for (const auto& perm : perms) {
    auto it = policy.per_rules.find(perm);
    if (it == policy.per_rules.end()) continue;
    for (const auto& rule : it->second) out.push_back(rule.to_text());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> observed_active_texts(const core::RuleSetBase& rs) {
  std::vector<std::string> out;
  for (const core::MacRule* rule : rs.active_rules())
    out.push_back(rule->to_text());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

OracleReport run_differential_oracle(const core::SackPolicy& policy,
                                     const OracleOptions& options) {
  return run_differential_oracle(policy, build_universe(policy, options.universe),
                                 options);
}

OracleReport run_differential_oracle(const core::SackPolicy& policy,
                                     const Universe& universe,
                                     const OracleOptions& options) {
  OracleReport report;
  ReferenceInterpreter reference(policy);

  core::CompiledRuleSet compiled;
  (void)compiled.load(policy);
  core::LinearRuleSet linear;
  (void)linear.load(policy);
  core::DfaRuleSet dfa;
  if (options.check_dfa) (void)dfa.load(policy);
  core::AccessVectorCache avc;

  // Labels are activation-independent: pre-resolve one per object, exactly
  // what the per-inode cache would hold, and re-decide every tuple through
  // check_labeled as well — the cached-inode sequence must agree with the
  // uncached one in every state.
  const std::uint64_t label_gen = dfa.label_generation();
  std::vector<std::shared_ptr<const core::ObjectLabel>> labels;
  if (options.check_dfa) {
    labels.reserve(universe.objects.size());
    for (const auto& o : universe.objects) labels.push_back(dfa.resolve_label(o));
  }

  auto record = [&report, &options](OracleMismatch m) {
    ++report.mismatches_total;
    if (report.mismatches.size() < options.max_mismatches)
      report.mismatches.push_back(std::move(m));
  };

  // Structural cross-check: guard predicate over every generated object.
  for (const auto& o : universe.objects) {
    bool want = reference.guarded(o);
    if (compiled.guarded(o) != want) {
      record({"guard", "(any)", {}, o, core::MacOp::none,
              want ? Errno::eacces : Errno::ok,
              compiled.guarded(o) ? Errno::eacces : Errno::ok});
    }
    if (options.check_dfa && dfa.guarded(o) != want) {
      record({"guard(dfa)", "(any)", {}, o, core::MacOp::none,
              want ? Errno::eacces : Errno::ok,
              dfa.guarded(o) ? Errno::eacces : Errno::ok});
    }
  }

  std::uint64_t generation = 0;
  for (const auto& state : policy.states) {
    ++report.states_checked;
    ++generation;  // one AVC generation per activation, as the module does
    const auto perms = policy.permissions_of(state.name);
    compiled.activate(perms);
    if (options.check_linear) linear.activate(perms);
    if (options.check_dfa) dfa.activate(perms);

    // Enumeration-hook cross-check: the active rule multiset must be exactly
    // the State_Per ∘ Per_Rules expansion.
    auto expected = expected_active_texts(policy, perms);
    if (observed_active_texts(compiled) != expected) {
      record({"active-set", state.name, {}, "(rule enumeration)",
              core::MacOp::none, Errno::ok, Errno::einval});
    }
    if (options.check_linear && observed_active_texts(linear) != expected) {
      record({"active-set(linear)", state.name, {}, "(rule enumeration)",
              core::MacOp::none, Errno::ok, Errno::einval});
    }
    if (options.check_dfa && observed_active_texts(dfa) != expected) {
      record({"active-set(dfa)", state.name, {}, "(rule enumeration)",
              core::MacOp::none, Errno::ok, Errno::einval});
    }

    for (const auto& s : universe.subjects) {
      std::vector<core::AccessQuery> batch;
      std::vector<Errno> batch_want;
      for (std::size_t oi = 0; oi < universe.objects.size(); ++oi) {
        const auto& o = universe.objects[oi];
        for (core::MacOp op : universe.ops) {
          ++report.tuples_checked;
          core::AccessQuery q{s.exe, s.profile, o, op};
          Errno want = reference.decide(state.name, q);
          Errno got = compiled.check(q);
          if (got != want)
            record({"compiled", state.name, s, o, op, want, got});
          if (options.check_dfa) {
            Errno d = dfa.check(q);
            if (d != want) record({"dfa", state.name, s, o, op, want, d});
            Errno dl = dfa.check_labeled(q, *labels[oi], label_gen);
            if (dl != want)
              record({"dfa-labeled", state.name, s, o, op, want, dl});
            batch.push_back(q);
            batch_want.push_back(want);
          }
          if (options.check_linear) {
            Errno lin = linear.check(q);
            if (lin != want)
              record({"linear", state.name, s, o, op, want, lin});
          }
          if (options.check_avc) {
            // The check_op sequence: probe (miss or generation-stale),
            // insert the computed verdict, re-probe — the hit must serve
            // exactly what the matcher computed.
            avc.insert(q, generation, got);
            auto hit = avc.probe(q, generation);
            if (!hit.has_value() || *hit != want) {
              record({"avc", state.name, s, o, op, want,
                      hit.value_or(Errno::einval)});
            } else {
              ++report.avc_hits_verified;
            }
          }
        }
      }
      // Batch-API cross-check: one check_ops call over every (object, op)
      // pair of this subject must reproduce the scalar verdicts.
      if (options.check_dfa && !batch.empty()) {
        std::vector<Errno> batch_got(batch.size());
        dfa.check_ops(batch, batch_got);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (batch_got[i] != batch_want[i]) {
            record({"dfa-batch", state.name, s,
                    std::string(batch[i].object_path), batch[i].op,
                    batch_want[i], batch_got[i]});
          }
        }
      }
    }
  }
  return report;
}

}  // namespace sack::verify
