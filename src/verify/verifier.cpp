#include "verify/verifier.h"

#include <algorithm>
#include <set>

#include "core/policy_parser.h"
#include "verify/model_checker.h"
#include "verify/subsume.h"
#include "verify/universe.h"

namespace sack::verify {

namespace {

std::vector<std::string> render_trace(const std::vector<TraceStep>& trace) {
  std::vector<std::string> out;
  if (trace.empty()) {
    out.push_back("(initial state)");
    return out;
  }
  out.reserve(trace.size());
  for (const auto& step : trace) out.push_back(step.to_string());
  return out;
}

std::string describe_subject(const SubjectSample& s) {
  return s.profile.empty() ? s.exe : s.exe + " (@" + s.profile + ")";
}

// Expands a query's subject spelling into concrete subject samples.
std::vector<SubjectSample> expand_query_subject(const std::string& subject,
                                                std::vector<Finding>& findings,
                                                const Query& query) {
  std::vector<SubjectSample> out;
  if (subject == "*") {
    // "any subject": a bystander that only '*' rules match. A hit for the
    // bystander is a hit for everyone; rules targeting specific subjects
    // need their own queries.
    out.push_back({"/usr/bin/uninvolved_app", ""});
    return out;
  }
  if (subject.size() > 1 && subject[0] == '@') {
    out.push_back({"/usr/bin/profiled_app", subject.substr(1)});
    return out;
  }
  auto glob = Glob::compile(subject);
  if (!glob.ok()) {
    findings.push_back({FindingSeverity::error, "parse.query",
                        "bad subject pattern in query: " + query.to_string(),
                        {}});
    return out;
  }
  if (glob->is_literal()) {
    out.push_back({glob->literal(), ""});
  } else {
    for (auto& w : glob_witnesses(*glob, 3)) out.push_back({std::move(w), ""});
  }
  return out;
}

std::vector<std::string> expand_query_object(const std::string& object,
                                             std::vector<Finding>& findings,
                                             const Query& query) {
  std::vector<std::string> out;
  auto glob = Glob::compile(object);
  if (!glob.ok()) {
    findings.push_back({FindingSeverity::error, "parse.query",
                        "bad object pattern in query: " + query.to_string(),
                        {}});
    return out;
  }
  if (glob->is_literal())
    out.push_back(glob->literal());
  else
    out = glob_witnesses(*glob, 3);
  return out;
}

void run_queries(const ModelChecker& checker, const VerifyOptions& options,
                 VerifyReport& report) {
  for (const Query& query : options.queries) {
    ++report.stats.queries_checked;
    if (query.kind == Query::Kind::reach) {
      const auto& reachable = checker.reachable();
      auto it = std::find_if(reachable.begin(), reachable.end(),
                             [&query](const ReachableState& rs) {
                               return rs.state == query.state;
                             });
      if (it == reachable.end()) {
        report.findings.push_back(
            {FindingSeverity::error, "query.unreachable",
             "`" + query.to_string() + "` failed: state is not reachable",
             {}});
      } else {
        report.findings.push_back({FindingSeverity::info, "query.reach",
                                   "`" + query.to_string() + "` holds",
                                   render_trace(it->trace)});
      }
      continue;
    }

    auto subjects =
        expand_query_subject(query.subject, report.findings, query);
    auto objects = expand_query_object(query.object, report.findings, query);
    bool any_grant = false;
    for (const auto& s : subjects) {
      for (const auto& o : objects) {
        AccessRequest request{s.exe, s.profile, o, query.ops};
        if (query.kind == Query::Kind::never_allow) {
          for (const auto& grant : checker.find_all_grants(request)) {
            any_grant = true;
            report.findings.push_back(
                {FindingSeverity::error, "invariant.violated",
                 "`" + query.to_string() + "` violated: " +
                     describe_subject(grant.subject) + " is granted " +
                     std::string(core::mac_op_name(grant.op)) + " on " +
                     grant.object + " in state '" + grant.state + "'",
                 render_trace(grant.trace)});
          }
        } else if (auto grant = checker.find_grant(request)) {
          any_grant = true;
          report.findings.push_back(
              {FindingSeverity::info, "query.granted",
               "`" + query.to_string() + "`: " +
                   describe_subject(grant->subject) + " is granted " +
                   std::string(core::mac_op_name(grant->op)) + " on " +
                   grant->object + " in state '" + grant->state + "'",
               render_trace(grant->trace)});
        }
      }
    }
    if (!any_grant) {
      if (query.kind == Query::Kind::never_allow) {
        report.findings.push_back({FindingSeverity::info, "invariant.holds",
                                   "`" + query.to_string() +
                                       "` holds in every reachable state",
                                   {}});
      } else {
        report.findings.push_back({FindingSeverity::warning, "query.denied",
                                   "`" + query.to_string() +
                                       "`: no reachable state grants it",
                                   {}});
      }
    }
  }
}

void run_escalation_report(const ModelChecker& checker,
                           const Universe& universe, VerifyReport& report) {
  for (const auto& diff : checker.privilege_diffs(universe)) {
    std::string msg = "state '" + diff.state + "'";
    if (!diff.permissions_added.empty()) {
      msg += " grants";
      for (const auto& p : diff.permissions_added) msg += " +" + p;
    }
    if (!diff.permissions_removed.empty()) {
      msg += " drops";
      for (const auto& p : diff.permissions_removed) msg += " -" + p;
    }
    msg += ": " + std::to_string(diff.escalations.size()) +
           " escalated tuple(s), " + std::to_string(diff.revocations) +
           " revoked tuple(s) vs initial";
    if (!diff.escalations.empty()) {
      const auto& e = diff.escalations.front();
      msg += "; e.g. " + describe_subject(e.subject) + " gains " +
             std::string(core::mac_op_name(e.op)) + " on " + e.object;
    }
    report.findings.push_back({FindingSeverity::info, "escalation.state", msg,
                               render_trace(diff.trace)});
  }
}

// Allow rules dead under a deny from a *different* permission active in the
// same reachable state (the same-permission case is check_policy's).
void run_state_shadow(const core::SackPolicy& policy,
                      const ModelChecker& checker, VerifyReport& report) {
  std::set<std::string> reported;
  for (const auto& rs : checker.reachable()) {
    struct Owned {
      const core::MacRule* rule;
      const std::string* permission;
    };
    std::vector<Owned> active;
    auto perms = policy.permissions_of(rs.state);
    for (const auto& perm : perms) {
      auto it = policy.per_rules.find(perm);
      if (it == policy.per_rules.end()) continue;
      for (const auto& rule : it->second) active.push_back({&rule, &it->first});
    }
    for (const auto& allow : active) {
      if (allow.rule->effect != core::RuleEffect::allow) continue;
      for (const auto& deny : active) {
        if (deny.rule->effect != core::RuleEffect::deny ||
            deny.permission == allow.permission)
          continue;
        ++report.stats.subsumption_pairs;
        if (!rule_subsumes(*deny.rule, *allow.rule)) continue;
        std::string key = allow.rule->to_text() + "|" + deny.rule->to_text();
        if (!reported.insert(key).second) continue;  // same pair, later state
        report.findings.push_back(
            {FindingSeverity::warning, "shadow.cross_permission",
             "allow rule '" + allow.rule->to_text() + "' (permission '" +
                 *allow.permission + "') is dead in state '" + rs.state +
                 "': fully shadowed by deny rule '" + deny.rule->to_text() +
                 "' (permission '" + *deny.permission + "')",
             render_trace(rs.trace)});
      }
    }
  }
}

}  // namespace

VerifyReport verify_policy(const core::SackPolicy& policy,
                           const VerifyOptions& options,
                           std::string policy_name) {
  VerifyReport report;
  report.policy_name = std::move(policy_name);
  report.stats.states_total = policy.states.size();

  auto diagnostics = core::check_policy(policy, options.mode);
  for (const auto& d : diagnostics) {
    report.findings.push_back({d.severity == core::Severity::error
                                   ? FindingSeverity::error
                                   : FindingSeverity::warning,
                               "lint", d.message, {}});
  }
  if (core::has_errors(diagnostics)) {
    // Structurally broken: the automaton and rule tables are not
    // well-defined, so the deeper engines would chase ghosts.
    return report;
  }

  ModelChecker checker(policy);
  report.stats.states_reachable = checker.reachable().size();

  run_queries(checker, options, report);

  Universe universe;
  const bool need_universe =
      options.run_escalation_report || options.run_oracle;
  if (need_universe) universe = build_universe(policy, options.oracle.universe);

  if (options.run_escalation_report)
    run_escalation_report(checker, universe, report);
  if (options.run_state_shadow) run_state_shadow(policy, checker, report);

  if (options.run_oracle) {
    auto oracle = run_differential_oracle(policy, universe, options.oracle);
    report.stats.oracle_states = oracle.states_checked;
    report.stats.oracle_tuples = oracle.tuples_checked;
    report.stats.oracle_mismatches = oracle.mismatches_total;
    for (const auto& m : oracle.mismatches) {
      report.findings.push_back({FindingSeverity::error, "oracle.mismatch",
                                 m.to_string(),
                                 {}});
    }
    if (oracle.mismatches_total > oracle.mismatches.size()) {
      report.findings.push_back(
          {FindingSeverity::error, "oracle.mismatch",
           std::to_string(oracle.mismatches_total - oracle.mismatches.size()) +
               " further oracle mismatch(es) suppressed",
           {}});
    }
  }
  return report;
}

VerifyReport verify_policy_text(std::string_view text,
                                const VerifyOptions& options,
                                std::string policy_name) {
  auto parsed = core::parse_policy(text);
  if (!parsed.ok()) {
    VerifyReport report;
    report.policy_name = std::move(policy_name);
    for (const auto& e : parsed.errors) {
      report.findings.push_back(
          {FindingSeverity::error, "parse.policy", e.to_string(), {}});
    }
    return report;
  }
  return verify_policy(parsed.policy, options, std::move(policy_name));
}

}  // namespace sack::verify
