#include "verify/subsume.h"

#include "util/bitmask.h"

namespace sack::verify {

using core::MacRule;
using core::SubjectKind;

bool subject_subsumes(const MacRule& general, const MacRule& specific) {
  // '*' covers every subject. Anything narrower never covers '*'.
  if (general.subject_kind == SubjectKind::any) return true;
  if (specific.subject_kind == SubjectKind::any) return false;
  // Path and profile subjects live in disjoint identity spaces: a path glob
  // constrains the executable, a profile name constrains the AppArmor label.
  // Neither can stand in for the other.
  if (general.subject_kind != specific.subject_kind) return false;
  if (general.subject_kind == SubjectKind::profile)
    return general.subject_text == specific.subject_text;
  return glob_subsumes(general.subject_glob, specific.subject_glob).subsumes();
}

bool rule_subsumes(const MacRule& general, const MacRule& specific) {
  if (!has_all(general.ops, specific.ops)) return false;
  if (!subject_subsumes(general, specific)) return false;
  return glob_subsumes(general.object, specific.object).subsumes();
}

}  // namespace sack::verify
