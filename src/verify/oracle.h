// The differential oracle: compiled engines vs the reference interpreter.
//
// Enumerates every (state, subject, object, op) tuple of the generated
// universe and cross-checks four implementations that must agree on each:
//
//   reference   the naive spec interpreter (verify/reference.h) — truth;
//   compiled    CompiledRuleSet: per-op tables, literal hash indexes,
//               RCU-published snapshots;
//   dfa         DfaRuleSet: the table-driven automaton matcher (the
//               production default), checked through check() AND through
//               the pre-resolved-label path (resolve_label + check_labeled,
//               the sequence the per-inode cache performs) AND through the
//               batch check_ops() API;
//   linear      LinearRuleSet: the unindexed scan (the ablation baseline);
//   avc         the AccessVectorCache round-trip: miss-probe, insert of the
//               compiled verdict, then a hit-probe that must return it —
//               the exact sequence SackModule::check_op performs.
//
// On top of the per-tuple sweep the oracle cross-checks structure: the
// guard-set predicate against the reference definition, and the rule sets'
// active_rules() enumeration hooks against State_Per ∘ Per_Rules.
//
// Any mismatch is a matcher/compiler/cache regression caught before it
// ships; PR 1's AVC and snapshot optimizations stay provably equivalent to
// the spec as long as this oracle stays green on the shipped policies.
#pragma once

#include <string>
#include <vector>

#include "core/policy.h"
#include "verify/universe.h"

namespace sack::verify {

struct OracleMismatch {
  // "compiled" | "dfa" | "dfa-labeled" | "dfa-batch" | "linear" | "avc" |
  // "guard" | "guard(dfa)" | "active-set" | "active-set(...)"
  std::string engine;
  std::string state;
  SubjectSample subject;
  std::string object;
  core::MacOp op = core::MacOp::none;
  Errno reference = Errno::ok;
  Errno observed = Errno::ok;

  std::string to_string() const;
};

struct OracleReport {
  std::size_t states_checked = 0;
  std::size_t tuples_checked = 0;
  std::size_t avc_hits_verified = 0;
  std::size_t mismatches_total = 0;
  std::vector<OracleMismatch> mismatches;  // capped at `max_mismatches`

  bool ok() const { return mismatches_total == 0; }
};

struct OracleOptions {
  UniverseOptions universe;
  bool check_avc = true;
  bool check_linear = true;
  bool check_dfa = true;
  std::size_t max_mismatches = 32;
};

OracleReport run_differential_oracle(const core::SackPolicy& policy,
                                     const OracleOptions& options = {});

// As above over a pre-built universe (the bench reuses one).
OracleReport run_differential_oracle(const core::SackPolicy& policy,
                                     const Universe& universe,
                                     const OracleOptions& options);

}  // namespace sack::verify
