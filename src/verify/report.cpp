#include "verify/report.h"

#include <algorithm>
#include <cstdio>

namespace sack::verify {

std::string_view severity_name(FindingSeverity severity) {
  switch (severity) {
    case FindingSeverity::info:
      return "info";
    case FindingSeverity::warning:
      return "warning";
    case FindingSeverity::error:
      return "error";
  }
  return "?";
}

std::size_t VerifyReport::count(FindingSeverity severity) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [severity](const Finding& f) {
                      return f.severity == severity;
                    }));
}

std::string VerifyReport::to_text() const {
  std::string out = "== sack-verify: " + policy_name + " ==\n";
  for (const auto& f : findings) {
    out += std::string(severity_name(f.severity)) + " [" + f.code + "] " +
           f.message + "\n";
    for (const auto& step : f.trace) out += "    " + step + "\n";
  }
  out += "states: " + std::to_string(stats.states_reachable) + "/" +
         std::to_string(stats.states_total) + " reachable";
  if (stats.queries_checked > 0)
    out += "; queries: " + std::to_string(stats.queries_checked);
  if (stats.oracle_tuples > 0)
    out += "; oracle: " + std::to_string(stats.oracle_tuples) + " tuples, " +
           std::to_string(stats.oracle_mismatches) + " mismatches";
  if (stats.subsumption_pairs > 0)
    out += "; subsumption pairs: " + std::to_string(stats.subsumption_pairs);
  out += "\nresult: " + std::to_string(count(FindingSeverity::error)) +
         " error(s), " + std::to_string(count(FindingSeverity::warning)) +
         " warning(s), " + std::to_string(count(FindingSeverity::info)) +
         " info\n";
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string VerifyReport::to_json() const {
  std::string out = "{\n  \"policy\": \"" + json_escape(policy_name) + "\",\n";
  out += "  \"errors\": " + std::to_string(count(FindingSeverity::error)) +
         ",\n  \"warnings\": " +
         std::to_string(count(FindingSeverity::warning)) + ",\n  \"infos\": " +
         std::to_string(count(FindingSeverity::info)) + ",\n";
  out += "  \"stats\": {\"states_total\": " +
         std::to_string(stats.states_total) + ", \"states_reachable\": " +
         std::to_string(stats.states_reachable) + ", \"queries_checked\": " +
         std::to_string(stats.queries_checked) + ", \"oracle_states\": " +
         std::to_string(stats.oracle_states) + ", \"oracle_tuples\": " +
         std::to_string(stats.oracle_tuples) + ", \"oracle_mismatches\": " +
         std::to_string(stats.oracle_mismatches) +
         ", \"subsumption_pairs\": " +
         std::to_string(stats.subsumption_pairs) + "},\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"severity\": \"" + std::string(severity_name(f.severity)) +
           "\", \"code\": \"" + json_escape(f.code) + "\", \"message\": \"" +
           json_escape(f.message) + "\", \"trace\": [";
    for (std::size_t j = 0; j < f.trace.size(); ++j) {
      if (j > 0) out += ", ";
      out += "\"" + json_escape(f.trace[j]) + "\"";
    }
    out += "]}";
  }
  out += findings.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace sack::verify
