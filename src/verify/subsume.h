// Rule-level subsumption: does one MAC rule imply another?
//
// Built on the glob containment decision procedure (util/glob_subsume.h),
// lifted to whole Per_Rules entries: subjects, object patterns, and the
// operation mask. `rule_subsumes(general, specific)` means every concrete
// access (subject, object, op) the specific rule applies to is also covered
// by the general rule — the precise notion behind "this allow is dead under
// that deny" and "this rule is redundant next to that one".
#pragma once

#include <string>

#include "core/policy.h"
#include "util/glob_subsume.h"

namespace sack::verify {

// True iff `general` applies to every access `specific` applies to
// (undecided glob containment counts as "not shown to subsume").
bool rule_subsumes(const core::MacRule& general, const core::MacRule& specific);

// Subject-only half of the implication: does `general`'s subject match
// every task `specific`'s subject matches? (The policy checker's shadow
// analysis applies the same relation, built directly on util/glob_subsume —
// core cannot link against this library.)
bool subject_subsumes(const core::MacRule& general,
                      const core::MacRule& specific);

}  // namespace sack::verify
