#include "ivi/vehicle_hw.h"

#include "kernel/task.h"
#include "util/log.h"

namespace sack::ivi {

bool VehicleState::all_doors_locked() const {
  for (bool locked : door_locked)
    if (!locked) return false;
  return true;
}

bool VehicleState::any_window_open() const {
  for (int pct : window_open_pct)
    if (pct > 0) return true;
  return false;
}

namespace {
void record(std::vector<ActuationRecord>& log, std::string_view device,
            std::uint32_t cmd, long arg, kernel::Task& task) {
  log.push_back({std::string(device), cmd, arg, task.pid(), task.exe_path()});
}
}  // namespace

class VehicleHardware::DoorDevice final : public kernel::DeviceOps {
 public:
  DoorDevice(VehicleHardware* hw) : hw_(hw) {}
  std::string_view device_name() const override { return "vehicle-door"; }

  Result<long> ioctl(kernel::Task& task, kernel::File&, std::uint32_t cmd,
                     long arg) override {
    auto& st = hw_->state_;
    switch (cmd) {
      case VEH_DOOR_LOCK:
      case VEH_DOOR_UNLOCK: {
        bool lock = cmd == VEH_DOOR_LOCK;
        if (arg == kAllDoors) {
          st.door_locked.fill(lock);
        } else if (arg >= 0 && arg < kDoorCount) {
          st.door_locked[static_cast<std::size_t>(arg)] = lock;
        } else {
          return Errno::einval;
        }
        record(hw_->actuations_, kDoorPath, cmd, arg, task);
        log_info("vehicle: doors ", lock ? "LOCKED" : "UNLOCKED", " by ",
                 task.exe_path());
        return 0;
      }
      case VEH_DOOR_STATUS: {
        long mask = 0;
        for (int i = 0; i < kDoorCount; ++i)
          if (st.door_locked[static_cast<std::size_t>(i)]) mask |= 1L << i;
        return mask;
      }
      default:
        return Errno::einval;
    }
  }

 private:
  VehicleHardware* hw_;
};

class VehicleHardware::WindowDevice final : public kernel::DeviceOps {
 public:
  WindowDevice(VehicleHardware* hw) : hw_(hw) {}
  std::string_view device_name() const override { return "vehicle-window"; }

  Result<long> ioctl(kernel::Task& task, kernel::File&, std::uint32_t cmd,
                     long arg) override {
    auto& st = hw_->state_;
    switch (cmd) {
      case VEH_WINDOW_SET: {
        // arg encodes (window << 8) | percent; window 0xff = all.
        long pct = arg & 0xff;
        long which = (arg >> 8) & 0xff;
        if (pct > 100) return Errno::einval;
        if (which == 0xff) {
          st.window_open_pct.fill(static_cast<int>(pct));
        } else if (which < kDoorCount) {
          st.window_open_pct[static_cast<std::size_t>(which)] =
              static_cast<int>(pct);
        } else {
          return Errno::einval;
        }
        record(hw_->actuations_, kWindowPath, cmd, arg, task);
        return 0;
      }
      case VEH_WINDOW_GET: {
        if (arg < 0 || arg >= kDoorCount) return Errno::einval;
        return st.window_open_pct[static_cast<std::size_t>(arg)];
      }
      default:
        return Errno::einval;
    }
  }

 private:
  VehicleHardware* hw_;
};

class VehicleHardware::AudioDevice final : public kernel::DeviceOps {
 public:
  AudioDevice(VehicleHardware* hw) : hw_(hw) {}
  std::string_view device_name() const override { return "vehicle-audio"; }

  Result<long> ioctl(kernel::Task& task, kernel::File&, std::uint32_t cmd,
                     long arg) override {
    auto& st = hw_->state_;
    switch (cmd) {
      case VEH_AUDIO_SET_VOLUME:
        if (arg < 0 || arg > kMaxVolume) return Errno::einval;
        st.audio_volume = arg;
        record(hw_->actuations_, kAudioPath, cmd, arg, task);
        return 0;
      case VEH_AUDIO_GET_VOLUME:
        return st.audio_volume;
      default:
        return Errno::einval;
    }
  }

  // The audio device also accepts PCM writes (so profiles can grant plain
  // 'w' for playback without granting 'i' for volume control).
  Result<std::size_t> write(kernel::Task&, kernel::File&,
                            std::string_view data) override {
    return data.size();  // bit bucket
  }

 private:
  VehicleHardware* hw_;
};

VehicleHardware::VehicleHardware(kernel::Kernel& kernel) {
  door_ = std::make_unique<DoorDevice>(this);
  window_ = std::make_unique<WindowDevice>(this);
  audio_ = std::make_unique<AudioDevice>(this);
  (void)kernel.register_chardev(kDoorPath, door_.get(), 0660);
  (void)kernel.register_chardev(kWindowPath, window_.get(), 0660);
  (void)kernel.register_chardev(kAudioPath, audio_.get(), 0660);
}

VehicleHardware::~VehicleHardware() = default;

}  // namespace sack::ivi
