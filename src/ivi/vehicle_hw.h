// Simulated vehicle hardware behind char devices.
//
// The paper's case study controls "window and door devices" through specific
// ioctl system calls; here those devices are /dev/vehicle/door,
// /dev/vehicle/window and /dev/vehicle/audio, each a DeviceOps registered
// with the simulated kernel. The audio device exists to replay CVE-2023-6073
// (attacker sets volume to maximum while driving).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "kernel/device.h"
#include "kernel/kernel.h"

namespace sack::ivi {

// ioctl command numbers (stable ABI of the simulated vehicle drivers).
inline constexpr std::uint32_t VEH_DOOR_LOCK = 0x1001;
inline constexpr std::uint32_t VEH_DOOR_UNLOCK = 0x1002;
inline constexpr std::uint32_t VEH_DOOR_STATUS = 0x1003;   // returns bitmask
inline constexpr std::uint32_t VEH_WINDOW_SET = 0x2001;    // arg: percent open
inline constexpr std::uint32_t VEH_WINDOW_GET = 0x2002;
inline constexpr std::uint32_t VEH_AUDIO_SET_VOLUME = 0x3001;  // arg: 0..40
inline constexpr std::uint32_t VEH_AUDIO_GET_VOLUME = 0x3002;

inline constexpr int kDoorCount = 4;
inline constexpr long kAllDoors = -1;
inline constexpr long kMaxVolume = 40;

// The physical state all devices mutate.
struct VehicleState {
  std::array<bool, kDoorCount> door_locked{true, true, true, true};
  std::array<int, kDoorCount> window_open_pct{0, 0, 0, 0};
  long audio_volume = 10;

  bool all_doors_locked() const;
  bool any_window_open() const;
};

// An audit record of every device actuation, for tests and the case-study
// narration.
struct ActuationRecord {
  std::string device;
  std::uint32_t cmd = 0;
  long arg = 0;
  Pid pid;
  std::string exe;
};

class VehicleHardware {
 public:
  // Registers /dev/vehicle/{door,window,audio}. Device nodes are 0660
  // root-owned: DAC alone does not stop a root-running IVI service — that is
  // exactly the gap MAC fills.
  explicit VehicleHardware(kernel::Kernel& kernel);
  ~VehicleHardware();

  VehicleState& state() { return state_; }
  const VehicleState& state() const { return state_; }

  const std::vector<ActuationRecord>& actuations() const {
    return actuations_;
  }
  void clear_actuations() { actuations_.clear(); }

  static constexpr std::string_view kDoorPath = "/dev/vehicle/door";
  static constexpr std::string_view kWindowPath = "/dev/vehicle/window";
  static constexpr std::string_view kAudioPath = "/dev/vehicle/audio";

 private:
  class DoorDevice;
  class WindowDevice;
  class AudioDevice;

  VehicleState state_;
  std::vector<ActuationRecord> actuations_;
  std::unique_ptr<DoorDevice> door_;
  std::unique_ptr<WindowDevice> window_;
  std::unique_ptr<AudioDevice> audio_;
};

}  // namespace sack::ivi
