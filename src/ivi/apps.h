// IVI applications: the user-space actors of the case studies.
//
//  * RescueDaemon — the privileged service that opens doors/windows after a
//    crash ("break the glass", OAC). Whether its ioctls succeed is entirely
//    up to the MAC stack — it retries on every attempt.
//  * MediaApp — a benign infotainment app (reads media, adjusts volume).
//  * KoffeeInjector — models KOFFEE (CVE-2020-8539): an attacker who has
//    already bypassed user-space permission checks and injects vehicle
//    control commands directly at the syscall boundary. Also replays
//    CVE-2023-6073 (max volume while driving).
#pragma once

#include <string>
#include <vector>

#include "ivi/vehicle_hw.h"
#include "kernel/process.h"

namespace sack::ivi {

struct AttemptLog {
  struct Attempt {
    std::string action;
    Errno result{};
  };
  std::vector<Attempt> attempts;

  bool all_ok() const;
  bool all_denied() const;
  std::size_t count(Errno e) const;
};

class RescueDaemon {
 public:
  explicit RescueDaemon(kernel::Process process) : process_(process) {}

  // The emergency response: unlock all doors, open all windows.
  // Every step is attempted even if earlier ones fail; the log records the
  // MAC verdicts.
  AttemptLog respond_to_emergency();

  // Re-secure the vehicle (lock doors, close windows) after recovery.
  AttemptLog secure_vehicle();

  static constexpr std::string_view kExePath = "/usr/bin/rescue_daemon";

 private:
  Result<void> door_ioctl(std::uint32_t cmd, long arg, AttemptLog& log,
                          std::string_view what);
  Result<void> window_set(long arg, AttemptLog& log, std::string_view what);
  kernel::Process process_;
};

class MediaApp {
 public:
  explicit MediaApp(kernel::Process process) : process_(process) {}

  // Reads a track from the media library.
  Result<std::string> play_track(std::string_view path);

  // Normal in-range volume adjustment.
  Result<void> set_volume(long volume);

  static constexpr std::string_view kExePath = "/usr/bin/media_app";

 private:
  kernel::Process process_;
};

class KoffeeInjector {
 public:
  explicit KoffeeInjector(kernel::Process process) : process_(process) {}

  // The KOFFEE-style injection payload: unlock doors, open windows, blast
  // the volume — issued as raw ioctls, past any user-space checks.
  AttemptLog inject_vehicle_control();

  // CVE-2023-6073 specifically: set audio volume to maximum.
  Result<void> max_volume();

  // Data exfiltration attempt on a sensitive file.
  Result<std::string> read_sensitive(std::string_view path);

  // The raw KOFFEE payload: inject unlock/window/volume frames straight
  // onto the CAN bus via /dev/can0, bypassing every IVI service.
  Result<void> inject_can_frames();

  static constexpr std::string_view kExePath = "/usr/bin/ota_helper";

 private:
  kernel::Process process_;
};

}  // namespace sack::ivi
