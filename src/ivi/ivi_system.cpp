#include "ivi/ivi_system.h"

#include "util/log.h"

namespace sack::ivi {

using kernel::Cred;
using kernel::OpenFlags;

std::string_view mac_config_name(MacConfig config) {
  switch (config) {
    case MacConfig::none: return "none";
    case MacConfig::apparmor_only: return "apparmor";
    case MacConfig::independent_sack: return "sack";
    case MacConfig::sack_enhanced_apparmor: return "sack+apparmor(enhanced)";
    case MacConfig::stacked_independent: return "sack,apparmor(stacked)";
  }
  return "?";
}

std::string default_sack_policy_text(bool profile_subjects) {
  // Subjects: executable paths for independent SACK, @profiles for
  // SACK-enhanced AppArmor (the APE injects into those profiles).
  const std::string rescue =
      profile_subjects ? "@rescue_daemon" : std::string(RescueDaemon::kExePath);
  const std::string media =
      profile_subjects ? "@media_app" : std::string(MediaApp::kExePath);

  return std::string(R"(# SACK default CAV policy (Fig 2 states + case-study permissions)
states {
  parked_with_driver = 0;
  parked_without_driver = 1;
  driving = 2;
  emergency = 3;
}
initial parked_with_driver;
transitions {
  parked_with_driver -> driving on start_driving;
  driving -> parked_with_driver on stop_driving;
  parked_with_driver -> parked_without_driver on parked_without_driver;
  parked_without_driver -> parked_with_driver on parked_with_driver;
  parked_with_driver -> emergency on crash_detected;
  parked_without_driver -> emergency on crash_detected;
  driving -> emergency on crash_detected;
  emergency -> parked_with_driver on emergency_cleared;
}
# Declared so the default SDS detector set can always transmit them, even
# though this policy attaches no transition to speed-band changes.
events { high_speed_entered; low_speed_entered; }
permissions {
  MEDIA_READ;
  AUDIO_CONTROL;
  CONTROL_CAR_DOORS;
  CONTROL_CAR_WINDOWS;
  VEHICLE_CAN_TX;
}
state_per {
  parked_with_driver: MEDIA_READ, AUDIO_CONTROL;
  parked_without_driver: MEDIA_READ;
  driving: MEDIA_READ, AUDIO_CONTROL;
  emergency: MEDIA_READ, CONTROL_CAR_DOORS, CONTROL_CAR_WINDOWS, VEHICLE_CAN_TX;
}
per_rules {
  MEDIA_READ {
    allow * /var/media/** read getattr;
  }
  AUDIO_CONTROL {
    allow )") + media + R"( /dev/vehicle/audio write ioctl;
  }
  CONTROL_CAR_DOORS {
    allow )" + rescue + R"( /dev/vehicle/door* write ioctl;
  }
  CONTROL_CAR_WINDOWS {
    allow )" + rescue + R"( /dev/vehicle/window* write ioctl;
  }
  # Raw CAN injection is the KOFFEE attack vector: the bus device is guarded
  # at all times, and only the rescue daemon may transmit, only in an
  # emergency (e.g. to command the body ECU directly if the IVI path died).
  VEHICLE_CAN_TX {
    allow )" + rescue + R"( /dev/can0 read write;
  }
}
)";
}

std::string default_apparmor_profiles_text() {
  return R"(# Default IVI AppArmor profiles.
# Note: no profile grants /dev/vehicle/door* or window* — in enhanced mode
# SACK injects those rules into rescue_daemon only during emergencies.
profile rescue_daemon /usr/bin/rescue_daemon {
  /etc/vehicle/** r,
  /var/log/** w,
  /var/log/** r,
  capability sys_admin,
}
profile media_app /usr/bin/media_app {
  /var/media/** r,
  /dev/vehicle/audio rwi,
  network unix,
}
profile ota_helper /usr/bin/ota_helper {
  /var/ota/** rw,
  /var/ota/** r,
  network inet,
}
)";
}

std::string default_sfi_profiles_text() {
  // Distilled from the media app's two real workloads: play_track is an
  // open -> read-loop -> close, set_volume is an open -> ONE ioctl -> close.
  // A compromised app replaying ioctls (the KOFFEE flow variant) breaks the
  // one-ioctl-per-open shape and is denied at the second ioctl. While
  // driving, volume changes are locked out entirely (deny-only overlay).
  return std::string(R"(# Default IVI SFI flow profiles (media_app only).
profile )") + std::string(MediaApp::kExePath) + R"( {
  mode enforce;
  states { start, at_open, at_read, at_ioctl }
  initial start;
  flows {
    start -> at_open on sys_open;
    at_open -> at_read on sys_read;
    at_read -> at_read on sys_read;
    at_open -> at_ioctl on sys_ioctl;
    * -> start on sys_close;
    * -> * on sys_stat;
    * -> * on sys_fstat;
    * -> * on sys_getpid;
    * -> * on sys_nop;
  }
  situation driving {
    deny sys_ioctl;
  }
}
)";
}

IviSystem::IviSystem(Options options) {
  kernel_ = std::make_unique<kernel::Kernel>();

  // CONFIG_LSM ordering: SACK first where present (whitelist stacking).
  switch (options.mac) {
    case MacConfig::none:
      break;
    case MacConfig::apparmor_only:
      apparmor_ = static_cast<apparmor::AppArmorModule*>(
          kernel_->add_lsm(std::make_unique<apparmor::AppArmorModule>()));
      break;
    case MacConfig::independent_sack: {
      auto sack = std::make_unique<core::SackModule>(
          core::SackMode::independent);
      sack_ = static_cast<core::SackModule*>(kernel_->add_lsm(std::move(sack)));
      break;
    }
    case MacConfig::sack_enhanced_apparmor: {
      auto sack = std::make_unique<core::SackModule>(
          core::SackMode::apparmor_enhanced);
      sack_ = static_cast<core::SackModule*>(kernel_->add_lsm(std::move(sack)));
      apparmor_ = static_cast<apparmor::AppArmorModule*>(
          kernel_->add_lsm(std::make_unique<apparmor::AppArmorModule>()));
      sack_->attach_apparmor(apparmor_);
      break;
    }
    case MacConfig::stacked_independent: {
      auto sack = std::make_unique<core::SackModule>(
          core::SackMode::independent);
      sack_ = static_cast<core::SackModule*>(kernel_->add_lsm(std::move(sack)));
      apparmor_ = static_cast<apparmor::AppArmorModule*>(
          kernel_->add_lsm(std::make_unique<apparmor::AppArmorModule>()));
      sack_->attach_apparmor(apparmor_);
      break;
    }
  }

  if (options.enable_sfi) {
    sfi_ = static_cast<sfi::SfiModule*>(
        kernel_->add_lsm(std::make_unique<sfi::SfiModule>()));
    // SSM -> SFI situation fan-out: overlays key off SACK's current state.
    // Wired before the policy loads so the initial state propagates too.
    if (sack_) {
      auto* sfi = sfi_;
      sack_->set_transition_listener(
          [sfi](std::string_view state) { sfi->set_situation(state); });
    }
  }

  hardware_ = std::make_unique<VehicleHardware>(*kernel_);
  can_bus_ = std::make_unique<CanBus>();
  can_device_ = std::make_unique<CanDevice>(can_bus_.get());
  body_ecu_ = std::make_unique<BodyControlEcu>(can_bus_.get(),
                                               hardware_.get());
  (void)kernel_->register_chardev("/dev/can0", can_device_.get(), 0660);
  populate_filesystem();

  if (options.load_default_policies) {
    if (apparmor_) {
      auto rc = apparmor_->load_policy_text(default_apparmor_profiles_text());
      if (!rc.ok()) log_error("ivi: default AppArmor profiles failed to load");
    }
    if (sack_) {
      bool profile_subjects = sack_->mode() == core::SackMode::apparmor_enhanced;
      auto rc = sack_->load_policy_text(
          default_sack_policy_text(profile_subjects));
      if (!rc.ok()) log_error("ivi: default SACK policy failed to load");
    }
    if (sfi_) {
      auto rc = sfi_->load_policy_text(default_sfi_profiles_text());
      if (!rc.ok()) log_error("ivi: default SFI profiles failed to load");
    }
  }

  spawn_apps();

  sds_ = std::make_unique<sds::SituationDetectionService>(
      kernel::Process(*kernel_, *sds_task_));
  if (options.start_sds) sds_->add_default_detectors();
}

IviSystem::~IviSystem() = default;

void IviSystem::populate_filesystem() {
  kernel::Process admin(*kernel_, kernel_->init_task());
  auto& vfs = kernel_->vfs();
  vfs.mkdir_p("/var/media");
  vfs.mkdir_p("/var/ota");
  vfs.mkdir_p("/etc/vehicle");

  // Binaries (content only matters for exec checksum cost).
  (void)admin.write_file(RescueDaemon::kExePath, "\x7f" "ELF rescue_daemon");
  (void)admin.write_file(MediaApp::kExePath, "\x7f" "ELF media_app");
  (void)admin.write_file(KoffeeInjector::kExePath, "\x7f" "ELF ota_helper");
  (void)admin.write_file("/usr/bin/sds", "\x7f" "ELF sds");
  for (auto* bin : {"/usr/bin/rescue_daemon", "/usr/bin/media_app",
                    "/usr/bin/ota_helper", "/usr/bin/sds"}) {
    (void)kernel_->sys_chmod(kernel_->init_task(), bin, 0755);
  }

  // Data files.
  (void)admin.write_file(kMediaTrack, std::string(4096, 'A'));
  (void)admin.write_file(kSensitiveFile, "WVWZZZ1JZXW000001\n");
  (void)kernel_->sys_chmod(kernel_->init_task(), kSensitiveFile, 0600);
}

void IviSystem::spawn_apps() {
  // IVI services commonly run as root — which is exactly why DAC alone is
  // not enough and MAC must carry the policy.
  rescue_task_ = &kernel_->spawn_task("rescue_daemon", Cred::root(),
                                      std::string(RescueDaemon::kExePath));
  media_task_ = &kernel_->spawn_task("media_app", Cred::root(),
                                     std::string(MediaApp::kExePath));
  attacker_task_ = &kernel_->spawn_task("ota_helper", Cred::root(),
                                        std::string(KoffeeInjector::kExePath));
  sds_task_ = &kernel_->spawn_task("sds", Cred::root(), "/usr/bin/sds");

  rescue_ = std::make_unique<RescueDaemon>(
      kernel::Process(*kernel_, *rescue_task_));
  media_ = std::make_unique<MediaApp>(kernel::Process(*kernel_, *media_task_));
  attacker_ = std::make_unique<KoffeeInjector>(
      kernel::Process(*kernel_, *attacker_task_));
}

kernel::Process IviSystem::admin_process() {
  return {*kernel_, kernel_->init_task()};
}

std::string IviSystem::situation() const {
  return sack_ ? sack_->current_state_name() : std::string{};
}

}  // namespace sack::ivi
