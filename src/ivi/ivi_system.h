// IviSystem: a complete simulated in-vehicle infotainment stack.
//
// Wires together the simulated kernel, a chosen MAC configuration, the
// vehicle hardware devices, the standard IVI filesystem layout, the
// user-space apps (rescue daemon, media app, KOFFEE-style attacker) and the
// SDS. This is the environment the paper's case studies (§IV-C) and
// compatibility evaluation (§IV-D) run in.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "apparmor/apparmor.h"
#include "core/sack_module.h"
#include "ivi/apps.h"
#include "ivi/can_bus.h"
#include "ivi/vehicle_hw.h"
#include "kernel/kernel.h"
#include "kernel/process.h"
#include "sds/sds.h"
#include "sfi/module.h"

namespace sack::ivi {

// The MAC stack to boot with, i.e. the CONFIG_LSM line.
enum class MacConfig : std::uint8_t {
  none,                     // DAC only
  apparmor_only,            // the paper's baseline
  independent_sack,         // CONFIG_LSM="sack"
  sack_enhanced_apparmor,   // CONFIG_LSM="sack,apparmor", SACK patches AppArmor
  stacked_independent,      // CONFIG_LSM="sack,apparmor", both enforce (E7)
};

std::string_view mac_config_name(MacConfig config);

// Canonical policy texts for the default CAV scenario (Fig 2's four states
// plus the case-study permissions). `profile_subjects` selects '@profile'
// subjects (enhanced mode) instead of executable-path subjects.
std::string default_sack_policy_text(bool profile_subjects);
std::string default_apparmor_profiles_text();
// The learned media_app flow profile (one ioctl or one read-loop per open),
// i.e. what `sack-sfi record` distills from the app's real workloads.
std::string default_sfi_profiles_text();

class IviSystem {
 public:
  struct Options {
    MacConfig mac = MacConfig::independent_sack;
    bool load_default_policies = true;
    bool start_sds = true;
    // Stack the syscall-flow-integrity module behind the MAC modules
    // (CONFIG_LSM="...,sfi") and wire SACK's situation transitions into its
    // overlays. Off by default: flow confinement is per-app opt-in.
    bool enable_sfi = false;
  };

  explicit IviSystem(Options options);
  IviSystem() : IviSystem(Options{}) {}
  ~IviSystem();

  kernel::Kernel& kernel() { return *kernel_; }
  VehicleHardware& hardware() { return *hardware_; }
  CanBus& can_bus() { return *can_bus_; }

  // Null unless the configuration includes the module.
  core::SackModule* sack() { return sack_; }
  apparmor::AppArmorModule* apparmor() { return apparmor_; }
  sfi::SfiModule* sfi() { return sfi_; }

  sds::SituationDetectionService& sds() { return *sds_; }
  RescueDaemon& rescue() { return *rescue_; }
  MediaApp& media() { return *media_; }
  KoffeeInjector& attacker() { return *attacker_; }

  // Process handles for ad-hoc actions in tests/examples.
  kernel::Process admin_process();     // root shell
  kernel::Process rescue_process() { return {*kernel_, *rescue_task_}; }
  kernel::Process media_process() { return {*kernel_, *media_task_}; }
  kernel::Process attacker_process() { return {*kernel_, *attacker_task_}; }

  // Current situation state as SACK reports it ("" without SACK).
  std::string situation() const;

  static constexpr std::string_view kMediaTrack = "/var/media/track01.pcm";
  static constexpr std::string_view kSensitiveFile = "/etc/vehicle/vin";

 private:
  void populate_filesystem();
  void spawn_apps();

  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<VehicleHardware> hardware_;
  std::unique_ptr<CanBus> can_bus_;
  std::unique_ptr<CanDevice> can_device_;
  std::unique_ptr<BodyControlEcu> body_ecu_;
  core::SackModule* sack_ = nullptr;
  apparmor::AppArmorModule* apparmor_ = nullptr;
  sfi::SfiModule* sfi_ = nullptr;

  kernel::Task* rescue_task_ = nullptr;
  kernel::Task* media_task_ = nullptr;
  kernel::Task* attacker_task_ = nullptr;
  kernel::Task* sds_task_ = nullptr;

  std::unique_ptr<RescueDaemon> rescue_;
  std::unique_ptr<MediaApp> media_;
  std::unique_ptr<KoffeeInjector> attacker_;
  std::unique_ptr<sds::SituationDetectionService> sds_;
};

}  // namespace sack::ivi
