#include "ivi/apps.h"

#include <algorithm>

namespace sack::ivi {

using sack::Fd;
using kernel::OpenFlags;

bool AttemptLog::all_ok() const {
  return std::all_of(attempts.begin(), attempts.end(),
                     [](const Attempt& a) { return a.result == Errno::ok; });
}

bool AttemptLog::all_denied() const {
  return !attempts.empty() &&
         std::all_of(attempts.begin(), attempts.end(), [](const Attempt& a) {
           return a.result != Errno::ok;
         });
}

std::size_t AttemptLog::count(Errno e) const {
  return static_cast<std::size_t>(
      std::count_if(attempts.begin(), attempts.end(),
                    [e](const Attempt& a) { return a.result == e; }));
}

// --- RescueDaemon ---

Result<void> RescueDaemon::door_ioctl(std::uint32_t cmd, long arg,
                                      AttemptLog& log,
                                      std::string_view what) {
  auto record = [&](Errno e) {
    log.attempts.push_back({std::string(what), e});
  };
  auto fd = process_.open(VehicleHardware::kDoorPath, OpenFlags::write);
  if (!fd.ok()) {
    record(fd.error());
    return fd.error();
  }
  auto rc = process_.ioctl(*fd, cmd, arg);
  (void)process_.close(*fd);
  record(rc.ok() ? Errno::ok : rc.error());
  return rc.ok() ? Result<void>() : Result<void>(rc.error());
}

Result<void> RescueDaemon::window_set(long arg, AttemptLog& log,
                                      std::string_view what) {
  auto record = [&](Errno e) {
    log.attempts.push_back({std::string(what), e});
  };
  auto fd = process_.open(VehicleHardware::kWindowPath, OpenFlags::write);
  if (!fd.ok()) {
    record(fd.error());
    return fd.error();
  }
  auto rc = process_.ioctl(*fd, VEH_WINDOW_SET, arg);
  (void)process_.close(*fd);
  record(rc.ok() ? Errno::ok : rc.error());
  return rc.ok() ? Result<void>() : Result<void>(rc.error());
}

AttemptLog RescueDaemon::respond_to_emergency() {
  AttemptLog log;
  (void)door_ioctl(VEH_DOOR_UNLOCK, kAllDoors, log, "unlock all doors");
  (void)window_set((0xffL << 8) | 100, log, "open all windows");
  return log;
}

AttemptLog RescueDaemon::secure_vehicle() {
  AttemptLog log;
  (void)door_ioctl(VEH_DOOR_LOCK, kAllDoors, log, "lock all doors");
  (void)window_set((0xffL << 8) | 0, log, "close all windows");
  return log;
}

// --- MediaApp ---

Result<std::string> MediaApp::play_track(std::string_view path) {
  return process_.read_file(path);
}

Result<void> MediaApp::set_volume(long volume) {
  SACK_ASSIGN_OR_RETURN(
      Fd fd, process_.open(VehicleHardware::kAudioPath, OpenFlags::write));
  auto rc = process_.ioctl(fd, VEH_AUDIO_SET_VOLUME, volume);
  (void)process_.close(fd);
  if (!rc.ok()) return rc.error();
  return {};
}

// --- KoffeeInjector ---

AttemptLog KoffeeInjector::inject_vehicle_control() {
  AttemptLog log;
  auto attempt_ioctl = [&](std::string_view dev, std::uint32_t cmd, long arg,
                           std::string_view what) {
    auto fd = process_.open(dev, OpenFlags::write);
    if (!fd.ok()) {
      log.attempts.push_back({std::string(what), fd.error()});
      return;
    }
    auto rc = process_.ioctl(*fd, cmd, arg);
    (void)process_.close(*fd);
    log.attempts.push_back(
        {std::string(what), rc.ok() ? Errno::ok : rc.error()});
  };
  attempt_ioctl(VehicleHardware::kDoorPath, VEH_DOOR_UNLOCK, kAllDoors,
                "inject: unlock doors");
  attempt_ioctl(VehicleHardware::kWindowPath, VEH_WINDOW_SET,
                (0xffL << 8) | 100, "inject: open windows");
  attempt_ioctl(VehicleHardware::kAudioPath, VEH_AUDIO_SET_VOLUME, kMaxVolume,
                "inject: max volume");
  return log;
}

Result<void> KoffeeInjector::max_volume() {
  SACK_ASSIGN_OR_RETURN(
      Fd fd, process_.open(VehicleHardware::kAudioPath, OpenFlags::write));
  auto rc = process_.ioctl(fd, VEH_AUDIO_SET_VOLUME, kMaxVolume);
  (void)process_.close(fd);
  if (!rc.ok()) return rc.error();
  return {};
}

Result<std::string> KoffeeInjector::read_sensitive(std::string_view path) {
  return process_.read_file(path);
}

Result<void> KoffeeInjector::inject_can_frames() {
  SACK_ASSIGN_OR_RETURN(Fd fd, process_.open("/dev/can0", OpenFlags::write));
  // unlock all doors + open all windows + max volume, candump syntax.
  auto rc = process_.write(fd,
                           "2a1#02ff\n"   // DOOR_CONTROL: unlock, all
                           "2a2#ff64\n"   // WINDOW_CONTROL: all, 100%
                           "2a3#28\n");   // AUDIO_CONTROL: volume 40
  (void)process_.close(fd);
  if (!rc.ok()) return rc.error();
  return {};
}

}  // namespace sack::ivi
