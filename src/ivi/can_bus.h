// A miniature in-vehicle CAN bus.
//
// KOFFEE (CVE-2020-8539) works by injecting CAN frames from the compromised
// IVI into the vehicle network; modelling the bus makes that attack path
// concrete: /dev/can0 is a char device whose write(2) sends a frame and
// whose read(2) pops received frames. ECUs (here: the body-control model
// that drives doors/windows/audio) subscribe to frame IDs. MAC mediation of
// the device node is exactly what stands between a compromised root process
// and the physical vehicle.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "ivi/vehicle_hw.h"
#include "kernel/device.h"
#include "kernel/kernel.h"

namespace sack::ivi {

struct CanFrame {
  std::uint32_t id = 0;
  std::uint8_t dlc = 0;         // payload length 0..8
  std::uint8_t data[8] = {};

  // Wire format used by the /dev/can0 read/write interface:
  // "ID#HEXBYTES\n", e.g. "2a1#04ff" (candump/cansend style).
  std::string to_text() const;
  static Result<CanFrame> parse(std::string_view text);
};

// Well-known frame IDs of the simulated body-control ECU.
inline constexpr std::uint32_t CAN_ID_DOOR_CONTROL = 0x2a1;
inline constexpr std::uint32_t CAN_ID_WINDOW_CONTROL = 0x2a2;
inline constexpr std::uint32_t CAN_ID_AUDIO_CONTROL = 0x2a3;
inline constexpr std::uint32_t CAN_ID_SPEED_BROADCAST = 0x1f0;

// Door-control payload byte 0: command; byte 1: door index (0xff = all).
inline constexpr std::uint8_t CAN_DOOR_CMD_LOCK = 0x01;
inline constexpr std::uint8_t CAN_DOOR_CMD_UNLOCK = 0x02;

class CanBus {
 public:
  using Listener = std::function<void(const CanFrame&)>;

  // Delivers synchronously to every listener and appends to the rx queues
  // of the open device readers.
  void send(const CanFrame& frame);

  void subscribe(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  std::uint64_t frames_sent() const { return frames_sent_; }
  const std::vector<CanFrame>& history() const { return history_; }

 private:
  friend class CanDevice;
  std::vector<Listener> listeners_;
  std::vector<CanFrame> history_;
  std::uint64_t frames_sent_ = 0;
};

// The /dev/can0 char device: write = send frame(s), read = pop from a
// shared receive log (every sent frame is visible, like a promiscuous
// SocketCAN socket).
class CanDevice final : public kernel::DeviceOps {
 public:
  explicit CanDevice(CanBus* bus) : bus_(bus) {}

  std::string_view device_name() const override { return "can0"; }
  Result<std::size_t> write(kernel::Task& task, kernel::File& file,
                            std::string_view data) override;
  Result<std::size_t> read(kernel::Task& task, kernel::File& file,
                           std::string& out, std::size_t n) override;

 private:
  CanBus* bus_;
};

// The body-control ECU: listens for control frames and actuates the
// vehicle hardware model, exactly as if the commands had arrived from a
// legitimate controller.
class BodyControlEcu {
 public:
  BodyControlEcu(CanBus* bus, VehicleHardware* hardware);

  std::uint64_t frames_handled() const { return frames_handled_; }

 private:
  void on_frame(const CanFrame& frame);
  VehicleHardware* hardware_;
  std::uint64_t frames_handled_ = 0;
};

}  // namespace sack::ivi
