#include "ivi/can_bus.h"

#include <cstdio>

#include "util/strings.h"

namespace sack::ivi {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string CanFrame::to_text() const {
  char buf[40];
  int off = std::snprintf(buf, sizeof buf, "%x#", id);
  for (std::uint8_t i = 0; i < dlc && i < 8; ++i)
    off += std::snprintf(buf + off, sizeof buf - static_cast<std::size_t>(off),
                         "%02x", data[i]);
  buf[off++] = '\n';
  return std::string(buf, static_cast<std::size_t>(off));
}

Result<CanFrame> CanFrame::parse(std::string_view text) {
  auto line = trim(text);
  auto hash = line.find('#');
  if (hash == std::string_view::npos || hash == 0) return Errno::einval;

  CanFrame frame;
  std::uint32_t id = 0;
  for (char c : line.substr(0, hash)) {
    int d = hex_digit(c);
    if (d < 0) return Errno::einval;
    id = id * 16 + static_cast<std::uint32_t>(d);
    if (id > 0x1fffffff) return Errno::einval;  // extended-ID limit
  }
  frame.id = id;

  auto payload = line.substr(hash + 1);
  if (payload.size() % 2 != 0 || payload.size() > 16) return Errno::einval;
  frame.dlc = static_cast<std::uint8_t>(payload.size() / 2);
  for (std::size_t i = 0; i < payload.size(); i += 2) {
    int hi = hex_digit(payload[i]);
    int lo = hex_digit(payload[i + 1]);
    if (hi < 0 || lo < 0) return Errno::einval;
    frame.data[i / 2] = static_cast<std::uint8_t>(hi * 16 + lo);
  }
  return frame;
}

void CanBus::send(const CanFrame& frame) {
  ++frames_sent_;
  history_.push_back(frame);
  for (const auto& listener : listeners_) listener(frame);
}

Result<std::size_t> CanDevice::write(kernel::Task&, kernel::File&,
                                     std::string_view data) {
  // One frame per line; a malformed line poisons the whole write (EINVAL)
  // without sending anything after it — partial injection is worse than
  // none.
  std::vector<CanFrame> frames;
  for (auto line : split(data, '\n')) {
    if (trim(line).empty()) continue;
    SACK_ASSIGN_OR_RETURN(CanFrame frame, CanFrame::parse(line));
    frames.push_back(frame);
  }
  for (const auto& frame : frames) bus_->send(frame);
  return data.size();
}

Result<std::size_t> CanDevice::read(kernel::Task&, kernel::File& file,
                                    std::string& out, std::size_t n) {
  // The file offset indexes into the bus history (a promiscuous capture).
  out.clear();
  while (file.offset < bus_->history_.size() && out.size() < n) {
    out += bus_->history_[file.offset].to_text();
    ++file.offset;
  }
  return out.size();
}

BodyControlEcu::BodyControlEcu(CanBus* bus, VehicleHardware* hardware)
    : hardware_(hardware) {
  bus->subscribe([this](const CanFrame& frame) { on_frame(frame); });
}

void BodyControlEcu::on_frame(const CanFrame& frame) {
  auto& state = hardware_->state();
  switch (frame.id) {
    case CAN_ID_DOOR_CONTROL: {
      if (frame.dlc < 2) return;
      ++frames_handled_;
      bool lock = frame.data[0] == CAN_DOOR_CMD_LOCK;
      if (!lock && frame.data[0] != CAN_DOOR_CMD_UNLOCK) return;
      if (frame.data[1] == 0xff) {
        state.door_locked.fill(lock);
      } else if (frame.data[1] < kDoorCount) {
        state.door_locked[frame.data[1]] = lock;
      }
      break;
    }
    case CAN_ID_WINDOW_CONTROL: {
      if (frame.dlc < 2) return;
      ++frames_handled_;
      std::uint8_t which = frame.data[0];
      std::uint8_t pct = std::min<std::uint8_t>(frame.data[1], 100);
      if (which == 0xff) {
        state.window_open_pct.fill(pct);
      } else if (which < kDoorCount) {
        state.window_open_pct[which] = pct;
      }
      break;
    }
    case CAN_ID_AUDIO_CONTROL: {
      if (frame.dlc < 1) return;
      ++frames_handled_;
      state.audio_volume = std::min<long>(frame.data[0], kMaxVolume);
      break;
    }
    default:
      break;  // not ours (speed broadcasts etc.)
  }
}

}  // namespace sack::ivi
