// Compiled SFI automata: dense O(1) transition tables, published RCU-style.
//
// The compiler lowers an SfiPolicy into an immutable ProgramSet:
//
//   Program     one profile's automaton — a dense state x syscall table of
//               next-state indices (kDeny marks inadmissible pairs), plus
//               per-situation deny bitmasks over the syscall axis;
//   ProgramSet  every compiled Program keyed by exe path, plus an interned
//               situation-name table shared by all programs in the set.
//
// The set is immutable after compile; SfiModule publishes it through an
// RcuPtr and activation is one pointer swap (the DfaRuleSet pattern). The
// enforcement hot path is: one array load for the transition, one bit test
// for the active situation overlay — no hashing, no strings, no locks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sfi/profile.h"
#include "util/result.h"

namespace sack::sfi {

// Situation token meaning "no overlay active" (boot, or an SSM state no
// profile mentions). Tokens index ProgramSet::situations().
inline constexpr std::uint32_t kNoSituation = 0xffffffffu;

class Program {
 public:
  static constexpr std::uint16_t kDeny = 0xffff;

  // O(1): next automaton state, or kDeny.
  std::uint16_t next(std::uint16_t state, std::uint16_t syscall_id) const {
    return table_[static_cast<std::size_t>(state) * kSyscallNames.size() +
                  syscall_id];
  }

  // O(1): true when the given set-level situation token denies the syscall
  // in this profile. kNoSituation (and tokens with no overlay here) deny
  // nothing.
  bool situation_denies(std::uint32_t token, std::uint16_t syscall_id) const {
    if (token >= overlay_masks_.size()) return false;
    const auto& mask = overlay_masks_[token];
    if (mask.empty()) return false;
    return (mask[syscall_id >> 6] >> (syscall_id & 63)) & 1;
  }

  std::uint16_t initial_state() const { return initial_; }
  std::uint16_t state_count() const {
    return static_cast<std::uint16_t>(state_names_.size());
  }
  const std::string& state_name(std::uint16_t state) const {
    return state_names_[state];
  }
  const std::string& exe() const { return exe_; }
  bool audit_only() const { return audit_only_; }

 private:
  friend Result<std::shared_ptr<const class ProgramSet>> compile_sfi_policy(
      const SfiPolicy& policy, std::uint64_t generation);

  std::string exe_;
  bool audit_only_ = false;
  std::uint16_t initial_ = 0;
  std::vector<std::string> state_names_;
  // state * |kSyscallNames| + syscall -> next state (kDeny = inadmissible)
  std::vector<std::uint16_t> table_;
  // token -> bitmask over syscall ids (empty = no overlay for that token)
  std::vector<std::vector<std::uint64_t>> overlay_masks_;
};

class ProgramSet {
 public:
  // Raw-pointer lookup for the hot path: the returned Program lives exactly
  // as long as the set, which the caller holds a shared_ptr to.
  const Program* find(std::string_view exe) const {
    auto it = by_exe_.find(std::string(exe));
    return it == by_exe_.end() ? nullptr : it->second;
  }

  // Interned SSM-state name -> token, kNoSituation when no profile in the
  // set overlays that situation. Cold path (policy load, SSM transition).
  std::uint32_t situation_token(std::string_view name) const {
    auto it = situation_tokens_.find(std::string(name));
    return it == situation_tokens_.end() ? kNoSituation : it->second;
  }

  const std::vector<std::string>& situations() const { return situations_; }
  std::vector<std::string> exes() const;
  std::size_t size() const { return programs_.size(); }
  std::uint64_t generation() const { return generation_; }

 private:
  friend Result<std::shared_ptr<const ProgramSet>> compile_sfi_policy(
      const SfiPolicy& policy, std::uint64_t generation);

  std::uint64_t generation_ = 0;
  std::vector<std::shared_ptr<const Program>> programs_;
  std::unordered_map<std::string, const Program*> by_exe_;
  std::vector<std::string> situations_;
  std::unordered_map<std::string, std::uint32_t> situation_tokens_;
};

// Lowers a checked policy. Fails only on resource-class problems (the
// sfi.profile.load fault site injects here); structural errors are the
// parser/checker's job and must be caught before compile.
Result<std::shared_ptr<const ProgramSet>> compile_sfi_policy(
    const SfiPolicy& policy, std::uint64_t generation);

// Single-sequence simulator used by `sack-sfi simulate`, replay
// verification, and tests: walks `syscalls` from the initial state under an
// optional situation, recording each step. Returns the index of the first
// denied step, or -1 when the whole sequence is admissible.
struct SimStep {
  std::string syscall;
  std::string from_state;
  std::string to_state;  // empty on deny
  bool denied = false;
  bool overlay_deny = false;
};
int simulate_program(const Program& program, std::uint32_t situation_token,
                     const std::vector<std::string>& syscalls,
                     std::vector<SimStep>* steps = nullptr);

}  // namespace sack::sfi
