// SfiRecorder: learning mode for syscall-flow profiles.
//
// An observation-only SecurityModule that rides the same per-syscall stream
// the enforcement module does (the task_syscall hook dispatched at every
// syscall entry, the stream the mediation witness brackets with
// syscall_enter/exit): it never denies, it records. Stack it, run the real
// IVI workloads, then:
//
//   distill()  lowers the recording into a minimal digram automaton per
//              executable — state = "the last syscall issued" (SFIP's
//              coarse-grained model), one transition per observed
//              consecutive syscall pair, plus deny-only situation overlays
//              for syscalls the app never issued while a given SSM
//              situation held;
//   verify()   replays every recorded sequence (with its per-call situation
//              tags) against the compiled candidate policy. Only a
//              replay-clean policy should be flipped to enforce mode.
//
// Overlays are tighten-only by construction (deny = observed-overall minus
// observed-in-situation), so verify() passing is not luck: a recorded call
// can never be in its own situation's deny set.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/lsm/module.h"
#include "sfi/profile.h"
#include "util/thread_annotations.h"

namespace sack::sfi {

class SfiRecorder final : public kernel::SecurityModule {
 public:
  static constexpr std::string_view kName = "sfi_record";

  std::string_view name() const override { return kName; }

  // One task-epoch of observation: the syscalls a pid issued while running
  // one executable image (exec starts a new sequence).
  struct Sequence {
    std::string exe;
    std::vector<std::pair<std::string, std::string>> calls;  // (syscall, situation)
  };

  // --- observation hooks (never deny) ---
  Errno task_syscall(kernel::Task& task, std::string_view syscall) override;
  void bprm_committed_creds(kernel::Task& task,
                            const std::string& path) override;
  void task_free(kernel::Task& task) override;

  // SSM wiring, same shape as SfiModule::set_situation.
  void set_situation(std::string_view name);

  // --- recording access ---
  std::vector<Sequence> sequences() const;  // finished + in-flight
  std::uint64_t observed_calls() const;
  void clear();

  // --- learn -> enforce ---
  SfiPolicy distill() const;

  struct ReplayReport {
    bool clean = true;
    std::string detail;  // first violation, human-readable
  };
  ReplayReport verify(const SfiPolicy& policy) const;

 private:
  mutable util::Mutex mu_;
  std::map<std::int64_t, Sequence> active_ SACK_GUARDED_BY(mu_);
  std::vector<Sequence> finished_ SACK_GUARDED_BY(mu_);
  std::string situation_ SACK_GUARDED_BY(mu_);
  std::uint64_t observed_ SACK_GUARDED_BY(mu_) = 0;
};

}  // namespace sack::sfi
