#include "sfi/automaton.h"

#include <algorithm>
#include <map>

#include "util/fault.h"

namespace sack::sfi {

namespace {

constexpr std::size_t kNsys = kSyscallNames.size();

// Resolution specificity for one (state, syscall) cell; higher wins.
enum Spec : int {
  spec_none = 0,
  spec_any_any,      // * -> T on *
  spec_state_any,    // S -> T on *
  spec_any_named,    // * -> T on sys_x
  spec_state_named,  // S -> T on sys_x
  spec_deny,         // deny S on sys_x (or deny * on sys_x)
};

}  // namespace

std::vector<std::string> ProgramSet::exes() const {
  std::vector<std::string> out;
  out.reserve(programs_.size());
  for (const auto& p : programs_) out.push_back(p->exe());
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::shared_ptr<const ProgramSet>> compile_sfi_policy(
    const SfiPolicy& policy, std::uint64_t generation) {
  auto set = std::make_shared<ProgramSet>();
  set->generation_ = generation;

  // Intern every situation name across the policy so one module-level token
  // indexes all programs' overlay tables.
  for (const auto& p : policy.profiles) {
    for (const auto& o : p.overlays) {
      if (set->situation_tokens_.emplace(o.situation,
                                         static_cast<std::uint32_t>(
                                             set->situations_.size()))
              .second)
        set->situations_.push_back(o.situation);
    }
  }

  for (const auto& prof : policy.profiles) {
    auto program = std::make_shared<Program>();
    program->exe_ = prof.exe;
    program->audit_only_ = prof.audit_only;
    program->state_names_ = prof.states;
    std::map<std::string, std::uint16_t> state_id;
    for (std::size_t i = 0; i < prof.states.size(); ++i)
      state_id[prof.states[i]] = static_cast<std::uint16_t>(i);
    program->initial_ = state_id.at(prof.initial);

    const std::size_t n_states = prof.states.size();
    program->table_.assign(n_states * kNsys, Program::kDeny);
    std::vector<int> spec(n_states * kNsys, spec_none);

    auto apply = [&](std::uint16_t s, std::uint16_t sc, std::uint16_t target,
                     int specificity) {
      std::size_t cell = static_cast<std::size_t>(s) * kNsys + sc;
      if (specificity < spec[cell]) return;
      spec[cell] = specificity;
      program->table_[cell] = target;
    };

    for (const auto& rule : prof.flows) {
      std::vector<std::uint16_t> froms;
      if (rule.from == kWildcard) {
        for (std::size_t i = 0; i < n_states; ++i)
          froms.push_back(static_cast<std::uint16_t>(i));
      } else {
        froms.push_back(state_id.at(rule.from));
      }
      for (std::uint16_t s : froms) {
        // '*' target = stay in the source state (self-loop).
        std::uint16_t target = Program::kDeny;
        if (!rule.deny)
          target = rule.to == kWildcard ? s : state_id.at(rule.to);
        if (rule.any_syscall) {
          int sp = rule.from == kWildcard ? spec_any_any : spec_state_any;
          for (std::size_t sc = 0; sc < kNsys; ++sc)
            apply(s, static_cast<std::uint16_t>(sc), target, sp);
        } else {
          int sp = rule.deny ? spec_deny
                   : rule.from == kWildcard ? spec_any_named
                                            : spec_state_named;
          for (const auto& name : rule.syscalls)
            apply(s, static_cast<std::uint16_t>(syscall_index(name)), target,
                  sp);
        }
      }
    }

    program->overlay_masks_.resize(set->situations_.size());
    for (const auto& o : prof.overlays) {
      auto& mask = program->overlay_masks_[set->situation_tokens_.at(o.situation)];
      mask.assign((kNsys + 63) / 64, 0);
      for (const auto& name : o.deny) {
        int sc = syscall_index(name);
        mask[sc >> 6] |= 1ull << (sc & 63);
      }
    }

    set->programs_.push_back(program);
    set->by_exe_[program->exe_] = program.get();
  }

  // Fault site: a compile that fails after validation but before
  // publication — the caller must keep the previous ProgramSet live.
  if (auto injected =
          util::FaultInjector::instance().fail_errno("sfi.profile.load"))
    return *injected;

  return std::shared_ptr<const ProgramSet>(std::move(set));
}

int simulate_program(const Program& program, std::uint32_t situation_token,
                     const std::vector<std::string>& syscalls,
                     std::vector<SimStep>* steps) {
  std::uint16_t state = program.initial_state();
  for (std::size_t i = 0; i < syscalls.size(); ++i) {
    SimStep step;
    step.syscall = syscalls[i];
    step.from_state = program.state_name(state);
    int sc = syscall_index(syscalls[i]);
    std::uint16_t next = sc < 0 ? Program::kDeny
                                : program.next(state, static_cast<std::uint16_t>(sc));
    bool overlay = false;
    if (next != Program::kDeny && sc >= 0 &&
        program.situation_denies(situation_token,
                                 static_cast<std::uint16_t>(sc))) {
      overlay = true;
      next = Program::kDeny;
    }
    if (next == Program::kDeny) {
      step.denied = true;
      step.overlay_deny = overlay;
      if (steps) steps->push_back(std::move(step));
      return static_cast<int>(i);
    }
    step.to_state = program.state_name(next);
    if (steps) steps->push_back(std::move(step));
    state = next;
  }
  return -1;
}

}  // namespace sack::sfi
