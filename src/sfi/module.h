// SfiModule: syscall-flow-integrity, the third stackable LSM.
//
// Stacked under SACK and AppArmor (first-deny-wins), SfiModule enforces
// per-application syscall-sequence automata: every syscall entry dispatches
// the task_syscall hook, the module advances the task's automaton one step,
// and a syscall with no admissible transition from the current state is
// denied with EACCES and an audited `sfi:flow_violation` record. This
// catches KOFFEE-style compromised apps that stay entirely within file and
// capability policy but execute syscalls in an order the real program never
// would (the SFIP threat model).
//
// State lives where the real LSM keeps it: a per-task security blob. fork
// inherits the parent's automaton position (the child continues the flow it
// was cloned into), exec re-attaches against the new image's profile at its
// initial state, exit tears the blob down. Tasks whose exe has no profile
// run unconfined (allow-all) — adoption mirrors AppArmor's.
//
// Profiles compile to immutable ProgramSets published through an RcuPtr:
// activation is one pointer swap, and a task that raced a swap simply
// re-attaches on its next syscall (detected by generation mismatch). The
// SSM feeds situation changes through set_situation(); the active situation
// is one interned token the hot path reads with a relaxed load.
//
// securityfs surface (under /sys/kernel/security/sfi/):
//   .load       write a .sfi policy text (CAP_MAC_ADMIN)
//   profiles    canonical dump of the loaded policy
//   mode        read/write "enforce" | "audit" (CAP_MAC_ADMIN to write)
//   status      sfi_* counters, generation, active situation
//   violations  ring of recent flow-violation records
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/kernel.h"
#include "kernel/lsm/module.h"
#include "sfi/automaton.h"
#include "sfi/profile.h"
#include "util/metrics.h"
#include "util/rcu_ptr.h"
#include "util/thread_annotations.h"

namespace sack::sfi {

enum class SfiMode : std::uint8_t { enforce, audit };

// Per-task automaton position. Only the thread driving the task touches it;
// cross-thread publication happens through the RcuPtr'd ProgramSet and the
// generation/situation atomics on the module.
struct SfiTaskBlob {
  std::shared_ptr<const ProgramSet> set;  // keeps `program` alive
  const Program* program = nullptr;       // null = unconfined
  std::uint64_t generation = 0;
  std::uint16_t state = 0;
};

class SfiModule final : public kernel::SecurityModule {
 public:
  static constexpr std::string_view kName = "sfi";

  SfiModule();
  ~SfiModule() override;

  std::string_view name() const override { return kName; }
  void initialize(kernel::Kernel& kernel) override;

  // --- policy management ---
  Result<void> load_policy_text(std::string_view text,
                                std::vector<ParseError>* errors = nullptr);
  std::shared_ptr<const ProgramSet> programs() const { return programs_.load(); }
  std::string profiles_dump() const;

  void set_mode(SfiMode mode) {
    mode_.store(static_cast<std::uint8_t>(mode), std::memory_order_relaxed);
  }
  SfiMode mode() const {
    return static_cast<SfiMode>(mode_.load(std::memory_order_relaxed));
  }

  // --- situation wiring (SackModule::set_transition_listener feeds this) ---
  void set_situation(std::string_view name);
  std::string current_situation() const;

  // --- sfi_* metrics ---
  std::uint64_t check_count() const { return checks_.value(); }
  std::uint64_t denial_count() const { return denials_.value(); }
  std::uint64_t audit_allow_count() const { return audit_allows_.value(); }
  std::uint64_t attach_count() const { return attaches_.value(); }
  std::uint64_t reset_count() const { return resets_.value(); }
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }
  std::vector<std::string> recent_violations() const;

  // --- LSM hooks ---
  Errno task_syscall(kernel::Task& task, std::string_view syscall) override;
  Errno task_alloc(kernel::Task& parent, kernel::Task& child) override;
  void bprm_committed_creds(kernel::Task& task,
                            const std::string& path) override;
  void task_free(kernel::Task& task) override;
  std::string getprocattr(const kernel::Task& task) override;

 private:
  // Cold paths, split out so task_syscall stays small.
  SfiTaskBlob* attach(kernel::Task& task);
  Errno deny(kernel::Task& task, std::string_view syscall,
             const SfiTaskBlob& blob, bool overlay_deny);

  static const std::string& blob_key();

  static constexpr std::uint64_t pack_situation(std::uint64_t gen,
                                                std::uint32_t token) {
    return (gen << 32) | token;
  }

  RcuPtr<const ProgramSet> programs_;
  std::atomic<std::uint64_t> generation_{0};
  // Situation overlay token packed with the low 32 bits of the generation
  // it was minted for: (gen32 << 32) | token. Tokens index the overlay
  // tables of one specific ProgramSet, so a reader must never pair a token
  // with a program from a different generation — it would consult an
  // arbitrary overlay row. Readers load with acquire and skip the overlay
  // when the packed generation does not match their blob's; writers (always
  // under mu_) store with release. Stressed by
  // SfiConcurrency.SituationTokenNeverPairsAcrossGenerations (TSan).
  std::atomic<std::uint64_t> situation_word_{kNoSituation};
  std::atomic<std::uint8_t> mode_{static_cast<std::uint8_t>(SfiMode::enforce)};

  mutable util::Mutex mu_;
  SfiPolicy policy_ SACK_GUARDED_BY(mu_);             // source, for dumps
  std::string current_situation_ SACK_GUARDED_BY(mu_);

  mutable util::Mutex viol_mu_;
  std::deque<std::string> violations_ SACK_GUARDED_BY(viol_mu_);

  util::Counter checks_;
  util::Counter denials_;
  util::Counter audit_allows_;
  util::Counter attaches_;
  util::Counter resets_;
  util::Counter situation_switches_;
  util::Counter loads_;

  class LoadFile;
  class ProfilesFile;
  class ModeFile;
  class StatusFile;
  class ViolationsFile;
  std::unique_ptr<LoadFile> load_file_;
  std::unique_ptr<ProfilesFile> profiles_file_;
  std::unique_ptr<ModeFile> mode_file_;
  std::unique_ptr<StatusFile> status_file_;
  std::unique_ptr<ViolationsFile> violations_file_;
  kernel::Kernel* kernel_ = nullptr;
};

}  // namespace sack::sfi
