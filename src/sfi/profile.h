// SFI profile model: per-application syscall-flow automata.
//
// A `.sfi` policy is a set of profiles, one per executable. Each profile is
// a deterministic automaton over *syscall names* (the SFIP coarse-grained
// model, arXiv:2202.13716): states, an initial state, and `flows` rules
// naming which syscall moves the task from one state to another. Anything
// not named is denied — the profile is a whitelist of admissible syscall
// sequences, exactly like the AppArmor profile is a whitelist of paths.
//
// Grammar (see docs/SFI.md for the full reference):
//
//   profile /usr/bin/media_app {
//     mode enforce;                    # or `mode audit` (log, don't deny)
//     states { start, at_open, at_read }
//     initial start;
//     flows {
//       start -> at_open on sys_open;
//       at_open -> at_read on sys_read, sys_fstat;
//       * -> start on sys_close;       # from any state
//       at_read -> * on sys_lseek;     # '*' target = stay put (self-loop)
//       start -> start on *;           # catch-all: any other syscall
//       deny start on sys_ioctl;       # overrides any wildcard above
//     }
//     situation driving {              # SSM overlay: tighten while driving
//       deny sys_ioctl, sys_unlink;
//     }
//   }
//
// Resolution order for (state, syscall), most specific wins:
//   explicit deny > explicit transition > `* ->` transition >
//   per-state catch-all (`on *`) > `* -> * on *` > default deny.
//
// Situation overlays are deny-only (an overlay can only tighten, never
// grant), so stacking under SACK stays monotone: whatever the SSM does, the
// automaton never admits a sequence the base profile rejects.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/tokenizer.h"

namespace sack::sfi {

// Every syscall entry the simulated kernel exposes, in dispatch-table order.
// The compiler indexes transition tables by position in this array, and the
// checker rejects profiles naming anything else (a typo in a whitelist
// silently denies, so it must be a load-time error).
inline constexpr std::array<std::string_view, 44> kSyscallNames = {
    "sys_open",    "sys_close",     "sys_read",      "sys_write",
    "sys_lseek",   "sys_stat",      "sys_fstat",     "sys_mkdir",
    "sys_rmdir",   "sys_unlink",    "sys_rename",    "sys_symlink",
    "sys_link",    "sys_readlink",  "sys_chmod",     "sys_chown",
    "sys_truncate","sys_ioctl",     "sys_getxattr",  "sys_setxattr",
    "sys_listxattr","sys_dup",      "sys_readdir",   "sys_chdir",
    "sys_mmap",    "sys_mmap_anon", "sys_munmap",    "sys_pipe",
    "sys_socket",  "sys_socketpair","sys_bind",      "sys_listen",
    "sys_connect", "sys_accept",    "sys_send",      "sys_recv",
    "sys_fork",    "sys_execve",    "sys_exit",      "sys_waitpid",
    "sys_getpid",  "sys_nop",       "sys_capset_drop","sys_kill",
};

// O(1) name -> index into kSyscallNames; -1 for unknown names.
int syscall_index(std::string_view name);

// The wildcard state / syscall marker in rules.
inline constexpr std::string_view kWildcard = "*";

struct FlowRule {
  std::string from;                   // state name or "*"
  std::string to;                     // state name or "*" (= stay); empty for deny rules
  std::vector<std::string> syscalls;  // empty when any_syscall
  bool any_syscall = false;           // `on *`
  bool deny = false;                  // `deny <state> on <syscalls>`
  int line = 0;
};

struct SituationOverlay {
  std::string situation;              // SSM state name this overlay keys off
  std::vector<std::string> deny;      // syscalls denied while the situation holds
  int line = 0;
};

struct SfiProfile {
  std::string exe;                    // attachment path (exact match)
  std::vector<std::string> states;
  std::string initial;
  bool audit_only = false;            // `mode audit`
  std::vector<FlowRule> flows;
  std::vector<SituationOverlay> overlays;
  int line = 0;
};

struct SfiPolicy {
  std::vector<SfiProfile> profiles;
};

struct SfiParseResult {
  SfiPolicy policy;
  std::vector<ParseError> errors;

  bool ok() const { return errors.empty(); }
};

// Parses + checks. Structural errors (unknown state, unknown syscall,
// nondeterministic transitions, missing initial, duplicate profile) are
// collected, not thrown; `policy` is only meaningful when ok().
SfiParseResult parse_sfi_policy(std::string_view text);

// Canonical renderer: parse(dump(parse(x))) == parse(x). Rules are emitted
// sorted (profiles by exe, flows by from/to/syscall) so the dump is a
// fingerprint of the policy, independent of source ordering.
std::string dump_sfi_policy(const SfiPolicy& policy);

}  // namespace sack::sfi
