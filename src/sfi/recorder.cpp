#include "sfi/recorder.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "kernel/task.h"
#include "sfi/automaton.h"

namespace sack::sfi {

using kernel::Task;

Errno SfiRecorder::task_syscall(Task& task, std::string_view syscall) {
  util::MutexLock lk(mu_);
  auto& seq = active_[task.pid().get()];
  if (seq.exe != task.exe_path()) {
    // First observation of this pid, or it exec'd into a new image since:
    // close the old epoch and open a fresh one.
    if (!seq.calls.empty()) finished_.push_back(std::move(seq));
    seq = Sequence{};
    seq.exe = task.exe_path();
  }
  seq.calls.emplace_back(std::string(syscall), situation_);
  ++observed_;
  return Errno::ok;
}

void SfiRecorder::bprm_committed_creds(Task& task, const std::string&) {
  util::MutexLock lk(mu_);
  auto it = active_.find(task.pid().get());
  if (it == active_.end()) return;
  if (!it->second.calls.empty()) finished_.push_back(std::move(it->second));
  active_.erase(it);
}

void SfiRecorder::task_free(Task& task) {
  util::MutexLock lk(mu_);
  auto it = active_.find(task.pid().get());
  if (it == active_.end()) return;
  if (!it->second.calls.empty()) finished_.push_back(std::move(it->second));
  active_.erase(it);
}

void SfiRecorder::set_situation(std::string_view name) {
  util::MutexLock lk(mu_);
  situation_.assign(name);
}

std::vector<SfiRecorder::Sequence> SfiRecorder::sequences() const {
  util::MutexLock lk(mu_);
  std::vector<Sequence> out = finished_;
  for (const auto& [pid, seq] : active_)
    if (!seq.calls.empty()) out.push_back(seq);
  return out;
}

std::uint64_t SfiRecorder::observed_calls() const {
  util::MutexLock lk(mu_);
  return observed_;
}

void SfiRecorder::clear() {
  util::MutexLock lk(mu_);
  active_.clear();
  finished_.clear();
  observed_ = 0;
}

namespace {
std::string digram_state(const std::string& syscall) {
  // "sys_open" -> "at_open": the state is "the last syscall issued".
  return "at_" + (syscall.rfind("sys_", 0) == 0 ? syscall.substr(4) : syscall);
}
}  // namespace

SfiPolicy SfiRecorder::distill() const {
  const auto seqs = sequences();

  struct PerExe {
    std::set<std::string> states{"start"};
    std::set<std::tuple<std::string, std::string, std::string>> edges;  // from,to,sc
    std::set<std::string> observed;                        // all syscalls
    std::map<std::string, std::set<std::string>> in_situation;  // situation -> syscalls
  };
  std::map<std::string, PerExe> per_exe;

  for (const auto& seq : seqs) {
    if (seq.exe.empty()) continue;
    auto& pe = per_exe[seq.exe];
    std::string state = "start";
    for (const auto& [sc, situation] : seq.calls) {
      const std::string to = digram_state(sc);
      pe.states.insert(to);
      pe.edges.emplace(state, to, sc);
      pe.observed.insert(sc);
      if (!situation.empty()) pe.in_situation[situation].insert(sc);
      state = to;
    }
  }

  SfiPolicy policy;
  for (const auto& [exe, pe] : per_exe) {
    SfiProfile prof;
    prof.exe = exe;
    prof.states.assign(pe.states.begin(), pe.states.end());
    prof.initial = "start";
    for (const auto& [from, to, sc] : pe.edges) {
      FlowRule rule;
      rule.from = from;
      rule.to = to;
      rule.syscalls = {sc};
      prof.flows.push_back(std::move(rule));
    }
    // Situation overlays, tighten-only: deny whatever the app does *somewhere*
    // but was never seen doing while this situation held. Syscalls the app
    // never does at all are already denied by the automaton itself.
    for (const auto& [situation, seen] : pe.in_situation) {
      SituationOverlay overlay;
      overlay.situation = situation;
      for (const auto& sc : pe.observed)
        if (!seen.count(sc)) overlay.deny.push_back(sc);
      if (!overlay.deny.empty()) prof.overlays.push_back(std::move(overlay));
    }
    policy.profiles.push_back(std::move(prof));
  }
  return policy;
}

SfiRecorder::ReplayReport SfiRecorder::verify(const SfiPolicy& policy) const {
  ReplayReport report;
  auto compiled = compile_sfi_policy(policy, /*generation=*/1);
  if (!compiled.ok()) {
    report.clean = false;
    report.detail = "candidate policy failed to compile";
    return report;
  }
  const auto& set = *compiled;

  const auto seqs = sequences();
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    const auto& seq = seqs[i];
    if (seq.exe.empty()) continue;
    const Program* program = set->find(seq.exe);
    if (!program) {
      report.clean = false;
      report.detail = seq.exe + ": recorded but has no profile";
      return report;
    }
    std::uint16_t state = program->initial_state();
    for (std::size_t k = 0; k < seq.calls.size(); ++k) {
      const auto& [sc, situation] = seq.calls[k];
      const int sid = syscall_index(sc);
      std::uint16_t next =
          sid < 0 ? Program::kDeny
                  : program->next(state, static_cast<std::uint16_t>(sid));
      if (next != Program::kDeny && sid >= 0 && !situation.empty() &&
          program->situation_denies(set->situation_token(situation),
                                    static_cast<std::uint16_t>(sid)))
        next = Program::kDeny;
      if (next == Program::kDeny) {
        report.clean = false;
        report.detail = seq.exe + ": sequence " + std::to_string(i) +
                        " call " + std::to_string(k) + " (" + sc +
                        ", state " + program->state_name(state) +
                        ") replays as a violation";
        return report;
      }
      state = next;
    }
  }
  return report;
}

}  // namespace sack::sfi
