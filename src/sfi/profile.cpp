#include "sfi/profile.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace sack::sfi {

int syscall_index(std::string_view name) {
  static const std::unordered_map<std::string_view, int> kIndex = [] {
    std::unordered_map<std::string_view, int> m;
    for (std::size_t i = 0; i < kSyscallNames.size(); ++i)
      m.emplace(kSyscallNames[i], static_cast<int>(i));
    return m;
  }();
  auto it = kIndex.find(name);
  return it == kIndex.end() ? -1 : it->second;
}

namespace {

// Accepts a state name or the '*' wildcard. Returns empty string on error.
std::string parse_state_ref(TokenStream& ts) {
  if (ts.accept_punct('*')) return std::string(kWildcard);
  auto tok = ts.expect(TokenKind::identifier, "state name");
  if (!tok.ok()) return {};
  return tok->text;
}

// Parses `sys_a, sys_b` or `*`. Sets any on wildcard.
bool parse_syscall_list(TokenStream& ts, std::vector<std::string>& out,
                        bool& any) {
  if (ts.accept_punct('*')) {
    any = true;
    return true;
  }
  do {
    auto tok = ts.expect(TokenKind::identifier, "syscall name");
    if (!tok.ok()) return false;
    out.push_back(tok->text);
  } while (ts.accept_punct(','));
  return true;
}

bool parse_flows(TokenStream& ts, SfiProfile& profile) {
  if (!ts.expect_punct('{').ok()) return false;
  while (!ts.accept_punct('}')) {
    if (ts.at_end()) {
      ts.record_error("unterminated flows block");
      return false;
    }
    FlowRule rule;
    rule.line = ts.peek().line;
    if (ts.accept_ident("deny")) {
      rule.deny = true;
      rule.from = parse_state_ref(ts);
      if (rule.from.empty()) return false;
      if (!ts.accept_ident("on")) {
        ts.record_error("expected 'on' in deny rule");
        return false;
      }
      if (!parse_syscall_list(ts, rule.syscalls, rule.any_syscall))
        return false;
      if (rule.any_syscall) {
        ts.record_error("deny rules must name syscalls ('deny ... on *' "
                        "is the default-deny, write nothing instead)");
        return false;
      }
    } else {
      rule.from = parse_state_ref(ts);
      if (rule.from.empty()) return false;
      if (ts.peek().kind != TokenKind::arrow) {
        ts.record_error("expected '->' in flow rule");
        return false;
      }
      ts.next();
      rule.to = parse_state_ref(ts);
      if (rule.to.empty()) return false;
      if (!ts.accept_ident("on")) {
        ts.record_error("expected 'on' in flow rule");
        return false;
      }
      if (!parse_syscall_list(ts, rule.syscalls, rule.any_syscall))
        return false;
    }
    if (!ts.expect_punct(';').ok()) return false;
    profile.flows.push_back(std::move(rule));
  }
  return true;
}

bool parse_profile(TokenStream& ts, SfiProfile& profile) {
  auto exe = ts.expect(TokenKind::path, "profile attachment path");
  if (!exe.ok()) return false;
  profile.exe = exe->text;
  profile.line = exe->line;
  if (!ts.expect_punct('{').ok()) return false;

  while (!ts.accept_punct('}')) {
    if (ts.at_end()) {
      ts.record_error("unterminated profile block");
      return false;
    }
    if (ts.accept_ident("mode")) {
      if (ts.accept_ident("audit")) {
        profile.audit_only = true;
      } else if (ts.accept_ident("enforce")) {
        profile.audit_only = false;
      } else {
        ts.record_error("mode must be 'enforce' or 'audit'");
        return false;
      }
      if (!ts.expect_punct(';').ok()) return false;
    } else if (ts.accept_ident("states")) {
      if (!ts.expect_punct('{').ok()) return false;
      while (!ts.accept_punct('}')) {
        if (ts.at_end()) {
          ts.record_error("unterminated states block");
          return false;
        }
        auto tok = ts.expect(TokenKind::identifier, "state name");
        if (!tok.ok()) return false;
        profile.states.push_back(tok->text);
        ts.accept_punct(',');  // separators optional
        ts.accept_punct(';');
      }
    } else if (ts.accept_ident("initial")) {
      auto tok = ts.expect(TokenKind::identifier, "initial state name");
      if (!tok.ok()) return false;
      profile.initial = tok->text;
      if (!ts.expect_punct(';').ok()) return false;
    } else if (ts.accept_ident("flows")) {
      if (!parse_flows(ts, profile)) return false;
    } else if (ts.accept_ident("situation")) {
      SituationOverlay overlay;
      overlay.line = ts.peek().line;
      auto tok = ts.expect(TokenKind::identifier, "situation name");
      if (!tok.ok()) return false;
      overlay.situation = tok->text;
      if (!ts.expect_punct('{').ok()) return false;
      while (!ts.accept_punct('}')) {
        if (ts.at_end()) {
          ts.record_error("unterminated situation block");
          return false;
        }
        if (!ts.accept_ident("deny")) {
          ts.record_error("situation overlays are deny-only: expected 'deny'");
          return false;
        }
        bool any = false;
        if (!parse_syscall_list(ts, overlay.deny, any)) return false;
        if (any) {
          ts.record_error("situation deny must name syscalls");
          return false;
        }
        if (!ts.expect_punct(';').ok()) return false;
      }
      profile.overlays.push_back(std::move(overlay));
    } else {
      ts.record_error("expected mode/states/initial/flows/situation, got '" +
                      ts.peek().text + "'");
      return false;
    }
  }
  return true;
}

void check_profile(const SfiProfile& p, std::vector<ParseError>& errors) {
  auto err = [&](int line, std::string msg) {
    errors.push_back({line, 0, std::move(msg)});
  };

  std::set<std::string> states;
  for (const auto& s : p.states) {
    if (s == kWildcard) err(p.line, p.exe + ": '*' is not a legal state name");
    if (!states.insert(s).second)
      err(p.line, p.exe + ": duplicate state '" + s + "'");
  }
  if (p.states.empty()) err(p.line, p.exe + ": profile declares no states");
  if (p.initial.empty()) {
    err(p.line, p.exe + ": missing 'initial' declaration");
  } else if (!states.count(p.initial)) {
    err(p.line, p.exe + ": initial state '" + p.initial + "' not declared");
  }

  auto check_state = [&](const std::string& s, int line) {
    if (s != kWildcard && !states.count(s))
      err(line, p.exe + ": unknown state '" + s + "'");
  };
  auto check_syscalls = [&](const FlowRule& r) {
    for (const auto& sc : r.syscalls)
      if (syscall_index(sc) < 0)
        err(r.line, p.exe + ": unknown syscall '" + sc + "'");
  };

  // Nondeterminism: two explicit transitions from the same (state, syscall)
  // to different targets. Wildcards resolve by specificity, so only
  // same-specificity duplicates conflict.
  std::map<std::pair<std::string, std::string>, std::string> seen;
  for (const auto& r : p.flows) {
    check_state(r.from, r.line);
    if (!r.deny) check_state(r.to, r.line);
    check_syscalls(r);
    if (r.deny) continue;
    for (const auto& sc : r.syscalls) {
      auto key = std::make_pair(r.from, sc);
      auto [it, inserted] = seen.emplace(key, r.to);
      if (!inserted && it->second != r.to)
        err(r.line, p.exe + ": nondeterministic transition: " + r.from +
                        " on " + sc + " goes to both '" + it->second +
                        "' and '" + r.to + "'");
    }
  }

  std::set<std::string> overlay_names;
  for (const auto& o : p.overlays) {
    if (!overlay_names.insert(o.situation).second)
      err(o.line, p.exe + ": duplicate situation overlay '" + o.situation + "'");
    for (const auto& sc : o.deny)
      if (syscall_index(sc) < 0)
        err(o.line, p.exe + ": unknown syscall '" + sc + "' in situation '" +
                        o.situation + "'");
  }
}

}  // namespace

SfiParseResult parse_sfi_policy(std::string_view text) {
  SfiParseResult result;
  Tokenizer tokenizer(text);
  auto tokens = tokenizer.run();
  if (!tokens.ok()) {
    result.errors.push_back(tokenizer.last_error());
    return result;
  }
  TokenStream ts(std::move(*tokens));

  while (!ts.at_end()) {
    if (!ts.accept_ident("profile")) {
      ts.record_error("expected 'profile', got '" + ts.peek().text + "'");
      break;
    }
    SfiProfile profile;
    if (!parse_profile(ts, profile)) break;
    result.policy.profiles.push_back(std::move(profile));
  }
  result.errors = ts.take_errors();

  std::set<std::string> exes;
  for (const auto& p : result.policy.profiles) {
    if (!exes.insert(p.exe).second)
      result.errors.push_back(
          {p.line, 0, "duplicate profile for '" + p.exe + "'"});
    check_profile(p, result.errors);
  }
  if (!result.errors.empty()) result.policy.profiles.clear();
  return result;
}

std::string dump_sfi_policy(const SfiPolicy& policy) {
  auto sorted_profiles = policy.profiles;
  std::sort(sorted_profiles.begin(), sorted_profiles.end(),
            [](const SfiProfile& a, const SfiProfile& b) { return a.exe < b.exe; });

  std::string out;
  for (const auto& p : sorted_profiles) {
    out += "profile " + p.exe + " {\n";
    out += "  mode ";
    out += p.audit_only ? "audit" : "enforce";
    out += ";\n  states {";
    for (std::size_t i = 0; i < p.states.size(); ++i)
      out += (i ? ", " : " ") + p.states[i];
    out += " }\n";
    out += "  initial " + p.initial + ";\n";
    out += "  flows {\n";

    // One rule per (from, to, syscall) triple, sorted; catch-alls last.
    struct Line { std::string from, to, sc; bool any; bool deny; };
    std::vector<Line> lines;
    for (const auto& r : p.flows) {
      if (r.any_syscall) {
        lines.push_back({r.from, r.to, "", true, r.deny});
      } else {
        for (const auto& sc : r.syscalls)
          lines.push_back({r.from, r.to, sc, false, r.deny});
      }
    }
    std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
      return std::tie(a.deny, a.from, a.any, a.sc, a.to) <
             std::tie(b.deny, b.from, b.any, b.sc, b.to);
    });
    lines.erase(std::unique(lines.begin(), lines.end(),
                            [](const Line& a, const Line& b) {
                              return std::tie(a.deny, a.from, a.any, a.sc, a.to) ==
                                     std::tie(b.deny, b.from, b.any, b.sc, b.to);
                            }),
                lines.end());
    for (const auto& l : lines) {
      out += "    ";
      if (l.deny) {
        out += "deny " + l.from + " on " + l.sc + ";\n";
      } else {
        out += l.from + " -> " + l.to + " on " + (l.any ? "*" : l.sc) + ";\n";
      }
    }
    out += "  }\n";

    auto overlays = p.overlays;
    std::sort(overlays.begin(), overlays.end(),
              [](const SituationOverlay& a, const SituationOverlay& b) {
                return a.situation < b.situation;
              });
    for (const auto& o : overlays) {
      out += "  situation " + o.situation + " {\n    deny";
      auto deny = o.deny;
      std::sort(deny.begin(), deny.end());
      deny.erase(std::unique(deny.begin(), deny.end()), deny.end());
      for (std::size_t i = 0; i < deny.size(); ++i)
        out += (i ? ", " : " ") + deny[i];
      out += ";\n  }\n";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace sack::sfi
