#include "sfi/module.h"

#include <cctype>
#include <utility>

#include "kernel/audit.h"
#include "kernel/task.h"
#include "util/fault.h"
#include "util/log.h"

namespace sack::sfi {

using kernel::Capability;
using kernel::Task;

namespace {
constexpr std::size_t kViolationRing = 256;

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}
}  // namespace

// --- securityfs files ---

class SfiModule::LoadFile final : public kernel::VirtualFileOps {
 public:
  explicit LoadFile(SfiModule* mod) : mod_(mod) {}
  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    std::vector<ParseError> errors;
    auto rc = mod_->load_policy_text(data, &errors);
    if (!rc.ok()) {
      for (const auto& e : errors)
        log_warn("sfi: policy load error: ", e.to_string());
      return rc.error();
    }
    return {};
  }

 private:
  SfiModule* mod_;
};

class SfiModule::ProfilesFile final : public kernel::VirtualFileOps {
 public:
  explicit ProfilesFile(SfiModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    return mod_->profiles_dump();
  }

 private:
  SfiModule* mod_;
};

class SfiModule::ModeFile final : public kernel::VirtualFileOps {
 public:
  explicit ModeFile(SfiModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    return std::string(mod_->mode() == SfiMode::enforce ? "enforce\n"
                                                        : "audit\n");
  }
  Result<void> write_content(Task& task, std::string_view data) override {
    if (mod_->kernel_->capable(task, Capability::mac_admin) != Errno::ok)
      return Errno::eperm;
    auto word = trim(data);
    if (word == "enforce") {
      mod_->set_mode(SfiMode::enforce);
    } else if (word == "audit") {
      mod_->set_mode(SfiMode::audit);
    } else {
      return Errno::einval;
    }
    return {};
  }

 private:
  SfiModule* mod_;
};

class SfiModule::StatusFile final : public kernel::VirtualFileOps {
 public:
  explicit StatusFile(SfiModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    auto set = mod_->programs();
    std::string out;
    out += "sfi_mode " +
           std::string(mod_->mode() == SfiMode::enforce ? "enforce" : "audit") +
           "\n";
    out += "sfi_generation " + std::to_string(mod_->generation()) + "\n";
    out += "sfi_profiles " + std::to_string(set ? set->size() : 0) + "\n";
    out += "sfi_situation " + mod_->current_situation() + "\n";
    out += "sfi_checks " + std::to_string(mod_->check_count()) + "\n";
    out += "sfi_denials " + std::to_string(mod_->denial_count()) + "\n";
    out += "sfi_audit_allows " + std::to_string(mod_->audit_allow_count()) + "\n";
    out += "sfi_attaches " + std::to_string(mod_->attach_count()) + "\n";
    out += "sfi_exec_resets " + std::to_string(mod_->reset_count()) + "\n";
    out += "sfi_situation_switches " +
           std::to_string(mod_->situation_switches_.value()) + "\n";
    out += "sfi_loads " + std::to_string(mod_->loads_.value()) + "\n";
    return out;
  }

 private:
  SfiModule* mod_;
};

class SfiModule::ViolationsFile final : public kernel::VirtualFileOps {
 public:
  explicit ViolationsFile(SfiModule* mod) : mod_(mod) {}
  Result<std::string> read_content(Task&) override {
    std::string out;
    for (const auto& line : mod_->recent_violations()) out += line + "\n";
    return out;
  }

 private:
  SfiModule* mod_;
};

// --- module ---

SfiModule::SfiModule() = default;
SfiModule::~SfiModule() = default;

const std::string& SfiModule::blob_key() {
  static const std::string key{kName};
  return key;
}

void SfiModule::initialize(kernel::Kernel& kernel) {
  kernel_ = &kernel;
  load_file_ = std::make_unique<LoadFile>(this);
  profiles_file_ = std::make_unique<ProfilesFile>(this);
  mode_file_ = std::make_unique<ModeFile>(this);
  status_file_ = std::make_unique<StatusFile>(this);
  violations_file_ = std::make_unique<ViolationsFile>(this);
  auto& fs = kernel.securityfs();
  (void)fs.register_file("sfi/.load", load_file_.get(), 0200);
  (void)fs.register_file("sfi/profiles", profiles_file_.get(), 0444);
  (void)fs.register_file("sfi/mode", mode_file_.get(), 0600);
  (void)fs.register_file("sfi/status", status_file_.get(), 0444);
  (void)fs.register_file("sfi/violations", violations_file_.get(), 0444);
}

Result<void> SfiModule::load_policy_text(std::string_view text,
                                         std::vector<ParseError>* errors) {
  SfiParseResult parsed = parse_sfi_policy(text);
  if (errors) *errors = parsed.errors;
  if (!parsed.ok()) return Errno::einval;

  util::MutexLock lk(mu_);
  const std::uint64_t next_gen = generation_.load(std::memory_order_relaxed) + 1;
  auto compiled = compile_sfi_policy(parsed.policy, next_gen);
  if (!compiled.ok()) return compiled.error();

  policy_ = std::move(parsed.policy);
  programs_.store(*compiled);
  // Publish the generation after the set so a reader that sees the new
  // generation always finds (at least) the matching set.
  generation_.store(next_gen, std::memory_order_release);
  situation_word_.store(
      pack_situation(next_gen,
                     (*compiled)->situation_token(current_situation_)),
      std::memory_order_release);
  loads_.inc();
  return {};
}

std::string SfiModule::profiles_dump() const {
  util::MutexLock lk(mu_);
  return dump_sfi_policy(policy_);
}

void SfiModule::set_situation(std::string_view name) {
  util::MutexLock lk(mu_);
  current_situation_.assign(name);
  auto set = programs_.load();
  situation_word_.store(
      pack_situation(generation_.load(std::memory_order_relaxed),
                     set ? set->situation_token(name) : kNoSituation),
      std::memory_order_release);
  situation_switches_.inc();
}

std::string SfiModule::current_situation() const {
  util::MutexLock lk(mu_);
  return current_situation_;
}

std::vector<std::string> SfiModule::recent_violations() const {
  util::MutexLock lk(viol_mu_);
  return {violations_.begin(), violations_.end()};
}

// Cold path: first syscall of a task, or its blob's generation lost a race
// with a policy swap. (Re-)resolves the program for the task's exe and
// starts it at the initial state. A confined task that raced a swap restarts
// its flow — the safe direction: restarting can only deny sequences the old
// program allowed, never admit new ones mid-flow.
SfiTaskBlob* SfiModule::attach(Task& task) {
  auto blob = std::make_shared<SfiTaskBlob>();
  blob->set = programs_.load();
  blob->generation = blob->set ? blob->set->generation() : 0;
  if (blob->set) {
    blob->program = blob->set->find(task.exe_path());
    if (blob->program) blob->state = blob->program->initial_state();
  }
  SfiTaskBlob* raw = blob.get();
  task.set_security_blob(blob_key(), std::move(blob));
  attaches_.inc();
  return raw;
}

Errno SfiModule::deny(Task& task, std::string_view syscall,
                      const SfiTaskBlob& blob, bool overlay_deny) {
  denials_.inc();
  const bool audit_only =
      mode() == SfiMode::audit || blob.program->audit_only();

  std::string situation;
  {
    util::MutexLock lk(mu_);
    situation = current_situation_;
  }
  std::string context = "profile=" + blob.program->exe() +
                        " state=" + blob.program->state_name(blob.state) +
                        " situation=" + (situation.empty() ? "-" : situation) +
                        (overlay_deny ? " overlay=1" : "") +
                        (audit_only ? " audit=1" : "");
  if (kernel_) {
    kernel::AuditRecord rec;
    rec.time = kernel_->clock().now();
    rec.module = std::string(kName);
    rec.pid = task.pid();
    rec.subject = task.exe_path();
    rec.object = std::string(syscall);
    rec.operation = "flow_violation";
    rec.verdict = audit_only ? kernel::AuditVerdict::allowed
                             : kernel::AuditVerdict::denied;
    rec.context = context;
    kernel_->audit().record(std::move(rec));
  }
  {
    util::MutexLock lk(viol_mu_);
    violations_.push_back("pid=" + std::to_string(task.pid().get()) + " " +
                          std::string(syscall) + " " + context);
    if (violations_.size() > kViolationRing) violations_.pop_front();
  }
  if (audit_only) {
    // Complain mode: record, allow, and hold the automaton where it is —
    // there is no admissible next state to advance to.
    audit_allows_.inc();
    return Errno::ok;
  }
  return Errno::eacces;
}

Errno SfiModule::task_syscall(Task& task, std::string_view syscall) {
  checks_.inc();
  auto blob_sp = task.security_blob<SfiTaskBlob>(blob_key());
  SfiTaskBlob* blob = blob_sp.get();
  if (!blob ||
      blob->generation != generation_.load(std::memory_order_acquire))
    blob = attach(task);
  if (!blob->program) return Errno::ok;  // unconfined

  // Fault site: the transition probe itself fails (blown table page, ECC
  // machine check analogue). Fail closed with the injected errno; the
  // automaton state is untouched, so recovery resumes mid-flow.
  if (auto injected = util::FaultInjector::instance().fail_errno(
          "sfi.transition.fail", syscall))
    return *injected;

  const int sc = syscall_index(syscall);
  if (sc < 0) return Errno::ok;  // unknown entry: not modeled, not denied

  const auto sid = static_cast<std::uint16_t>(sc);
  std::uint16_t next = blob->program->next(blob->state, sid);
  bool overlay_deny = false;
  if (next != Program::kDeny) {
    // Situation tokens index the overlay tables of ONE ProgramSet. The
    // packed word carries the generation the token was minted for; on a
    // mismatch (a policy swap raced this syscall) the overlay is skipped
    // for this one call rather than consulting an arbitrary row of the
    // other generation's tables. The next call re-attaches and sees a
    // matched pair.
    const std::uint64_t word =
        situation_word_.load(std::memory_order_acquire);
    const auto token = static_cast<std::uint32_t>(word);
    if (token != kNoSituation &&
        (word >> 32) == (blob->generation & 0xffffffffULL) &&
        blob->program->situation_denies(token, sid)) {
      overlay_deny = true;
      next = Program::kDeny;
    }
  }
  if (next == Program::kDeny) return deny(task, syscall, *blob, overlay_deny);
  blob->state = next;
  return Errno::ok;
}

Errno SfiModule::task_alloc(Task& parent, Task& child) {
  // fork inherits the parent's automaton position: the child is a clone in
  // the middle of the same flow.
  auto parent_blob = parent.security_blob<SfiTaskBlob>(blob_key());
  if (parent_blob) {
    auto blob = std::make_shared<SfiTaskBlob>(*parent_blob);
    child.set_security_blob(blob_key(), std::move(blob));
  }
  return Errno::ok;
}

void SfiModule::bprm_committed_creds(Task& task, const std::string&) {
  // exec resets: the new image starts its own profile from the initial
  // state. Dropping the blob makes the next syscall re-attach lazily.
  if (task.security_blob<SfiTaskBlob>(blob_key())) resets_.inc();
  task.set_security_blob(blob_key(), nullptr);
}

void SfiModule::task_free(Task& task) {
  task.set_security_blob(blob_key(), nullptr);
}

std::string SfiModule::getprocattr(const Task& task) {
  auto blob = task.security_blob<SfiTaskBlob>(blob_key());
  if (!blob || !blob->program) return {};
  return "sfi=" + blob->program->exe() +
         " state=" + blob->program->state_name(blob->state) +
         (blob->program->audit_only() || mode() == SfiMode::audit
              ? " (audit)"
              : " (enforce)");
}

}  // namespace sack::sfi
