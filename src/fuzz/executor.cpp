#include "fuzz/executor.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "kernel/file.h"
#include "kernel/inode.h"
#include "kernel/socket.h"
#include "kernel/task.h"

namespace sack::fuzz {

using kernel::AccessMask;
using sack::Errno;
using kernel::Fd;
using kernel::Inode;
using kernel::InodePtr;
using kernel::OpenFlags;
using kernel::Pid;
using kernel::SockAddr;
using kernel::SockFamily;
using kernel::SockType;
using kernel::Task;
using kernel::Whence;
using sack::operator|;
using sack::operator|=;

namespace {

constexpr std::string_view kPaths[] = {
    "/tmp/a",     "/tmp/b",   "/tmp/d1", "/tmp/d1/c", "/var/media/track.pcm",
    "/var/media/x", "/dev/vehicle/door0", "/home/u", "/etc/cfg", "/tmp/ln",
    "/tmp",       "/var/media",
};
constexpr std::string_view kExePaths[] = {
    "/usr/bin/admin", "/usr/bin/media", "/usr/bin/sds_daemon", "/etc/cfg"};
constexpr std::string_view kXattrNames[] = {"user.tag", "security.sack",
                                            "user.note"};
constexpr std::string_view kEventsFile = "/sys/kernel/security/SACK/events";
constexpr std::string_view kHeartbeatFile =
    "/sys/kernel/security/SACK/heartbeat";
constexpr std::string_view kPolicyLoadFile =
    "/sys/kernel/security/SACK/policy/load";

constexpr int kFdSlots = 8;
constexpr int kMmapSlots = 4;
constexpr int kPidSlots = 4;

template <typename T>
Errno err_of(const Result<T>& r) {
  return r.ok() ? Errno::ok : r.error();
}
Errno err_of(const Result<void>& r) {
  return r.ok() ? Errno::ok : r.error();
}

std::string_view path_arg(std::uint32_t sel) {
  return kPaths[sel % (sizeof(kPaths) / sizeof(kPaths[0]))];
}

OpenFlags flags_arg(std::uint32_t d) {
  OpenFlags f = OpenFlags::none;
  switch (d % 3) {
    case 0: f = OpenFlags::read; break;
    case 1: f = OpenFlags::write; break;
    default: f = OpenFlags::rdwr; break;
  }
  if (d & 4) f |= OpenFlags::create;
  if (d & 8) f |= OpenFlags::trunc;
  if (d & 16) f |= OpenFlags::append;
  if (d & 32) f |= OpenFlags::excl;
  if (d & 64) f |= OpenFlags::cloexec;
  return f;
}

SockAddr addr_arg(std::uint32_t c, std::uint32_t d) {
  if (c % 2 == 0)
    return SockAddr::un("/tmp/sock" + std::to_string(d % 3));
  // 1-in-16 privileged port to exercise the capable() conditional chain.
  return SockAddr::in(d % 16 == 0 ? std::uint16_t{80}
                                  : static_cast<std::uint16_t>(1024 + d % 4));
}

}  // namespace

analysis::Manifest load_manifest_or_die(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fuzz: cannot open manifest %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = analysis::parse_manifest(text.str());
  if (!parsed.error.empty()) {
    std::fprintf(stderr, "fuzz: manifest parse error: %s\n",
                 parsed.error.c_str());
    std::exit(2);
  }
  return std::move(parsed.manifest);
}

ExecResult Executor::run(const Program& prog, Coverage& coverage,
                         std::uint64_t seed) const {
  ExecResult result;
  MediationOracle oracle(manifest_);
  FuzzEnv env(&oracle, seed);
  kernel::Kernel& k = env.kernel();

  // Per-task fd / pair-tracking slots. pair[t][s] is the (task, slot) of the
  // other end of a socketpair created into these slots, or {-1, -1}.
  int fds[FuzzEnv::kTaskCount][kFdSlots];
  std::pair<int, int> pair[FuzzEnv::kTaskCount][kFdSlots];
  int mmaps[FuzzEnv::kTaskCount][kMmapSlots];
  for (int t = 0; t < FuzzEnv::kTaskCount; ++t) {
    for (int s = 0; s < kFdSlots; ++s) {
      fds[t][s] = -1;
      pair[t][s] = {-1, -1};
    }
    for (int s = 0; s < kMmapSlots; ++s) mmaps[t][s] = -1;
  }
  long pids[kPidSlots] = {0, 0, 0, 0};

  auto unpair = [&](int t, int s) {
    auto [pt, ps] = pair[t][s];
    if (pt >= 0) pair[pt][ps] = {-1, -1};
    pair[t][s] = {-1, -1};
  };
  auto set_fd = [&](int t, int s, int fd) {
    unpair(t, s);
    fds[t][s] = fd;
  };
  auto unpair_all = [&] {
    for (int t = 0; t < FuzzEnv::kTaskCount; ++t)
      for (int s = 0; s < kFdSlots; ++s) pair[t][s] = {-1, -1};
  };

  for (const Op& op : prog.ops) {
    const int ti = static_cast<int>(op.a % FuzzEnv::kTaskCount);
    Task& t = env.task(op.a);
    const int fslot = static_cast<int>(op.b % kFdSlots);
    const int dslot = static_cast<int>(op.c % kFdSlots);
    const Fd fd{fds[ti][fslot]};

    // Record one completed kernel syscall: consume the oracle's staged
    // result and fold the outcome plus the observed hook chains into
    // coverage, crediting new keys to this run.
    auto record = [&](Errno e) {
      oracle.syscall_result(e);
      const std::uint32_t state = env.state_id();
      if (coverage.add_exec(op.code, state, static_cast<int>(e)))
        ++result.new_coverage;
      for (const ChainRecord& c : oracle.last_chains()) {
        if (coverage.add_hook(op.code, c.hook, c.verdict == Errno::ok))
          ++result.new_coverage;
      }
    };

    try {
      switch (op.code) {
        case OpCode::open: {
          auto r = k.sys_open(t, path_arg(op.b), flags_arg(op.d));
          record(err_of(r));
          if (r.ok()) set_fd(ti, dslot, static_cast<int>(r->get()));
          break;
        }
        case OpCode::close: {
          // IPC lifecycle probe setup. Slot tracking is advisory — racer
          // closes and fd-number reuse can alias slots — so the probe is
          // gated on ground truth read out of the kernel first: the two
          // slots must still hold the two cross-wired ends of one pair, and
          // this close must drop the description's last fd-table reference
          // (use_count == 2: the table's ref plus our probe handle).
          const auto peer = pair[ti][fslot];
          int pfd = peer.first >= 0 ? fds[peer.first][peer.second] : -1;
          bool probe = false;
          if (pfd >= 0) {
            // Inner scope: these handles each add a reference and MUST be
            // gone before sys_close, or the close can never destroy the
            // description and the probe would always see a live writer.
            auto cf = t.fds().get(fd);
            auto pf = env.task(static_cast<std::uint32_t>(peer.first))
                          .fds()
                          .get(Fd{pfd});
            probe = cf.ok() && pf.ok() && (*cf)->is_socket() &&
                    (*pf)->is_socket() && (*cf)->socket()->rx &&
                    (*cf)->socket()->rx == (*pf)->socket()->tx &&
                    (*cf)->socket()->tx == (*pf)->socket()->rx &&
                    cf->use_count() == 2;
          }
          auto r = k.sys_close(t, fd);
          record(err_of(r));
          if (r.ok() && peer.first >= 0) {
            // The surviving end of a closed pair must see EOF (or buffered
            // data) — EAGAIN means a half-open leak (Socket::shutdown
            // flipping the wrong buffer ends was exactly this bug).
            unpair(ti, fslot);
            if (probe) {
              Task& pt = env.task(static_cast<std::uint32_t>(peer.first));
              std::string out;
              auto pr = k.sys_recv(pt, Fd{pfd}, out, 16);
              record(err_of(pr));
              if (!pr.ok() && pr.error() == Errno::eagain) {
                result.violations.push_back(
                    {"ipc-half-open", "sys_close",
                     "peer recv returned EAGAIN after counterpart close"});
              }
            }
          }
          break;
        }
        case OpCode::read: {
          std::string out;
          record(err_of(k.sys_read(t, fd, out, (op.d % 4096) + 1)));
          break;
        }
        case OpCode::write: {
          std::string data(static_cast<std::size_t>(op.d % 300) + 1, 'x');
          record(err_of(k.sys_write(t, fd, data)));
          break;
        }
        case OpCode::lseek: {
          std::int64_t off = op.d % 8 == 0 ? std::int64_t{2'000'000'000}
                                           : std::int64_t(op.d % 70000);
          record(err_of(
              k.sys_lseek(t, fd, off, static_cast<Whence>(op.c % 3))));
          break;
        }
        case OpCode::dup: {
          auto r = k.sys_dup(t, fd);
          record(err_of(r));
          // The description now has two refs: close() on either fd no longer
          // tears the socket down, so pair tracking for both slots is void.
          unpair(ti, fslot);
          if (r.ok()) set_fd(ti, dslot, static_cast<int>(r->get()));
          break;
        }
        case OpCode::stat:
          record(err_of(k.sys_stat(t, path_arg(op.b))));
          break;
        case OpCode::mkdir:
          record(err_of(k.sys_mkdir(t, path_arg(op.b))));
          break;
        case OpCode::rmdir:
          record(err_of(k.sys_rmdir(t, path_arg(op.b))));
          break;
        case OpCode::unlink:
          record(err_of(k.sys_unlink(t, path_arg(op.b))));
          break;
        case OpCode::rename:
          record(err_of(k.sys_rename(t, path_arg(op.b), path_arg(op.c))));
          break;
        case OpCode::symlink:
          record(err_of(k.sys_symlink(t, path_arg(op.b), path_arg(op.c))));
          break;
        case OpCode::link:
          record(err_of(k.sys_link(t, path_arg(op.b), path_arg(op.c))));
          break;
        case OpCode::chmod:
          record(err_of(k.sys_chmod(t, path_arg(op.b),
                                    static_cast<kernel::FileMode>(op.d & 0777))));
          break;
        case OpCode::truncate: {
          std::uint64_t len = op.d % 8 == 0 ? kernel::kMaxFileSize + 1 + op.d
                                            : op.d % 5000;
          record(err_of(k.sys_truncate(t, path_arg(op.b), len)));
          break;
        }
        case OpCode::setxattr:
          record(err_of(k.sys_setxattr(t, path_arg(op.b),
                                       kXattrNames[op.c % 3], "v")));
          break;
        case OpCode::getxattr:
          record(err_of(
              k.sys_getxattr(t, path_arg(op.b), kXattrNames[op.c % 3])));
          break;
        case OpCode::readdir:
          record(err_of(k.sys_readdir(t, path_arg(op.b))));
          break;
        case OpCode::chdir:
          record(err_of(k.sys_chdir(t, path_arg(op.b))));
          break;
        case OpCode::mmap: {
          AccessMask prot =
              op.c % 2 == 0 ? AccessMask::read
                            : (AccessMask::read | AccessMask::write);
          auto r = k.sys_mmap(t, fd, (op.d % 4096) + 1, prot);
          record(err_of(r));
          if (r.ok()) mmaps[ti][op.c % kMmapSlots] = *r;
          break;
        }
        case OpCode::munmap:
          record(err_of(k.sys_munmap(t, mmaps[ti][op.b % kMmapSlots])));
          break;
        case OpCode::pipe: {
          auto r = k.sys_pipe(t);
          record(err_of(r));
          if (r.ok()) {
            set_fd(ti, dslot, static_cast<int>(r->first.get()));
            set_fd(ti, (dslot + 1) % kFdSlots,
                   static_cast<int>(r->second.get()));
          }
          break;
        }
        case OpCode::socket: {
          auto r = k.sys_socket(t,
                                op.b % 2 ? SockFamily::inet : SockFamily::unix_,
                                SockType::stream);
          record(err_of(r));
          if (r.ok()) set_fd(ti, dslot, static_cast<int>(r->get()));
          break;
        }
        case OpCode::socketpair: {
          auto r = k.sys_socketpair(
              t, op.b % 2 ? SockFamily::inet : SockFamily::unix_);
          record(err_of(r));
          if (r.ok()) {
            int s2 = (dslot + 1) % kFdSlots;
            if (s2 == dslot) s2 = (dslot + 1) % kFdSlots;
            set_fd(ti, dslot, static_cast<int>(r->first.get()));
            set_fd(ti, s2, static_cast<int>(r->second.get()));
            pair[ti][dslot] = {ti, s2};
            pair[ti][s2] = {ti, dslot};
          }
          break;
        }
        case OpCode::bind:
          record(err_of(k.sys_bind(t, fd, addr_arg(op.c, op.d))));
          break;
        case OpCode::listen:
          record(err_of(k.sys_listen(t, fd, static_cast<int>(op.d % 4))));
          break;
        case OpCode::connect:
          record(err_of(k.sys_connect(t, fd, addr_arg(op.c, op.d))));
          break;
        case OpCode::accept: {
          auto r = k.sys_accept(t, fd);
          record(err_of(r));
          if (r.ok()) set_fd(ti, dslot, static_cast<int>(r->get()));
          break;
        }
        case OpCode::send: {
          std::string data(static_cast<std::size_t>(op.d % 200) + 1, 's');
          record(err_of(k.sys_send(t, fd, data)));
          break;
        }
        case OpCode::recv: {
          std::string out;
          record(err_of(k.sys_recv(t, fd, out, (op.d % 256) + 1)));
          break;
        }
        case OpCode::fork: {
          auto r = k.sys_fork(t);
          record(err_of(r));
          if (r.ok()) {
            pids[op.c % kPidSlots] = r->get();
            // The child cloned the fd table; every tracked description now
            // has a second reference, so close-probes would false-positive.
            unpair_all();
          }
          break;
        }
        case OpCode::kill: {
          long target = pids[op.b % kPidSlots];
          Pid tp{target != 0 ? target : static_cast<long>(op.d % 5 + 1)};
          record(err_of(k.sys_kill(t, tp, op.d % 4 == 0 ? 0 : 15)));
          break;
        }
        case OpCode::waitpid: {
          long target = pids[op.b % kPidSlots];
          record(err_of(k.sys_waitpid(t, Pid{target != 0 ? target : 1})));
          break;
        }
        case OpCode::execve:
          record(err_of(k.sys_execve(t, kExePaths[op.b % 4])));
          break;
        case OpCode::sds_event:
        case OpCode::heartbeat:
        case OpCode::policy_reload: {
          // Environment ops expand to a real open/write/close lifecycle
          // through the syscall surface, so SACKfs writes are mediated and
          // witnessed like any other file I/O.
          Task& actor = env.task(op.code == OpCode::policy_reload ? 0u : 2u);
          std::string_view file =
              op.code == OpCode::sds_event
                  ? kEventsFile
                  : (op.code == OpCode::heartbeat ? kHeartbeatFile
                                                  : kPolicyLoadFile);
          std::string payload;
          if (op.code == OpCode::sds_event)
            payload = std::string(kFuzzEvents[op.b % 4]);
          else if (op.code == OpCode::heartbeat)
            payload = op.b % 2 ? "resync" : "beat";
          else
            payload = std::string(kFuzzPolicy);
          auto fr = k.sys_open(actor, file, OpenFlags::write);
          record(err_of(fr));
          if (fr.ok()) {
            record(err_of(k.sys_write(actor, *fr, payload)));
            record(err_of(k.sys_close(actor, *fr)));
          }
          break;
        }
        case OpCode::clock_tick:
          k.advance_clock_ms((op.d % 700) + 1);
          break;
        case OpCode::kCount:
          break;
      }
    } catch (const std::exception& e) {
      result.violations.push_back(
          {"op-exception", std::string(op_name(op.code)),
           std::string("syscall threw: ") + e.what()});
    }
    ++result.ops_run;
  }

  // vfs-nlink invariant walk: count directory entries per reachable regular
  // inode and compare with its recorded link count.
  {
    std::unordered_map<const Inode*, int> names;
    std::vector<const Inode*> regulars;
    std::vector<InodePtr> stack = {k.vfs().root()};
    while (!stack.empty()) {
      InodePtr dir = stack.back();
      stack.pop_back();
      for (const auto& [name, child] : dir->children()) {
        if (child->is_dir()) {
          stack.push_back(child);
          continue;
        }
        if (child->is_regular() && !child->vfile && !child->device) {
          if (++names[child.get()] == 1) regulars.push_back(child.get());
        }
      }
    }
    for (const Inode* ino : regulars) {
      if (static_cast<int>(ino->nlink()) != names[ino]) {
        result.violations.push_back(
            {"vfs-nlink", "program",
             "inode has " + std::to_string(names[ino]) +
                 " directory entries but nlink=" +
                 std::to_string(ino->nlink())});
      }
    }
  }

  // Detach before teardown so destructor-time traffic is not witnessed.
  k.set_mediation_witness(nullptr);

  for (const Violation& v : oracle.violations()) result.violations.push_back(v);
  return result;
}

}  // namespace sack::fuzz
