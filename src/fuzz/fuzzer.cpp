#include "fuzz/fuzzer.h"

#include <chrono>
#include <utility>

#include "fuzz/mutate.h"
#include "util/rng.h"

namespace sack::fuzz {

namespace {

std::uint64_t now_ms(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Fuzzer::Fuzzer(FuzzConfig config, analysis::Manifest manifest)
    : config_(std::move(config)), executor_(std::move(manifest)) {}

void Fuzzer::step(const Program& prog, std::uint64_t racer_seed) {
  ExecResult res = executor_.run(prog, coverage_, racer_seed);
  ++stats_.execs;
  stats_.violations += res.violations.size();
  if (res.new_coverage > 0) {
    corpus_.add(prog);
    stats_.plateau_execs = stats_.execs;
  }
  if (!res.violations.empty()) {
    Finding f;
    f.program = prog;
    f.violations = std::move(res.violations);
    if (config_.minimize_findings) {
      // A candidate stays interesting while it still produces any violation
      // of the same rule as the original finding's first one.
      const std::string rule = f.violations.front().rule;
      f.program = minimize(prog, [&](const Program& candidate) {
        Coverage scratch;  // minimization must not pollute campaign coverage
        ExecResult r = executor_.run(candidate, scratch, racer_seed);
        for (const Violation& v : r.violations)
          if (v.rule == rule) return true;
        return false;
      });
    }
    findings_.push_back(std::move(f));
  }
}

void Fuzzer::run() {
  const auto start = std::chrono::steady_clock::now();
  Rng rng(config_.seed);

  if (!config_.corpus_dir.empty()) corpus_.load_dir(config_.corpus_dir);

  // Replay the seed corpus first so its coverage baseline is established
  // before mutation starts spending the budget.
  std::vector<Program> seeds = corpus_.programs();
  for (const Program& prog : seeds) {
    if (stats_.execs >= config_.max_execs) break;
    step(prog, config_.racer ? rng.next() | 1 : 0);
  }

  while (stats_.execs < config_.max_execs) {
    if (stats_.execs - stats_.plateau_execs >= config_.plateau_execs &&
        stats_.execs >= config_.plateau_execs) {
      stats_.hit_plateau = true;
      break;
    }
    Program prog;
    if (corpus_.empty() || rng.chance(0.15)) {
      prog = generate(rng);
    } else if (corpus_.size() >= 2 && rng.chance(0.2)) {
      const Program& a = corpus_.programs()[rng.below(corpus_.size())];
      const Program& b = corpus_.programs()[rng.below(corpus_.size())];
      prog = splice(rng, a, b);
    } else {
      prog = mutate(rng, corpus_.programs()[rng.below(corpus_.size())]);
    }
    step(prog, config_.racer ? rng.next() | 1 : 0);
  }

  stats_.coverage_keys = coverage_.size();
  stats_.corpus_size = corpus_.size();
  stats_.elapsed_ms = now_ms(start);
  // plateau_execs marks the exec index of the last coverage gain; the time
  // estimate scales elapsed time by that fraction (good enough for a trend
  // metric without timestamping every exec).
  stats_.time_to_plateau_ms =
      stats_.execs == 0
          ? 0
          : stats_.elapsed_ms * stats_.plateau_execs / stats_.execs;
}

}  // namespace sack::fuzz
