// Executor: runs one fuzz Program against a fresh FuzzEnv under the
// MediationOracle, collecting coverage and findings.
//
// Beyond the oracle's per-syscall mediation rules, the executor layers
// whole-program invariants the witness stream alone cannot see:
//
//   vfs-nlink      after the program, every regular inode reachable from /
//                  must have a link count equal to the number of directory
//                  entries naming it (the invariant the sys_rename
//                  link-count leak violated);
//   ipc-half-open  closing one end of a tracked socket pair must leave the
//                  survivor seeing EOF or buffered data on recv — never
//                  EAGAIN-forever (the invariant Socket::shutdown's swapped
//                  buffer ends violated);
//   op-exception   no syscall may throw (std::length_error from unbounded
//                  resize was a user-triggerable kernel crash).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/manifest.h"
#include "fuzz/coverage.h"
#include "fuzz/env.h"
#include "fuzz/oracle.h"
#include "fuzz/program.h"

namespace sack::fuzz {

struct ExecResult {
  std::size_t ops_run = 0;
  std::uint64_t new_coverage = 0;  // coverage keys this run added
  std::vector<Violation> violations;
};

// Loads and parses the mediation manifest; aborts the process with a
// diagnostic on parse failure (a fuzzer without its contract is useless).
analysis::Manifest load_manifest_or_die(const std::string& path);

class Executor {
 public:
  explicit Executor(analysis::Manifest manifest)
      : manifest_(std::move(manifest)) {}

  // Runs `prog` in a fresh environment. `seed` feeds the racer module (0
  // disables it). Coverage accumulates across calls.
  ExecResult run(const Program& prog, Coverage& coverage,
                 std::uint64_t seed) const;

 private:
  analysis::Manifest manifest_;
};

}  // namespace sack::fuzz
