#include "fuzz/oracle.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/errno.h"

namespace sack::fuzz {

using sack::Errno;

namespace {

// Mutation-site -> guard hooks. A site fires legally when one of its guard
// chains already returned Errno::ok in the same syscall scope, or when the
// enclosing syscall is listed [unmediated] in the manifest. A site mapped to
// an empty set is legal *only* inside unmediated syscalls — it has no hook
// that could ever authorize it in a mediated one. This table is the runtime
// analogue of the manifest's `order = ["hook < pattern"]` anchors;
// docs/FUZZER.md documents every entry.
const std::map<std::string, std::set<std::string>, std::less<>>& site_guards() {
  static const std::map<std::string, std::set<std::string>, std::less<>> kMap =
      {
          {"vfs_create", {"path_mknod", "path_mkdir", "path_symlink"}},
          {"vfs_unlink", {"path_unlink", "path_rmdir"}},
          {"vfs_rename", {"path_rename"}},
          {"vfs_link", {"path_link"}},
          {"fd_install", {"file_open", "socket_create", "socket_accept"}},
          {"fd_close", {}},
          {"file_write", {"file_permission"}},
          {"file_truncate", {"path_truncate"}},
          {"pipe_read", {"file_permission"}},
          {"pipe_write", {"file_permission"}},
          {"vfile_write", {"file_permission"}},
          {"dev_write", {"file_permission"}},
          {"dev_ioctl", {"file_ioctl"}},
          {"sock_send", {"socket_sendmsg"}},
          {"sock_recv", {"socket_recvmsg"}},
          {"sock_bind", {"socket_bind"}},
          {"sock_listen", {"socket_listen"}},
          {"sock_connect", {"socket_connect", "socket_create"}},
          {"sock_accept", {"socket_accept"}},
          {"inode_setattr", {"path_chmod", "path_chown"}},
          {"inode_setxattr", {"inode_setxattr"}},
          {"mmap_install", {"mmap_file"}},
          {"mmap_remove", {}},
          {"task_create", {"task_alloc"}},
          {"task_exec", {"bprm_check_security"}},
          {"task_exit", {}},
          {"task_reap", {"task_free"}},
          {"task_chdir", {}},
          {"cred_change", {}},
      };
  return kMap;
}

}  // namespace

MediationOracle::MediationOracle(analysis::Manifest manifest)
    : manifest_(std::move(manifest)) {
  known_syscalls_.reserve(manifest_.syscalls.size());
  for (const auto& spec : manifest_.syscalls)
    known_syscalls_.push_back(spec.name);
  universal_active_ = !manifest_.universal_require.empty();
}

void MediationOracle::violate(std::string rule, const std::string& syscall,
                              std::string detail) {
  violations_.push_back({std::move(rule), syscall, std::move(detail)});
}

void MediationOracle::syscall_enter(std::string_view name) {
  Scope scope;
  scope.name = std::string(name);
  scope.unmediated = manifest_.unmediated.contains(scope.name);
  scope.universal_exempt =
      std::find(manifest_.universal_exempt.begin(),
                manifest_.universal_exempt.end(),
                scope.name) != manifest_.universal_exempt.end();
  if (!scope.unmediated &&
      std::find(known_syscalls_.begin(), known_syscalls_.end(), scope.name) ==
          known_syscalls_.end()) {
    violate("manifest-drift", scope.name,
            "syscall appears in neither [syscall.*] nor [unmediated]");
  }
  scopes_.push_back(std::move(scope));
  ++syscalls_observed_;
}

void MediationOracle::syscall_exit(std::string_view name) {
  if (scopes_.empty()) {
    violate("unbalanced-scope", std::string(name),
            "syscall_exit with no open scope");
    return;
  }
  Scope scope = std::move(scopes_.back());
  scopes_.pop_back();
  if (scope.name != name) {
    violate("unbalanced-scope", scope.name,
            "exit name mismatch: got " + std::string(name));
  }
  if (!scope.pending.empty()) {
    violate("verdict-missing", scope.name,
            "chain '" + scope.pending.back() +
                "' dispatched but no verdict arrived before syscall exit");
  }
  if (universal_active_ && !scope.universal_exempt && !scope.gate_seen) {
    violate("universal-gate", scope.name,
            "scope closed without a completed universal-gate chain "
            "(task_syscall never dispatched)");
  }
  if (scopes_.empty()) {
    // Outermost scope closed: stage the summary for syscall_result().
    last_name_ = scope.name;
    last_chains_ = std::move(scope.chains);
    last_denial_ = scope.first_denial;
    last_denial_capable_ = scope.denial_from_capable;
    result_pending_ = true;
  } else {
    // Nested syscall (sys_exit inside sys_kill): fold its chains into the
    // parent for coverage, but denials stay the inner scope's business —
    // the outer syscall's return value never carried them.
    auto& parent = scopes_.back();
    for (auto& c : scope.chains) parent.chains.push_back(std::move(c));
  }
}

void MediationOracle::hook_enter(std::string_view hook) {
  if (scopes_.empty()) return;  // boot / harness / clock-tick traffic
  scopes_.back().pending.push_back(std::string(hook));
}

void MediationOracle::chain_verdict(Errno verdict) {
  if (scopes_.empty()) return;
  Scope& scope = scopes_.back();
  ++chains_observed_;
  if (scope.pending.empty()) {
    violate("verdict-unpaired", scope.name,
            "chain_verdict with no dispatched chain (sentinel bypassed?)");
    return;
  }
  ChainRecord rec;
  rec.hook = std::move(scope.pending.back());
  scope.pending.pop_back();
  rec.verdict = verdict;
  if (scope.module_denial != Errno::ok) {
    // A module short-circuited this chain: the stack must report exactly
    // that errno. Anything else means a later module's allow (or a stack
    // bug) overwrote the denial — first-deny-wins broken.
    if (verdict != scope.module_denial) {
      violate("first-deny-wins", scope.name,
              "module '" + scope.module_denier + "' denied chain '" +
                  rec.hook + "' with " +
                  std::string(errno_name(scope.module_denial)) +
                  " but the chain verdict was " +
                  std::string(errno_name(verdict)));
    }
    scope.module_denial = Errno::ok;
    scope.module_denier.clear();
  }
  if (universal_active_ &&
      std::find(manifest_.universal_require.begin(),
                manifest_.universal_require.end(),
                rec.hook) != manifest_.universal_require.end()) {
    scope.gate_seen = true;
    if (verdict == Errno::ok) scope.gate_allowed = true;
  }
  if (verdict != Errno::ok && scope.first_denial == Errno::ok) {
    scope.first_denial = verdict;
    scope.denial_from_capable = (rec.hook == "capable");
  }
  scope.chains.push_back(std::move(rec));
}

void MediationOracle::module_verdict(std::string_view module, Errno verdict) {
  if (scopes_.empty()) return;
  Scope& scope = scopes_.back();
  if (verdict == Errno::ok) return;  // only denials short-circuit
  // The stack reports this immediately before it stops the chain; the very
  // next chain_verdict belongs to the same chain (LIFO nesting holds because
  // a nested dispatch completes before its parent's verdict arrives).
  scope.module_denial = verdict;
  scope.module_denier = std::string(module);
}

void MediationOracle::mutation(std::string_view site) {
  if (scopes_.empty()) return;
  Scope& scope = scopes_.back();
  ++mutations_observed_;
  // The universal gate applies even to [unmediated] syscalls: they have no
  // per-object hook, but the flow gate must still have allowed before any
  // state is touched (the hook-after-mutation ordering witness).
  if (universal_active_ && !scope.universal_exempt && !scope.gate_allowed) {
    violate("universal-gate", scope.name,
            "mutation site '" + std::string(site) +
                "' fired before the universal gate allowed the flow");
  }
  if (scope.unmediated) return;  // the manifest blesses the whole syscall
  auto it = site_guards().find(site);
  if (it == site_guards().end()) {
    violate("unknown-site", scope.name,
            "mutation site '" + std::string(site) + "' not in guard table");
    return;
  }
  if (it->second.empty()) {
    violate("guarded-mutation", scope.name,
            "site '" + std::string(site) +
                "' is only legal in [unmediated] syscalls");
    return;
  }
  bool guarded = false;
  for (const ChainRecord& c : scope.chains) {
    if (c.verdict == Errno::ok && it->second.contains(c.hook)) {
      guarded = true;
      break;
    }
  }
  if (!guarded) {
    std::string detail = "site '" + std::string(site) +
                         "' fired with no prior allow verdict from any of {";
    bool first = true;
    for (const auto& g : it->second) {
      if (!first) detail += ", ";
      detail += g;
      first = false;
    }
    detail += "}";
    violate("guarded-mutation", scope.name, std::move(detail));
  }
}

void MediationOracle::syscall_result(Errno err) {
  if (!result_pending_) return;
  result_pending_ = false;
  if (last_denial_ == Errno::ok) return;
  if (err == Errno::ok) {
    violate("no-swallow", last_name_,
            std::string("chain denied with ") +
                std::string(errno_name(last_denial_)) +
                " but the syscall returned success");
    return;
  }
  if (!last_denial_capable_ && err != last_denial_) {
    violate("no-swallow", last_name_,
            std::string("chain denied with ") +
                std::string(errno_name(last_denial_)) +
                " but the syscall returned " +
                std::string(errno_name(err)));
  }
}

}  // namespace sack::fuzz
