#include "fuzz/oracle.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/errno.h"

namespace sack::fuzz {

using sack::Errno;

namespace {

// Mutation-site -> guard hooks. A site fires legally when one of its guard
// chains already returned Errno::ok in the same syscall scope, or when the
// enclosing syscall is listed [unmediated] in the manifest. A site mapped to
// an empty set is legal *only* inside unmediated syscalls — it has no hook
// that could ever authorize it in a mediated one. This table is the runtime
// analogue of the manifest's `order = ["hook < pattern"]` anchors;
// docs/FUZZER.md documents every entry.
const std::map<std::string, std::set<std::string>, std::less<>>& site_guards() {
  static const std::map<std::string, std::set<std::string>, std::less<>> kMap =
      {
          {"vfs_create", {"path_mknod", "path_mkdir", "path_symlink"}},
          {"vfs_unlink", {"path_unlink", "path_rmdir"}},
          {"vfs_rename", {"path_rename"}},
          {"vfs_link", {"path_link"}},
          {"fd_install", {"file_open", "socket_create", "socket_accept"}},
          {"fd_close", {}},
          {"file_write", {"file_permission"}},
          {"file_truncate", {"path_truncate"}},
          {"pipe_read", {"file_permission"}},
          {"pipe_write", {"file_permission"}},
          {"vfile_write", {"file_permission"}},
          {"dev_write", {"file_permission"}},
          {"dev_ioctl", {"file_ioctl"}},
          {"sock_send", {"socket_sendmsg"}},
          {"sock_recv", {"socket_recvmsg"}},
          {"sock_bind", {"socket_bind"}},
          {"sock_listen", {"socket_listen"}},
          {"sock_connect", {"socket_connect", "socket_create"}},
          {"sock_accept", {"socket_accept"}},
          {"inode_setattr", {"path_chmod", "path_chown"}},
          {"inode_setxattr", {"inode_setxattr"}},
          {"mmap_install", {"mmap_file"}},
          {"mmap_remove", {}},
          {"task_create", {"task_alloc"}},
          {"task_exec", {"bprm_check_security"}},
          {"task_exit", {}},
          {"task_reap", {"task_free"}},
          {"task_chdir", {}},
          {"cred_change", {}},
      };
  return kMap;
}

}  // namespace

MediationOracle::MediationOracle(analysis::Manifest manifest)
    : manifest_(std::move(manifest)) {
  known_syscalls_.reserve(manifest_.syscalls.size());
  for (const auto& spec : manifest_.syscalls)
    known_syscalls_.push_back(spec.name);
}

void MediationOracle::violate(std::string rule, const std::string& syscall,
                              std::string detail) {
  violations_.push_back({std::move(rule), syscall, std::move(detail)});
}

void MediationOracle::syscall_enter(std::string_view name) {
  Scope scope;
  scope.name = std::string(name);
  scope.unmediated = manifest_.unmediated.contains(scope.name);
  if (!scope.unmediated &&
      std::find(known_syscalls_.begin(), known_syscalls_.end(), scope.name) ==
          known_syscalls_.end()) {
    violate("manifest-drift", scope.name,
            "syscall appears in neither [syscall.*] nor [unmediated]");
  }
  scopes_.push_back(std::move(scope));
  ++syscalls_observed_;
}

void MediationOracle::syscall_exit(std::string_view name) {
  if (scopes_.empty()) {
    violate("unbalanced-scope", std::string(name),
            "syscall_exit with no open scope");
    return;
  }
  Scope scope = std::move(scopes_.back());
  scopes_.pop_back();
  if (scope.name != name) {
    violate("unbalanced-scope", scope.name,
            "exit name mismatch: got " + std::string(name));
  }
  if (!scope.pending.empty()) {
    violate("verdict-missing", scope.name,
            "chain '" + scope.pending.back() +
                "' dispatched but no verdict arrived before syscall exit");
  }
  if (scopes_.empty()) {
    // Outermost scope closed: stage the summary for syscall_result().
    last_name_ = scope.name;
    last_chains_ = std::move(scope.chains);
    last_denial_ = scope.first_denial;
    last_denial_capable_ = scope.denial_from_capable;
    result_pending_ = true;
  } else {
    // Nested syscall (sys_exit inside sys_kill): fold its chains into the
    // parent for coverage, but denials stay the inner scope's business —
    // the outer syscall's return value never carried them.
    auto& parent = scopes_.back();
    for (auto& c : scope.chains) parent.chains.push_back(std::move(c));
  }
}

void MediationOracle::hook_enter(std::string_view hook) {
  if (scopes_.empty()) return;  // boot / harness / clock-tick traffic
  scopes_.back().pending.push_back(std::string(hook));
}

void MediationOracle::chain_verdict(Errno verdict) {
  if (scopes_.empty()) return;
  Scope& scope = scopes_.back();
  ++chains_observed_;
  if (scope.pending.empty()) {
    violate("verdict-unpaired", scope.name,
            "chain_verdict with no dispatched chain (sentinel bypassed?)");
    return;
  }
  ChainRecord rec;
  rec.hook = std::move(scope.pending.back());
  scope.pending.pop_back();
  rec.verdict = verdict;
  if (verdict != Errno::ok && scope.first_denial == Errno::ok) {
    scope.first_denial = verdict;
    scope.denial_from_capable = (rec.hook == "capable");
  }
  scope.chains.push_back(std::move(rec));
}

void MediationOracle::mutation(std::string_view site) {
  if (scopes_.empty()) return;
  Scope& scope = scopes_.back();
  ++mutations_observed_;
  if (scope.unmediated) return;  // the manifest blesses the whole syscall
  auto it = site_guards().find(site);
  if (it == site_guards().end()) {
    violate("unknown-site", scope.name,
            "mutation site '" + std::string(site) + "' not in guard table");
    return;
  }
  if (it->second.empty()) {
    violate("guarded-mutation", scope.name,
            "site '" + std::string(site) +
                "' is only legal in [unmediated] syscalls");
    return;
  }
  bool guarded = false;
  for (const ChainRecord& c : scope.chains) {
    if (c.verdict == Errno::ok && it->second.contains(c.hook)) {
      guarded = true;
      break;
    }
  }
  if (!guarded) {
    std::string detail = "site '" + std::string(site) +
                         "' fired with no prior allow verdict from any of {";
    bool first = true;
    for (const auto& g : it->second) {
      if (!first) detail += ", ";
      detail += g;
      first = false;
    }
    detail += "}";
    violate("guarded-mutation", scope.name, std::move(detail));
  }
}

void MediationOracle::syscall_result(Errno err) {
  if (!result_pending_) return;
  result_pending_ = false;
  if (last_denial_ == Errno::ok) return;
  if (err == Errno::ok) {
    violate("no-swallow", last_name_,
            std::string("chain denied with ") +
                std::string(errno_name(last_denial_)) +
                " but the syscall returned success");
    return;
  }
  if (!last_denial_capable_ && err != last_denial_) {
    violate("no-swallow", last_name_,
            std::string("chain denied with ") +
                std::string(errno_name(last_denial_)) +
                " but the syscall returned " +
                std::string(errno_name(err)));
  }
}

}  // namespace sack::fuzz
