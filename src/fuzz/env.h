// FuzzEnv: one disposable simulated-kernel universe per program execution.
//
// Boots a fresh Kernel with the SACK module (independent mode, DFA ruleset)
// and a three-state watchdog policy, spawns the three actor tasks the
// program ops index (admin, media, sds), and installs:
//
//   * a WitnessSentinel at the head of the LSM stack (add_lsm_front), so
//     every hook dispatch is reported to the oracle before any module can
//     deny it;
//   * an SfiModule stacked behind SACK with catch-all flow profiles for the
//     three actors plus one seeded deny (kFuzzSfiProfiles), so task_syscall
//     gate chains, SFI denials, and the first-deny-wins witness are all
//     exercised by ordinary campaigns;
//   * a RacerModule behind SACK — a deterministic, program-seeded hostile
//     module that closes descriptors during socket_bind chains (the TOCTOU
//     canary that flushed out the sys_bind post-hook re-fetch bug) and
//     injects SDS situation events during file_permission chains
//     (mid-syscall state transitions, the interrupt analogue).
#pragma once

#include <memory>
#include <string>

#include "core/sack_module.h"
#include "fuzz/oracle.h"
#include "kernel/kernel.h"
#include "sfi/module.h"
#include "util/rng.h"

namespace sack::fuzz {

// The policy every FuzzEnv loads: three situation states, a watchdog with a
// failsafe, and permissions that differ per state so situation transitions
// flip verdicts mid-campaign.
extern const std::string_view kFuzzPolicy;

// Situation events worth injecting (the last one is deliberately unknown to
// the policy, to exercise the rejection path).
extern const std::string_view kFuzzEvents[4];

// SFI flow profiles every FuzzEnv loads: catch-all automata for the three
// actor exes, with one seeded deny (sds_daemon may not chdir) so campaigns
// exercise the SFI denial path and the first-deny-wins witness on a syscall
// where SFI is the only module that could deny.
extern const std::string_view kFuzzSfiProfiles;

class RacerModule final : public kernel::SecurityModule {
 public:
  std::string_view name() const override { return "fuzz_racer"; }

  void arm(std::uint64_t seed, core::SackModule* sack) {
    rng_ = Rng(seed);
    sack_ = sack;
    enabled_ = true;
  }
  void disarm() { enabled_ = false; }

  Errno socket_bind(kernel::Task& task,
                            const kernel::Socket& sock) override;
  Errno file_permission(kernel::Task& task, const kernel::File& file,
                                kernel::AccessMask access) override;

 private:
  bool enabled_ = false;
  Rng rng_{0};
  core::SackModule* sack_ = nullptr;
};

class FuzzEnv {
 public:
  // `witness` may be null (no oracle attached). `racer_seed` derives the
  // racer's deterministic schedule; pass 0 to disable the racer entirely.
  explicit FuzzEnv(kernel::MediationWitness* witness,
                   std::uint64_t racer_seed = 0);

  kernel::Kernel& kernel() { return kernel_; }
  core::SackModule& sack() { return *sack_; }
  sfi::SfiModule& sfi() { return *sfi_; }

  // Actor tasks, indexed by op.a % kTaskCount.
  static constexpr int kTaskCount = 3;
  kernel::Task& task(std::uint32_t index);

  // Numeric encoding of the current situation state (policy `states`
  // encoding; kStateUnknown before the policy loads or after parse issues).
  static constexpr std::uint32_t kStateUnknown = 0xffff;
  std::uint32_t state_id() const;

 private:
  kernel::Kernel kernel_;
  core::SackModule* sack_ = nullptr;
  sfi::SfiModule* sfi_ = nullptr;
  RacerModule* racer_ = nullptr;
  kernel::Task* tasks_[kTaskCount] = {};
};

}  // namespace sack::fuzz
