// Coverage feedback for the mediation fuzzer.
//
// Two key families, packed into one uint64 set:
//   exec keys:  (opcode, SSM situation state, errno)  — did this syscall,
//               issued in this situation, produce this outcome before?
//   hook keys:  (opcode, hook, allow/deny)            — did this syscall
//               drive this hook chain to this verdict class before?
//
// Both are tiny domains by fuzzing standards, which is the point: the
// product space is the kernel's *mediation* behavior, and a plateau over it
// means every reachable (syscall x situation x verdict) combination the
// program generator can express has been witnessed.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_set>

#include "fuzz/program.h"

namespace sack::fuzz {

class Coverage {
 public:
  // Each add_* returns true when the key was new.
  bool add_exec(OpCode op, std::uint32_t state_id, int err) {
    return add(pack(1, op, state_id, static_cast<std::uint32_t>(err) & 0xff));
  }
  bool add_hook(OpCode op, std::string_view hook, bool allowed) {
    return add(pack(2, op, hash16(hook), allowed ? 1 : 0));
  }

  std::size_t size() const { return keys_.size(); }
  void clear() { keys_.clear(); }

 private:
  static std::uint32_t hash16(std::string_view s) {
    std::uint32_t h = 2166136261u;
    for (unsigned char c : s) h = (h ^ c) * 16777619u;
    return (h ^ (h >> 16)) & 0xffff;
  }
  static std::uint64_t pack(std::uint64_t kind, OpCode op, std::uint32_t mid,
                            std::uint32_t low) {
    return (kind << 56) | (static_cast<std::uint64_t>(op) << 40) |
           (static_cast<std::uint64_t>(mid & 0xffff) << 16) | (low & 0xffff);
  }
  bool add(std::uint64_t key) { return keys_.insert(key).second; }

  std::unordered_set<std::uint64_t> keys_;
};

}  // namespace sack::fuzz
